"""Setup script.

A classic setup.py is used (rather than a PEP 517 pyproject build) so
that ``pip install -e .`` works in fully offline environments where the
``wheel`` package is unavailable.
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Device-circuit-architecture co-optimization framework for "
        "minimizing the energy-delay product of FinFET SRAM arrays "
        "(reproduction of Shafaei et al., DAC 2016)"
    ),
    license="MIT",
    python_requires=">=3.9",
    install_requires=["numpy>=1.20"],
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
