"""Scenario: how far can each cell flavor scale its supply?

Reproduces the device-level argument of the paper's Section 2
(Figure 2): sweep Vdd from 100 mV to the nominal 450 mV and track the
hold SNM (can the cell still retain data with margin?) and the leakage
power.  The punchline the paper draws — and this script verifies — is
that an HVT cell at nominal Vdd leaks *less* than an LVT cell scaled
all the way to 100 mV, while retaining far healthier margins.
"""

import numpy as np

from repro.cell import SRAM6TCell, cell_leakage_power, hold_snm
from repro.devices import DeviceLibrary

VDD_VALUES = np.round(np.arange(0.10, 0.4501, 0.05), 3)
YIELD_FRACTION = 0.35


def main():
    library = DeviceLibrary.default_7nm()
    cells = {f: SRAM6TCell.from_library(library, f) for f in ("lvt", "hvt")}

    print("Vdd scaling study (hold condition, yield floor = "
          "%.0f%% of Vdd)" % (YIELD_FRACTION * 100))
    print()
    header = ("Vdd [mV] | HSNM lvt [mV] ok? | HSNM hvt [mV] ok? | "
              "leak lvt [nW] | leak hvt [nW]")
    print(header)
    print("-" * len(header))
    rows = {}
    for vdd in VDD_VALUES:
        row = {}
        for flavor, cell in cells.items():
            row[flavor] = (
                hold_snm(cell, vdd=float(vdd)),
                cell_leakage_power(cell, vdd=float(vdd)),
            )
        rows[float(vdd)] = row
        floor = YIELD_FRACTION * vdd
        print("%8.0f | %9.1f %6s | %9.1f %6s | %13.4f | %13.4f"
              % (vdd * 1e3,
                 row["lvt"][0] * 1e3,
                 "yes" if row["lvt"][0] >= floor else "NO",
                 row["hvt"][0] * 1e3,
                 "yes" if row["hvt"][0] >= floor else "NO",
                 row["lvt"][1] * 1e9,
                 row["hvt"][1] * 1e9))

    print()
    lvt_100 = rows[0.10]["lvt"][1]
    hvt_450 = rows[0.45]["hvt"][1]
    lvt_450 = rows[0.45]["lvt"][1]
    print("LVT leakage reduction from scaling 450 -> 100 mV: %.1fx"
          % (lvt_450 / lvt_100))
    print("HVT-at-450mV vs LVT-at-100mV leakage: %.1fx lower "
          "(paper: ~5x)" % (lvt_100 / hvt_450))
    print("HVT-at-450mV vs LVT-at-450mV leakage: %.1fx lower "
          "(paper: ~20x)" % (lvt_450 / hvt_450))
    # The lowest Vdd each flavor can hold data at with margin.
    for flavor in ("lvt", "hvt"):
        ok = [v for v in VDD_VALUES
              if rows[float(v)][flavor][0] >= YIELD_FRACTION * v]
        print("6T-%s holds data with margin down to Vdd = %.0f mV"
              % (flavor.upper(), min(ok) * 1e3))
    print()
    print("Conclusion: HVT devices beat aggressive voltage scaling on "
          "leakage without the margin collapse — the premise of the "
          "paper's co-optimization.")


if __name__ == "__main__":
    main()
