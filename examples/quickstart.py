"""Quickstart: characterize a 6T FinFET SRAM cell and co-optimize a 4KB
array for minimum energy-delay product.

Run from the repository root::

    python examples/quickstart.py

The first run characterizes the cell and periphery with the built-in
circuit simulator (a couple of minutes) and caches the results in
``.repro_cache.json``; later runs finish in seconds.
"""

from repro.analysis import Session, optimize_all
from repro.cell import (
    SRAM6TCell,
    cell_leakage_power,
    hold_snm,
    read_current,
    read_snm,
    write_margin,
)
from repro.devices import DeviceLibrary
from repro.units import as_mV, as_nA, as_nW, as_uA


def main():
    library = DeviceLibrary.default_7nm()
    vdd = library.vdd
    print("7nm FinFET library, nominal Vdd = %.0f mV" % as_mV(vdd))
    print()

    # --- device level -----------------------------------------------------
    for flavor in ("lvt", "hvt"):
        nfet = library.nfet(flavor)
        print("%s NFET: Ion = %.1f uA/fin, Ioff = %.2f nA/fin, "
              "Ion/Ioff = %.0f"
              % (flavor.upper(), as_uA(nfet.ion(vdd)),
                 as_nA(nfet.ioff(vdd)), nfet.on_off_ratio(vdd)))
    print()

    # --- cell level ---------------------------------------------------------
    for flavor in ("lvt", "hvt"):
        cell = SRAM6TCell.from_library(library, flavor)
        print("6T-%s cell at nominal bias:" % flavor.upper())
        print("  hold SNM    = %6.1f mV" % as_mV(hold_snm(cell, vdd)))
        print("  read SNM    = %6.1f mV" % as_mV(read_snm(cell, vdd=vdd)))
        print("  write margin= %6.1f mV" % as_mV(write_margin(cell, vdd=vdd)))
        print("  read current= %6.2f uA" % as_uA(read_current(cell, vdd=vdd)))
        print("  leakage     = %6.3f nW" % as_nW(cell_leakage_power(cell, vdd)))
    print()

    # --- array level: co-optimize a 4KB array ------------------------------
    print("Characterizing periphery and optimizing a 4KB array "
          "(cached after the first run)...")
    session = Session.create()
    sweep = optimize_all(session, capacities=(4096,))
    for flavor in ("lvt", "hvt"):
        for method in ("M1", "M2"):
            result = sweep.get(4096, flavor, method)
            m = result.metrics
            print("  %s: D = %.3f ns, E = %.1f fJ, EDP = %.3g Js  [%s]"
                  % (result.label, m.d_array * 1e9, m.e_total * 1e15,
                     m.edp, result.design.describe()))
    hvt = sweep.get(4096, "hvt", "M2").metrics
    lvt = sweep.get(4096, "lvt", "M2").metrics
    print()
    print("6T-HVT-M2 vs 6T-LVT-M2 at 4KB: %.0f%% lower EDP, "
          "%.0f%% delay penalty"
          % ((1 - hvt.edp / lvt.edp) * 100.0,
             (hvt.d_array / lvt.d_array - 1) * 100.0))


if __name__ == "__main__":
    main()
