"""Scenario: choosing the data-array design for an energy-constrained
L1 cache.

An embedded core needs a 16KB L1 data array read/written 64 bits at a
time.  The power budget is dominated by standby leakage (the cache is
mostly idle: activity factor 0.1), but the access path still has to hit
a cycle-time target.  This script uses the co-optimization framework to
answer, for each candidate configuration:

* what is the best organization (rows/columns) and periphery sizing?
* what do delay, energy, and leakage look like?
* which configuration meets the cycle budget at the lowest energy?

It also shows the Pareto front of the HVT-M2 search space, so a
designer can trade a little delay for extra energy savings (or vice
versa) instead of taking the EDP optimum blindly.
"""

from repro.analysis import Session, optimize_all
from repro.array import ArrayConfig
from repro.opt import best_weighted, pareto_front
from repro.units import capacity_label

CAPACITY_BYTES = 16 * 1024

#: A mostly-idle L1: one access every ten cycles on average.
L1_CONFIG = ArrayConfig(alpha=0.1, beta=0.7)

#: Cycle budget for the array access [s].
CYCLE_BUDGET = 1.1e-9


def main():
    print("L1 data array study: %s, alpha=%.1f, beta=%.1f"
          % (capacity_label(CAPACITY_BYTES), L1_CONFIG.alpha,
             L1_CONFIG.beta))
    session = Session.create(config=L1_CONFIG)
    sweep = optimize_all(session, capacities=(CAPACITY_BYTES,),
                         keep_landscape=True)

    print()
    print("candidate      D [ns]   E [fJ]   leak%%   EDP [1e-24 Js]   "
          "meets %.2f ns?" % (CYCLE_BUDGET * 1e9))
    best = None
    for flavor in ("lvt", "hvt"):
        for method in ("M1", "M2"):
            result = sweep.get(CAPACITY_BYTES, flavor, method)
            m = result.metrics
            meets = m.d_array <= CYCLE_BUDGET
            print("%-12s  %7.3f  %7.1f  %5.1f   %14.2f   %s"
                  % (result.label, m.d_array * 1e9, m.e_total * 1e15,
                     m.leakage_fraction * 100.0, m.edp * 1e24,
                     "yes" if meets else "NO"))
            if meets and (best is None or m.e_total < best[1].e_total):
                best = (result, m)
    print()
    if best is None:
        print("No configuration meets the cycle budget!")
        return
    result, metrics = best
    print("Recommended: %s  (%s)" % (result.label,
                                     result.design.describe()))
    print("  access delay %.3f ns, energy/access %.1f fJ, "
          "leakage fraction %.0f%%"
          % (metrics.d_array * 1e9, metrics.e_total * 1e15,
             metrics.leakage_fraction * 100.0))

    # --- Pareto view of the winning flavor's search space ------------------
    hvt_m2 = sweep.get(CAPACITY_BYTES, "hvt", "M2")
    front = pareto_front(hvt_m2.landscape)
    print()
    print("HVT-M2 energy-delay Pareto front (%d points):" % len(front))
    print("  D [ns]    E [fJ]    n_r   V_SSC [mV]  N_pre  N_wr")
    for p in front:
        print("  %7.3f  %8.1f  %4d   %9.0f  %5d  %4d"
              % (p.d_array * 1e9, p.e_total * 1e15, p.n_r,
                 p.v_ssc * 1e3, p.n_pre, p.n_wr))
    edp_pt = best_weighted(front, 1.0, 1.0)
    ed2_pt = best_weighted(front, 1.0, 2.0)
    print("EDP optimum:  D=%.3f ns E=%.1f fJ" % (edp_pt.d_array * 1e9,
                                                 edp_pt.e_total * 1e15))
    print("ED^2 optimum: D=%.3f ns E=%.1f fJ (performance-leaning)"
          % (ed2_pt.d_array * 1e9, ed2_pt.e_total * 1e15))


if __name__ == "__main__":
    main()
