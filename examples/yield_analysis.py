"""Scenario: justifying the yield constraint with Monte Carlo.

The paper's optimizer uses the simplified constraint
``min(HSNM, RSNM, WM) >= 0.35 * Vdd``, motivated by a Monte Carlo
analysis of margin distributions under process variation.  This script
reproduces that analysis: it samples per-transistor threshold shifts
(Pelgrom area law), re-extracts the hold and read margins, and reports
mu, sigma, mu - k*sigma, and the nominal-margin fraction of Vdd needed
for a k-sigma design.
"""

from repro.cell import (
    CellBias,
    SRAM6TCell,
    required_margin_fraction,
    run_cell_montecarlo,
)
from repro.devices import DeviceLibrary, VariationModel, sigma_vt_single_fin

N_SAMPLES = 300
K_SIGMA = 3.0


def main():
    library = DeviceLibrary.default_7nm()
    vdd = library.vdd
    variation = VariationModel()
    print("Variation model: sigma(Vt) = %.1f mV per fin "
          "(Pelgrom, A_vt/sqrt(WL))" % (sigma_vt_single_fin() * 1e3))
    print("Monte Carlo: %d samples, k = %.0f" % (N_SAMPLES, K_SIGMA))
    print()

    for flavor in ("lvt", "hvt"):
        cell = SRAM6TCell.from_library(library, flavor)
        # Evaluate RSNM at the flavor's boosted read rail, where the
        # optimizer actually operates the cell.
        v_ddc = 0.640 if flavor == "lvt" else 0.550
        read_bias = CellBias.read(vdd=vdd, v_ddc=v_ddc)
        result = run_cell_montecarlo(
            cell, n_samples=N_SAMPLES, variation=variation, seed=42,
            vdd=vdd, read_bias=read_bias, metrics=("hsnm", "rsnm"),
        )
        print("6T-%s (read at V_DDC = %.0f mV):" % (flavor.upper(),
                                                    v_ddc * 1e3))
        for name in ("hsnm", "rsnm"):
            samples = result.metric(name)
            print("  %-4s  mu=%6.1f mV  sigma=%5.1f mV  "
                  "mu-%gsigma=%6.1f mV  yield@0.35Vdd=%5.1f%%"
                  % (name.upper(), samples.mean * 1e3,
                     samples.sigma * 1e3, K_SIGMA,
                     samples.mu_minus_k_sigma(K_SIGMA) * 1e3,
                     samples.yield_at(0.35 * vdd) * 100.0))
        fractions = required_margin_fraction(result, k=K_SIGMA, vdd=vdd)
        worst = max(fractions.values())
        print("  nominal margin needed for mu-%gsigma >= 0: "
              "%.2f x Vdd (paper uses 0.35)" % (K_SIGMA, worst))
        print("  joint yield at 0.35*Vdd floor: %.1f%%"
              % (result.worst_case_yield(0.35 * vdd) * 100.0))
        print()


if __name__ == "__main__":
    main()
