"""Scenario: running real-ish workloads on the optimized arrays.

The paper evaluates its designs at a fixed read fraction (beta = 0.5)
and activity factor (alpha = 0.5).  This script goes one step further:
it builds *functional* memories from the optimized 4KB designs and
replays synthetic traces (streaming, random, Zipf-hot) with different
read/write mixes and activity levels, reporting measured energy per
access and how well the paper's analytical blend predicts it.

Takeaway: the HVT advantage grows as the workload gets idler (leakage
dominates), and the analytical Eq. (3)-(5) blend matches the
transaction-level measurement to within numerical noise.
"""

from repro.analysis import Session, optimize_all
from repro.functional import (
    FunctionalSRAM,
    replay,
    sequential_trace,
    uniform_trace,
    zipfian_trace,
)

CAPACITY = 4096
N_ACCESSES = 2000


def build_memories(session):
    sweep = optimize_all(session, capacities=(CAPACITY,))
    memories = {}
    for flavor in ("lvt", "hvt"):
        result = sweep.get(CAPACITY, flavor, "M2")
        memories[result.label] = FunctionalSRAM(
            result.metrics,
            session.chars[flavor].p_leak_sram,
            word_bits=session.config.word_bits,
        )
    return memories


def main():
    session = Session.create()
    memories = build_memories(session)
    n_words = CAPACITY * 8 // session.config.word_bits

    workloads = {
        "streaming 50/50 (alpha=0.9)": (
            sequential_trace(N_ACCESSES, n_words, read_fraction=0.5,
                             seed=1),
            0.9,
        ),
        "random read-heavy (alpha=0.5)": (
            uniform_trace(N_ACCESSES, n_words, read_fraction=0.9, seed=2),
            0.5,
        ),
        "zipf hot-set, idle (alpha=0.05)": (
            zipfian_trace(N_ACCESSES, n_words, skew=1.3,
                          read_fraction=0.7, seed=3),
            0.05,
        ),
    }

    for name, (trace, alpha) in workloads.items():
        print(name)
        results = {}
        for label, memory in memories.items():
            report = replay(memory, trace, alpha=alpha)
            results[label] = report
            print("  %-10s %s" % (label, report.summary()))
            print("             model agreement: %.4f" %
                  report.model_agreement)
        lvt = results["6T-LVT-M2"]
        hvt = results["6T-HVT-M2"]
        print("  -> HVT-M2 energy advantage: %.1fx" %
              (lvt.total_energy / hvt.total_energy))
        print()

    # Functional sanity: data really is stored.
    memory = memories["6T-HVT-M2"]
    memory.write(17, 0xDEADBEEF)
    assert memory.read(17) == 0xDEADBEEF
    print("functional check: word 17 reads back 0x%X" % memory.read(17))


if __name__ == "__main__":
    main()
