"""Scenario: selecting assist techniques for a 6T-HVT cell.

Walks the paper's Section-3 analysis: sweep each read assist (Vdd boost,
negative Gnd, WL underdrive) and each write assist (WL overdrive,
negative BL), then report the minimum levels that meet the 0.35*Vdd
yield floor — the inputs the array optimizer's voltage policies use.
"""

import numpy as np

from repro.assist import (
    READ_ASSISTS,
    WRITE_ASSISTS,
    matching_negative_gnd,
    maximum_wl_underdrive,
    minimum_negative_bl,
    minimum_vdd_boost,
    minimum_wl_overdrive,
    sweep_negative_gnd,
    sweep_vdd_boost,
    sweep_wl_underdrive,
)
from repro.cell import SRAM6TCell
from repro.devices import DeviceLibrary


def main():
    library = DeviceLibrary.default_7nm()
    vdd = library.vdd
    delta = 0.35 * vdd
    hvt = SRAM6TCell.from_library(library, "hvt")
    lvt = SRAM6TCell.from_library(library, "lvt")

    print("Assist-technique catalog:")
    for tech in READ_ASSISTS + WRITE_ASSISTS:
        print("  %-22s (%s) moves %-6s %s; improves %s"
              % (tech.name, tech.operation, tech.knob,
                 "up" if tech.direction > 0 else "down", tech.improves))
    print()

    print("Read-assist sweeps on 6T-HVT (delta = %.0f mV):" % (delta * 1e3))
    print("  Vdd boost:")
    for row in sweep_vdd_boost(library, hvt, np.arange(0.45, 0.66, 0.05)):
        print("    V_DDC=%3.0f mV  RSNM=%5.1f mV  BL delay=%6.1f ps %s"
              % (row.level * 1e3, row.rsnm * 1e3, row.bl_delay * 1e12,
                 "<-- meets delta" if row.rsnm >= delta else ""))
    print("  Negative Gnd:")
    for row in sweep_negative_gnd(library, hvt,
                                  np.arange(0.0, -0.25, -0.06)):
        print("    V_SSC=%4.0f mV  RSNM=%5.1f mV  BL delay=%6.1f ps"
              % (row.level * 1e3, row.rsnm * 1e3, row.bl_delay * 1e12))
    print("  WL underdrive:")
    for row in sweep_wl_underdrive(library, hvt,
                                   np.arange(0.45, 0.24, -0.06)):
        print("    V_WL =%4.0f mV  RSNM=%5.1f mV  BL delay=%6.1f ps %s"
              % (row.level * 1e3, row.rsnm * 1e3, row.bl_delay * 1e12,
                 "<-- meets delta" if row.rsnm >= delta else ""))
    print()

    print("Minimum assist levels (HVT):")
    print("  Vdd boost      : V_DDC >= %.0f mV (paper: 550 mV)"
          % (minimum_vdd_boost(library, hvt, delta) * 1e3))
    print("  WL overdrive   : V_WL  >= %.0f mV (paper: 540 mV)"
          % (minimum_wl_overdrive(library, hvt, delta) * 1e3))
    print("  WL underdrive  : V_WL  <= %.0f mV (paper: 300 mV)"
          % (maximum_wl_underdrive(library, hvt, delta) * 1e3))
    print("  negative BL    : V_BL  <= %.0f mV (paper: -100 mV)"
          % (minimum_negative_bl(library, hvt, delta) * 1e3))
    v_match = matching_negative_gnd(library, hvt, lvt)
    print("  negative Gnd matching LVT no-assist BL delay: "
          "V_SSC = %.0f mV (paper: -100 mV)" % (v_match * 1e3))
    print()
    print("Conclusion (as in the paper): adopt Vdd boost + negative Gnd "
          "for reads and WL overdrive for writes; WLUD sacrifices read "
          "current and negative BL needs a per-column negative rail.")


if __name__ == "__main__":
    main()
