"""repro — device-circuit-architecture co-optimization of FinFET SRAM
arrays for minimum energy-delay product.

A from-scratch reproduction of Shafaei, Afzali-Kusha, and Pedram,
"Minimizing the Energy-Delay Product of SRAM Arrays using a
Device-Circuit-Architecture Co-Optimization Framework", DAC 2016.

Subpackages
-----------

``repro.devices``
    Calibrated 7nm FinFET compact models (LVT/HVT), the paper's
    SPICE/PTM substitute.
``repro.spice``
    A small nonlinear circuit simulator (Newton-Raphson DC, transient).
``repro.cell``
    6T SRAM cell characterization: noise margins, write margin, read
    current, leakage, write delay, Monte Carlo yield.
``repro.assist``
    Read/write assist techniques and their trade-off studies.
``repro.periphery``
    Decoders, drivers, sense amplifier, precharge, write buffer —
    characterized into look-up tables.
``repro.array``
    The analytical array model (paper Tables 1-3, Eqs. (1)-(5)).
``repro.opt``
    The exhaustive minimum-EDP co-optimization with M1/M2 rail policies
    and yield constraints.
``repro.analysis``
    Experiment drivers regenerating every figure and table.
``repro.service``
    An HTTP optimization service with dynamic batching and caching.
``repro.jobs``
    Durable job queue + workers: checkpointed, crash-resumable study
    sweeps (SQLite-backed, lease-based claiming).
``repro.store``
    Content-addressed experiment store with provenance; deduplicates
    results across the study runner, job workers, service, and CLI.

Quick start
-----------

>>> from repro.analysis import Session, optimize_all
>>> session = Session.create()          # characterizes (cached)
>>> sweep = optimize_all(session)       # Table 4 / Figure 7
>>> print(sweep.report())
"""

__version__ = "1.1.0"

__all__ = ["__version__"]
