"""The asyncio optimization server.

Request lifecycle::

    connection -> parse (http.py) -> normalize (api.py)
        -> result cache (cache.py)            hit? answer immediately
        -> singleflight (cache.py)            identical in flight? join it
        -> dynamic batcher (batching.py)      coalesce compatible requests
        -> worker pool (engines.py)           one dispatch per batch
        -> cache fill + response

Endpoints:

* ``POST /v1/optimize``    — min-EDP design for one capacity/flavor/method
* ``POST /v1/pareto``      — energy-delay Pareto front (+ ``E^a D^b``
  pick) for one capacity/flavor/method
* ``POST /v1/yield``       — ECC-relaxed yield study cell (fixed-delta
  baseline vs margin-relaxed search under a code)
* ``POST /v1/evaluate``    — metrics/margins of one explicit design point
* ``POST /v1/montecarlo``  — cell margin distributions
* ``POST /v1/jobs``        — submit a durable study sweep (202 Accepted)
* ``GET  /v1/jobs``        — list jobs + per-state counts
* ``GET  /v1/jobs/{id}``   — job status/progress (+ results when done)
* ``DELETE /v1/jobs/{id}`` — cancel (409 once terminal)
* ``GET  /healthz``        — liveness + drain state
* ``GET  /metrics``        — counters, latency/batch histograms, cache
  stats, and engine perf merged from every worker

The jobs endpoints exist when the config names a ``jobs_path``; results
are checkpointed per cell to the shared experiment store
(:mod:`repro.store`), which also fronts ``/v1/optimize`` so the service,
job workers, the study runner, and the CLI never repeat a search any of
them has finished.  Every response carries an ``X-Request-Id`` header
(echoing the caller's, or freshly minted) that also tags the
``repro.service`` dispatch logs.

Backpressure: when queued-plus-executing items reach ``max_pending``
the server answers ``429`` with a ``Retry-After`` header instead of
letting latency grow without bound.  ``drain()`` (SIGTERM in the CLI)
stops accepting, finishes everything in flight, and shuts the pool
down — in-flight callers get their answers, new ones get ``503``.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import os
import re
import signal
import socket
import threading
import time
import uuid
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

from .api import PARSERS, BadRequest, parse_request
from .batching import BatchQueue, QueueFull
from .cache import ResultCache, Singleflight
from .engines import (
    best_weighted_fields,
    execute_job,
    run_job_in_worker,
    warm_margin_memos,
    worker_init,
)
from .http import ProtocolError, read_request, write_response
from .metrics import ServiceMetrics
from .. import perf
from ..analysis.experiments import DEFAULT_CACHE_PATH, Session
from ..errors import JobError, ServiceError
from ..jobs import JobQueue
from ..jobs.worker import SessionProvider, normalize_study_spec, run_worker
from ..opt import DesignSpace
from ..shm import SessionArena
from ..store import (
    ExperimentStore,
    make_provenance,
    pareto_cell_key,
    payload_json_safe,
    study_cell_key,
    yield_cell_key,
)

logger = logging.getLogger("repro.service")


@dataclass
class ServiceConfig:
    """Tunable knobs of one server instance."""

    host: str = "127.0.0.1"
    port: int = 8787              # 0 = ephemeral (tests)
    executor: str = "thread"      # "thread" shares one session; "process"
                                  # forks warm workers (CPU-bound scale)
    workers: int = 0              # 0 = os.cpu_count()
    max_batch: int = 8            # flush a group at this many items
    max_wait_ms: float = 5.0      # ... or this long after its first item
    max_pending: int = 64         # queued+executing bound (429 beyond)
    #: Per-endpoint batching overrides, {kind: {"max_batch": int,
    #: "max_wait_ms": float}} with either key optional — e.g. widen the
    #: optimize window so fused policy batches fill up while evaluate
    #: stays latency-biased.  None = queue-wide limits everywhere.
    endpoint_overrides: dict = None
    cache_entries: int = 256      # result-cache LRU capacity
    cache_ttl: float = 300.0      # result-cache TTL [s]; None = no expiry
    cache_path: str = DEFAULT_CACHE_PATH
    voltage_mode: str = "paper"
    jobs_path: str = None         # durable queue SQLite; None = no jobs API
    store_path: str = None        # experiment store; None = share jobs_path
    job_workers: int = 1          # background job worker threads
    job_lease_seconds: float = 30.0
    job_poll_ms: float = 200.0    # idle poll of the job workers
    #: Fleet membership: base URLs of the other serve replicas
    #: (``repro serve --peer URL`` repeatable).  Non-empty peers turn on
    #: consistent-hash sharding of /v1/optimize//v1/pareto cache keys,
    #: store replication, health probing and /v1/fleet.
    peers: tuple = ()
    self_url: str = None          # advertised URL; None = http://host:port
    probe_interval_s: float = 3.0    # peer health probe cadence
    ring_vnodes: int = 128        # consistent-hash points per member
    peer_timeout_s: float = 60.0  # read budget for proxied peer calls
    #: Extra shard-proxy attempts against later healthy ring
    #: preferences after the first proxied hop fails (0 = the old
    #: single-attempt try-then-local-fallback behavior).  Each retry
    #: bumps ``fleet.proxy_retries`` in /metrics.
    proxy_retries: int = 1

    def resolved_workers(self):
        return self.workers or os.cpu_count() or 1

    def resolved_store_path(self):
        """The store location, when any store is configured at all."""
        return self.store_path or self.jobs_path

    def resolved_self_url(self, port):
        """This replica's ring identity once the listen port is known."""
        if self.self_url:
            return self.self_url
        host = self.host
        if host in ("0.0.0.0", "::", ""):
            host = "127.0.0.1"
        return "http://%s:%d" % (host, port)

    def batch_overrides(self):
        """The per-kind overrides in :class:`BatchQueue` units
        (``max_wait_ms`` becomes ``max_wait`` seconds)."""
        overrides = {}
        for kind, limits in (self.endpoint_overrides or {}).items():
            converted = {}
            if "max_batch" in limits:
                converted["max_batch"] = limits["max_batch"]
            if "max_wait_ms" in limits:
                converted["max_wait"] = limits["max_wait_ms"] / 1e3
            if converted:
                overrides[kind] = converted
        return overrides


def _job_from_group(group_key, items):
    """Rebuild the plain-data job a worker executes from a batch."""
    kind = group_key[0]
    if kind in ("optimize", "pareto", "yield"):
        # The method rides per-item (it is not part of the group key),
        # so one fused dispatch can policy-batch a cell's methods.
        _, flavor, engine = group_key
        return {"kind": kind, "flavor": flavor, "engine": engine,
                "items": items}
    if kind == "evaluate":
        return {"kind": kind, "flavor": group_key[1], "items": items}
    if kind == "montecarlo":
        _, flavor, metrics, engine = group_key
        return {"kind": kind, "flavor": flavor, "metrics": list(metrics),
                "engine": engine, "items": items}
    raise ValueError("unknown batch group kind %r" % (kind,))


class OptimizationServer:
    """One service instance: sockets, batcher, pool, cache, metrics."""

    def __init__(self, config=None, session=None):
        self.config = config or ServiceConfig()
        self.session = session      # may be pre-built (tests/bench)
        self.metrics = ServiceMetrics()
        self._cache = ResultCache(
            max_entries=self.config.cache_entries,
            ttl=self.config.cache_ttl,
        )
        self._flight = Singleflight()
        self._batcher = None
        self._pool = None
        self._arena = None          # SessionArena for process workers
        self._server = None
        self._writers = set()
        self._conn_tasks = set()
        self._draining = False
        self._started_at = None
        self.port = None
        self.jobs = None            # JobQueue when jobs_path is set
        self.store = None           # ExperimentStore when configured
        self._job_threads = []
        self._job_stop = None
        self.fleet = None           # FleetTopology when peers configured
        self._probe_task = None
        #: Shard-routing outcome counts (rendered under /metrics).
        self._shard_stats = {"local": 0, "remote_owned": 0, "proxied": 0,
                             "failovers": 0, "proxy_retries": 0}

    # -- lifecycle ---------------------------------------------------------

    async def start(self):
        """Build the pool + batcher and start listening.

        Blocking setup (session build, margin warm-up) runs before the
        socket opens, so a request can never observe a half-built
        server.
        """
        config = self.config
        if config.executor not in ("thread", "process"):
            raise ValueError(
                "executor must be 'thread' or 'process', got %r"
                % (config.executor,)
            )
        if self.session is None:
            self.session = Session.create(
                cache_path=config.cache_path or None,
                voltage_mode=config.voltage_mode,
            )
        workers = config.resolved_workers()
        if config.executor == "process":
            memos = warm_margin_memos(self.session)
            # Publish the warm session once; each forked worker maps it
            # zero-copy instead of re-reading the characterization
            # cache.  Best-effort: on failure workers cold-build.
            try:
                self._arena = SessionArena.publish(self.session, memos)
            except Exception:
                self._arena = None
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                initializer=worker_init,
                initargs=(config.cache_path or None, config.voltage_mode,
                          DesignSpace(), memos,
                          self._arena.name if self._arena is not None
                          else None),
            )
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-service"
            )
        self._batcher = BatchQueue(
            self._dispatch,
            max_batch=config.max_batch,
            max_wait=config.max_wait_ms / 1e3,
            max_pending=config.max_pending,
            on_batch=self.metrics.observe_batch,
            overrides=config.batch_overrides(),
        )
        # Bind before serving: the listen port is this replica's ring
        # identity, and the fleet/store/jobs plumbing must exist before
        # the first request can arrive.
        sock = socket.socket(
            socket.AF_INET6 if ":" in config.host else socket.AF_INET,
            socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((config.host, config.port))
        self.port = sock.getsockname()[1]
        self._start_fleet()
        self._start_jobs()
        self._server = await asyncio.start_server(
            self._handle_connection, sock=sock
        )
        self._started_at = time.monotonic()
        if self.fleet is not None:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self.fleet.probe_all)
            self._probe_task = asyncio.ensure_future(self._probe_loop())
        return self

    def _start_fleet(self):
        """Build the topology/ring when peers are configured."""
        if not self.config.peers:
            return
        from ..fleet.topology import FleetTopology

        self.fleet = FleetTopology(
            self.config.resolved_self_url(self.port),
            peer_urls=self.config.peers,
            vnodes=self.config.ring_vnodes,
            peer_timeout=self.config.peer_timeout_s,
        )

    async def _probe_loop(self):
        """Background peer health probing (marks peers up/down)."""
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.config.probe_interval_s)
            with contextlib.suppress(Exception):
                await loop.run_in_executor(None, self.fleet.probe_all)

    def _start_jobs(self):
        """Open the queue/store and start the background worker pool.

        The workers share the server's warm session through a seeded
        :class:`SessionProvider`, so a submitted sweep starts computing
        immediately — no per-job characterization.
        """
        config = self.config
        store_path = config.resolved_store_path()
        if store_path:
            self.store = ExperimentStore(store_path)
            if self.fleet is not None:
                # Replicate results across the fleet: reads fall through
                # to peers, writes fan out (write-back with a backlog
                # for peers that are down).
                from ..store.replicated import ReplicatedStore

                self.store = ReplicatedStore(
                    self.store, replicas=list(self.fleet.peers),
                    timeout=config.peer_timeout_s,
                )
        if not config.jobs_path:
            return
        self.jobs = JobQueue(config.jobs_path)
        provider = SessionProvider(
            default_cache_path=config.cache_path or None)
        provider.seed(self.session, cache_path=config.cache_path or None)
        self._job_stop = threading.Event()
        for index in range(max(0, config.job_workers)):
            worker_id = "svc-%d-w%d" % (os.getpid(), index)
            thread = threading.Thread(
                target=run_worker,
                kwargs=dict(
                    queue_path=config.jobs_path, store_path=store_path,
                    # The background workers share the server's store
                    # object, so their checkpoints replicate too.
                    store=self.store,
                    worker_id=worker_id,
                    lease_seconds=config.job_lease_seconds,
                    poll_interval=config.job_poll_ms / 1e3,
                    stop=self._job_stop, sessions=provider,
                    default_cache_path=config.cache_path or None,
                ),
                name="repro-job-%s" % worker_id, daemon=True,
            )
            thread.start()
            self._job_threads.append(thread)

    async def drain(self):
        """Graceful shutdown: stop accepting, finish in-flight work."""
        self._draining = True
        if self._probe_task is not None:
            self._probe_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._probe_task
            self._probe_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._batcher is not None:
            await self._batcher.drain()
        # In-flight responses are resolved by now; close lingering
        # keep-alive connections so their handler tasks finish.
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                writer.close()
        # Let handler tasks observe the close and finish, so loop
        # teardown never cancels one mid-await (noisy otherwise).
        if self._conn_tasks:
            await asyncio.wait(set(self._conn_tasks), timeout=5)
        if self._job_stop is not None:
            # Job workers notice the stop flag at the next cell/poll
            # boundary; an unfinished sweep keeps its checkpoints and is
            # re-queued when its lease expires.
            self._job_stop.set()
            loop = asyncio.get_running_loop()
            for thread in self._job_threads:
                await loop.run_in_executor(None, thread.join, 60)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        if self._arena is not None:
            self._arena.dispose()
            self._arena = None
        if self.fleet is not None:
            self.fleet.close()
        if self.store is not None and hasattr(self.store, "close"):
            self.store.close()

    # -- dispatch ----------------------------------------------------------

    async def _dispatch(self, group_key, items):
        # Correlation ids ride along with the batch items; strip them
        # before the job crosses the executor boundary.
        request_ids = [item.pop("_request_id", None) for item in items]
        logger.debug("dispatch %s batch of %d rid=%s", group_key[0],
                     len(items),
                     ",".join(rid or "-" for rid in request_ids))
        job = _job_from_group(group_key, items)
        loop = asyncio.get_running_loop()
        if self.config.executor == "process":
            payloads, snapshot = await loop.run_in_executor(
                self._pool, run_job_in_worker, job
            )
            self.metrics.merge_worker_snapshot(snapshot)
        else:
            payloads = await loop.run_in_executor(
                self._pool, execute_job, self.session, job
            )
        return payloads

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader, writer):
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    await write_response(writer, exc.status,
                                         {"error": str(exc)},
                                         keep_alive=False)
                    break
                if request is None:
                    break
                start = time.perf_counter()
                # Callers may supply their own correlation id; otherwise
                # one is minted here.  Either way it is echoed back and
                # threaded through the dispatch logs.
                request_id = (request.headers.get("x-request-id")
                              or "req-%s" % uuid.uuid4().hex[:12])
                status, payload, headers = await self._route(request,
                                                             request_id)
                elapsed = time.perf_counter() - start
                headers = dict(headers or {})
                headers["X-Request-Id"] = request_id
                self.metrics.observe_request(request.path, status,
                                             elapsed)
                logger.debug("%s %s -> %d (%.1f ms) rid=%s",
                             request.method, request.path, status,
                             elapsed * 1e3, request_id)
                keep = request.keep_alive and not self._draining
                await write_response(writer, status, payload, headers,
                                     keep_alive=keep)
                if not keep:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            self._conn_tasks.discard(task)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _route(self, request, request_id=None):
        """``(status, payload, extra_headers)`` for one request."""
        path = request.path
        if path == "/healthz":
            if request.method != "GET":
                return 405, {"error": "use GET"}, {"Allow": "GET"}
            return 200, self._health_payload(), {}
        if path == "/metrics":
            if request.method != "GET":
                return 405, {"error": "use GET"}, {"Allow": "GET"}
            return 200, self._metrics_payload(), {}
        if path == "/v1/jobs" or path.startswith("/v1/jobs/"):
            try:
                return await self._handle_jobs(path, request, request_id)
            except ProtocolError as exc:
                return exc.status, {"error": str(exc)}, {}
            except Exception as exc:
                return 500, {"error": "%s: %s"
                             % (type(exc).__name__, exc)}, {}
        if path.startswith("/v1/store/"):
            try:
                return await self._handle_store(path, request,
                                                request_id)
            except ProtocolError as exc:
                return exc.status, {"error": str(exc)}, {}
            except Exception as exc:
                return 500, {"error": "%s: %s"
                             % (type(exc).__name__, exc)}, {}
        if path == "/v1/fleet" or path == "/v1/fleet/metrics":
            if request.method != "GET":
                return 405, {"error": "use GET"}, {"Allow": "GET"}
            try:
                if path == "/v1/fleet":
                    return 200, self._fleet_payload(), {}
                return 200, await self._fleet_metrics_payload(), {}
            except Exception as exc:
                return 500, {"error": "%s: %s"
                             % (type(exc).__name__, exc)}, {}
        if path in PARSERS:
            if request.method != "POST":
                return 405, {"error": "use POST"}, {"Allow": "POST"}
            if self._draining:
                return 503, {"error": "server is draining"}, {}
            try:
                return await self._handle_api(path, request, request_id)
            except BadRequest as exc:
                return 400, {"error": str(exc)}, {}
            except ProtocolError as exc:
                return exc.status, {"error": str(exc)}, {}
            except QueueFull as exc:
                return 429, {"error": str(exc)}, {
                    "Retry-After": "%d" % max(int(exc.retry_after), 1)
                }
            except Exception as exc:
                return 500, {"error": "%s: %s"
                             % (type(exc).__name__, exc)}, {}
        return 404, {"error": "unknown path %r" % path}, {}

    async def _handle_api(self, route, request, request_id=None):
        req = parse_request(route, request.json())
        key = req.key()
        hit, item = self._cache.get(key)
        if hit:
            return self._item_response(item, cached=True)
        if (self.fleet is not None
                and route in ("/v1/optimize", "/v1/pareto", "/v1/yield")
                and "x-fleet-forwarded" not in request.headers):
            proxied = await self._shard_route(route, request, key,
                                              request_id)
            if proxied is not None:
                return proxied
        store_key = self._store_key(route, req)
        if store_key is not None:
            stored = await asyncio.get_running_loop().run_in_executor(
                None, self.store.get, store_key)
            if stored is not None:
                # Someone — a job worker, a past service run, the study
                # runner — already computed this exact search; serve it
                # from the experiment store and warm the in-memory
                # cache on the way out.
                response = payload_json_safe(stored)
                response.pop("landscape", None)
                response["engine"] = req.engine
                if route == "/v1/pareto":
                    # The stored front is exponent-free; the E^a D^b
                    # pick is re-derived per request from plain data.
                    response["best_weighted"] = best_weighted_fields(
                        response["front"], req.energy_exponent,
                        req.delay_exponent,
                    )
                item = {"ok": True, "result": response}
                self._cache.put(key, item)
                return self._item_response(item, cached=True,
                                           stored=True)
        future, leader = self._flight.join(key)
        if not leader:
            # An identical request is already computing; share its
            # outcome (including a QueueFull, which _route maps to 429).
            item = await future
            return self._item_response(item, cached=False, coalesced=True)
        try:
            item_fields = req.item()
            item_fields["_request_id"] = request_id
            batch_future = self._batcher.enqueue(req.group_key(),
                                                 item_fields)
            item = await batch_future
        except BaseException as exc:
            self._flight.reject(key, exc)
            # Mark retrieved so a flight with no followers does not log
            # an "exception was never retrieved" warning at GC.
            future.exception()
            raise
        store_payload = item.pop("store_payload", None)
        if item["ok"]:
            if store_key is not None and store_payload is not None:
                await asyncio.get_running_loop().run_in_executor(
                    None, self.store.put, store_key, store_payload,
                    make_provenance(
                        inputs={"route": route, "request_id": request_id,
                                "capacity_bytes": req.capacity_bytes,
                                "flavor": req.flavor,
                                "method": req.method,
                                "engine": req.engine},
                        worker="service",
                    ))
            self._cache.put(key, item)
        self._flight.resolve(key, item)
        return self._item_response(item, cached=False)

    async def _shard_route(self, route, request, key, request_id):
        """Route one optimize/pareto/yield request by its cache-key
        shard.

        Returns a ``(status, payload, headers)`` response when a peer
        owns the key and answered, or ``None`` when the key is local
        (or the proxy budget is exhausted — failover to local compute,
        which the store fast-path still deduplicates globally).  A
        failed hop no longer falls straight back to local compute: up
        to ``config.proxy_retries`` further attempts walk the *healthy*
        ring preference order (each counted as ``fleet.proxy_retries``
        in /metrics), so one flaky owner does not forfeit the shard's
        warm cache on its successor.  The ``X-Fleet-Forwarded`` marker
        caps the hop count at one, so two replicas with momentarily
        different health views can never proxy a request in a loop.
        """
        owner, peer = self.fleet.route(key)
        if peer is None:
            if owner == self.fleet.self_url:
                self._shard_stats["local"] += 1
            else:
                # Owner (and every later preference) is down; compute
                # locally rather than fail the request.
                self._shard_stats["failovers"] += 1
                perf.count("fleet.shard_failovers")
            return None
        self._shard_stats["remote_owned"] += 1
        loop = asyncio.get_running_loop()
        budget = 1 + max(0, int(self.config.proxy_retries))
        attempts = 0
        for url in self.fleet.ring.preference(key):
            if url == self.fleet.self_url:
                # Every later preference routes back through here.
                break
            candidate = self.fleet.peers.get(url)
            if candidate is None or not candidate.healthy:
                continue
            if attempts >= budget:
                break
            if attempts:
                self._shard_stats["proxy_retries"] += 1
                perf.count("fleet.proxy_retries")
            attempts += 1
            try:
                status, payload, _ = await loop.run_in_executor(
                    None, lambda peer=candidate: peer.pool.request(
                        request.method, route, request.json(),
                        request_id=request_id,
                        extra_headers={"X-Fleet-Forwarded": "1"}))
            except (ServiceError, OSError) as exc:
                self.fleet.mark_down(candidate.url, exc)
                logger.debug("shard proxy to %s failed (%s); trying "
                             "next preference rid=%s",
                             candidate.url, exc, request_id)
                continue
            if status >= 500:
                # The peer is up but broken for this request; the next
                # preference (or local compute) is a better answer than
                # relaying its 5xx.
                continue
            self._shard_stats["proxied"] += 1
            perf.count("fleet.proxied_requests")
            if status == 200 and isinstance(payload, dict):
                meta = dict(payload.get("meta") or {})
                meta.update({"proxied": True, "shard": candidate.url})
                payload["meta"] = meta
                # Warm the local cache so repeats of a hot remote-owned
                # key answer here without another hop.
                cached = {k: v for k, v in payload.items()
                          if k != "meta"}
                self._cache.put(key, {"ok": True, "result": cached})
            return status, payload, {}
        self._shard_stats["failovers"] += 1
        perf.count("fleet.shard_failovers")
        return None

    def _store_key(self, route, req):
        """The experiment-store key of a request, when it has one.

        ``/v1/optimize`` answers address exactly one study-matrix cell,
        so the service deduplicates against job workers, the study
        runner, and the CLI; ``/v1/pareto`` fronts key the same cell
        identity under their own kind (exponent-free, so requests that
        differ only in the ``best_weighted`` query share one sweep).
        """
        if self.store is None:
            return None
        if route == "/v1/optimize":
            return study_cell_key(self.session, DesignSpace(),
                                  req.capacity_bytes, req.flavor,
                                  req.method, req.engine)
        if route == "/v1/pareto":
            return pareto_cell_key(self.session, DesignSpace(),
                                   req.capacity_bytes, req.flavor,
                                   req.method, req.engine)
        if route == "/v1/yield":
            return yield_cell_key(self.session, DesignSpace(),
                                  req.capacity_bytes, req.flavor,
                                  req.method, req.code, req.y_target,
                                  req.engine, sampler=req.sampler,
                                  ci_target=req.ci_target,
                                  max_samples=req.max_samples)
        return None

    def _item_response(self, item, cached, coalesced=False, stored=False):
        if item["ok"]:
            payload = dict(item["result"])
            payload["meta"] = {"cached": cached, "coalesced": coalesced,
                               "stored": stored}
            return 200, payload, {}
        return item["status"], {"error": item["error"]}, {}

    # -- jobs API ----------------------------------------------------------

    async def _handle_jobs(self, path, request, request_id=None):
        if self.jobs is None:
            return 404, {"error": "jobs are not enabled on this server "
                                  "(start it with a jobs path, e.g. "
                                  "repro serve --jobs jobs.db)"}, {}
        loop = asyncio.get_running_loop()
        if path == "/v1/jobs":
            if request.method == "POST":
                if self._draining:
                    return 503, {"error": "server is draining"}, {}
                return await self._submit_job(request, request_id)
            if request.method == "GET":
                jobs = await loop.run_in_executor(
                    None, self.jobs.list_jobs, None, 100)
                counts = await loop.run_in_executor(None,
                                                    self.jobs.counts)
                return 200, {"jobs": [job.to_payload() for job in jobs],
                             "counts": counts}, {}
            return 405, {"error": "use GET or POST"}, \
                {"Allow": "GET, POST"}
        rest = path[len("/v1/jobs/"):]
        if rest == "claim" or "/" in rest:
            return await self._handle_jobs_protocol(rest, request,
                                                    request_id)
        job_id = rest
        if request.method == "GET":
            try:
                job = await loop.run_in_executor(None, self.jobs.get,
                                                 job_id)
            except JobError as exc:
                return 404, {"error": str(exc)}, {}
            payload = job.to_payload()
            if (job.state == "done" and job.result_key
                    and self.store is not None):
                result = await loop.run_in_executor(
                    None, self._sweep_payload, job.result_key)
                if result is not None:
                    payload["result"] = result
            return 200, payload, {}
        if request.method == "DELETE":
            try:
                cancelled = await loop.run_in_executor(
                    None, self.jobs.cancel, job_id)
                job = await loop.run_in_executor(None, self.jobs.get,
                                                 job_id)
            except JobError as exc:
                return 404, {"error": str(exc)}, {}
            if cancelled:
                logger.debug("job %s cancelled rid=%s", job_id,
                             request_id)
                return 200, job.to_payload(), {}
            return 409, {"error": "job %s is already %s"
                                  % (job_id, job.state),
                         "job": job.to_payload()}, {}
        return 405, {"error": "use GET or DELETE"}, \
            {"Allow": "GET, DELETE"}

    async def _handle_jobs_protocol(self, rest, request,
                                    request_id=None):
        """The remote-claim surface: ``POST /v1/jobs/claim`` plus
        ``POST /v1/jobs/{id}/heartbeat|complete|fail``.

        Exposes the queue's lease protocol verbatim: a claim answers
        with the job payload plus a **lease token** fencing that
        attempt, and every subsequent verb must present the token —
        a stale claimant (lease expired, job re-claimed) is refused
        with a 409 no matter which worker it is.
        """
        from ..jobs.remote import make_lease_token, parse_lease_token

        loop = asyncio.get_running_loop()
        if request.method != "POST":
            return 405, {"error": "use POST"}, {"Allow": "POST"}
        body = request.json()
        if not isinstance(body, dict):
            return 400, {"error": "request body must be a JSON "
                                  "object"}, {}
        worker = body.get("worker")
        if not worker or not isinstance(worker, str):
            return 400, {"error": "missing worker identity"}, {}
        lease_seconds = body.get("lease_seconds",
                                 self.config.job_lease_seconds)
        if not isinstance(lease_seconds, (int, float)) \
                or isinstance(lease_seconds, bool) or lease_seconds <= 0:
            return 400, {"error": "lease_seconds must be a positive "
                                  "number"}, {}
        if rest == "claim":
            if self._draining:
                return 503, {"error": "server is draining"}, {}
            job = await loop.run_in_executor(
                None, self.jobs.claim, worker, float(lease_seconds))
            if job is None:
                return 200, {"job": None}, {}
            payload = job.to_payload()
            payload["lease_token"] = make_lease_token(job.id,
                                                      job.attempts)
            logger.debug("job %s claimed by remote worker %s "
                         "(attempt %d) rid=%s", job.id, worker,
                         job.attempts, request_id)
            perf.count("fleet.remote_claims_served")
            return 200, {"job": payload}, {}
        job_id, _, action = rest.partition("/")
        if action not in ("heartbeat", "complete", "fail"):
            return 404, {"error": "unknown jobs action %r" % action}, {}
        try:
            token_job, attempt = parse_lease_token(
                body.get("lease_token"))
        except JobError as exc:
            return 400, {"error": str(exc)}, {}
        if token_job != job_id:
            return 400, {"error": "lease token %r does not match job "
                                  "%r" % (body.get("lease_token"),
                                          job_id)}, {}
        if action == "heartbeat":
            ok = await loop.run_in_executor(
                None, lambda: self.jobs.heartbeat(
                    job_id, worker, float(lease_seconds),
                    progress=body.get("progress"), attempt=attempt))
            if ok:
                return 200, {"ok": True}, {}
            return 409, {"ok": False,
                         "error": "stale lease: job %s is not running "
                                  "under this worker/attempt"
                                  % job_id}, {}
        if action == "complete":
            ok = await loop.run_in_executor(
                None, lambda: self.jobs.complete(
                    job_id, worker, result_key=body.get("result_key"),
                    attempt=attempt))
            if ok:
                logger.debug("job %s completed by remote worker %s "
                             "rid=%s", job_id, worker, request_id)
                return 200, {"ok": True}, {}
            perf.count("jobs.stale_complete_rejected")
            return 409, {"ok": False,
                         "error": "stale lease: complete of %s "
                                  "rejected" % job_id}, {}
        state = await loop.run_in_executor(
            None, lambda: self.jobs.fail(
                job_id, worker, body.get("error", "remote failure"),
                attempt=attempt))
        if state is None:
            return 409, {"state": None,
                         "error": "stale lease: fail of %s rejected"
                                  % job_id}, {}
        return 200, {"state": state}, {}

    async def _submit_job(self, request, request_id=None):
        body = request.json()
        if not isinstance(body, dict):
            return 400, {"error": "request body must be a JSON "
                                  "object"}, {}
        kind = body.get("kind", "study")
        if kind != "study":
            return 400, {"error": "unknown job kind %r" % (kind,)}, {}
        try:
            spec = normalize_study_spec(body.get("spec") or {})
        except JobError as exc:
            return 400, {"error": str(exc)}, {}
        priority = body.get("priority", 0)
        max_attempts = body.get("max_attempts", 3)
        for name, value in (("priority", priority),
                            ("max_attempts", max_attempts)):
            if not isinstance(value, int) or isinstance(value, bool):
                return 400, {"error": "%s must be an integer" % name}, {}
        if max_attempts < 1:
            return 400, {"error": "max_attempts must be >= 1"}, {}
        loop = asyncio.get_running_loop()
        job_id = await loop.run_in_executor(
            None, lambda: self.jobs.submit(kind, spec, priority,
                                           max_attempts))
        job = await loop.run_in_executor(None, self.jobs.get, job_id)
        logger.debug("job %s submitted (%d cells) rid=%s", job_id,
                     len(spec["capacities"]) * len(spec["flavors"])
                     * len(spec["methods"]), request_id)
        return 202, job.to_payload(), \
            {"Location": "/v1/jobs/%s" % job_id}

    def _sweep_payload(self, result_key):
        """The JSON view of a finished sweep (spec + per-cell results)."""
        record = self.store.get(result_key)
        if record is None:
            return None
        cells = []
        for key in record.get("cells", []):
            cell = self.store.get(key)
            if cell is not None:
                cell = payload_json_safe(cell)
                cell.pop("landscape", None)
                cells.append(cell)
        return {"key": result_key, "spec": record.get("spec"),
                "cells": cells}

    # -- store sync API ----------------------------------------------------

    #: Store keys are ``kind-<hex digest>``; anything else is rejected
    #: before touching SQLite.
    _STORE_KEY_RE = re.compile(r"[A-Za-z0-9_]{1,32}-[0-9a-f]{6,64}")

    async def _handle_store(self, path, request, request_id=None):
        """``GET/PUT /v1/store/<key>`` — the replication wire surface.

        Reads and writes go to the replica's **local** store (never
        read-through here), so two replicas syncing from each other can
        never amplify a miss into a request loop.  Payload JSON rides
        unmodified in both directions: Python serializes floats via
        shortest ``repr``, so a blob pulled over the wire compares
        bitwise equal to the original — the bit-identical-resume
        contract extends across hosts.
        """
        if self.store is None:
            return 404, {"error": "no experiment store on this server "
                                  "(start it with --store or --jobs)"}, {}
        key = path[len("/v1/store/"):]
        if not self._STORE_KEY_RE.fullmatch(key):
            return 400, {"error": "malformed store key %r" % key}, {}
        store = getattr(self.store, "local", self.store)
        loop = asyncio.get_running_loop()
        if request.method == "GET":
            payload = await loop.run_in_executor(
                None, lambda: store.get(key, touch=False))
            if payload is None:
                return 404, {"error": "no entry %r" % key}, {}
            provenance = await loop.run_in_executor(
                None, store.provenance, key)
            perf.count("fleet.store_serves")
            return 200, {"key": key, "payload": payload,
                         "provenance": provenance}, {}
        if request.method == "PUT":
            body = request.json()
            if not isinstance(body, dict) or "payload" not in body:
                return 400, {"error": "body must be an object with a "
                                      "'payload' field"}, {}
            await loop.run_in_executor(
                None, lambda: store.put(key, body["payload"],
                                        body.get("provenance") or {}))
            perf.count("fleet.store_accepts")
            logger.debug("store accepted %s rid=%s", key, request_id)
            return 200, {"key": key, "stored": True}, {}
        return 405, {"error": "use GET or PUT"}, {"Allow": "GET, PUT"}

    # -- fleet introspection -----------------------------------------------

    def _fleet_payload(self):
        """``GET /v1/fleet`` — membership, health, ring, replication."""
        if self.fleet is None:
            return {"self": self.config.resolved_self_url(self.port),
                    "peers": [], "ring": None, "enabled": False}
        payload = self.fleet.to_payload()
        payload["enabled"] = True
        payload["shards"] = dict(self._shard_stats)
        if self.store is not None and hasattr(self.store, "pending"):
            payload["store_pending"] = self.store.pending()
        return payload

    async def _fleet_metrics_payload(self):
        """``GET /v1/fleet/metrics`` — this replica's metrics plus every
        reachable peer's, with fleet-wide request/backlog totals."""
        replicas = {
            (self.fleet.self_url if self.fleet is not None
             else self.config.resolved_self_url(self.port)):
            self._metrics_payload(),
        }
        if self.fleet is not None:
            loop = asyncio.get_running_loop()

            def scrape(peer):
                try:
                    status, payload, _ = peer.pool.request(
                        "GET", "/metrics")
                except (ServiceError, OSError) as exc:
                    self.fleet.mark_down(peer.url, exc)
                    return {"error": str(exc)}
                return (payload if status == 200
                        else {"error": "HTTP %d" % status})

            for peer in list(self.fleet.peers.values()):
                if peer.healthy:
                    replicas[peer.url] = await loop.run_in_executor(
                        None, scrape, peer)
                else:
                    replicas[peer.url] = {"error": "peer is down: %s"
                                          % (peer.last_error or
                                             "unprobed")}
        totals = {"requests": 0, "replicas_up": 0, "replicas_down": 0}
        gauge_totals = {}
        for payload in replicas.values():
            if "error" in payload and "requests" not in payload:
                totals["replicas_down"] += 1
                continue
            totals["replicas_up"] += 1
            totals["requests"] += (payload.get("requests") or {}) \
                .get("total", 0)
            for name, value in (payload.get("gauges") or {}).items():
                gauge_totals[name] = gauge_totals.get(name, 0) + value
        totals["gauges"] = gauge_totals
        return {"replicas": replicas, "totals": totals}

    # -- introspection payloads --------------------------------------------

    def _health_payload(self):
        payload = {
            "status": "draining" if self._draining else "ok",
            "uptime_seconds": round(
                time.monotonic() - (self._started_at or time.monotonic()),
                3,
            ),
            "pending": self._batcher.pending if self._batcher else 0,
            "executor": self.config.executor,
            "workers": self.config.resolved_workers(),
        }
        if self.jobs is not None:
            payload["jobs"] = self.jobs.counts()
        return payload

    def _metrics_payload(self):
        extra = {
            "cache": self._cache.stats(),
            "singleflight": self._flight.stats(),
            "batching": {
                "pending": self._batcher.pending if self._batcher else 0,
                "max_batch": self.config.max_batch,
                "max_wait_ms": self.config.max_wait_ms,
                "max_pending": self.config.max_pending,
                "endpoint_overrides": {
                    kind: dict(limits)
                    for kind, limits in
                    (self.config.endpoint_overrides or {}).items()
                },
            },
        }
        gauges = {}
        if self.jobs is not None:
            counts = self.jobs.counts()
            extra["jobs"] = {
                "counts": counts,
                "workers": len(self._job_threads),
                "lease_seconds": self.config.job_lease_seconds,
            }
            # Flat queue-depth gauges, stable names for scrapers (and
            # for /v1/fleet/metrics which sums them across replicas).
            for state in ("queued", "running", "done", "failed",
                          "cancelled"):
                gauges["jobs.%s" % state] = counts.get(state, 0)
        if self.store is not None:
            extra["store"] = self.store.stats()
        if self.fleet is not None:
            extra["fleet"] = {
                "self": self.fleet.self_url,
                "peers_healthy": len(self.fleet.healthy_peers()),
                "peers_total": len(self.fleet.peers),
                "shards": dict(self._shard_stats),
            }
            gauges["fleet.peers_healthy"] = len(
                self.fleet.healthy_peers())
        extra["gauges"] = gauges
        return self.metrics.render(extra=extra)


async def serve_forever(config, session=None):
    """CLI entry: start, serve until SIGTERM/SIGINT, drain, return."""
    server = OptimizationServer(config, session=session)
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, stop.set)
    print("repro service listening on http://%s:%d  "
          "(executor=%s workers=%d batch<=%d wait<=%.1fms)"
          % (config.host, server.port, config.executor,
             config.resolved_workers(), config.max_batch,
             config.max_wait_ms))
    await stop.wait()
    print("draining...")
    await server.drain()
    print("drained; %d requests served." % server.metrics.total_requests)
    return server


class ServerThread:
    """Run a server on a background thread (tests, benchmarks, smoke).

    ::

        with ServerThread(ServiceConfig(port=0), session=session) as srv:
            client = ServiceClient(port=srv.port)
            ...

    Entering starts the loop thread and blocks until the socket is
    listening (re-raising any startup failure); exiting requests a
    drain and joins the thread.
    """

    def __init__(self, config=None, session=None):
        self.config = config or ServiceConfig(port=0)
        self._session = session
        self.server = None
        self.port = None
        self._thread = None
        self._loop = None
        self._stop = None
        self._ready = threading.Event()
        self._error = None

    def __enter__(self):
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-service-loop")
        self._thread.start()
        self._ready.wait()
        if self._error is not None:
            self._thread.join()
            raise self._error
        self.port = self.server.port
        return self

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False

    def _run(self):
        async def body():
            self.server = OptimizationServer(self.config,
                                             session=self._session)
            try:
                await self.server.start()
            except Exception as exc:
                self._error = exc
                self._ready.set()
                return
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self._ready.set()
            await self._stop.wait()
            await self.server.drain()

        asyncio.run(body())

    def stop(self):
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=120)
        self._loop = None
