"""The asyncio optimization server.

Request lifecycle::

    connection -> parse (http.py) -> normalize (api.py)
        -> result cache (cache.py)            hit? answer immediately
        -> singleflight (cache.py)            identical in flight? join it
        -> dynamic batcher (batching.py)      coalesce compatible requests
        -> worker pool (engines.py)           one dispatch per batch
        -> cache fill + response

Endpoints:

* ``POST /v1/optimize``    — min-EDP design for one capacity/flavor/method
* ``POST /v1/evaluate``    — metrics/margins of one explicit design point
* ``POST /v1/montecarlo``  — cell margin distributions
* ``GET  /healthz``        — liveness + drain state
* ``GET  /metrics``        — counters, latency/batch histograms, cache
  stats, and engine perf merged from every worker

Backpressure: when queued-plus-executing items reach ``max_pending``
the server answers ``429`` with a ``Retry-After`` header instead of
letting latency grow without bound.  ``drain()`` (SIGTERM in the CLI)
stops accepting, finishes everything in flight, and shuts the pool
down — in-flight callers get their answers, new ones get ``503``.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

from .api import PARSERS, BadRequest, parse_request
from .batching import BatchQueue, QueueFull
from .cache import ResultCache, Singleflight
from .engines import (
    execute_job,
    run_job_in_worker,
    warm_margin_memos,
    worker_init,
)
from .http import ProtocolError, read_request, write_response
from .metrics import ServiceMetrics
from ..analysis.experiments import DEFAULT_CACHE_PATH, Session
from ..opt import DesignSpace


@dataclass
class ServiceConfig:
    """Tunable knobs of one server instance."""

    host: str = "127.0.0.1"
    port: int = 8787              # 0 = ephemeral (tests)
    executor: str = "thread"      # "thread" shares one session; "process"
                                  # forks warm workers (CPU-bound scale)
    workers: int = 0              # 0 = os.cpu_count()
    max_batch: int = 8            # flush a group at this many items
    max_wait_ms: float = 5.0      # ... or this long after its first item
    max_pending: int = 64         # queued+executing bound (429 beyond)
    cache_entries: int = 256      # result-cache LRU capacity
    cache_ttl: float = 300.0      # result-cache TTL [s]; None = no expiry
    cache_path: str = DEFAULT_CACHE_PATH
    voltage_mode: str = "paper"

    def resolved_workers(self):
        return self.workers or os.cpu_count() or 1


def _job_from_group(group_key, items):
    """Rebuild the plain-data job a worker executes from a batch."""
    kind = group_key[0]
    if kind == "optimize":
        _, flavor, method, engine = group_key
        return {"kind": kind, "flavor": flavor, "method": method,
                "engine": engine, "items": items}
    if kind == "evaluate":
        return {"kind": kind, "flavor": group_key[1], "items": items}
    if kind == "montecarlo":
        _, flavor, metrics, engine = group_key
        return {"kind": kind, "flavor": flavor, "metrics": list(metrics),
                "engine": engine, "items": items}
    raise ValueError("unknown batch group kind %r" % (kind,))


class OptimizationServer:
    """One service instance: sockets, batcher, pool, cache, metrics."""

    def __init__(self, config=None, session=None):
        self.config = config or ServiceConfig()
        self.session = session      # may be pre-built (tests/bench)
        self.metrics = ServiceMetrics()
        self._cache = ResultCache(
            max_entries=self.config.cache_entries,
            ttl=self.config.cache_ttl,
        )
        self._flight = Singleflight()
        self._batcher = None
        self._pool = None
        self._server = None
        self._writers = set()
        self._conn_tasks = set()
        self._draining = False
        self._started_at = None
        self.port = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self):
        """Build the pool + batcher and start listening.

        Blocking setup (session build, margin warm-up) runs before the
        socket opens, so a request can never observe a half-built
        server.
        """
        config = self.config
        if config.executor not in ("thread", "process"):
            raise ValueError(
                "executor must be 'thread' or 'process', got %r"
                % (config.executor,)
            )
        if self.session is None:
            self.session = Session.create(
                cache_path=config.cache_path or None,
                voltage_mode=config.voltage_mode,
            )
        workers = config.resolved_workers()
        if config.executor == "process":
            memos = warm_margin_memos(self.session)
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                initializer=worker_init,
                initargs=(config.cache_path or None, config.voltage_mode,
                          DesignSpace(), memos),
            )
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-service"
            )
        self._batcher = BatchQueue(
            self._dispatch,
            max_batch=config.max_batch,
            max_wait=config.max_wait_ms / 1e3,
            max_pending=config.max_pending,
            on_batch=self.metrics.observe_batch,
        )
        self._server = await asyncio.start_server(
            self._handle_connection, config.host, config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        return self

    async def drain(self):
        """Graceful shutdown: stop accepting, finish in-flight work."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._batcher is not None:
            await self._batcher.drain()
        # In-flight responses are resolved by now; close lingering
        # keep-alive connections so their handler tasks finish.
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                writer.close()
        # Let handler tasks observe the close and finish, so loop
        # teardown never cancels one mid-await (noisy otherwise).
        if self._conn_tasks:
            await asyncio.wait(set(self._conn_tasks), timeout=5)
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    # -- dispatch ----------------------------------------------------------

    async def _dispatch(self, group_key, items):
        job = _job_from_group(group_key, items)
        loop = asyncio.get_running_loop()
        if self.config.executor == "process":
            payloads, snapshot = await loop.run_in_executor(
                self._pool, run_job_in_worker, job
            )
            self.metrics.merge_worker_snapshot(snapshot)
        else:
            payloads = await loop.run_in_executor(
                self._pool, execute_job, self.session, job
            )
        return payloads

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader, writer):
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    await write_response(writer, exc.status,
                                         {"error": str(exc)},
                                         keep_alive=False)
                    break
                if request is None:
                    break
                start = time.perf_counter()
                status, payload, headers = await self._route(request)
                self.metrics.observe_request(
                    request.path, status, time.perf_counter() - start
                )
                keep = request.keep_alive and not self._draining
                await write_response(writer, status, payload, headers,
                                     keep_alive=keep)
                if not keep:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            self._conn_tasks.discard(task)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _route(self, request):
        """``(status, payload, extra_headers)`` for one request."""
        path = request.path
        if path == "/healthz":
            if request.method != "GET":
                return 405, {"error": "use GET"}, {"Allow": "GET"}
            return 200, self._health_payload(), {}
        if path == "/metrics":
            if request.method != "GET":
                return 405, {"error": "use GET"}, {"Allow": "GET"}
            return 200, self._metrics_payload(), {}
        if path in PARSERS:
            if request.method != "POST":
                return 405, {"error": "use POST"}, {"Allow": "POST"}
            if self._draining:
                return 503, {"error": "server is draining"}, {}
            try:
                return await self._handle_api(path, request)
            except BadRequest as exc:
                return 400, {"error": str(exc)}, {}
            except ProtocolError as exc:
                return exc.status, {"error": str(exc)}, {}
            except QueueFull as exc:
                return 429, {"error": str(exc)}, {
                    "Retry-After": "%d" % max(int(exc.retry_after), 1)
                }
            except Exception as exc:
                return 500, {"error": "%s: %s"
                             % (type(exc).__name__, exc)}, {}
        return 404, {"error": "unknown path %r" % path}, {}

    async def _handle_api(self, route, request):
        req = parse_request(route, request.json())
        key = req.key()
        hit, item = self._cache.get(key)
        if hit:
            return self._item_response(item, cached=True)
        future, leader = self._flight.join(key)
        if not leader:
            # An identical request is already computing; share its
            # outcome (including a QueueFull, which _route maps to 429).
            item = await future
            return self._item_response(item, cached=False, coalesced=True)
        try:
            batch_future = self._batcher.enqueue(req.group_key(),
                                                 req.item())
            item = await batch_future
        except BaseException as exc:
            self._flight.reject(key, exc)
            # Mark retrieved so a flight with no followers does not log
            # an "exception was never retrieved" warning at GC.
            future.exception()
            raise
        if item["ok"]:
            self._cache.put(key, item)
        self._flight.resolve(key, item)
        return self._item_response(item, cached=False)

    def _item_response(self, item, cached, coalesced=False):
        if item["ok"]:
            payload = dict(item["result"])
            payload["meta"] = {"cached": cached, "coalesced": coalesced}
            return 200, payload, {}
        return item["status"], {"error": item["error"]}, {}

    # -- introspection payloads --------------------------------------------

    def _health_payload(self):
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_seconds": round(
                time.monotonic() - (self._started_at or time.monotonic()),
                3,
            ),
            "pending": self._batcher.pending if self._batcher else 0,
            "executor": self.config.executor,
            "workers": self.config.resolved_workers(),
        }

    def _metrics_payload(self):
        return self.metrics.render(extra={
            "cache": self._cache.stats(),
            "singleflight": self._flight.stats(),
            "batching": {
                "pending": self._batcher.pending if self._batcher else 0,
                "max_batch": self.config.max_batch,
                "max_wait_ms": self.config.max_wait_ms,
                "max_pending": self.config.max_pending,
            },
        })


async def serve_forever(config, session=None):
    """CLI entry: start, serve until SIGTERM/SIGINT, drain, return."""
    server = OptimizationServer(config, session=session)
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, stop.set)
    print("repro service listening on http://%s:%d  "
          "(executor=%s workers=%d batch<=%d wait<=%.1fms)"
          % (config.host, server.port, config.executor,
             config.resolved_workers(), config.max_batch,
             config.max_wait_ms))
    await stop.wait()
    print("draining...")
    await server.drain()
    print("drained; %d requests served." % server.metrics.total_requests)
    return server


class ServerThread:
    """Run a server on a background thread (tests, benchmarks, smoke).

    ::

        with ServerThread(ServiceConfig(port=0), session=session) as srv:
            client = ServiceClient(port=srv.port)
            ...

    Entering starts the loop thread and blocks until the socket is
    listening (re-raising any startup failure); exiting requests a
    drain and joins the thread.
    """

    def __init__(self, config=None, session=None):
        self.config = config or ServiceConfig(port=0)
        self._session = session
        self.server = None
        self.port = None
        self._thread = None
        self._loop = None
        self._stop = None
        self._ready = threading.Event()
        self._error = None

    def __enter__(self):
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-service-loop")
        self._thread.start()
        self._ready.wait()
        if self._error is not None:
            self._thread.join()
            raise self._error
        self.port = self.server.port
        return self

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False

    def _run(self):
        async def body():
            self.server = OptimizationServer(self.config,
                                             session=self._session)
            try:
                await self.server.start()
            except Exception as exc:
                self._error = exc
                self._ready.set()
                return
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self._ready.set()
            await self._stop.wait()
            await self.server.drain()

        asyncio.run(body())

    def stop(self):
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=120)
        self._loop = None
