"""Service telemetry: request counters, latency and batch histograms.

Everything lands in one :class:`ServiceMetrics` owned by the server's
event loop.  Worker processes cannot write to it directly — each batch
dispatch returns the worker's :meth:`repro.perf.PerfRegistry.snapshot`
delta, which the server merges into a dedicated registry so
``GET /metrics`` accounts for every engine millisecond no matter which
process spent it (the :meth:`~repro.perf.PerfRegistry.to_json` /
``from_json`` round trip added for exactly this hand-off).
"""

from __future__ import annotations

import json
import time

from .. import perf

#: Request latency bucket upper bounds [ms]; the last bucket is +inf.
LATENCY_BUCKETS_MS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000,
                      5000, 10000)

#: Batch size bucket upper bounds [items].
BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64)


class Histogram:
    """Fixed-bound counting histogram with count/sum/max."""

    def __init__(self, bounds):
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, value):
        self.count += 1
        self.total += value
        self.max = max(self.max, value)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def quantile(self, q):
        """Bucket-resolution quantile estimate (upper bound of the
        bucket holding the q-th observation; the raw-sample percentiles
        in BENCH_service.json are exact — this one serves /metrics)."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for index, bound in enumerate(self.bounds):
            running += self.counts[index]
            if running >= target:
                return float(bound)
        return self.max

    def snapshot(self):
        buckets = {}
        for index, bound in enumerate(self.bounds):
            buckets["le_%g" % bound] = self.counts[index]
        buckets["le_inf"] = self.counts[-1]
        return {
            "count": self.count,
            "sum": self.total,
            "max": self.max,
            "buckets": buckets,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class ServiceMetrics:
    """All of the server's own telemetry, renderable as one JSON dict."""

    def __init__(self, clock=time.monotonic):
        self._clock = clock
        self.started = clock()
        self.requests = {}        # route -> count
        self.responses = {}       # "2xx"/"4xx"/"5xx" class -> count
        self.errors = {}          # route -> non-2xx count
        self.latency = {}         # route -> Histogram [ms]
        self.batch_sizes = {}     # kind -> Histogram [items]
        #: Worker-side perf snapshots merged across the pool boundary.
        self.worker_perf = perf.PerfRegistry()

    # -- recording ---------------------------------------------------------

    def observe_request(self, route, status, seconds):
        self.requests[route] = self.requests.get(route, 0) + 1
        klass = "%dxx" % (status // 100)
        self.responses[klass] = self.responses.get(klass, 0) + 1
        if status >= 400:
            self.errors[route] = self.errors.get(route, 0) + 1
        histogram = self.latency.get(route)
        if histogram is None:
            histogram = self.latency[route] = Histogram(LATENCY_BUCKETS_MS)
        histogram.observe(seconds * 1e3)

    def observe_batch(self, kind, size):
        histogram = self.batch_sizes.get(kind)
        if histogram is None:
            histogram = self.batch_sizes[kind] = Histogram(BATCH_BUCKETS)
        histogram.observe(size)

    def merge_worker_snapshot(self, snapshot):
        """Fold one worker perf delta (dict or to_json text) in."""
        if isinstance(snapshot, str):
            snapshot = json.loads(snapshot)
        self.worker_perf.merge(snapshot)

    # -- rendering ---------------------------------------------------------

    @property
    def total_requests(self):
        return sum(self.requests.values())

    def render(self, extra=None):
        """The ``GET /metrics`` payload (JSON-able)."""
        payload = {
            "uptime_seconds": round(self._clock() - self.started, 3),
            "requests": {
                "total": self.total_requests,
                "by_route": dict(sorted(self.requests.items())),
                "by_class": dict(sorted(self.responses.items())),
                "errors_by_route": dict(sorted(self.errors.items())),
            },
            "latency_ms": {
                route: histogram.snapshot()
                for route, histogram in sorted(self.latency.items())
            },
            "batch_sizes": {
                kind: histogram.snapshot()
                for kind, histogram in sorted(self.batch_sizes.items())
            },
            # Parent-process engine telemetry (thread/inline executors
            # record here) plus the merged worker deltas.
            "perf": {
                "server": json.loads(perf.get_registry().to_json()),
                "workers": json.loads(self.worker_perf.to_json()),
            },
        }
        if extra:
            payload.update(extra)
        return payload
