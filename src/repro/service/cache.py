"""Keyed result cache and singleflight table for the service.

Two layers keep repeated work off the engines:

* :class:`ResultCache` — an LRU with optional TTL holding *finished*
  response payloads, keyed by the canonical request key
  (:meth:`repro.service.api.OptimizeRequest.key` and friends).  Hit,
  miss, eviction, and expiration counters feed ``GET /metrics``.
* :class:`Singleflight` — a table of *in-flight* computations.  The
  first arrival of a key becomes the leader and computes; every
  concurrent identical request awaits the leader's future, so N
  simultaneous identical requests cost exactly one engine invocation.

Both are event-loop-local (the server touches them only from its
asyncio thread), so neither needs locking; the worker pool never sees
them.
"""

from __future__ import annotations

import time
from collections import OrderedDict


class ResultCache:
    """LRU + TTL cache of response payloads with hit/miss counters."""

    def __init__(self, max_entries=256, ttl=None, clock=time.monotonic):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = int(max_entries)
        self.ttl = ttl
        self._clock = clock
        self._entries = OrderedDict()   # key -> (stored_at, value)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def get(self, key):
        """``(hit, value)``; refreshes LRU order on a hit."""
        entry = self._entries.get(key)
        if entry is not None:
            stored_at, value = entry
            if self.ttl is not None and self._clock() - stored_at > self.ttl:
                del self._entries[key]
                self.expirations += 1
            else:
                self._entries.move_to_end(key)
                self.hits += 1
                return True, value
        self.misses += 1
        return False, None

    def put(self, key, value):
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (self._clock(), value)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, key):
        self._entries.pop(key, None)

    def clear(self):
        self._entries.clear()

    def __len__(self):
        return len(self._entries)

    @property
    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self):
        return {
            "size": len(self._entries),
            "max_entries": self.max_entries,
            "ttl_seconds": self.ttl,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "hit_rate": round(self.hit_rate, 6),
        }


class Singleflight:
    """Coalesce concurrent identical computations onto one future.

    Usage (from the event loop)::

        future, leader = flight.join(key)
        if leader:
            try:
                value = await compute()
            except Exception as exc:
                flight.reject(key, exc)
                raise
            flight.resolve(key, value)
        result = await future

    The leader must always call :meth:`resolve` or :meth:`reject`;
    both pop the key so later requests start a fresh flight.
    """

    def __init__(self):
        self._inflight = {}
        self.coalesced = 0
        self.flights = 0

    def join(self, key, loop=None):
        """``(future, is_leader)`` for one request key."""
        future = self._inflight.get(key)
        if future is not None:
            self.coalesced += 1
            return future, False
        if loop is None:
            import asyncio
            loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._inflight[key] = future
        self.flights += 1
        return future, True

    def resolve(self, key, value):
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_result(value)

    def reject(self, key, exc):
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_exception(exc)

    def __len__(self):
        return len(self._inflight)

    def stats(self):
        return {
            "inflight": len(self._inflight),
            "flights": self.flights,
            "coalesced": self.coalesced,
        }
