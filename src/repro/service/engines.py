"""Batch-job execution against the optimization engines.

One *job* is a plain-data dict a :class:`~repro.service.batching.BatchQueue`
flush produced: a ``kind`` (optimize / pareto / evaluate / montecarlo),
the
group's shared fields, and the batched ``items``.  Jobs cross the
executor boundary as-is — picklable both ways — and come back as one
JSON-able payload per item, so the event loop never touches numpy.

Worker pools reuse the study runner's machinery
(:func:`repro.analysis.runner._worker_init`): each process builds one
session from the warm characterization cache in its initializer and is
seeded with the parent's margin memos (:func:`warm_margin_memos`), so
no worker ever recomputes a butterfly the parent already ran.  The
thread executor skips all that and shares the parent's session
directly.

Per-item failures (an infeasible design space, a bad capacity) are
*data*, not exceptions — ``{"ok": False, "status": 422, ...}`` — so one
bad request cannot poison the rest of its batch.
"""

from __future__ import annotations

import math

from .. import perf
from ..analysis import runner as study_runner
from ..array.model import DesignPoint
from ..cell.montecarlo import (
    run_cell_montecarlo,
    run_cell_montecarlo_multi,
)
from ..cell.sram6t import SRAM6TCell
from ..errors import ReproError
from ..opt import DesignSpace, ExhaustiveOptimizer, make_policy
from ..store import payload_json_safe, result_to_payload

#: The paper's yield floor as a fraction of Vdd (delta = 0.35 * Vdd).
YIELD_FLOOR_FRACTION = 0.35


def _ok(result):
    return {"ok": True, "result": result}


def _failed(status, message):
    return {"ok": False, "status": status, "error": message}


def _finite(value):
    """Floats for JSON: non-finite values become None (strict JSON has
    no Infinity/NaN)."""
    value = float(value)
    return value if math.isfinite(value) else None


def _design_fields(design):
    return {
        "n_r": int(design.n_r),
        "n_c": int(design.n_c),
        "n_pre": int(design.n_pre),
        "n_wr": int(design.n_wr),
        "v_ddc": float(design.v_ddc),
        "v_ssc": float(design.v_ssc),
        "v_wl": float(design.v_wl),
        "v_bl": float(design.v_bl),
    }


def _metric_fields(metrics):
    return {
        "edp": _finite(metrics.edp),
        "d_array": _finite(metrics.d_array),
        "d_rd": _finite(metrics.d_rd),
        "d_wr": _finite(metrics.d_wr),
        "e_total": _finite(metrics.e_total),
        "e_sw": _finite(metrics.e_sw),
        "e_leak": _finite(metrics.e_leak),
        "rail_arrival_slack": _finite(metrics.rail_arrival_slack),
    }


def _margin_fields(margins):
    hsnm, rsnm, wm = margins
    return {"hsnm": _finite(hsnm), "rsnm": _finite(rsnm),
            "wm": _finite(wm)}


# ---------------------------------------------------------------------------
# Per-kind group execution
# ---------------------------------------------------------------------------

def _optimize_entry(result, engine):
    # The response body is the experiment store's canonical cell
    # payload (json-safe copy), so a served answer, a study cell,
    # and a durable-job cell all deduplicate under one store key.
    # The exact-float original rides along for the server to
    # persist; it never reaches the wire.
    stored = result_to_payload(result)
    response = payload_json_safe(stored)
    response.pop("landscape", None)
    response["engine"] = engine
    entry = _ok(response)
    entry["store_payload"] = stored
    return entry


def _optimize_group(session, job):
    flavor = job["flavor"]
    engine = job["engine"]
    optimizer = ExhaustiveOptimizer(
        session.model(flavor), DesignSpace(), session.constraint(flavor)
    )
    levels = session.yield_levels(flavor)
    items = job["items"]
    policies = [make_policy(item["method"], levels) for item in items]
    payloads = [None] * len(items)

    def solo(index):
        perf.count("service.engine.optimize_searches")
        try:
            result = optimizer.optimize(
                items[index]["capacity_bytes"] * 8, policies[index],
                engine=engine,
            )
        except ReproError as exc:
            payloads[index] = _failed(422, str(exc))
        else:
            payloads[index] = _optimize_entry(result, engine)

    # Same-capacity fused requests score as one policy batch — one
    # broadcast evaluation for the whole sub-group, bit-identical per
    # request.  Any group-level failure (e.g. one infeasible policy
    # aborts the batch before it evaluates) falls back to per-item
    # searches so the failure stays per-item data, never poisoning
    # batch-mates.
    by_capacity = {}
    for index, item in enumerate(items):
        by_capacity.setdefault(item["capacity_bytes"], []).append(index)
    for capacity_bytes, indices in by_capacity.items():
        if engine != "fused" or len(indices) < 2:
            for index in indices:
                solo(index)
            continue
        try:
            results = optimizer.optimize_many(
                capacity_bytes * 8,
                [policies[index] for index in indices],
            )
        except ReproError:
            for index in indices:
                solo(index)
            continue
        perf.count("service.engine.optimize_fused_dispatches")
        perf.count("service.engine.optimize_searches", len(indices))
        for index, result in zip(indices, results):
            payloads[index] = _optimize_entry(result, engine)
    return payloads


def front_fields(front):
    """The serialized rows of one Pareto front, in delay order."""
    return [
        {
            "d_array": _finite(p.d_array),
            "e_total": _finite(p.e_total),
            "edp": _finite(p.edp),
            "n_r": int(p.n_r),
            "v_ssc": float(p.v_ssc),
            "n_pre": int(p.n_pre),
            "n_wr": int(p.n_wr),
        }
        for p in front
    ]


def best_weighted_fields(front_rows, energy_exponent, delay_exponent):
    """The ``E^a * D^b`` pick from *serialized* front rows.

    Plain-data twin of :func:`repro.opt.best_weighted`: it consumes the
    stored front rows directly, so the server can re-derive the pick for
    a store-served response without rebuilding optimizer objects.  Same
    floats, same first-wins ``min`` tie order.
    """
    best = min(
        front_rows,
        key=lambda row: (row["e_total"] ** energy_exponent)
        * (row["d_array"] ** delay_exponent),
    )
    return {
        "energy_exponent": float(energy_exponent),
        "delay_exponent": float(delay_exponent),
        "point": dict(best),
    }


def _pareto_group(session, job):
    flavor = job["flavor"]
    engine = job["engine"]
    optimizer = ExhaustiveOptimizer(
        session.model(flavor), DesignSpace(), session.constraint(flavor)
    )
    levels = session.yield_levels(flavor)
    payloads = []
    for item in job["items"]:
        perf.count("service.engine.pareto_sweeps")
        policy = make_policy(item["method"], levels)
        try:
            result = optimizer.pareto(
                item["capacity_bytes"] * 8, policy, engine=engine
            )
        except ReproError as exc:
            payloads.append(_failed(422, str(exc)))
            continue
        # The stored payload is exponent-free: requests differing only
        # in the best_weighted exponents deduplicate to one front in
        # the experiment store, and the server re-derives the pick on
        # store hits.
        stored = {
            "capacity_bits": int(result.capacity_bits),
            "capacity_bytes": int(result.capacity_bytes),
            "flavor": flavor,
            "method": item["method"],
            "front": front_fields(result.front),
            "n_evaluated": int(result.n_evaluated),
            "n_tiles": int(result.n_tiles),
            "tiles_pruned": int(result.tiles_pruned),
        }
        response = payload_json_safe(stored)
        response["engine"] = engine
        response["best_weighted"] = best_weighted_fields(
            response["front"], item["energy_exponent"],
            item["delay_exponent"],
        )
        entry = _ok(response)
        entry["store_payload"] = stored
        payloads.append(entry)
    return payloads


def _yield_group(session, job):
    flavor = job["flavor"]
    engine = job["engine"]
    payloads = []
    for item in job["items"]:
        perf.count("service.engine.yield_cells")
        try:
            from ..yields.study import compute_yield_cell

            result = compute_yield_cell(
                session, item["capacity_bytes"], flavor,
                item["method"], code=item["code"],
                y_target=item["y_target"], engine=engine,
                sampler=item.get("sampler", "gaussian"),
                ci_target=item.get("ci_target", 0.1),
                max_samples=item.get("max_samples", 4096),
            )
        except ReproError as exc:
            payloads.append(_failed(422, str(exc)))
            continue
        # The stored payload is the summary plus both full optima (the
        # exact-float study-cell payloads), so a served cell and a
        # bench cell deduplicate under one store key and either arm can
        # be reconstructed bit-for-bit.
        stored = dict(result.summary())
        stored["baseline_result"] = result_to_payload(result.baseline)
        stored["relaxed_result"] = result_to_payload(result.relaxed)
        response = payload_json_safe(stored)
        response["engine"] = engine
        entry = _ok(response)
        entry["store_payload"] = stored
        payloads.append(entry)
    return payloads


def _evaluate_group(session, job):
    flavor = job["flavor"]
    model = session.model(flavor)
    constraint = session.constraint(flavor)
    payloads = []
    for item in job["items"]:
        design = DesignPoint(
            n_r=item["n_r"], n_c=item["n_c"],
            n_pre=item["n_pre"], n_wr=item["n_wr"],
            v_ddc=item["v_ddc"], v_ssc=item["v_ssc"],
            v_wl=item["v_wl"], v_bl=item["v_bl"],
        )
        capacity_bits = design.n_r * design.n_c
        perf.count("service.engine.evaluations")
        try:
            metrics = model.evaluate(capacity_bits, design)
            margins = constraint.margins(
                design.v_ddc, design.v_ssc, design.v_wl, design.v_bl
            )
            yield_ok = bool(constraint.satisfied(
                design.v_ddc, design.v_ssc, design.v_wl, design.v_bl
            ))
        except ReproError as exc:
            payloads.append(_failed(422, str(exc)))
            continue
        payloads.append(_ok({
            "capacity_bits": capacity_bits,
            "flavor": flavor,
            "design": _design_fields(design),
            "metrics": _metric_fields(metrics),
            "margins": _margin_fields(margins),
            "yield_ok": yield_ok,
        }))
    return payloads


def _montecarlo_payload(result, item, flavor, engine, metrics, floor):
    summary = {}
    for name in metrics:
        samples = result.metric(name)
        summary[name] = {
            "mean": samples.mean,
            "sigma": samples.sigma,
            "mu_minus_3sigma": samples.mu_minus_k_sigma(3.0),
            "yield_at_floor": samples.yield_at(floor),
        }
    payload = {
        "flavor": flavor,
        "engine": engine,
        "n": result.n_samples,
        "seed": item["seed"],
        "floor": floor,
        "metrics": summary,
    }
    if len(metrics) > 1:
        payload["joint_yield_at_floor"] = result.worst_case_yield(floor)
    if item.get("include_samples"):
        payload["samples"] = {
            name: [float(v) for v in result.metric(name).values]
            for name in metrics
        }
    return payload


def _montecarlo_group(session, job):
    flavor = job["flavor"]
    engine = job["engine"]
    metrics = tuple(job["metrics"])
    cell = SRAM6TCell.from_library(session.library, flavor)
    vdd = session.library.vdd
    floor = YIELD_FLOOR_FRACTION * vdd
    items = job["items"]
    specs = [(item["n"], item["seed"]) for item in items]
    results = None
    if engine == "batched" and len(specs) > 1:
        # The whole batch in one vectorized solve; per-request results
        # stay bit-identical to separate calls (lane-independent
        # solvers).  A characterization failure anywhere in the merged
        # batch falls back to per-item calls so one pathological draw
        # cannot take down its batch-mates.
        try:
            results = run_cell_montecarlo_multi(
                cell, specs, vdd=vdd, metrics=metrics
            )
            perf.count("service.engine.mc_coalesced_batches")
        except ReproError:
            results = None
    payloads = []
    if results is not None:
        for item, result in zip(items, results):
            payloads.append(_ok(_montecarlo_payload(
                result, item, flavor, engine, metrics, floor
            )))
        perf.count("service.engine.mc_runs", len(items))
        return payloads
    for item in items:
        try:
            result = run_cell_montecarlo(
                cell, n_samples=item["n"], seed=item["seed"], vdd=vdd,
                metrics=metrics, engine=engine,
            )
        except ReproError as exc:
            payloads.append(_failed(422, str(exc)))
            continue
        payloads.append(_ok(_montecarlo_payload(
            result, item, flavor, engine, metrics, floor
        )))
    perf.count("service.engine.mc_runs", len(items))
    return payloads


_EXECUTORS = {
    "optimize": _optimize_group,
    "pareto": _pareto_group,
    "yield": _yield_group,
    "evaluate": _evaluate_group,
    "montecarlo": _montecarlo_group,
}


def execute_job(session, job):
    """Run one batch job against a session; one payload per item."""
    executor = _EXECUTORS.get(job["kind"])
    if executor is None:
        raise ValueError("unknown job kind %r" % (job["kind"],))
    with perf.timed("service.job.%s" % job["kind"]):
        return executor(session, job)


# ---------------------------------------------------------------------------
# Process-pool plumbing (reuses the study runner's worker machinery)
# ---------------------------------------------------------------------------

#: The process-pool initializer: the study runner's, verbatim — one
#: session per worker from the warm cache, margin memos pre-seeded.
worker_init = study_runner._worker_init


def warm_margin_memos(session, space=None, flavors=("lvt", "hvt"),
                      methods=("M1", "M2")):
    """Feasibility margins for every flavor x method, computed once in
    the parent and shipped to every worker (the same pre-warm
    :func:`repro.analysis.runner.run_study` does)."""
    space = space or DesignSpace()
    memos = {}
    with perf.timed("service.warm_margins"):
        for flavor in flavors:
            constraint = session.constraint(flavor)
            levels = session.yield_levels(flavor)
            for method in methods:
                policy = make_policy(method, levels)
                constraint.satisfied_grid(
                    policy.v_ddc,
                    [float(v) for v in policy.v_ssc_candidates(space)],
                    policy.v_wl, policy.v_bl,
                )
            memos[flavor] = constraint.export_margin_memo()
    return memos


def run_job_in_worker(job):
    """Process-pool entry: execute against the worker's session and
    return ``(payloads, perf_snapshot)`` — the snapshot is this job's
    telemetry delta, merged into the server's ``/metrics``."""
    session = study_runner._WORKER_STATE["session"]
    payloads = execute_job(session, job)
    registry = perf.get_registry()
    snapshot = registry.snapshot()
    registry.reset()
    return payloads, snapshot
