"""Synchronous client for the optimization service (stdlib only).

A thin convenience wrapper over :mod:`http.client` with one persistent
keep-alive connection, JSON encode/decode, and one method per endpoint::

    with ServiceClient(port=8787) as client:
        best = client.optimize(4096, flavor="hvt", method="M2")
        print(best["design"], best["metrics"]["edp"])

Non-2xx answers raise :class:`repro.errors.ServiceError` carrying the
HTTP status (and ``retry_after`` for 429s); pass ``check=False`` to
:meth:`ServiceClient.request` to get the raw ``(status, payload,
headers)`` instead — the tests exercise backpressure that way.
"""

from __future__ import annotations

import http.client
import json

from ..errors import ServiceError


class ServiceClient:
    """One keep-alive HTTP connection to a running service."""

    def __init__(self, host="127.0.0.1", port=8787, timeout=300.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn = None

    # -- plumbing ----------------------------------------------------------

    def _connection(self):
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self):
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def request(self, method, path, body=None, check=True):
        """One round trip; returns ``(status, payload, headers)``.

        ``check=True`` raises :class:`ServiceError` on any non-2xx
        status.  A stale keep-alive connection (server restarted,
        idle timeout) is retried once on a fresh connection.
        """
        encoded = None
        headers = {}
        if body is not None:
            encoded = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=encoded, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                if attempt:
                    raise
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = {"error": "undecodable response body"}
        response_headers = {
            name.lower(): value for name, value in response.getheaders()
        }
        if check and not 200 <= response.status < 300:
            retry_after = response_headers.get("retry-after")
            raise ServiceError(
                "%s %s failed: HTTP %d: %s"
                % (method, path, response.status,
                   payload.get("error", raw[:200])),
                status=response.status,
                retry_after=float(retry_after) if retry_after else None,
            )
        return response.status, payload, response_headers

    # -- endpoints ---------------------------------------------------------

    def healthz(self):
        return self.request("GET", "/healthz")[1]

    def metrics(self):
        return self.request("GET", "/metrics")[1]

    def optimize(self, capacity_bytes, flavor="hvt", method="M2",
                 engine="vectorized"):
        """Min-EDP design for one capacity; returns the result payload."""
        return self.request("POST", "/v1/optimize", {
            "capacity_bytes": capacity_bytes,
            "flavor": flavor,
            "method": method,
            "engine": engine,
        })[1]

    def evaluate(self, design, flavor="hvt"):
        """Metrics/margins of one explicit design point.

        ``design`` maps the :class:`~repro.array.model.DesignPoint`
        fields (n_r, n_c, n_pre, n_wr, v_ddc, v_wl, optional
        v_ssc/v_bl).
        """
        return self.request("POST", "/v1/evaluate", {
            "flavor": flavor,
            "design": dict(design),
        })[1]

    def montecarlo(self, n, flavor="hvt", seed=0, metrics=("hsnm", "rsnm"),
                   engine="batched", include_samples=False):
        """Cell margin distributions from an n-sample Monte Carlo."""
        return self.request("POST", "/v1/montecarlo", {
            "flavor": flavor,
            "n": n,
            "seed": seed,
            "metrics": list(metrics),
            "engine": engine,
            "include_samples": include_samples,
        })[1]
