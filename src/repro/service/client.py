"""Synchronous client for the optimization service (stdlib only).

A thin convenience wrapper over :mod:`http.client` with one persistent
keep-alive connection, JSON encode/decode, and one method per endpoint::

    with ServiceClient(port=8787) as client:
        best = client.optimize(4096, flavor="hvt", method="M2")
        print(best["design"], best["metrics"]["edp"])

Non-2xx answers raise :class:`repro.errors.ServiceError` carrying the
HTTP status (and ``retry_after`` for 429s); pass ``check=False`` to
:meth:`ServiceClient.request` to get the raw ``(status, payload,
headers)`` instead — the tests exercise backpressure that way.
"""

from __future__ import annotations

import http.client
import json
import time
import uuid

from ..errors import ServiceError


class ServiceClient:
    """One keep-alive HTTP connection to a running service.

    Backpressure handling: when the server answers ``429`` (its pending
    queue is full) and ``check=True``, the client sleeps and retries up
    to ``max_retries`` times, honoring the server's ``Retry-After`` hint
    but never waiting less than exponential backoff from
    ``backoff_base`` nor more than ``backoff_cap`` per attempt.  With
    ``check=False`` the raw 429 is returned untouched (the
    backpressure tests rely on that).
    """

    def __init__(self, host="127.0.0.1", port=8787, timeout=300.0,
                 max_retries=2, backoff_base=0.05, backoff_cap=5.0,
                 connect_timeout=None):
        self.host = host
        self.port = port
        self.timeout = timeout                  # read timeout [s]
        #: TCP connect budget [s]; defaults to the read timeout.  Fleet
        #: callers set it low so a dead peer fails fast while slow
        #: searches may still stream back under the longer read budget.
        self.connect_timeout = (timeout if connect_timeout is None
                                else connect_timeout)
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        #: Sockets opened over this client's lifetime.  Sequential
        #: requests ride one keep-alive connection, so this stays at 1
        #: until the server closes it (asserted in the tests — the
        #: fleet's heartbeat traffic depends on the reuse).
        self.connections_opened = 0
        self._conn = None

    # -- plumbing ----------------------------------------------------------

    def _connection(self):
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.connect_timeout
            )
            self.connections_opened += 1
        return self._conn

    def close(self):
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def request(self, method, path, body=None, check=True,
                request_id=None, extra_headers=None):
        """One logical round trip; returns ``(status, payload, headers)``.

        ``check=True`` raises :class:`ServiceError` on any non-2xx
        status, after retrying 429s with Retry-After-aware backoff.  A
        stale keep-alive connection (server restarted, idle timeout) is
        retried once on a fresh connection.  ``request_id`` is sent as
        ``X-Request-Id``; the server echoes it (or its own) back.
        """
        budget = self.max_retries if check else 0
        for backoff_attempt in range(budget + 1):
            status, payload, response_headers = self._roundtrip(
                method, path, body, request_id, extra_headers)
            if status != 429 or backoff_attempt >= budget:
                break
            retry_after = response_headers.get("retry-after")
            delay = min(
                max(float(retry_after) if retry_after else 0.0,
                    self.backoff_base * 2 ** backoff_attempt),
                self.backoff_cap,
            )
            time.sleep(delay)
        if check and not 200 <= status < 300:
            retry_after = response_headers.get("retry-after")
            raise ServiceError(
                "%s %s failed: HTTP %d: %s"
                % (method, path, status,
                   payload.get("error", "(no error body)")),
                status=status,
                retry_after=float(retry_after) if retry_after else None,
            )
        return status, payload, response_headers

    def _roundtrip(self, method, path, body, request_id,
                   extra_headers=None):
        """One wire round trip (no status policy, no 429 retries)."""
        encoded = None
        headers = {"X-Request-Id": request_id or
                   "cli-%s" % uuid.uuid4().hex[:12]}
        if extra_headers:
            headers.update(extra_headers)
        if body is not None:
            encoded = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=encoded, headers=headers)
                # HTTPConnection's timeout governed the connect; once
                # the socket exists, widen it to the read budget.
                if (conn.sock is not None
                        and self.timeout != self.connect_timeout):
                    conn.sock.settimeout(self.timeout)
                response = conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                if attempt:
                    raise
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = {"error": "undecodable response body"}
        response_headers = {
            name.lower(): value for name, value in response.getheaders()
        }
        return response.status, payload, response_headers

    # -- endpoints ---------------------------------------------------------

    def healthz(self):
        return self.request("GET", "/healthz")[1]

    def metrics(self):
        return self.request("GET", "/metrics")[1]

    def optimize(self, capacity_bytes, flavor="hvt", method="M2",
                 engine="vectorized"):
        """Min-EDP design for one capacity; returns the result payload."""
        return self.request("POST", "/v1/optimize", {
            "capacity_bytes": capacity_bytes,
            "flavor": flavor,
            "method": method,
            "engine": engine,
        })[1]

    def pareto(self, capacity_bytes, flavor="hvt", method="M2",
               engine="pruned", energy_exponent=1.0, delay_exponent=1.0):
        """Energy-delay Pareto front for one capacity.

        The payload carries the full ``front`` plus a ``best_weighted``
        pick minimizing ``E^energy_exponent * D^delay_exponent`` over
        the front ((1, 1) recovers the EDP optimum).
        """
        return self.request("POST", "/v1/pareto", {
            "capacity_bytes": capacity_bytes,
            "flavor": flavor,
            "method": method,
            "engine": engine,
            "energy_exponent": energy_exponent,
            "delay_exponent": delay_exponent,
        })[1]

    def yield_study(self, capacity_bytes, flavor="hvt", method="M2",
                    engine="pruned", code="secded", y_target=0.9):
        """One ECC-relaxed yield study cell.

        The payload carries both optima (``baseline_result`` /
        ``relaxed_result``), the relaxed margin floor and sensing
        window, the per-cell failure estimate, the composed array
        yield, and the headline ``edp_gain``.
        """
        return self.request("POST", "/v1/yield", {
            "capacity_bytes": capacity_bytes,
            "flavor": flavor,
            "method": method,
            "engine": engine,
            "code": code,
            "y_target": y_target,
        })[1]

    def evaluate(self, design, flavor="hvt"):
        """Metrics/margins of one explicit design point.

        ``design`` maps the :class:`~repro.array.model.DesignPoint`
        fields (n_r, n_c, n_pre, n_wr, v_ddc, v_wl, optional
        v_ssc/v_bl).
        """
        return self.request("POST", "/v1/evaluate", {
            "flavor": flavor,
            "design": dict(design),
        })[1]

    def submit_job(self, spec=None, kind="study", priority=0,
                   max_attempts=3):
        """Submit a durable study sweep; returns the 202 job payload."""
        return self.request("POST", "/v1/jobs", {
            "kind": kind,
            "spec": dict(spec or {}),
            "priority": priority,
            "max_attempts": max_attempts,
        })[1]

    def job(self, job_id):
        """Status/progress of one job (plus results once done)."""
        return self.request("GET", "/v1/jobs/%s" % job_id)[1]

    def jobs(self):
        """All jobs (newest first) plus per-state counts."""
        return self.request("GET", "/v1/jobs")[1]

    def cancel_job(self, job_id):
        """Cancel a queued/running job; raises ServiceError(409) once
        the job is terminal."""
        return self.request("DELETE", "/v1/jobs/%s" % job_id)[1]

    def wait_for_job(self, job_id, timeout=600.0, interval=0.25):
        """Poll until the job reaches a terminal state; returns it."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.job(job_id)
            if payload["state"] in ("done", "failed", "cancelled"):
                return payload
            if time.monotonic() >= deadline:
                raise ServiceError(
                    "job %s still %r after %.0f s"
                    % (job_id, payload["state"], timeout), status=504)
            time.sleep(interval)

    def store_get(self, key, request_id=None):
        """One replicated-store blob ``{key, payload, provenance}``, or
        ``None`` when the replica does not hold it."""
        status, payload, _ = self.request(
            "GET", "/v1/store/%s" % key, check=False,
            request_id=request_id)
        if status == 404:
            return None
        if not 200 <= status < 300:
            raise ServiceError(
                "GET /v1/store/%s failed: HTTP %d: %s"
                % (key, status, payload.get("error", "(no error body)")),
                status=status)
        return payload

    def store_put(self, key, payload, provenance=None, request_id=None):
        """Sync one blob to the replica (idempotent write-back)."""
        return self.request("PUT", "/v1/store/%s" % key,
                            {"payload": payload,
                             "provenance": provenance or {}},
                            request_id=request_id)[1]

    def fleet(self):
        """Topology + peer health of the replica (``GET /v1/fleet``)."""
        return self.request("GET", "/v1/fleet")[1]

    def fleet_metrics(self):
        """Fleet-wide metrics aggregated across reachable replicas."""
        return self.request("GET", "/v1/fleet/metrics")[1]

    def montecarlo(self, n, flavor="hvt", seed=0, metrics=("hsnm", "rsnm"),
                   engine="batched", include_samples=False):
        """Cell margin distributions from an n-sample Monte Carlo."""
        return self.request("POST", "/v1/montecarlo", {
            "flavor": flavor,
            "n": n,
            "seed": seed,
            "metrics": list(metrics),
            "engine": engine,
            "include_samples": include_samples,
        })[1]
