"""Request schemas for the optimization service.

Every POST endpoint's JSON body is normalized into a frozen request
dataclass here, *before* any caching or batching decision:

* ``key()`` — the canonical identity of the request (route plus the
  normalized fields, serialized deterministically).  The result cache
  and the singleflight table key on it, so two bodies that differ only
  in field order or omitted defaults share one computation.
* ``group_key()`` — the batching compatibility class.  Requests in the
  same group may ride in one worker dispatch (and, for Monte Carlo,
  coalesce into one batched solve); requests in different groups never
  mix.

Validation failures raise :class:`BadRequest`, which the server maps to
an HTTP 400 with the message in the body.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
import json
import math

from ..errors import ReproError

FLAVORS = ("lvt", "hvt")
METHODS = ("M1", "M2")
SEARCH_ENGINES = ("fused", "pruned", "vectorized", "loop")
CELL_ENGINES = ("batched", "loop")
MC_METRICS = ("hsnm", "rsnm", "wm")

#: Largest accepted Monte Carlo draw per request (keeps one request from
#: monopolizing a worker; callers needing more shard across requests).
MAX_MC_SAMPLES = 100_000


class BadRequest(ReproError):
    """The request body failed validation (HTTP 400)."""


def _require(body, field, kind, default=None):
    value = body.get(field, default)
    if value is None:
        raise BadRequest("missing required field %r" % field)
    if kind is float and isinstance(value, int):
        value = float(value)
    if kind is int and isinstance(value, bool):
        raise BadRequest("field %r must be an integer" % field)
    if not isinstance(value, kind):
        raise BadRequest(
            "field %r must be %s, got %r"
            % (field, kind.__name__, type(value).__name__)
        )
    return value


def _choice(body, field, choices, default):
    value = body.get(field, default)
    if value not in choices:
        raise BadRequest(
            "field %r must be one of %s, got %r"
            % (field, "/".join(choices), value)
        )
    return value


def _canonical(route, fields):
    return route + "?" + json.dumps(fields, sort_keys=True)


@dataclass(frozen=True)
class OptimizeRequest:
    """``POST /v1/optimize`` — min-EDP design for one capacity."""

    capacity_bytes: int
    flavor: str
    method: str
    engine: str

    @classmethod
    def parse(cls, body):
        capacity = _require(body, "capacity_bytes", int)
        if capacity <= 0 or capacity & (capacity - 1):
            raise BadRequest(
                "capacity_bytes must be a positive power of two, got %d"
                % capacity
            )
        return cls(
            capacity_bytes=capacity,
            flavor=_choice(body, "flavor", FLAVORS, "hvt"),
            method=_choice(body, "method", METHODS, "M2"),
            engine=_choice(body, "engine", SEARCH_ENGINES, "vectorized"),
        )

    def key(self):
        return _canonical("/v1/optimize", asdict(self))

    def group_key(self):
        """Same flavor/engine searches share one warm dispatch; the
        method rides per-item, so a cell's voltage policies can fuse
        into one policy-batched ``optimize_many`` evaluation when the
        engine is ``"fused"``."""
        return ("optimize", self.flavor, self.engine)

    def item(self):
        return {"capacity_bytes": self.capacity_bytes,
                "method": self.method}


@dataclass(frozen=True)
class ParetoRequest:
    """``POST /v1/pareto`` — energy-delay Pareto front for one capacity.

    The ``energy_exponent`` / ``delay_exponent`` pair parameterizes the
    ``best_weighted`` pick (``E^a * D^b``) *on top of* the front; they
    are deliberately excluded from the batch item and the store payload,
    so requests differing only in exponents share one sweep and one
    stored front.
    """

    capacity_bytes: int
    flavor: str
    method: str
    engine: str
    energy_exponent: float
    delay_exponent: float

    @classmethod
    def parse(cls, body):
        capacity = _require(body, "capacity_bytes", int)
        if capacity <= 0 or capacity & (capacity - 1):
            raise BadRequest(
                "capacity_bytes must be a positive power of two, got %d"
                % capacity
            )

        def exponent(field):
            value = _require(body, field, float, default=1.0)
            if not math.isfinite(value) or value <= 0.0:
                raise BadRequest(
                    "field %r must be a finite positive number, got %r"
                    % (field, value)
                )
            return float(value)

        return cls(
            capacity_bytes=capacity,
            flavor=_choice(body, "flavor", FLAVORS, "hvt"),
            method=_choice(body, "method", METHODS, "M2"),
            engine=_choice(body, "engine", SEARCH_ENGINES, "pruned"),
            energy_exponent=exponent("energy_exponent"),
            delay_exponent=exponent("delay_exponent"),
        )

    def key(self):
        return _canonical("/v1/pareto", asdict(self))

    def group_key(self):
        """Same flavor/engine sweeps share one warm dispatch (mirrors
        the optimize group)."""
        return ("pareto", self.flavor, self.engine)

    def item(self):
        return {"capacity_bytes": self.capacity_bytes,
                "method": self.method,
                "energy_exponent": self.energy_exponent,
                "delay_exponent": self.delay_exponent}


@dataclass(frozen=True)
class YieldRequest:
    """``POST /v1/yield`` — one ECC-relaxed yield study cell.

    Runs the fixed-delta baseline search *and* the margin-relaxed
    search under ``code`` at array yield target ``y_target``
    (:func:`repro.yields.study.compute_yield_cell`), returning both
    optima, the relaxed floor and sensing window, and the composed
    array yield at the relaxed optimum.
    """

    capacity_bytes: int
    flavor: str
    method: str
    engine: str
    code: str
    y_target: float
    #: Margin-floor relaxation estimator: "gaussian" (closed form) or
    #: a rare-event sampler (repro.cell.importance.SAMPLERS).
    sampler: str = "gaussian"
    ci_target: float = 0.1
    max_samples: int = 4096

    @classmethod
    def parse(cls, body):
        capacity = _require(body, "capacity_bytes", int)
        if capacity <= 0 or capacity & (capacity - 1):
            raise BadRequest(
                "capacity_bytes must be a positive power of two, got %d"
                % capacity
            )
        code = _require(body, "code", str, default="secded")
        from ..errors import DesignSpaceError
        from ..yields.ecc import make_code

        try:
            code = make_code(code, 64).name
        except DesignSpaceError as exc:
            raise BadRequest(str(exc)) from exc
        y_target = _require(body, "y_target", float, default=0.9)
        if not 0.0 < y_target < 1.0:
            raise BadRequest(
                "y_target must be in (0, 1), got %r" % (y_target,)
            )
        from ..cell.importance import BLOCK, SAMPLERS

        sampler = _choice(body, "sampler", ("gaussian",) + SAMPLERS,
                          "gaussian")
        ci_target = _require(body, "ci_target", float, default=0.1)
        if not 0.0 < ci_target < 1.0:
            raise BadRequest(
                "ci_target must be in (0, 1), got %r" % (ci_target,)
            )
        max_samples = _require(body, "max_samples", int, default=4096)
        if not 2 * BLOCK <= max_samples <= MAX_MC_SAMPLES:
            raise BadRequest(
                "max_samples must be in %d..%d, got %d"
                % (2 * BLOCK, MAX_MC_SAMPLES, max_samples)
            )
        return cls(
            capacity_bytes=capacity,
            flavor=_choice(body, "flavor", FLAVORS, "hvt"),
            method=_choice(body, "method", METHODS, "M2"),
            engine=_choice(body, "engine", SEARCH_ENGINES, "pruned"),
            code=code,
            y_target=float(y_target),
            sampler=sampler,
            ci_target=float(ci_target),
            max_samples=int(max_samples),
        )

    def key(self):
        return _canonical("/v1/yield", asdict(self))

    def group_key(self):
        """Same flavor/engine study cells share one warm dispatch
        (mirrors the optimize/pareto groups)."""
        return ("yield", self.flavor, self.engine)

    def item(self):
        return {"capacity_bytes": self.capacity_bytes,
                "method": self.method,
                "code": self.code,
                "y_target": self.y_target,
                "sampler": self.sampler,
                "ci_target": self.ci_target,
                "max_samples": self.max_samples}


@dataclass(frozen=True)
class EvaluateRequest:
    """``POST /v1/evaluate`` — metrics of one explicit design point."""

    flavor: str
    n_r: int
    n_c: int
    n_pre: int
    n_wr: int
    v_ddc: float
    v_ssc: float
    v_wl: float
    v_bl: float

    @classmethod
    def parse(cls, body):
        design = body.get("design")
        if not isinstance(design, dict):
            raise BadRequest("missing required object field 'design'")
        request = cls(
            flavor=_choice(body, "flavor", FLAVORS, "hvt"),
            n_r=_require(design, "n_r", int),
            n_c=_require(design, "n_c", int),
            n_pre=_require(design, "n_pre", int),
            n_wr=_require(design, "n_wr", int),
            v_ddc=_require(design, "v_ddc", float),
            v_ssc=_require(design, "v_ssc", float, default=0.0),
            v_wl=_require(design, "v_wl", float),
            v_bl=_require(design, "v_bl", float, default=0.0),
        )
        for field in ("n_r", "n_c", "n_pre", "n_wr"):
            if getattr(request, field) <= 0:
                raise BadRequest("design.%s must be positive" % field)
        return request

    def key(self):
        return _canonical("/v1/evaluate", asdict(self))

    def group_key(self):
        """One flavor's model evaluations share a dispatch."""
        return ("evaluate", self.flavor)

    def item(self):
        fields = asdict(self)
        fields.pop("flavor")
        return fields


@dataclass(frozen=True)
class MonteCarloRequest:
    """``POST /v1/montecarlo`` — cell margin distributions."""

    flavor: str
    n: int
    seed: int
    metrics: tuple
    engine: str
    include_samples: bool

    @classmethod
    def parse(cls, body):
        n = _require(body, "n", int)
        if not 0 < n <= MAX_MC_SAMPLES:
            raise BadRequest(
                "n must be in 1..%d, got %d" % (MAX_MC_SAMPLES, n)
            )
        metrics = body.get("metrics", ["hsnm", "rsnm"])
        if isinstance(metrics, str):
            metrics = [m.strip() for m in metrics.split(",") if m.strip()]
        if (not isinstance(metrics, list) or not metrics
                or any(m not in MC_METRICS for m in metrics)):
            raise BadRequest(
                "metrics must be a non-empty subset of %s"
                % "/".join(MC_METRICS)
            )
        # Canonical metric order makes equivalent requests share a key.
        metrics = tuple(m for m in MC_METRICS if m in metrics)
        include = body.get("include_samples", False)
        if not isinstance(include, bool):
            raise BadRequest("include_samples must be a boolean")
        return cls(
            flavor=_choice(body, "flavor", FLAVORS, "hvt"),
            n=n,
            seed=_require(body, "seed", int, default=0),
            metrics=metrics,
            engine=_choice(body, "engine", CELL_ENGINES, "batched"),
            include_samples=include,
        )

    def key(self):
        fields = asdict(self)
        fields["metrics"] = list(self.metrics)
        return _canonical("/v1/montecarlo", fields)

    def group_key(self):
        """Same flavor/metrics/engine draws coalesce into one batched
        solve (the lane-independent solvers keep per-request results
        bit-identical; see
        :func:`repro.cell.montecarlo.run_cell_montecarlo_multi`)."""
        return ("montecarlo", self.flavor, self.metrics, self.engine)

    def item(self):
        return {"n": self.n, "seed": self.seed,
                "include_samples": self.include_samples}


#: Route -> parser for the POST API endpoints.
PARSERS = {
    "/v1/optimize": OptimizeRequest.parse,
    "/v1/pareto": ParetoRequest.parse,
    "/v1/yield": YieldRequest.parse,
    "/v1/evaluate": EvaluateRequest.parse,
    "/v1/montecarlo": MonteCarloRequest.parse,
}


def parse_request(route, body):
    """Normalize one POST body; raises :class:`BadRequest`."""
    parser = PARSERS.get(route)
    if parser is None:
        raise BadRequest("unknown route %r" % route)
    if not isinstance(body, dict):
        raise BadRequest("request body must be a JSON object")
    return parser(body)
