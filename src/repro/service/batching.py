"""Dynamic request batching with a max-batch / max-wait policy.

The server enqueues each (cache- and singleflight-missed) request into
a :class:`BatchQueue` under its compatibility ``group_key``
(:meth:`~repro.service.api.OptimizeRequest.group_key`).  A group's
first arrival starts a ``max_wait`` timer; the group flushes when the
timer fires *or* the group reaches ``max_batch`` items, whichever comes
first.  One flush becomes one worker dispatch — the whole batch crosses
the executor boundary together, shares a warm session, and (for Monte
Carlo and fused optimize requests) coalesces into a single vectorized
solve.  Per-endpoint ``overrides`` tune ``max_batch`` / ``max_wait`` by
request kind — e.g. let ``optimize`` wait a little longer to fill wider
policy-batched dispatches while ``evaluate`` stays latency-biased.

Backpressure is a hard bound on in-flight items (queued plus
executing): :meth:`enqueue` raises :class:`QueueFull` once ``max_pending``
is reached, and the server turns that into ``429 Too Many Requests``
with a ``Retry-After`` hint.  :meth:`drain` flushes everything queued
and awaits all outstanding dispatches — the graceful-shutdown path.
"""

from __future__ import annotations

import asyncio

from ..errors import ReproError


class QueueFull(ReproError):
    """The batcher's pending bound was hit (HTTP 429)."""

    def __init__(self, pending, max_pending, retry_after):
        super().__init__(
            "service at capacity: %d of %d requests in flight"
            % (pending, max_pending)
        )
        self.retry_after = retry_after


class _Entry:
    __slots__ = ("item", "future")

    def __init__(self, item, future):
        self.item = item
        self.future = future


class BatchQueue:
    """Group-keyed queue that flushes on max-batch or max-wait.

    ``dispatch`` is an async callable ``(group_key, items) -> results``
    returning one result per item, in order.  Results resolve each
    item's future; a dispatch exception rejects every future of that
    batch (other batches are unaffected).
    """

    def __init__(self, dispatch, max_batch=8, max_wait=0.005,
                 max_pending=64, on_batch=None, overrides=None):
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        self._dispatch = dispatch
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.max_pending = int(max_pending)
        # Per-endpoint-kind limit overrides: {kind: {"max_batch": int,
        # "max_wait": float}} with either key optional.  A kind not
        # listed uses the queue-wide limits.
        self.overrides = {}
        for kind, limits in (overrides or {}).items():
            limits = dict(limits)
            unknown = set(limits) - {"max_batch", "max_wait"}
            if unknown:
                raise ValueError(
                    "unknown override keys for %r: %s"
                    % (kind, ", ".join(sorted(unknown)))
                )
            if "max_batch" in limits:
                limits["max_batch"] = int(limits["max_batch"])
                if limits["max_batch"] <= 0:
                    raise ValueError(
                        "max_batch override for %r must be positive"
                        % (kind,)
                    )
            if "max_wait" in limits:
                limits["max_wait"] = float(limits["max_wait"])
                if limits["max_wait"] < 0:
                    raise ValueError(
                        "max_wait override for %r must be non-negative"
                        % (kind,)
                    )
            if limits:
                self.overrides[kind] = limits
        self._on_batch = on_batch      # callback(kind, batch_size)
        self._groups = {}              # group_key -> [Entry]
        self._timers = {}              # group_key -> TimerHandle
        self._tasks = set()            # outstanding dispatch tasks
        self._pending = 0              # queued + executing items
        self._closed = False

    @property
    def pending(self):
        return self._pending

    @property
    def queued_groups(self):
        return len(self._groups)

    def max_batch_for(self, kind):
        """The flush size bound of one endpoint kind."""
        return self.overrides.get(kind, {}).get("max_batch",
                                                self.max_batch)

    def max_wait_for(self, kind):
        """The first-arrival timer of one endpoint kind [s]."""
        return self.overrides.get(kind, {}).get("max_wait",
                                                self.max_wait)

    def enqueue(self, group_key, item):
        """Queue one item; returns the future its result resolves.

        Raises :class:`QueueFull` at the pending bound and
        :class:`RuntimeError` after :meth:`drain` (the server answers
        503 while draining, so this is a programming-error guard).
        """
        if self._closed:
            raise RuntimeError("batch queue is draining")
        if self._pending >= self.max_pending:
            # A full queue clears within roughly one batch turnaround;
            # max_wait is the floor, 1s the polite ceiling hint.
            raise QueueFull(self._pending, self.max_pending,
                            retry_after=max(round(self.max_wait, 3), 1))
        loop = asyncio.get_running_loop()
        entry = _Entry(item, loop.create_future())
        self._pending += 1
        group = self._groups.setdefault(group_key, [])
        group.append(entry)
        kind = group_key[0]
        if len(group) >= self.max_batch_for(kind):
            self._flush(group_key)
        elif len(group) == 1:
            max_wait = self.max_wait_for(kind)
            if max_wait == 0.0:
                # Zero wait = batching off: still defer to a soon-call so
                # same-iteration arrivals (already-scheduled callbacks)
                # cannot starve, but never hold a request for a timer.
                self._timers[group_key] = loop.call_soon(
                    self._flush, group_key
                )
            else:
                self._timers[group_key] = loop.call_later(
                    max_wait, self._flush, group_key
                )
        return entry.future

    def _flush(self, group_key):
        entries = self._groups.pop(group_key, None)
        timer = self._timers.pop(group_key, None)
        if timer is not None:
            timer.cancel()
        if not entries:
            return
        task = asyncio.get_running_loop().create_task(
            self._run(group_key, entries)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run(self, group_key, entries):
        try:
            if self._on_batch is not None:
                self._on_batch(group_key[0], len(entries))
            results = await self._dispatch(
                group_key, [entry.item for entry in entries]
            )
            if len(results) != len(entries):
                raise RuntimeError(
                    "dispatch returned %d results for %d items"
                    % (len(results), len(entries))
                )
            for entry, result in zip(entries, results):
                if not entry.future.done():
                    entry.future.set_result(result)
        except Exception as exc:
            for entry in entries:
                if not entry.future.done():
                    entry.future.set_exception(exc)
        finally:
            self._pending -= len(entries)

    async def drain(self):
        """Flush all queued groups and await outstanding dispatches."""
        self._closed = True
        for group_key in list(self._groups):
            self._flush(group_key)
        while self._tasks:
            await asyncio.gather(*list(self._tasks),
                                 return_exceptions=True)
