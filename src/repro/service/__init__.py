"""repro.service: async EDP-optimization server with dynamic batching.

A stdlib-only (asyncio + json) HTTP service wrapping the repository's
optimization engines:

* :mod:`~repro.service.server` — the asyncio server, request routing,
  graceful drain (:class:`~repro.service.server.OptimizationServer`)
* :mod:`~repro.service.api` — request schemas, cache keys, batch groups
* :mod:`~repro.service.batching` — max-batch/max-wait dynamic batcher
* :mod:`~repro.service.cache` — LRU+TTL result cache and singleflight
* :mod:`~repro.service.engines` — batch-job execution on worker pools
* :mod:`~repro.service.metrics` — counters and latency/batch histograms
* :mod:`~repro.service.client` — synchronous convenience client
* :mod:`~repro.service.smoke` — end-to-end smoke check (CI entry)

Start one with ``PYTHONPATH=src python -m repro.cli serve`` and see
``docs/SERVICE.md`` for the protocol.
"""

from .api import (
    BadRequest,
    EvaluateRequest,
    MonteCarloRequest,
    OptimizeRequest,
    parse_request,
)
from .batching import BatchQueue, QueueFull
from .cache import ResultCache, Singleflight
from .client import ServiceClient
from .metrics import Histogram, ServiceMetrics
from .server import (
    OptimizationServer,
    ServerThread,
    ServiceConfig,
    serve_forever,
)

__all__ = [
    "BadRequest",
    "BatchQueue",
    "EvaluateRequest",
    "Histogram",
    "MonteCarloRequest",
    "OptimizationServer",
    "OptimizeRequest",
    "QueueFull",
    "ResultCache",
    "ServerThread",
    "ServiceClient",
    "ServiceConfig",
    "ServiceMetrics",
    "Singleflight",
    "parse_request",
    "serve_forever",
]
