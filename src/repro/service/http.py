"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

The service speaks just enough HTTP for a JSON API: request line,
headers, ``Content-Length`` bodies, keep-alive by default, and JSON
responses.  No chunked encoding, no TLS, no multipart — callers needing
those should front the service with a real proxy; the point here is a
dependency-free protocol layer the test suite and the benchmark load
generator can drive at full speed over localhost.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

#: Framing limits: a request line/header block beyond this is a 431, a
#: declared body beyond this is a 413 (the JSON API needs neither).
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024

STATUS_TEXT = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """Malformed HTTP framing; carries the status to respond with."""

    def __init__(self, status, message):
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    headers: dict = field(default_factory=dict)   # lower-cased names
    body: bytes = b""

    @property
    def keep_alive(self):
        return self.headers.get("connection", "keep-alive") != "close"

    def json(self):
        """The body decoded as JSON (``{}`` when empty)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(400, "request body is not valid JSON: %s"
                                % exc)


async def read_request(reader):
    """Read one request off the stream; ``None`` on clean EOF.

    Raises :class:`ProtocolError` on malformed framing so the caller
    can answer with the right status before closing.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(400, "connection closed mid-request")
    except asyncio.LimitOverrunError:
        raise ProtocolError(431, "request head too large")
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError(431, "request head too large")
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:
        raise ProtocolError(400, "undecodable request head")
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(400, "malformed request line %r" % lines[0])
    method, target = parts[0].upper(), parts[1]
    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(400, "malformed header line %r" % line)
        headers[name.strip().lower()] = value.strip()
    # The API ignores query strings; strip them so routing sees the path.
    path = target.split("?", 1)[0]
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            length = int(length)
        except ValueError:
            raise ProtocolError(400, "malformed Content-Length")
        if length < 0:
            raise ProtocolError(400, "negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise ProtocolError(413, "request body too large")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise ProtocolError(400, "connection closed mid-body")
    elif "transfer-encoding" in headers:
        raise ProtocolError(400, "chunked request bodies are unsupported")
    return HttpRequest(method=method, path=path, headers=headers, body=body)


def encode_response(status, payload, extra_headers=None, keep_alive=True):
    """Serialize one JSON response (payload is a JSON-able object)."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    lines = [
        "HTTP/1.1 %d %s" % (status, STATUS_TEXT.get(status, "Unknown")),
        "Content-Type: application/json",
        "Content-Length: %d" % len(body),
        "Connection: %s" % ("keep-alive" if keep_alive else "close"),
    ]
    for name, value in (extra_headers or {}).items():
        lines.append("%s: %s" % (name, value))
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


async def write_response(writer, status, payload, extra_headers=None,
                         keep_alive=True):
    writer.write(encode_response(status, payload, extra_headers,
                                 keep_alive))
    await writer.drain()
