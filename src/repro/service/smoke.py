"""End-to-end smoke check: boot the service, drive it, drain it.

Run as::

    PYTHONPATH=src python -m repro.service.smoke [--executor thread]

Boots a real server on an ephemeral port, then asserts the full
request path works: /healthz, an optimize (engine result), the same
optimize again (result-cache hit), an evaluate of the returned design,
a small Monte Carlo, a Pareto front whose unit-exponent pick matches
the optimize answer, and /metrics accounting for all of it.  Exits
non-zero on the first failed expectation — CI's ``service-smoke`` job
is exactly this module.
"""

from __future__ import annotations

import argparse
import sys
import time

from .client import ServiceClient
from .server import ServerThread, ServiceConfig
from ..analysis.experiments import DEFAULT_CACHE_PATH, Session


def check(condition, label):
    if not condition:
        raise AssertionError("smoke check failed: %s" % label)
    print("  ok: %s" % label)


def run_smoke(executor="thread", workers=2, cache_path=DEFAULT_CACHE_PATH):
    started = time.perf_counter()
    print("building session (cache: %s)..." % (cache_path or "disabled"))
    session = Session.create(cache_path=cache_path or None,
                             voltage_mode="paper")
    config = ServiceConfig(port=0, executor=executor, workers=workers,
                           cache_path=cache_path)
    print("starting %s-executor server..." % executor)
    with ServerThread(config, session=session) as running:
        with ServiceClient(port=running.port) as client:
            health = client.healthz()
            check(health["status"] == "ok", "/healthz reports ok")

            first = client.optimize(128, flavor="hvt", method="M2")
            check(first["design"]["n_r"] * first["design"]["n_c"]
                  == 128 * 8, "optimize returns a 128 B design")
            check(first["metrics"]["edp"] > 0, "optimize EDP is positive")
            check(first["meta"]["cached"] is False,
                  "first optimize is a cache miss")

            second = client.optimize(128, flavor="hvt", method="M2")
            check(second["meta"]["cached"] is True,
                  "repeat optimize is a cache hit")
            check(second["design"] == first["design"],
                  "cached design matches")

            evaluated = client.evaluate(first["design"], flavor="hvt")
            check(evaluated["yield_ok"] is True,
                  "optimal design satisfies the yield constraint")
            check(abs(evaluated["metrics"]["edp"]
                      - first["metrics"]["edp"])
                  <= 1e-9 * abs(first["metrics"]["edp"]),
                  "evaluate agrees with the optimizer's EDP")

            mc = client.montecarlo(8, flavor="hvt", seed=1,
                                   metrics=("hsnm",))
            check(mc["n"] == 8 and "hsnm" in mc["metrics"],
                  "montecarlo returns hsnm stats")

            pareto = client.pareto(128, flavor="hvt", method="M2")
            check(len(pareto["front"]) >= 1,
                  "pareto returns a non-empty front")
            check(min(p["edp"] for p in pareto["front"])
                  == pareto["best_weighted"]["point"]["edp"],
                  "unit-exponent best_weighted is the front's EDP min")
            check(pareto["best_weighted"]["point"]["edp"]
                  == first["metrics"]["edp"],
                  "pareto EDP optimum matches /v1/optimize")

            metrics = client.metrics()
            check(metrics["requests"]["total"] >= 5,
                  "/metrics counted the requests")
            check(metrics["cache"]["hits"] >= 1,
                  "/metrics shows the cache hit")
            check(metrics["batch_sizes"],
                  "/metrics has batch-size histograms")
    print("smoke passed in %.1f s (executor=%s)"
          % (time.perf_counter() - started, executor))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Service smoke check (boot, drive, drain).")
    parser.add_argument("--executor", choices=("thread", "process"),
                        default="thread")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--cache", default=DEFAULT_CACHE_PATH,
                        help="characterization cache path ('' disables)")
    args = parser.parse_args(argv)
    return run_smoke(executor=args.executor, workers=args.workers,
                     cache_path=args.cache)


if __name__ == "__main__":
    sys.exit(main())
