"""Command-line entry point: regenerate any paper figure/table.

Usage::

    python -m repro.cli calibration
    python -m repro.cli fig2
    python -m repro.cli fig3
    python -m repro.cli fig5
    python -m repro.cli table4 --voltage-mode paper
    python -m repro.cli fig7 --workers 4
    python -m repro.cli headline --profile
    python -m repro.cli montecarlo --samples 2000 --metrics hsnm,rsnm,wm
    python -m repro.cli all
    python -m repro.cli pareto --capacities 16384 --flavors hvt
    python -m repro.cli yield --capacities 16384 --code secded
    python -m repro.cli serve --port 8787 --jobs jobs.db
    python -m repro.cli jobs submit --queue jobs.db --capacities 128,1024
    python -m repro.cli jobs work --queue jobs.db
    python -m repro.cli jobs watch job-abc123 --queue jobs.db
    python -m repro.cli store ls --store jobs.db

The first run characterizes the device/cell/periphery stack with the
built-in simulator (a few minutes) and caches the results; later runs
are fast.

``serve`` starts the optimization service (:mod:`repro.service`): an
asyncio HTTP server exposing /v1/optimize, /v1/evaluate and
/v1/montecarlo with dynamic request batching, a result cache, and
/metrics telemetry — see ``docs/SERVICE.md``.  With ``--jobs PATH`` it
also exposes the durable jobs API (/v1/jobs) with a background worker
pool.

``jobs`` and ``store`` drive the durable queue and the
content-addressed experiment store directly (submit/status/watch/
cancel/work and ls/show/gc) — see ``docs/JOBS.md``.

``--workers N`` fans the optimization matrix (table4 / fig7 / headline)
over a worker pool (see :mod:`repro.analysis.runner`); ``--profile``
prints the :mod:`repro.perf` telemetry report after the run.
"""

from __future__ import annotations

import argparse
import os
import sys

from . import perf
from .analysis import (
    Session,
    breakdown_study,
    calibration_checkpoints,
    corners_study,
    fig2_cell_vdd_scaling,
    fig3_read_assists,
    fig5_write_assists,
    optimize_all,
    run_selfcheck,
    run_study,
    temperature_study,
    word_width_study,
)
from .analysis.serialize import save_json
from .cell.montecarlo import required_margin_fraction, run_cell_montecarlo
from .cell.sram6t import SRAM6TCell
from .devices.library import DeviceLibrary

#: Paper artifacts first, extension studies after.
EXPERIMENTS = ("calibration", "fig2", "fig3", "fig5", "table4", "fig7",
               "headline", "corners", "temperature", "breakdown",
               "wordwidth", "selfcheck", "montecarlo", "all")

#: What "all" expands to (the paper's artifacts).
PAPER_SET = ("calibration", "fig2", "fig3", "fig5", "table4", "fig7",
             "headline")


def _run_sweep(session, options):
    """The Table-4/Figure-7 sweep, parallel when workers were requested."""
    workers = getattr(options, "workers", 1) if options else 1
    engine = getattr(options, "engine", "vectorized") if options else (
        "vectorized"
    )
    if workers and workers > 1:
        run = run_study(
            session=session, workers=workers,
            executor=getattr(options, "executor", "auto"),
            engine=engine,
        )
        return run.sweep
    return optimize_all(session, engine=engine)


def run_montecarlo(options):
    """The ``montecarlo`` entry point: cell margin distributions.

    Runs directly on the device library (no array characterization
    needed).  ``--engine batched`` (default) uses the vectorized cell
    engine; ``--engine loop`` runs the scalar reference — both are
    bit-identical, so the engine choice only changes runtime.
    """
    library = DeviceLibrary.default_7nm()
    cell = SRAM6TCell.from_library(library, options.flavor)
    engine = "loop" if options.engine == "loop" else "batched"
    metrics = tuple(
        name.strip() for name in options.metrics.split(",") if name.strip()
    )
    result = run_cell_montecarlo(
        cell, n_samples=options.samples, seed=options.seed,
        vdd=library.vdd, metrics=metrics, engine=engine,
    )
    return result, _montecarlo_report(result, library.vdd, options.flavor,
                                      engine)


def _montecarlo_report(result, vdd, flavor, engine):
    floor = 0.35 * vdd
    lines = [
        "Monte Carlo cell margins: flavor=%s n=%d engine=%s Vdd=%.3f V"
        % (flavor, result.n_samples, engine, vdd),
        "yield floor 0.35*Vdd = %.4f V" % floor,
    ]
    for name, samples in result.metrics.items():
        lines.append(
            "  %-5s mean=%7.4f V  sigma=%7.4f V  mu-3sigma=%7.4f V  "
            "yield@floor=%.4f"
            % (name, samples.mean, samples.sigma,
               samples.mu_minus_k_sigma(3.0), samples.yield_at(floor))
        )
    required = required_margin_fraction(result, vdd=vdd)
    lines.append(
        "  required nominal margin for mu-3sigma >= 0 (fraction of Vdd): "
        + ", ".join("%s=%.3f" % (name, value)
                    for name, value in required.items())
    )
    if len(result.metrics) > 1:
        lines.append("  joint yield at the floor: %.4f"
                     % result.worst_case_yield(floor))
    return "\n".join(lines)


def run_experiment(name, session, options=None):
    """Run one experiment; returns (result, text report)."""
    if name == "calibration":
        result = calibration_checkpoints(session)
        return result, result.report()
    if name == "fig2":
        result = fig2_cell_vdd_scaling(session)
        return result, result.report()
    if name == "fig3":
        result = fig3_read_assists(session)
        return result, result.report()
    if name == "fig5":
        result = fig5_write_assists(session)
        return result, result.report()
    if name in ("table4", "fig7", "headline"):
        sweep = _run_sweep(session, options)
        if name == "table4":
            return sweep, sweep.report()
        if name == "fig7":
            return sweep, sweep.fig7_report()
        headline = sweep.headline()
        return headline, headline.report()
    if name == "corners":
        result = corners_study(session)
        return result, result.report()
    if name == "temperature":
        result = temperature_study(session)
        return result, result.report()
    if name == "breakdown":
        result = breakdown_study(session)
        return result, result.report()
    if name == "wordwidth":
        result = word_width_study(session)
        return result, result.report()
    if name == "selfcheck":
        result = run_selfcheck(session)
        return result, result.report()
    raise ValueError("unknown experiment %r" % (name,))


def run_pareto(argv):
    """The ``pareto`` subcommand: energy-delay Pareto fronts per cell.

    Rides the same :func:`repro.analysis.run_study` path as the paper
    sweeps with ``objective="pareto"``, so the fronts come from the
    bound-and-prune engine (default) or any of the exhaustive fallbacks.
    Alongside the front table it prints each cell's ``E^a * D^b``
    minimizer for the requested exponents ((1, 1) = the EDP optimum).
    """
    from .analysis.experiments import CAPACITIES_BYTES, FLAVORS, METHODS
    from .opt.pareto import best_weighted

    parser = argparse.ArgumentParser(
        prog="repro pareto",
        description="Sweep energy-delay Pareto fronts over the study "
                    "matrix (see docs/PERF.md on the pruned engine).",
    )
    parser.add_argument("--capacities", default=None,
                        help="comma-separated capacities in bytes "
                             "(default: the paper's five)")
    parser.add_argument("--flavors", default=None,
                        help="comma-separated subset of lvt,hvt")
    parser.add_argument("--methods", default=None,
                        help="comma-separated subset of M1,M2")
    parser.add_argument("--engine",
                        choices=("pruned", "fused", "vectorized", "loop"),
                        default="pruned",
                        help="search engine (pruned = bound-and-prune "
                             "with incremental front maintenance)")
    parser.add_argument("--energy-exponent", type=float, default=1.0,
                        help="a in the E^a * D^b pick (default 1)")
    parser.add_argument("--delay-exponent", type=float, default=1.0,
                        help="b in the E^a * D^b pick (default 1)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker count (1 = serial)")
    parser.add_argument("--executor",
                        choices=("auto", "serial", "thread", "process"),
                        default="auto")
    parser.add_argument("--cache", default=".repro_cache.json",
                        help="characterization cache path ('' disables)")
    parser.add_argument("--voltage-mode", choices=("measured", "paper"),
                        default="paper")
    parser.add_argument("--json", default=None,
                        help="also dump the sweep to this path")
    parser.add_argument("--profile", action="store_true",
                        help="print the perf telemetry report at the end")
    args = parser.parse_args(argv)

    capacities = (_parse_csv(args.capacities, int) if args.capacities
                  else CAPACITIES_BYTES)
    flavors = _parse_csv(args.flavors) if args.flavors else FLAVORS
    methods = _parse_csv(args.methods) if args.methods else METHODS
    run = run_study(
        capacities=capacities, flavors=flavors, methods=methods,
        workers=args.workers, executor=args.executor, engine=args.engine,
        cache_path=args.cache or None, voltage_mode=args.voltage_mode,
        objective="pareto",
    )
    sweep = run.sweep
    print(sweep.report())
    print()
    print("best E^%.3g * D^%.3g design per cell:"
          % (args.energy_exponent, args.delay_exponent))
    for key in sorted(sweep.results):
        result = sweep.results[key]
        point = best_weighted(result.front, args.energy_exponent,
                              args.delay_exponent)
        print("  %6dB %-3s %-2s  %4dx%-4d pre=%-2d wr=%-2d "
              "Vssc=%+.3f  D=%.3e s  E=%.3e J"
              % (key[0], key[1].upper(), key[2], point.n_r,
                 key[0] * 8 // point.n_r, point.n_pre, point.n_wr,
                 point.v_ssc, point.d_array, point.e_total))
    if args.json:
        save_json(sweep, args.json)
        print("result saved to %s" % args.json)
    if args.profile:
        print()
        print(perf.get_registry().report())
    return 0


def run_yield(argv):
    """The ``yield`` subcommand: ECC-relaxed co-optimization study.

    Each cell runs the fixed-delta baseline search *and* the
    margin-relaxed search under the requested code at the requested
    array yield target (``objective="yield"`` on
    :func:`repro.analysis.run_study`), then reports the relaxed floor,
    the relaxed sensing window, and the EDP gain with every check-bit
    column and ECC logic term charged.
    """
    from .analysis.experiments import CAPACITIES_BYTES, FLAVORS, METHODS

    parser = argparse.ArgumentParser(
        prog="repro yield",
        description="Compare fixed-delta optima against ECC-relaxed "
                    "yield-target optima (see docs/MODELING.md section "
                    "8 on the failure model).",
    )
    parser.add_argument("--capacities", default=None,
                        help="comma-separated capacities in bytes "
                             "(default: the paper's five)")
    parser.add_argument("--flavors", default=None,
                        help="comma-separated subset of lvt,hvt")
    parser.add_argument("--methods", default=None,
                        help="comma-separated subset of M1,M2")
    parser.add_argument("--code", default="secded",
                        help="ECC scheme: none, secded, or secded-xN "
                             "(N-way interleaved; default secded)")
    parser.add_argument("--y-target", type=float, default=0.9,
                        help="array yield target in (0, 1) "
                             "(default 0.9)")
    parser.add_argument("--engine",
                        choices=("pruned", "fused", "vectorized", "loop"),
                        default="pruned",
                        help="search engine for both arms")
    parser.add_argument("--sampler",
                        choices=("gaussian", "naive", "antithetic",
                                 "stratified", "shifted"),
                        default="gaussian",
                        help="margin-floor relaxation estimator: "
                             "gaussian closed form (default) or a "
                             "rare-event sampler (shifted = mean-shift "
                             "importance sampling)")
    parser.add_argument("--ci-target", type=float, default=0.1,
                        help="relative 95%% CI half-width the sampled "
                             "relaxation targets (default 0.1)")
    parser.add_argument("--max-samples", type=int, default=4096,
                        help="adaptive sample cap per rail pair for "
                             "the rare-event samplers (default 4096)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker count (1 = serial)")
    parser.add_argument("--executor",
                        choices=("auto", "serial", "thread", "process"),
                        default="auto")
    parser.add_argument("--cache", default=".repro_cache.json",
                        help="characterization cache path ('' disables)")
    parser.add_argument("--voltage-mode", choices=("measured", "paper"),
                        default="paper")
    parser.add_argument("--json", default=None,
                        help="also dump the per-cell summaries to this "
                             "path")
    parser.add_argument("--profile", action="store_true",
                        help="print the perf telemetry report at the end")
    args = parser.parse_args(argv)

    capacities = (_parse_csv(args.capacities, int) if args.capacities
                  else CAPACITIES_BYTES)
    flavors = _parse_csv(args.flavors) if args.flavors else FLAVORS
    methods = _parse_csv(args.methods) if args.methods else METHODS
    run = run_study(
        capacities=capacities, flavors=flavors, methods=methods,
        workers=args.workers, executor=args.executor, engine=args.engine,
        cache_path=args.cache or None, voltage_mode=args.voltage_mode,
        objective="yield", code=args.code, y_target=args.y_target,
        sampler=args.sampler, ci_target=args.ci_target,
        max_samples=args.max_samples,
    )
    sweep = run.sweep
    print(sweep.report())
    best = max(sweep.results.values(), key=lambda cell: cell.edp_gain)
    print()
    print("best cell: %s  gain=%+.2f%%  (relaxed floor %.1f mV, "
          "dVs %.0f mV, array yield %.6g)"
          % (best.label, 100.0 * best.edp_gain,
             best.delta_relaxed * 1e3,
             best.sense_voltage_relaxed * 1e3, best.yield_coded))
    if args.json:
        save_json({"code": sweep.code, "y_target": sweep.y_target,
                   "sampler": sweep.sampler,
                   "voltage_mode": sweep.voltage_mode,
                   "cells": sweep.summaries()}, args.json)
        print("result saved to %s" % args.json)
    if args.profile:
        print()
        print(perf.get_registry().report())
    return 0


def run_serve(argv):
    """The ``serve`` subcommand: run the optimization service."""
    import asyncio

    from .service.server import ServiceConfig, serve_forever

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve /v1/optimize, /v1/evaluate and /v1/montecarlo "
                    "over HTTP with dynamic request batching "
                    "(see docs/SERVICE.md).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787,
                        help="listen port (0 = ephemeral)")
    parser.add_argument("--executor",
                        choices=("auto", "thread", "process"),
                        default="thread",
                        help="worker pool type: thread shares one warm "
                             "session; process forks workers that map "
                             "the session's shared-memory arena; auto "
                             "picks process on multi-core hosts and "
                             "thread on single-CPU ones")
    parser.add_argument("--workers", type=int, default=0,
                        help="pool size (0 = cpu count)")
    parser.add_argument("--max-batch", type=int, default=8,
                        help="flush a request group at this many items")
    parser.add_argument("--max-wait-ms", type=float, default=5.0,
                        help="max time a request waits for batch-mates "
                             "(0 disables batching)")
    parser.add_argument("--max-pending", type=int, default=64,
                        help="in-flight bound; beyond it requests get 429")
    parser.add_argument("--endpoint-max-batch", action="append",
                        default=[], metavar="KIND=N",
                        help="per-endpoint flush size override, e.g. "
                             "'optimize=16' (repeatable; kinds: optimize,"
                             " evaluate, montecarlo)")
    parser.add_argument("--endpoint-max-wait-ms", action="append",
                        default=[], metavar="KIND=MS",
                        help="per-endpoint batch window override, e.g. "
                             "'optimize=12.5' (repeatable)")
    parser.add_argument("--cache", default=".repro_cache.json",
                        help="characterization cache path ('' disables)")
    parser.add_argument("--voltage-mode", choices=("measured", "paper"),
                        default="paper")
    parser.add_argument("--jobs", default=None, metavar="PATH",
                        help="enable the durable jobs API backed by this "
                             "SQLite file (see docs/JOBS.md)")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="experiment store path (default: the --jobs "
                             "file; fronts /v1/optimize with "
                             "cross-process dedup)")
    parser.add_argument("--job-workers", type=int, default=1,
                        help="background job worker threads")
    parser.add_argument("--job-lease", type=float, default=30.0,
                        help="job claim lease / heartbeat horizon [s]")
    parser.add_argument("--peer", action="append", default=[],
                        metavar="URL",
                        help="another serve replica (repeatable); peers "
                             "turn on consistent-hash result sharding, "
                             "store replication and /v1/fleet (see "
                             "docs/FLEET.md)")
    parser.add_argument("--self-url", default=None, metavar="URL",
                        help="URL peers reach this replica at "
                             "(default: http://HOST:PORT)")
    parser.add_argument("--probe-interval", type=float, default=3.0,
                        help="peer health probe cadence [s]")
    parser.add_argument("--proxy-retries", type=int, default=1,
                        help="extra shard-proxy attempts against later "
                             "healthy ring preferences before local "
                             "failover (0 = single attempt)")
    args = parser.parse_args(argv)
    executor = args.executor
    if executor == "auto":
        # Explicit --executor process is always honored; auto avoids
        # forking a pool that would serialize on a single core.
        if (os.cpu_count() or 1) > 1:
            executor = "process"
        else:
            executor = "thread"
            print("single-CPU host: --executor auto selected the "
                  "shared-session thread pool")
    overrides = {}
    for flag, key, cast in (
        ("--endpoint-max-batch", "max_batch", int),
        ("--endpoint-max-wait-ms", "max_wait_ms", float),
    ):
        attr = flag.lstrip("-").replace("-", "_")
        for spec in getattr(args, attr):
            kind, _, value = spec.partition("=")
            kind = kind.strip()
            if not kind or not value:
                parser.error("%s expects KIND=VALUE, got %r"
                             % (flag, spec))
            try:
                overrides.setdefault(kind, {})[key] = cast(value)
            except ValueError:
                parser.error("%s: bad value in %r" % (flag, spec))
    config = ServiceConfig(
        host=args.host, port=args.port, executor=executor,
        workers=args.workers, max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms, max_pending=args.max_pending,
        endpoint_overrides=overrides or None,
        cache_path=args.cache, voltage_mode=args.voltage_mode,
        jobs_path=args.jobs, store_path=args.store,
        job_workers=args.job_workers, job_lease_seconds=args.job_lease,
        peers=tuple(args.peer), self_url=args.self_url,
        probe_interval_s=args.probe_interval,
        proxy_retries=args.proxy_retries,
    )
    asyncio.run(serve_forever(config))
    return 0


def _parse_csv(text, cast=str):
    return [cast(part.strip()) for part in text.split(",") if part.strip()]


def run_jobs(argv):
    """The ``jobs`` subcommand: drive the durable queue from the shell."""
    import json as json_module
    import time as time_module

    from .jobs import JobQueue, load_sweep_results
    from .store import ExperimentStore

    parser = argparse.ArgumentParser(
        prog="repro jobs",
        description="Submit, inspect and execute durable study sweeps "
                    "(see docs/JOBS.md).",
    )
    parser.add_argument("action",
                        choices=("submit", "status", "watch", "cancel",
                                 "work"))
    parser.add_argument("job_id", nargs="?", default=None,
                        help="job id (status/watch/cancel)")
    parser.add_argument("--queue", default="jobs.db",
                        help="queue SQLite path (default: jobs.db)")
    parser.add_argument("--store", default=None,
                        help="experiment store path (default: the queue "
                             "file)")
    parser.add_argument("--capacities", default=None,
                        help="submit: comma-separated capacities in bytes")
    parser.add_argument("--flavors", default=None,
                        help="submit: comma-separated subset of lvt,hvt")
    parser.add_argument("--methods", default=None,
                        help="submit: comma-separated subset of M1,M2")
    parser.add_argument("--engine",
                        choices=("fused", "pruned", "vectorized", "loop"),
                        default="vectorized")
    parser.add_argument("--voltage-mode", choices=("measured", "paper"),
                        default="paper")
    parser.add_argument("--cache", default=".repro_cache.json",
                        help="characterization cache for the executing "
                             "worker")
    parser.add_argument("--priority", type=int, default=0)
    parser.add_argument("--max-attempts", type=int, default=3)
    parser.add_argument("--timeout", type=float, default=3600.0,
                        help="watch: give up after this long [s]")
    parser.add_argument("--once", action="store_true",
                        help="work: run one job and exit")
    parser.add_argument("--max-jobs", type=int, default=None,
                        help="work: exit after this many jobs")
    parser.add_argument("--arena", default=None, metavar="NAME",
                        help="work: attach the named shared-memory "
                             "session arena (zero-copy warm start)")
    parser.add_argument("--server", default=None, metavar="URL",
                        help="work: claim jobs from this serve instance "
                             "over HTTP instead of a local queue file "
                             "(see docs/FLEET.md)")
    parser.add_argument("--replicate", action="append", default=[],
                        metavar="URL",
                        help="work: replicate store checkpoints to this "
                             "serve replica (repeatable)")
    # Intermixed parsing so `jobs watch --queue x <job-id>` works (plain
    # parse_args cannot match an optional positional after options).
    args = parser.parse_intermixed_args(argv)

    if args.action == "work":
        from .jobs.worker import main as worker_main

        worker_argv = ["--cache", args.cache]
        if args.server:
            worker_argv += ["--server", args.server]
        else:
            worker_argv += ["--queue", args.queue]
        if args.store:
            worker_argv += ["--store", args.store]
        for url in args.replicate:
            worker_argv += ["--replicate", url]
        if args.once:
            worker_argv += ["--once"]
        if args.max_jobs is not None:
            worker_argv += ["--max-jobs", str(args.max_jobs)]
        if args.arena:
            worker_argv += ["--arena", args.arena]
        return worker_main(worker_argv)

    queue = JobQueue(args.queue)
    if args.action == "submit":
        spec = {"engine": args.engine, "voltage_mode": args.voltage_mode,
                "cache_path": args.cache or None}
        if args.capacities:
            spec["capacities"] = _parse_csv(args.capacities, int)
        if args.flavors:
            spec["flavors"] = _parse_csv(args.flavors)
        if args.methods:
            spec["methods"] = _parse_csv(args.methods)
        from .jobs.worker import normalize_study_spec

        spec = normalize_study_spec(spec)
        job_id = queue.submit("study", spec, priority=args.priority,
                              max_attempts=args.max_attempts)
        print("submitted %s: %d-cell study sweep"
              % (job_id, len(spec["capacities"]) * len(spec["flavors"])
                 * len(spec["methods"])))
        print("run it with: python -m repro.cli jobs work --queue %s"
              % args.queue)
        return 0
    if args.action == "status":
        if args.job_id:
            print(json_module.dumps(queue.get(args.job_id).to_payload(),
                                    indent=2, sort_keys=True))
            return 0
        counts = queue.counts()
        print("queue %s: %s" % (args.queue, "  ".join(
            "%s=%d" % (state, counts[state]) for state in counts)))
        for job in queue.list_jobs(limit=20):
            progress = job.progress or {}
            print("  %-16s %-9s attempt %d/%d  %s/%s cells  %s"
                  % (job.id, job.state, job.attempts, job.max_attempts,
                     progress.get("completed", "-"),
                     progress.get("total", "-"), job.error or ""))
        return 0
    if args.action == "cancel":
        if not args.job_id:
            parser.error("cancel needs a job id")
        if queue.cancel(args.job_id):
            print("cancelled %s" % args.job_id)
            return 0
        print("%s is already terminal (%s)"
              % (args.job_id, queue.get(args.job_id).state))
        return 1
    # watch
    if not args.job_id:
        parser.error("watch needs a job id")
    deadline = time_module.monotonic() + args.timeout
    last = None
    while True:
        job = queue.get(args.job_id)
        progress = job.progress or {}
        line = "%s  %s/%s cells  (attempt %d)" % (
            job.state, progress.get("completed", 0),
            progress.get("total", "?"), job.attempts)
        if line != last:
            print(line, flush=True)
            last = line
        if job.terminal:
            break
        if time_module.monotonic() >= deadline:
            print("timed out after %.0f s" % args.timeout)
            return 1
        time_module.sleep(0.5)
    if job.state == "done" and job.result_key:
        store = ExperimentStore(args.store or args.queue)
        sweep = load_sweep_results(store, job.result_key)
        print()
        # A job may sweep any sub-matrix, so render cell by cell rather
        # than through the full-matrix Table 4 report.
        for (capacity, flavor, method) in sorted(sweep.results):
            result = sweep.results[(capacity, flavor, method)]
            design = result.design
            print("  %6dB %-3s %-2s  %3dx%-3d pre=%d wr=%d  "
                  "Vddc=%.2f Vwl=%.2f  EDP=%.3e"
                  % (capacity, flavor.upper(), method, design.n_r,
                     design.n_c, design.n_pre, design.n_wr,
                     design.v_ddc, design.v_wl, result.metrics.edp))
        return 0
    if job.state != "done":
        print("job ended %s: %s" % (job.state, job.error or ""))
        return 1
    return 0


def run_store(argv):
    """The ``store`` subcommand: inspect the experiment store."""
    import json as json_module
    import time

    from .store import ExperimentStore

    parser = argparse.ArgumentParser(
        prog="repro store",
        description="List, show and garbage-collect stored experiment "
                    "results (see docs/JOBS.md).",
    )
    parser.add_argument("action", choices=("ls", "show", "gc"))
    parser.add_argument("key", nargs="?", default=None,
                        help="result key (show)")
    parser.add_argument("--store", default="jobs.db",
                        help="store SQLite path (default: jobs.db)")
    parser.add_argument("--kind", default=None,
                        help="filter by kind (cell, sweep)")
    parser.add_argument("--limit", type=int, default=50)
    parser.add_argument("--older-than", type=float, default=None,
                        metavar="SECONDS",
                        help="gc: only entries not read for this long")
    parser.add_argument("--dry-run", action="store_true",
                        help="gc: list victims without deleting")
    # Intermixed parsing so `store show --store x <key>` works (plain
    # parse_args cannot match an optional positional after options).
    args = parser.parse_intermixed_args(argv)

    store = ExperimentStore(args.store)
    if args.action == "ls":
        stats = store.stats()
        print("store %s: %d entries" % (args.store, stats["total"]))
        for kind, entry in stats["by_kind"].items():
            print("  %-6s %4d entries  %8d payload bytes"
                  % (kind, entry["count"], entry["payload_bytes"]))
        for row in store.ls(kind=args.kind, limit=args.limit):
            print("  %s  %7d B  used %s" % (
                row["key"], row["payload_bytes"],
                time.strftime("%Y-%m-%d %H:%M:%S",
                              time.localtime(row["last_used_at"]))))
        return 0
    if args.action == "show":
        if not args.key:
            parser.error("show needs a result key")
        payload = store.get(args.key, touch=False)
        if payload is None:
            print("no entry %r" % args.key)
            return 1
        print(json_module.dumps(
            {"key": args.key, "payload": payload,
             "provenance": store.provenance(args.key)},
            indent=2, sort_keys=True))
        return 0
    victims = store.gc(older_than_seconds=args.older_than,
                       kind=args.kind, dry_run=args.dry_run)
    verb = "would delete" if args.dry_run else "deleted"
    print("%s %d entr%s" % (verb, len(victims),
                            "y" if len(victims) == 1 else "ies"))
    for key in victims:
        print("  %s" % key)
    return 0


def run_fleet(argv):
    """The ``fleet`` subcommand: multi-host topology tooling."""
    import json as json_module

    parser = argparse.ArgumentParser(
        prog="repro fleet",
        description="Stand up, inspect and smoke-test a multi-host "
                    "serve/worker fleet (see docs/FLEET.md).",
    )
    parser.add_argument("action", choices=("smoke", "status"))
    parser.add_argument("--server", default="http://127.0.0.1:8787",
                        metavar="URL",
                        help="status: a replica to ask for /v1/fleet")
    parser.add_argument("--cache", default=".repro_cache.json",
                        help="smoke: characterization cache path")
    parser.add_argument("--hosts", type=int, default=2,
                        help="smoke: serve replica count (>= 2)")
    parser.add_argument("--workers", type=int, default=2,
                        help="smoke: remote worker subprocess count")
    parser.add_argument("--throttle", type=float, default=0.4,
                        help="smoke: per-cell pacing (kill window)")
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_intermixed_args(argv)

    if args.action == "smoke":
        from .fleet.smoke import main as smoke_main

        return smoke_main(["--cache", args.cache,
                           "--hosts", str(args.hosts),
                           "--workers", str(args.workers),
                           "--throttle", str(args.throttle),
                           "--timeout", str(args.timeout)])
    # status
    from .fleet.topology import parse_peer_url
    from .service.client import ServiceClient

    host, port = parse_peer_url(args.server)
    with ServiceClient(host=host, port=port, timeout=10.0) as client:
        payload = {"fleet": client.fleet(),
                   "metrics": client.fleet_metrics()["totals"]}
    print(json_module.dumps(payload, indent=2, sort_keys=True))
    return 0


def main(argv=None):
    if argv is None:
        argv = sys.argv[1:]
    try:
        if argv and argv[0] == "pareto":
            return run_pareto(argv[1:])
        if argv and argv[0] == "yield":
            return run_yield(argv[1:])
        if argv and argv[0] == "serve":
            return run_serve(argv[1:])
        if argv and argv[0] == "jobs":
            return run_jobs(argv[1:])
        if argv and argv[0] == "store":
            return run_store(argv[1:])
        if argv and argv[0] == "fleet":
            return run_fleet(argv[1:])
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        os.close(sys.stdout.fileno())
        return 0
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the DAC'16 SRAM EDP co-optimization paper.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS,
                        help="which figure/table to regenerate")
    parser.add_argument("--voltage-mode", choices=("measured", "paper"),
                        default="paper",
                        help="V_DDC/V_WL presets: our measured minima or "
                             "the paper's reported values (default)")
    parser.add_argument("--cache", default=".repro_cache.json",
                        help="characterization cache path ('' disables)")
    parser.add_argument("--json", default=None,
                        help="also dump the result object to this path")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker count for the optimization sweeps "
                             "(1 = serial; >1 fans the capacity x flavor "
                             "x method matrix over a pool)")
    parser.add_argument("--executor",
                        choices=("auto", "serial", "thread", "process"),
                        default="auto",
                        help="pool type for --workers > 1")
    parser.add_argument("--engine",
                        choices=("fused", "pruned", "vectorized",
                                 "batched", "loop"),
                        default="vectorized",
                        help="search/cell engine (fused = the whole "
                             "4-D space in one broadcast call; pruned "
                             "= bound-and-prune tile skipping; loop = "
                             "the reference point-by-point "
                             "implementation; batched = the vectorized "
                             "cell engine, montecarlo default)")
    parser.add_argument("--samples", type=int, default=200,
                        help="montecarlo: number of Monte Carlo samples")
    parser.add_argument("--seed", type=int, default=0,
                        help="montecarlo: random seed for the Vt draws")
    parser.add_argument("--metrics", default="hsnm,rsnm,wm",
                        help="montecarlo: comma-separated margin metrics "
                             "(hsnm, rsnm, wm)")
    parser.add_argument("--flavor", choices=("lvt", "hvt"), default="hvt",
                        help="montecarlo: cell flavor")
    parser.add_argument("--profile", action="store_true",
                        help="print the perf telemetry report at the end")
    args = parser.parse_args(argv)

    last_result = None
    if args.experiment == "montecarlo":
        # Needs no array characterization; skip the Session entirely.
        result, text = run_montecarlo(args)
        print("=" * 72)
        print("# montecarlo")
        print("=" * 72)
        print(text)
        print()
        last_result = result
    else:
        session = Session.create(
            cache_path=args.cache or None,
            voltage_mode=args.voltage_mode,
        )
        names = PAPER_SET if args.experiment == "all" else (
            args.experiment,
        )
        for name in names:
            result, text = run_experiment(name, session, args)
            print("=" * 72)
            print("# %s" % name)
            print("=" * 72)
            print(text)
            print()
            last_result = result
    if args.json and last_result is not None:
        save_json(last_result, args.json)
        print("result saved to %s" % args.json)
    if args.profile:
        print()
        print(perf.get_registry().report())
    return 0


if __name__ == "__main__":
    sys.exit(main())
