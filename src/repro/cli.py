"""Command-line entry point: regenerate any paper figure/table.

Usage::

    python -m repro.cli calibration
    python -m repro.cli fig2
    python -m repro.cli fig3
    python -m repro.cli fig5
    python -m repro.cli table4 --voltage-mode paper
    python -m repro.cli fig7 --workers 4
    python -m repro.cli headline --profile
    python -m repro.cli montecarlo --samples 2000 --metrics hsnm,rsnm,wm
    python -m repro.cli all
    python -m repro.cli serve --port 8787

The first run characterizes the device/cell/periphery stack with the
built-in simulator (a few minutes) and caches the results; later runs
are fast.

``serve`` starts the optimization service (:mod:`repro.service`): an
asyncio HTTP server exposing /v1/optimize, /v1/evaluate and
/v1/montecarlo with dynamic request batching, a result cache, and
/metrics telemetry — see ``docs/SERVICE.md``.

``--workers N`` fans the optimization matrix (table4 / fig7 / headline)
over a worker pool (see :mod:`repro.analysis.runner`); ``--profile``
prints the :mod:`repro.perf` telemetry report after the run.
"""

from __future__ import annotations

import argparse
import sys

from . import perf
from .analysis import (
    Session,
    breakdown_study,
    calibration_checkpoints,
    corners_study,
    fig2_cell_vdd_scaling,
    fig3_read_assists,
    fig5_write_assists,
    optimize_all,
    run_selfcheck,
    run_study,
    temperature_study,
    word_width_study,
)
from .analysis.serialize import save_json
from .cell.montecarlo import required_margin_fraction, run_cell_montecarlo
from .cell.sram6t import SRAM6TCell
from .devices.library import DeviceLibrary

#: Paper artifacts first, extension studies after.
EXPERIMENTS = ("calibration", "fig2", "fig3", "fig5", "table4", "fig7",
               "headline", "corners", "temperature", "breakdown",
               "wordwidth", "selfcheck", "montecarlo", "all")

#: What "all" expands to (the paper's artifacts).
PAPER_SET = ("calibration", "fig2", "fig3", "fig5", "table4", "fig7",
             "headline")


def _run_sweep(session, options):
    """The Table-4/Figure-7 sweep, parallel when workers were requested."""
    workers = getattr(options, "workers", 1) if options else 1
    engine = getattr(options, "engine", "vectorized") if options else (
        "vectorized"
    )
    if workers and workers > 1:
        run = run_study(
            session=session, workers=workers,
            executor=getattr(options, "executor", "auto"),
            engine=engine,
        )
        return run.sweep
    return optimize_all(session, engine=engine)


def run_montecarlo(options):
    """The ``montecarlo`` entry point: cell margin distributions.

    Runs directly on the device library (no array characterization
    needed).  ``--engine batched`` (default) uses the vectorized cell
    engine; ``--engine loop`` runs the scalar reference — both are
    bit-identical, so the engine choice only changes runtime.
    """
    library = DeviceLibrary.default_7nm()
    cell = SRAM6TCell.from_library(library, options.flavor)
    engine = "loop" if options.engine == "loop" else "batched"
    metrics = tuple(
        name.strip() for name in options.metrics.split(",") if name.strip()
    )
    result = run_cell_montecarlo(
        cell, n_samples=options.samples, seed=options.seed,
        vdd=library.vdd, metrics=metrics, engine=engine,
    )
    return result, _montecarlo_report(result, library.vdd, options.flavor,
                                      engine)


def _montecarlo_report(result, vdd, flavor, engine):
    floor = 0.35 * vdd
    lines = [
        "Monte Carlo cell margins: flavor=%s n=%d engine=%s Vdd=%.3f V"
        % (flavor, result.n_samples, engine, vdd),
        "yield floor 0.35*Vdd = %.4f V" % floor,
    ]
    for name, samples in result.metrics.items():
        lines.append(
            "  %-5s mean=%7.4f V  sigma=%7.4f V  mu-3sigma=%7.4f V  "
            "yield@floor=%.4f"
            % (name, samples.mean, samples.sigma,
               samples.mu_minus_k_sigma(3.0), samples.yield_at(floor))
        )
    required = required_margin_fraction(result, vdd=vdd)
    lines.append(
        "  required nominal margin for mu-3sigma >= 0 (fraction of Vdd): "
        + ", ".join("%s=%.3f" % (name, value)
                    for name, value in required.items())
    )
    if len(result.metrics) > 1:
        lines.append("  joint yield at the floor: %.4f"
                     % result.worst_case_yield(floor))
    return "\n".join(lines)


def run_experiment(name, session, options=None):
    """Run one experiment; returns (result, text report)."""
    if name == "calibration":
        result = calibration_checkpoints(session)
        return result, result.report()
    if name == "fig2":
        result = fig2_cell_vdd_scaling(session)
        return result, result.report()
    if name == "fig3":
        result = fig3_read_assists(session)
        return result, result.report()
    if name == "fig5":
        result = fig5_write_assists(session)
        return result, result.report()
    if name in ("table4", "fig7", "headline"):
        sweep = _run_sweep(session, options)
        if name == "table4":
            return sweep, sweep.report()
        if name == "fig7":
            return sweep, sweep.fig7_report()
        headline = sweep.headline()
        return headline, headline.report()
    if name == "corners":
        result = corners_study(session)
        return result, result.report()
    if name == "temperature":
        result = temperature_study(session)
        return result, result.report()
    if name == "breakdown":
        result = breakdown_study(session)
        return result, result.report()
    if name == "wordwidth":
        result = word_width_study(session)
        return result, result.report()
    if name == "selfcheck":
        result = run_selfcheck(session)
        return result, result.report()
    raise ValueError("unknown experiment %r" % (name,))


def run_serve(argv):
    """The ``serve`` subcommand: run the optimization service."""
    import asyncio

    from .service.server import ServiceConfig, serve_forever

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve /v1/optimize, /v1/evaluate and /v1/montecarlo "
                    "over HTTP with dynamic request batching "
                    "(see docs/SERVICE.md).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787,
                        help="listen port (0 = ephemeral)")
    parser.add_argument("--executor", choices=("thread", "process"),
                        default="thread",
                        help="worker pool type: thread shares one warm "
                             "session; process forks warm workers")
    parser.add_argument("--workers", type=int, default=0,
                        help="pool size (0 = cpu count)")
    parser.add_argument("--max-batch", type=int, default=8,
                        help="flush a request group at this many items")
    parser.add_argument("--max-wait-ms", type=float, default=5.0,
                        help="max time a request waits for batch-mates "
                             "(0 disables batching)")
    parser.add_argument("--max-pending", type=int, default=64,
                        help="in-flight bound; beyond it requests get 429")
    parser.add_argument("--cache", default=".repro_cache.json",
                        help="characterization cache path ('' disables)")
    parser.add_argument("--voltage-mode", choices=("measured", "paper"),
                        default="paper")
    args = parser.parse_args(argv)
    config = ServiceConfig(
        host=args.host, port=args.port, executor=args.executor,
        workers=args.workers, max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms, max_pending=args.max_pending,
        cache_path=args.cache, voltage_mode=args.voltage_mode,
    )
    asyncio.run(serve_forever(config))
    return 0


def main(argv=None):
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return run_serve(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the DAC'16 SRAM EDP co-optimization paper.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS,
                        help="which figure/table to regenerate")
    parser.add_argument("--voltage-mode", choices=("measured", "paper"),
                        default="paper",
                        help="V_DDC/V_WL presets: our measured minima or "
                             "the paper's reported values (default)")
    parser.add_argument("--cache", default=".repro_cache.json",
                        help="characterization cache path ('' disables)")
    parser.add_argument("--json", default=None,
                        help="also dump the result object to this path")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker count for the optimization sweeps "
                             "(1 = serial; >1 fans the capacity x flavor "
                             "x method matrix over a pool)")
    parser.add_argument("--executor",
                        choices=("auto", "serial", "thread", "process"),
                        default="auto",
                        help="pool type for --workers > 1")
    parser.add_argument("--engine",
                        choices=("vectorized", "batched", "loop"),
                        default="vectorized",
                        help="search/cell engine (loop = the reference "
                             "point-by-point implementation; batched = "
                             "the vectorized cell engine, montecarlo "
                             "default)")
    parser.add_argument("--samples", type=int, default=200,
                        help="montecarlo: number of Monte Carlo samples")
    parser.add_argument("--seed", type=int, default=0,
                        help="montecarlo: random seed for the Vt draws")
    parser.add_argument("--metrics", default="hsnm,rsnm,wm",
                        help="montecarlo: comma-separated margin metrics "
                             "(hsnm, rsnm, wm)")
    parser.add_argument("--flavor", choices=("lvt", "hvt"), default="hvt",
                        help="montecarlo: cell flavor")
    parser.add_argument("--profile", action="store_true",
                        help="print the perf telemetry report at the end")
    args = parser.parse_args(argv)

    last_result = None
    if args.experiment == "montecarlo":
        # Needs no array characterization; skip the Session entirely.
        result, text = run_montecarlo(args)
        print("=" * 72)
        print("# montecarlo")
        print("=" * 72)
        print(text)
        print()
        last_result = result
    else:
        session = Session.create(
            cache_path=args.cache or None,
            voltage_mode=args.voltage_mode,
        )
        names = PAPER_SET if args.experiment == "all" else (
            args.experiment,
        )
        for name in names:
            result, text = run_experiment(name, session, args)
            print("=" * 72)
            print("# %s" % name)
            print("=" * 72)
            print(text)
            print()
            last_result = result
    if args.json and last_result is not None:
        save_json(last_result, args.json)
        print("result saved to %s" % args.json)
    if args.profile:
        print()
        print(perf.get_registry().report())
    return 0


if __name__ == "__main__":
    sys.exit(main())
