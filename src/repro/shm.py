"""Zero-copy shared-memory session arenas for parallel workers.

A process-pool worker needs the same expensive read-only state as its
parent: the characterization LUT grids and the memoized yield margins.
Shipping them by pickle re-copies every array per worker, and a cold
:meth:`Session.create` re-reads (or worse, re-runs) the
characterization.  A :class:`SessionArena` instead publishes that state
**once** into a POSIX shared-memory segment; each worker maps the
segment and rebuilds its session directly over the mapped float64
grids — zero copies, zero characterization, O(segment size) attach.

Segment layout::

    +------------------------------------------------------------+
    | prelude: "<8sII" = magic, arena version, header length     |
    +------------------------------------------------------------+
    | UTF-8 JSON header: characterization payloads + margin      |
    |   memos, with every numeric list replaced by an            |
    |   {"__array__": index} reference, plus the array table     |
    |   (offset/shape per array)                                 |
    +------------------------------------------------------------+
    | 8-aligned float64 region: the referenced arrays, C order   |
    +------------------------------------------------------------+

The header reuses the exact dictionaries the characterization cache
already round-trips (:func:`repro.periphery.characterize._to_dict`), so
an arena-built session is bit-identical to a cache-built one.  The
arrays are exposed to workers as read-only numpy views over the
mapping; ``LUT1D``/``LUT2D`` keep such views as-is (``np.asarray`` on a
C-contiguous float64 array is a no-op), so the worker's LUTs *are* the
shared pages.

Lifecycle: the publisher owns the segment and is the only party that
unlinks it (:meth:`dispose`, also hooked to garbage collection via
``weakref.finalize`` so a failing parent still cleans up at interpreter
exit; a SIGKILL'd parent is covered by its resource tracker).  Workers
attach *untracked* (see :func:`_attach_untracked`) and keep their arena
alive for the process lifetime because their LUTs alias its pages.
"""

from __future__ import annotations

import json
import struct
import threading
import weakref
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from .errors import ArenaError

#: First prelude field; identifies a segment as a repro session arena.
MAGIC = b"REPROARN"

#: Arena *format* version; bump on any layout/header change so stale
#: publishers and new readers (or vice versa) fail loudly instead of
#: misreading each other's bytes.
ARENA_VERSION = 1

_PRELUDE = struct.Struct("<8sII")
_ALIGN = 8


def _align(n):
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


def _pack(obj, arrays):
    """Recursively replace numeric lists with ``{"__array__": i}`` refs.

    Non-numeric lists (none exist in the characterization payloads
    today, but the walk is generic) and scalars pass through untouched,
    so the packed structure stays plain JSON.
    """
    if isinstance(obj, dict):
        return {key: _pack(value, arrays) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        try:
            candidate = np.asarray(obj, dtype=float)
        except (TypeError, ValueError):
            candidate = None
        if candidate is not None and candidate.size:
            return _pack_array(candidate, arrays)
        return [_pack(value, arrays) for value in obj]
    return obj


def _pack_array(values, arrays):
    arrays.append(np.ascontiguousarray(values, dtype=np.float64))
    return {"__array__": len(arrays) - 1}


def _unpack(obj, views):
    """Resolve ``{"__array__": i}`` refs into the mapped views."""
    if isinstance(obj, dict):
        if set(obj) == {"__array__"}:
            return views[obj["__array__"]]
        return {key: _unpack(value, views) for key, value in obj.items()}
    if isinstance(obj, list):
        return [_unpack(value, views) for value in obj]
    return obj


def _pack_memo(memo, arrays):
    """One flavor's margin memo, with the RSNM cache's tuple keys (not
    JSON-representable) split into a parallel (N, 2) key array and an
    (N,) value array."""
    entry = {"hsnm": memo.get("hsnm"), "v_flip": memo.get("v_flip")}
    rsnm = memo.get("rsnm") or {}
    if rsnm:
        keys = sorted(rsnm)
        entry["rsnm_keys"] = _pack_array(
            np.asarray(keys, dtype=float).reshape(-1, 2), arrays
        )
        entry["rsnm_values"] = _pack_array(
            np.asarray([rsnm[key] for key in keys], dtype=float), arrays
        )
    return entry


def _unpack_memo(entry, views):
    memo = {"hsnm": entry.get("hsnm"), "v_flip": entry.get("v_flip"),
            "rsnm": {}}
    if "rsnm_keys" in entry:
        keys = _unpack(entry["rsnm_keys"], views)
        values = _unpack(entry["rsnm_values"], views)
        # Re-round: the cache keys are round(v, 4) by construction
        # (see YieldConstraint.rsnm) and must hash identically.
        memo["rsnm"] = {
            (round(float(pair[0]), 4), round(float(pair[1]), 4)):
                float(value)
            for pair, value in zip(keys, values)
        }
    return memo


_ATTACH_LOCK = threading.Lock()


def _attach_untracked(name):
    """Open an existing segment without resource-tracker registration.

    Python < 3.13 registers *attachments* with the resource tracker as
    if they were creations; with several forked workers attaching the
    same segment, the usual unregister-after-attach workaround
    double-unregisters one shared tracker cache and spews ``KeyError``
    tracebacks from the tracker process.  Suppressing the registration
    at construction time leaves exactly one registration alive — the
    publisher's — which is also what makes the tracker unlink the
    segment if the publisher dies without cleaning up.
    """
    with _ATTACH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _release(shm, owner):
    """Idempotent close (+ unlink for the owner), safe at GC time."""
    try:
        shm.close()
    except BufferError:
        pass        # a live numpy view still aliases the mapping
    except Exception:
        pass
    if owner:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass    # already unlinked
        except Exception:
            pass


class SessionArena:
    """A published (or attached) shared-memory session snapshot.

    Use :meth:`publish` in the parent and :meth:`attach` +
    :meth:`to_session` in each worker::

        arena = SessionArena.publish(session, margin_memos)
        try:
            pool = ProcessPoolExecutor(
                initializer=worker_init, initargs=(..., arena.name))
            ...
        finally:
            arena.dispose()
    """

    def __init__(self, shm, header, views, owner):
        self._shm = shm
        self._header = header
        self._views = list(views)
        self._owner = owner
        self._closed = False
        self._unlinked = False
        self._finalizer = weakref.finalize(self, _release, shm, owner)

    # -- publishing --------------------------------------------------------

    @classmethod
    def publish(cls, session, margin_memos=None, name=None):
        """Snapshot ``session`` into a fresh shared-memory segment.

        ``margin_memos`` maps flavor to
        :meth:`YieldConstraint.export_margin_memo`; when omitted, the
        memos of the session's already-built constraints are used.
        ``name=None`` lets the OS pick a collision-free segment name.
        """
        from .periphery.characterize import VERSION as CHAR_VERSION
        from .periphery.characterize import _to_dict

        if margin_memos is None:
            margin_memos = {
                flavor: constraint.export_margin_memo()
                for flavor, constraint in session.constraints.items()
            }
        arrays = []
        chars = {
            flavor: _pack(_to_dict(char), arrays)
            for flavor, char in sorted(session.chars.items())
        }
        memos = {
            flavor: _pack_memo(memo, arrays)
            for flavor, memo in sorted(margin_memos.items())
        }
        table = []
        data_bytes = 0
        for array in arrays:
            table.append({"offset": data_bytes,
                          "shape": list(array.shape)})
            data_bytes += array.nbytes
        header = {
            "char_version": CHAR_VERSION,
            "voltage_mode": session.voltage_mode,
            "chars": chars,
            "memos": memos,
            "arrays": table,
        }
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        data_start = _align(_PRELUDE.size + len(header_bytes))
        shm = shared_memory.SharedMemory(
            create=True, name=name, size=max(data_start + data_bytes, 1)
        )
        try:
            _PRELUDE.pack_into(shm.buf, 0, MAGIC, ARENA_VERSION,
                               len(header_bytes))
            end = _PRELUDE.size + len(header_bytes)
            shm.buf[_PRELUDE.size:end] = header_bytes
            views = []
            for array, entry in zip(arrays, table):
                view = np.ndarray(
                    array.shape, dtype=np.float64, buffer=shm.buf,
                    offset=data_start + entry["offset"],
                )
                view[...] = array
                views.append(view)
        except Exception:
            _release(shm, owner=True)
            raise
        return cls(shm, header, views, owner=True)

    # -- attaching ---------------------------------------------------------

    @classmethod
    def attach(cls, name):
        """Map an existing arena read-only; :class:`ArenaError` when the
        segment is missing, foreign, or from another format version."""
        try:
            shm = _attach_untracked(name)
        except (FileNotFoundError, ValueError) as exc:
            raise ArenaError(
                "no session arena named %r (%s)" % (name, exc)
            ) from exc
        try:
            if shm.size < _PRELUDE.size:
                raise ArenaError(
                    "segment %r is too small (%d bytes) to be a session "
                    "arena" % (name, shm.size)
                )
            magic, version, header_len = _PRELUDE.unpack_from(shm.buf, 0)
            if magic != MAGIC:
                raise ArenaError(
                    "segment %r is not a repro session arena "
                    "(magic %r)" % (name, magic)
                )
            if version != ARENA_VERSION:
                raise ArenaError(
                    "session arena %r uses format version %d; this build "
                    "reads version %d" % (name, version, ARENA_VERSION)
                )
            header = json.loads(
                bytes(shm.buf[_PRELUDE.size:_PRELUDE.size + header_len])
                .decode("utf-8")
            )
            data_start = _align(_PRELUDE.size + header_len)
            views = []
            for entry in header["arrays"]:
                view = np.ndarray(
                    tuple(entry["shape"]), dtype=np.float64,
                    buffer=shm.buf, offset=data_start + entry["offset"],
                )
                view.flags.writeable = False
                views.append(view)
        except ArenaError:
            _release(shm, owner=False)
            raise
        except Exception as exc:
            _release(shm, owner=False)
            raise ArenaError(
                "could not decode session arena %r: %s: %s"
                % (name, type(exc).__name__, exc)
            ) from exc
        return cls(shm, header, views, owner=False)

    # -- introspection -----------------------------------------------------

    @property
    def name(self):
        """The segment name workers attach by."""
        return self._shm.name

    @property
    def nbytes(self):
        """Total segment size [bytes]."""
        return self._shm.size

    @property
    def voltage_mode(self):
        return self._header["voltage_mode"]

    @property
    def flavors(self):
        return tuple(sorted(self._header["chars"]))

    # -- reconstruction ----------------------------------------------------

    def margin_memos(self):
        """flavor -> memo dicts, ready for
        :meth:`YieldConstraint.seed_margin_memo`."""
        self._check_open()
        return {
            flavor: _unpack_memo(entry, self._views)
            for flavor, entry in self._header["memos"].items()
        }

    def to_session(self):
        """Build a :class:`Session` whose LUT grids alias this mapping.

        The characterization payloads run through the same
        ``_from_dict`` the disk cache uses, so the result is
        bit-identical to a cache-built session — but with zero array
        copies and zero characterization work.  Keep the arena alive as
        long as the session is in use (the LUTs are views into it).
        """
        self._check_open()
        from .analysis.experiments import Session
        from .array.config import ArrayConfig
        from .cell.sram6t import SRAM6TCell
        from .devices.library import DeviceLibrary
        from .periphery.characterize import _from_dict

        library = DeviceLibrary.default_7nm()
        session = Session(
            library=library, config=ArrayConfig(), cache=None,
            voltage_mode=self.voltage_mode,
        )
        for flavor, payload in self._header["chars"].items():
            data = _unpack(payload, self._views)
            session.chars[flavor] = _from_dict(data, library, None)
            session.cells[flavor] = SRAM6TCell.from_library(library,
                                                            flavor)
        for flavor, memo in self.margin_memos().items():
            session.constraint(flavor).seed_margin_memo(memo)
        return session

    # -- lifecycle ---------------------------------------------------------

    def _check_open(self):
        if self._closed:
            raise ArenaError("session arena %r is closed"
                             % (self._shm.name,))

    def close(self):
        """Unmap the segment from this process (idempotent).

        Sessions built by :meth:`to_session` keep views into the
        mapping; closing underneath them would raise ``BufferError``,
        which is swallowed — the OS unmaps at process exit regardless.
        """
        if self._closed:
            return
        self._closed = True
        self._views = []
        try:
            self._shm.close()
        except BufferError:
            pass

    def unlink(self):
        """Remove the segment system-wide (owner only; idempotent)."""
        if not self._owner or self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:
            # Externally removed: the stdlib raises before deregistering,
            # so drop the stale registration ourselves or the resource
            # tracker warns about a leak at interpreter exit.
            try:
                resource_tracker.unregister(self._shm._name,
                                            "shared_memory")
            except Exception:
                pass

    def dispose(self):
        """Close and (for the owner) unlink."""
        self.close()
        self.unlink()
        self._finalizer.detach()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.dispose()
        return False
