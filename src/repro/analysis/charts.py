"""Terminal (ASCII) charts for experiment reports.

The paper's Figure 7 is a log-scale line plot; the benchmark reports
are plain text, so these helpers render comparable horizontal bar
charts and sparklines that survive a terminal and a text file.
"""

from __future__ import annotations

import math

#: Eight-level block characters for sparklines.
_SPARKS = "▁▂▃▄▅▆▇█"

_BAR = "#"


def sparkline(values):
    """A one-line sparkline, e.g. ``▁▂▄█`` (empty input -> '')."""
    values = list(values)
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return _SPARKS[0] * len(values)
    out = []
    for v in values:
        level = int((v - lo) / (hi - lo) * (len(_SPARKS) - 1))
        out.append(_SPARKS[level])
    return "".join(out)


def bar_chart(rows, width=44, title=None, unit="", log=False):
    """Horizontal bar chart from ``[(label, value), ...]``.

    ``log=True`` scales bar lengths logarithmically (the paper's
    Figure 7 axes are log-scale; linear bars would flatten the small
    capacities into invisibility).
    """
    rows = [(str(label), float(value)) for label, value in rows]
    if not rows:
        return title or "(empty chart)"
    if any(v < 0 for _l, v in rows):
        raise ValueError("bar_chart needs non-negative values")
    label_width = max(len(label) for label, _v in rows)
    values = [v for _l, v in rows]
    v_max = max(values)
    lines = []
    if title:
        lines.append(title)
    if v_max == 0:
        scale = lambda v: 0  # noqa: E731 - trivial closure
    elif log:
        positives = [v for v in values if v > 0]
        v_min = min(positives) if positives else v_max
        span = math.log10(v_max / v_min) if v_max > v_min else 1.0

        def scale(v):
            if v <= 0:
                return 0
            if span == 0:
                return width
            frac = (math.log10(v / v_min)) / span
            return max(int(round(frac * (width - 1))) + 1, 1)
    else:
        def scale(v):
            return int(round(v / v_max * width))

    for label, value in rows:
        bar = _BAR * scale(value)
        lines.append("%s | %s %.4g%s" % (
            label.ljust(label_width), bar.ljust(width), value, unit
        ))
    return "\n".join(lines)


def grouped_bar_chart(categories, series, width=36, title=None, unit="",
                      log=False):
    """Grouped bars: one block per category, one bar per series.

    ``series`` maps series name -> list of values (len(categories)).
    """
    for name, values in series.items():
        if len(values) != len(categories):
            raise ValueError(
                "series %r has %d values for %d categories"
                % (name, len(values), len(categories))
            )
    lines = []
    if title:
        lines.append(title)
    name_width = max(len(str(n)) for n in series)
    for k, category in enumerate(categories):
        lines.append("%s:" % category)
        rows = [(name.rjust(name_width), values[k])
                for name, values in series.items()]
        chart = bar_chart(rows, width=width, unit=unit, log=log)
        lines.extend("  " + line for line in chart.splitlines())
    return "\n".join(lines)
