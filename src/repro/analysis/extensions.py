"""Drivers for the extension studies (beyond the paper's figures).

Each mirrors the style of :mod:`repro.analysis.experiments`: a plain
result object with a ``report()`` method, consumed by the CLI and the
extension benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cell.leakage import cell_leakage_power
from ..cell.snm import hold_snm
from ..cell.sram6t import SRAM6TCell
from ..devices.corners import corner_sweep
from ..devices.temperature import celsius, library_at_temperature
from ..units import capacity_label
from .experiments import optimize_all
from .tables import render_dict_table


@dataclass
class CornersResult:
    rows: list

    def report(self):
        return render_dict_table(
            self.rows, title="6T-HVT across process corners"
        )


def corners_study(session, flavor="hvt"):
    """Cell figures of merit at the five global corners."""
    summaries = corner_sweep(session.library, flavor)
    rows = []
    for name in ("tt", "ff", "ss", "fs", "sf"):
        s = summaries[name]
        rows.append({
            "corner": name.upper(),
            "HSNM_mV": s.hsnm * 1e3,
            "RSNM_mV": s.rsnm * 1e3,
            "leak_nW": s.leakage * 1e9,
            "I_read_uA": s.i_read * 1e6,
            "WL_flip_mV": s.v_wl_flip * 1e3,
        })
    return CornersResult(rows=rows)


@dataclass
class TemperatureResult:
    rows: list

    def report(self):
        return render_dict_table(
            self.rows, title="Cell leakage/margins vs temperature"
        )


def temperature_study(session, temperatures_c=(-40, 25, 85, 125)):
    """Leakage and hold margins across the temperature range."""
    library = session.library
    vdd = library.vdd
    rows = []
    for t_c in temperatures_c:
        lib_t = library_at_temperature(library, celsius(t_c))
        lvt = SRAM6TCell.from_library(lib_t, "lvt")
        hvt = SRAM6TCell.from_library(lib_t, "hvt")
        leak_lvt = cell_leakage_power(lvt, vdd)
        leak_hvt = cell_leakage_power(hvt, vdd)
        rows.append({
            "T_C": t_c,
            "leak_lvt_nW": leak_lvt * 1e9,
            "leak_hvt_nW": leak_hvt * 1e9,
            "ratio": leak_lvt / leak_hvt,
            "HSNM_hvt_mV": hold_snm(hvt, vdd) * 1e3,
        })
    return TemperatureResult(rows=rows)


@dataclass
class BreakdownResult:
    capacity_bytes: int
    label: str
    rows: list
    d_array: float
    e_total: float

    def report(self):
        title = "Component breakdown: %s %s (D=%.3g ns, E=%.3g fJ)" % (
            capacity_label(self.capacity_bytes), self.label,
            self.d_array * 1e9, self.e_total * 1e15,
        )
        return render_dict_table(self.rows, title=title)


def breakdown_study(session, capacity_bytes=16384, flavor="hvt",
                    method="M2"):
    """Per-component delay/energy of the optimized design."""
    sweep = optimize_all(session, capacities=(capacity_bytes,))
    result = sweep.get(capacity_bytes, flavor, method)
    metrics = result.metrics
    return BreakdownResult(
        capacity_bytes=capacity_bytes,
        label=result.label,
        rows=metrics.breakdown(),
        d_array=float(metrics.d_array),
        e_total=float(metrics.e_total),
    )


@dataclass
class WordWidthResult:
    rows: list

    def report(self):
        return render_dict_table(
            self.rows,
            title="Word-width sensitivity (optimized 6T-HVT-M2)",
        )


def word_width_study(session, capacity_bytes=4096,
                     widths=(16, 32, 64, 128)):
    """Re-optimize one capacity across access widths W.

    Narrower words push more columns behind the mux (larger
    ``log(n_c/W)`` decoders and COL loading); wider words forbid
    narrow organizations entirely.  The paper fixes W = 64.
    """
    from dataclasses import replace as dc_replace

    from .experiments import Session

    rows = []
    for width in widths:
        config = dc_replace(session.config, word_bits=width)
        sub_session = Session(
            library=session.library, config=config, cache=session.cache,
            voltage_mode=session.voltage_mode, chars=session.chars,
            cells=session.cells, levels=session.levels,
        )
        sweep = optimize_all(sub_session, capacities=(capacity_bytes,))
        result = sweep.get(capacity_bytes, "hvt", "M2")
        m = result.metrics
        rows.append({
            "W_bits": width,
            "n_r": result.design.n_r,
            "n_c": result.design.n_c,
            "D_ns": float(m.d_array) * 1e9,
            "E_fJ": float(m.e_total) * 1e15,
            "EDP_1e-24": float(m.edp) * 1e24,
        })
    return WordWidthResult(rows=rows)
