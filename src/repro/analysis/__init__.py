"""Experiment drivers reproducing every paper figure/table."""

from .experiments import (
    CAPACITIES_BYTES,
    FLAVORS,
    METHODS,
    PAPER_LEVELS,
    CalibrationResult,
    Fig2Result,
    Fig3Result,
    Fig5Result,
    HeadlineResult,
    Session,
    SweepResult,
    calibration_checkpoints,
    compute_headline,
    fig2_cell_vdd_scaling,
    fig3_read_assists,
    fig5_write_assists,
    optimize_all,
)
from .charts import bar_chart, grouped_bar_chart, sparkline
from .runner import (
    StudyRunResult,
    StudyTask,
    TaskTiming,
    run_study,
    study_matrix,
)
from .extensions import (
    breakdown_study,
    corners_study,
    temperature_study,
    word_width_study,
)
from .selfcheck import SelfCheckResult, run_selfcheck
from .serialize import load_json, save_json, to_json
from .tables import paper_vs_measured, render_dict_table, render_table

__all__ = [
    "CAPACITIES_BYTES",
    "FLAVORS",
    "METHODS",
    "PAPER_LEVELS",
    "CalibrationResult",
    "Fig2Result",
    "Fig3Result",
    "Fig5Result",
    "HeadlineResult",
    "SelfCheckResult",
    "Session",
    "StudyRunResult",
    "StudyTask",
    "SweepResult",
    "TaskTiming",
    "bar_chart",
    "breakdown_study",
    "grouped_bar_chart",
    "run_selfcheck",
    "sparkline",
    "calibration_checkpoints",
    "compute_headline",
    "corners_study",
    "fig2_cell_vdd_scaling",
    "fig3_read_assists",
    "fig5_write_assists",
    "load_json",
    "optimize_all",
    "run_study",
    "study_matrix",
    "temperature_study",
    "word_width_study",
    "paper_vs_measured",
    "render_dict_table",
    "render_table",
    "save_json",
    "to_json",
]
