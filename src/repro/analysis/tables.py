"""Plain-text table rendering for experiment reports.

The benchmarks print the same rows/series the paper reports; these
helpers keep that output aligned and consistent.
"""

from __future__ import annotations

import numpy as np


def render_table(headers, rows, title=None):
    """Render a list-of-lists table with aligned columns.

    ``rows`` entries may be any mix of strings and numbers; numbers are
    formatted with ``%.4g``.
    """
    def fmt(value):
        if isinstance(value, str):
            return value
        if isinstance(value, (bool, np.bool_)):
            return "yes" if value else "no"
        if isinstance(value, (int, np.integer)):
            return str(int(value))
        if value is None:
            return "-"
        return "%.4g" % value

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in str_rows)) if str_rows
        else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_dict_table(dict_rows, title=None, columns=None):
    """Render a list of homogeneous dicts."""
    if not dict_rows:
        return title or "(empty)"
    headers = columns or list(dict_rows[0])
    rows = [[row.get(h) for h in headers] for row in dict_rows]
    return render_table(headers, rows, title)


def paper_vs_measured(rows, title=None):
    """Render (name, paper, measured) rows with a deviation column."""
    out = []
    for name, paper, measured in rows:
        if paper in (None, 0):
            dev = "-"
        else:
            dev = "%+.1f%%" % ((measured - paper) / abs(paper) * 100.0)
        out.append([name, paper, measured, dev])
    return render_table(["quantity", "paper", "measured", "dev"], out, title)
