"""Parallel study runner: fan the capacity x flavor x method matrix out
over a worker pool.

A full Table-4 / Figure-7 study is 20 independent exhaustive searches
(5 capacities x 2 flavors x 2 methods).  They share only *read-only*
state — the characterization LUTs and the memoized yield margins — so
the matrix parallelizes embarrassingly.  With ``engine="fused"`` the
matrix is additionally *policy-batched*: the two methods of each
``(flavor, capacity)`` cell are scored by one
:meth:`~repro.opt.ExhaustiveOptimizer.optimize_many` dispatch (a single
broadcast evaluation over a leading policy axis), halving the number of
model evaluations while staying bit-identical per task.  The executors:

* ``executor="process"`` — a :class:`~concurrent.futures.ProcessPoolExecutor`
  whose workers map the parent's shared-memory session arena
  (:class:`repro.shm.SessionArena`) in their initializer and rebuild
  their session as zero-copy views over its LUT grids — no pickling,
  no re-characterization; if the arena cannot be published or mapped
  they fall back to building from the (warm) characterization cache.
  The parent pre-computes the yield margins for the
  whole V_SSC candidate axis once and ships the memo to every worker
  (:meth:`YieldConstraint.seed_margin_memo`), so no process ever re-runs
  a butterfly the study already ran.
* ``executor="thread"`` — a thread pool sharing the parent session
  directly.  The heavy lifting is numpy broadcasting, which releases
  the GIL, so threads scale too while skipping worker start-up.
* ``executor="serial"`` — the plain loop (what
  :func:`repro.analysis.optimize_all` does), useful as the baseline.

Results are keyed by ``(capacity, flavor, method)`` and assembled into a
:class:`SweepResult` after every future resolves, so the outcome is
deterministic and independent of task completion order.  Every task
records wall time and evaluation counts (:class:`TaskTiming`), and the
workers' :mod:`repro.perf` registries are merged back into the parent's
so ``--profile`` accounts for every millisecond even across processes.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

from .. import perf
from ..errors import StudyTaskError
from ..opt import DesignSpace, ExhaustiveOptimizer, make_policy
from ..shm import SessionArena
from .experiments import (
    CAPACITIES_BYTES,
    DEFAULT_CACHE_PATH,
    FLAVORS,
    METHODS,
    Session,
    SweepResult,
)
from .tables import render_dict_table
from ..units import capacity_label


@dataclass(frozen=True)
class StudyTask:
    """One cell of the study matrix."""

    capacity_bytes: int
    flavor: str
    method: str

    @property
    def key(self):
        return (self.capacity_bytes, self.flavor, self.method)

    @property
    def label(self):
        return "%s/%s/%s" % (
            capacity_label(self.capacity_bytes), self.flavor.upper(),
            self.method,
        )


def study_matrix(capacities=CAPACITIES_BYTES, flavors=FLAVORS,
                 methods=METHODS):
    """The full task matrix in canonical (deterministic) order."""
    return tuple(
        StudyTask(capacity, flavor, method)
        for flavor in flavors
        for method in methods
        for capacity in capacities
    )


@dataclass
class TaskTiming:
    """Per-task telemetry: where the study's milliseconds went."""

    task: StudyTask
    seconds: float
    n_evaluated: int
    worker: int   # pid (process pool) or 0 (in-process)

    def row(self):
        return {
            "task": self.task.label,
            "ms": round(self.seconds * 1e3, 2),
            "n_evaluated": self.n_evaluated,
            "worker": self.worker,
        }


@dataclass
class ParetoSweep:
    """Pareto fronts for every requested capacity/flavor/method cell."""

    results: dict         # (capacity_bytes, flavor, method) -> ParetoSearchResult
    voltage_mode: str

    def get(self, capacity_bytes, flavor, method):
        return self.results[(capacity_bytes, flavor, method)]

    def rows(self):
        rows = []
        for capacity, flavor, method in sorted(self.results):
            res = self.results[(capacity, flavor, method)]
            front = res.front
            rows.append({
                "cell": "%s/%s/%s" % (capacity_label(capacity),
                                      flavor.upper(), method),
                "front": len(front),
                "evaluated": res.n_evaluated,
                "tiles_pruned": res.tiles_pruned,
                "min delay (ns)": min(p.d_array for p in front) * 1e9,
                "min energy (fJ)": min(p.e_total for p in front) * 1e15,
            })
        return rows

    def report(self):
        return render_dict_table(
            self.rows(),
            title="Energy-delay Pareto fronts (%s voltages)"
            % self.voltage_mode,
        )


@dataclass
class YieldSweep:
    """ECC-relaxed yield study cells keyed like the EDP sweep."""

    results: dict         # (capacity_bytes, flavor, method) -> YieldCellResult
    voltage_mode: str
    code: str
    y_target: float
    #: Margin-floor relaxation estimator the study ran with.
    sampler: str = "gaussian"

    def get(self, capacity_bytes, flavor, method):
        return self.results[(capacity_bytes, flavor, method)]

    def rows(self):
        return [self.results[key].row() for key in sorted(self.results)]

    def summaries(self):
        """JSON-safe per-cell payloads (the bench / service format)."""
        return [self.results[key].summary()
                for key in sorted(self.results)]

    def report(self):
        return render_dict_table(
            self.rows(),
            title="ECC-relaxed yield study: %s @ Y>=%g (%s voltages)"
            % (self.code, self.y_target, self.voltage_mode),
        )


@dataclass
class StudyRunResult:
    """A finished study: the sweep plus its execution telemetry."""

    sweep: SweepResult
    timings: list = field(default_factory=list)
    total_seconds: float = 0.0
    workers: int = 1
    executor: str = "serial"
    #: Why an ``executor="auto"`` request was downgraded (e.g. a
    #: single-CPU host), or None when the requested executor ran.
    fallback_reason: str = None

    @property
    def task_seconds(self):
        """Sum of per-task wall times (the serial-equivalent work)."""
        return sum(t.seconds for t in self.timings)

    def report(self):
        rows = [t.row() for t in self.timings]
        text = render_dict_table(
            rows,
            title="Study runner telemetry (%s, %d worker%s)"
            % (self.executor, self.workers,
               "" if self.workers == 1 else "s"),
        )
        text += (
            "\ntotal wall time: %.3f s   task time: %.3f s   "
            "parallel efficiency: %.0f%%"
            % (self.total_seconds, self.task_seconds,
               100.0 * self.task_seconds
               / (self.total_seconds * max(self.workers, 1) or 1.0))
        )
        if self.fallback_reason:
            text += "\nexecutor fallback: %s" % self.fallback_reason
        return text


# ---------------------------------------------------------------------------
# Worker-side machinery (module-level so the process pool can pickle it)
# ---------------------------------------------------------------------------

_WORKER_STATE = {}


def _objective_kind(objective):
    """The dispatch kind: ``"edp"``/``"pareto"`` pass as strings, the
    yield study ships its parameters as ``("yield", code, y_target,
    sampler, ci_target, max_samples)`` (a plain tuple so the process
    pool pickles it untouched)."""
    return objective if isinstance(objective, str) else objective[0]


def _worker_init(cache_path, voltage_mode, space, margin_memos,
                 arena_name=None):
    """Build one shared read-only session per worker process.

    With ``arena_name`` the worker maps the parent's published
    :class:`SessionArena` and rebuilds its session directly over the
    shared LUT grids (zero copies, zero characterization).  Any attach
    failure falls back to the cache-backed cold build — the arena is a
    fast path, never a correctness dependency.
    """
    # Fork-started workers inherit the parent's telemetry registry;
    # clear it so the first task's snapshot is this worker's delta only.
    perf.get_registry().reset()
    session = None
    if arena_name:
        try:
            with perf.timed("arena.attach"):
                arena = SessionArena.attach(arena_name)
                session = arena.to_session()
        except Exception:
            session = None
        else:
            # The session's LUTs are views into the mapping; keep the
            # arena alive for the worker's lifetime.
            _WORKER_STATE["arena"] = arena
    if session is None:
        session = Session.create(cache_path=cache_path,
                                 voltage_mode=voltage_mode)
    for flavor, memo in margin_memos.items():
        session.constraint(flavor).seed_margin_memo(memo)
    _WORKER_STATE["session"] = session
    _WORKER_STATE["space"] = space


def _run_unit_in_worker(unit, engine, keep_landscape, objective="edp"):
    session = _WORKER_STATE["session"]
    space = _WORKER_STATE["space"]
    entries = _execute_unit(session, space, unit, engine, keep_landscape,
                            objective)
    # Snapshot-and-reset so each returned snapshot is a disjoint delta;
    # the parent merges them all without double counting.
    registry = perf.get_registry()
    snapshot = registry.snapshot()
    registry.reset()
    return entries, os.getpid(), snapshot


def _execute_task(session, space, task, engine, keep_landscape,
                  objective="edp"):
    if _objective_kind(objective) == "yield":
        from ..yields.study import compute_yield_cell_timed

        _, code, y_target, sampler, ci_target, max_samples = objective
        return compute_yield_cell_timed(
            session, task.capacity_bytes, task.flavor, task.method,
            code=code, y_target=y_target, engine=engine, space=space,
            sampler=sampler, ci_target=ci_target,
            max_samples=max_samples,
        )
    start = time.perf_counter()
    model = session.model(task.flavor)
    constraint = session.constraint(task.flavor)
    optimizer = ExhaustiveOptimizer(model, space, constraint)
    policy = make_policy(task.method, session.yield_levels(task.flavor))
    if objective == "pareto":
        result = optimizer.pareto(
            task.capacity_bytes * 8, policy, engine=engine,
        )
    else:
        result = optimizer.optimize(
            task.capacity_bytes * 8, policy,
            keep_landscape=keep_landscape, engine=engine,
        )
    return result, time.perf_counter() - start


def _study_units(tasks, engine, objective="edp"):
    """Group the task matrix into dispatch units.

    Every engine but ``"fused"`` dispatches one task per unit.  The
    fused engine groups the tasks sharing a ``(flavor, capacity)`` cell
    — i.e. that cell's voltage policies — into one unit, which
    :func:`_execute_unit` scores in a single policy-batched
    :meth:`ExhaustiveOptimizer.optimize_many` evaluation.  Unit order
    (and task order within a unit) follows the canonical matrix order,
    so results remain deterministic.

    Pareto and yield sweeps always dispatch one task per unit: the
    pruned front maintenance (pareto) and the per-cell two-arm search
    (yield) are incumbency-driven, so there is no policy-batched fast
    path to share.
    """
    if engine != "fused" or _objective_kind(objective) != "edp":
        return [(task,) for task in tasks]
    groups = {}
    for task in tasks:
        groups.setdefault((task.flavor, task.capacity_bytes),
                          []).append(task)
    return [tuple(group) for group in groups.values()]


def _execute_unit(session, space, unit, engine, keep_landscape,
                  objective="edp"):
    """Run one dispatch unit; returns ``[(task, result, seconds), ...]``.

    Multi-task (fused) units share one broadcast evaluation, so the
    group's wall time is split evenly across its tasks — the per-task
    ``seconds`` stay meaningful in aggregate (they sum to the unit's
    wall time) even though the work was not separable.
    """
    if len(unit) == 1:
        task = unit[0]
        result, seconds = _execute_task(session, space, task, engine,
                                        keep_landscape, objective)
        return [(task, result, seconds)]
    start = time.perf_counter()
    flavor = unit[0].flavor
    model = session.model(flavor)
    constraint = session.constraint(flavor)
    optimizer = ExhaustiveOptimizer(model, space, constraint)
    levels = session.yield_levels(flavor)
    policies = [make_policy(task.method, levels) for task in unit]
    results = optimizer.optimize_many(
        unit[0].capacity_bytes * 8, policies,
        keep_landscape=keep_landscape, engine=engine,
    )
    seconds = (time.perf_counter() - start) / len(unit)
    return [(task, result, seconds)
            for task, result in zip(unit, results)]


def execute_study_task(session, space, task, engine="vectorized",
                       keep_landscape=False):
    """Run one study-matrix cell; returns ``(result, seconds)``.

    This is the single execution path shared by :func:`run_study` and
    the durable job worker (:mod:`repro.jobs.worker`) — both produce
    identical :class:`OptimizationResult` values for the same inputs,
    which is what makes checkpointed resume bit-identical.
    """
    return _execute_task(session, space or DesignSpace(), task, engine,
                         keep_landscape)


def _task_failure(task, exc):
    """Wrap a worker exception so the error names the matrix cell.

    A raw exception out of a pool future says nothing about *which* of
    the 20 searches raised; re-raising as :class:`StudyTaskError` (with
    the original as ``__cause__``) keeps the traceback and adds the
    label.
    """
    return StudyTaskError(
        "study task %s failed: %s: %s"
        % (task.label, type(exc).__name__, exc),
        task_label=task.label,
    )


def _unit_failure(unit, exc):
    """Attribute a unit failure: the task label for singleton units, a
    combined ``cap/FLAVOR/M1+M2`` label for fused policy batches (the
    batch evaluates all policies at once, so the cell is the faulty
    grain, not one method)."""
    if len(unit) == 1:
        return _task_failure(unit[0], exc)
    label = "%s/%s/%s" % (
        capacity_label(unit[0].capacity_bytes), unit[0].flavor.upper(),
        "+".join(task.method for task in unit),
    )
    return StudyTaskError(
        "study unit %s failed: %s: %s"
        % (label, type(exc).__name__, exc),
        task_label=label,
    )


def _cancel_pending(futures):
    """Best-effort cancel of not-yet-started futures after a failure, so
    one bad task fails the study promptly instead of running out the
    rest of the matrix first."""
    for future in futures:
        future.cancel()


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------

def run_study(session=None, capacities=CAPACITIES_BYTES, flavors=FLAVORS,
              methods=METHODS, workers=None, executor="auto",
              engine="vectorized", keep_landscape=False, space=None,
              cache_path=None, voltage_mode="paper", objective="edp",
              code="secded", y_target=0.9, sampler="gaussian",
              ci_target=0.1, max_samples=4096):
    """Run the full study matrix, optionally across a worker pool.

    ``workers=None`` uses ``os.cpu_count()``; ``workers=1`` (or
    ``executor="serial"``) runs in-process.  ``executor="auto"`` picks a
    process pool when more than one worker is requested.  Returns a
    :class:`StudyRunResult` whose ``sweep`` is byte-for-byte the same
    :class:`SweepResult` a serial :func:`optimize_all` would produce,
    regardless of worker count or completion order.

    ``objective="pareto"`` swaps each cell's min-EDP search for a
    :meth:`~repro.opt.ExhaustiveOptimizer.pareto` sweep; the returned
    ``sweep`` is then a :class:`ParetoSweep` of
    :class:`~repro.opt.ParetoSearchResult` values.

    ``objective="yield"`` runs the ECC-relaxed yield study
    (:func:`repro.yields.study.compute_yield_cell` — a fixed-delta
    baseline search *and* a margin-relaxed search under ``code`` at
    array yield target ``y_target`` per cell); the returned ``sweep``
    is then a :class:`YieldSweep` of
    :class:`~repro.yields.study.YieldCellResult` values.
    ``sampler``/``ci_target``/``max_samples`` select the margin-floor
    relaxation estimator (``"gaussian"`` closed form, or a
    :data:`repro.cell.importance.SAMPLERS` rare-event sampler with its
    adaptive budget).  ``code``, ``y_target`` and the sampler knobs are
    ignored by the other objectives.
    """
    if objective not in ("edp", "pareto", "yield"):
        raise ValueError(
            "unknown objective %r (expected 'edp', 'pareto', or "
            "'yield')" % (objective,)
        )
    if objective == "yield":
        from ..cell.importance import SAMPLERS
        from ..yields.ecc import make_code

        if not 0.0 < y_target < 1.0:
            raise ValueError("y_target must be in (0, 1), got %r"
                             % (y_target,))
        make_code(code, 64)   # fail fast on an unknown code name
        if sampler != "gaussian" and sampler not in SAMPLERS:
            raise ValueError(
                "unknown sampler %r (expected 'gaussian' or one of %s)"
                % (sampler, "/".join(SAMPLERS))
            )
        if not 0.0 < ci_target < 1.0:
            raise ValueError("ci_target must be in (0, 1), got %r"
                             % (ci_target,))
        objective = ("yield", code, float(y_target), sampler,
                     float(ci_target), int(max_samples))
    if session is None:
        session = Session.create(
            cache_path=cache_path or DEFAULT_CACHE_PATH,
            voltage_mode=voltage_mode,
        )
    if cache_path is None and session.cache is not None:
        cache_path = session.cache.path
    space = space or DesignSpace()
    if workers is None:
        workers = os.cpu_count() or 1
    workers = max(int(workers), 1)
    fallback_reason = None
    if executor == "auto":
        executor = "process" if workers > 1 else "serial"
        if executor == "process" and (os.cpu_count() or 1) == 1:
            # A pool on a single hardware thread serializes on the same
            # core and still pays worker start-up; run in-process.
            # Explicit executor="process" requests are honored as-is.
            executor = "serial"
            fallback_reason = (
                "auto executor fell back to serial: os.cpu_count() == 1 "
                "(%d workers requested)" % workers
            )
    if workers == 1:
        executor = "serial"
    tasks = study_matrix(capacities, flavors, methods)
    units = _study_units(tasks, engine, objective)
    workers = min(workers, len(units))

    # Warm and export the margin memos once, in the parent: feasibility
    # masks over the whole V_SSC axis for every flavor in play.
    margin_memos = {}
    with perf.timed("study.warm_margins"):
        for flavor in set(task.flavor for task in tasks):
            constraint = session.constraint(flavor)
            levels = session.yield_levels(flavor)
            for method in set(task.method for task in tasks):
                policy = make_policy(method, levels)
                constraint.satisfied_grid(
                    policy.v_ddc,
                    [float(v) for v in policy.v_ssc_candidates(space)],
                    policy.v_wl, policy.v_bl,
                )
            margin_memos[flavor] = constraint.export_margin_memo()

    start = time.perf_counter()
    results = {}
    timings = {}
    if executor == "serial":
        for unit in units:
            try:
                entries = _execute_unit(session, space, unit, engine,
                                        keep_landscape, objective)
            except Exception as exc:
                raise _unit_failure(unit, exc) from exc
            for task, result, seconds in entries:
                results[task.key] = result
                timings[task.key] = TaskTiming(task, seconds,
                                               result.n_evaluated, 0)
    elif executor == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_execute_unit, session, space, unit, engine,
                            keep_landscape, objective): unit
                for unit in units
            }
            for future, unit in futures.items():
                try:
                    entries = future.result()
                except Exception as exc:
                    _cancel_pending(futures)
                    raise _unit_failure(unit, exc) from exc
                for task, result, seconds in entries:
                    results[task.key] = result
                    timings[task.key] = TaskTiming(task, seconds,
                                                   result.n_evaluated, 0)
    elif executor == "process":
        # Publish the parent's session once; workers map it zero-copy.
        # Publishing is best-effort — on failure the workers cold-build
        # from the cache exactly as before.
        arena = None
        try:
            with perf.timed("arena.publish"):
                arena = SessionArena.publish(session, margin_memos)
        except Exception:
            arena = None
        try:
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_worker_init,
                initargs=(cache_path, session.voltage_mode, space,
                          margin_memos,
                          arena.name if arena is not None else None),
            ) as pool:
                futures = {
                    pool.submit(_run_unit_in_worker, unit, engine,
                                keep_landscape, objective): unit
                    for unit in units
                }
                for future, submitted in futures.items():
                    try:
                        entries, pid, snapshot = future.result()
                    except Exception as exc:
                        _cancel_pending(futures)
                        raise _unit_failure(submitted, exc) from exc
                    for task, result, seconds in entries:
                        results[task.key] = result
                        timings[task.key] = TaskTiming(task, seconds,
                                                       result.n_evaluated,
                                                       pid)
                    perf.get_registry().merge(snapshot)
        finally:
            if arena is not None:
                arena.dispose()
    else:
        raise ValueError(
            "unknown executor %r (expected 'auto', 'serial', 'thread', "
            "or 'process')" % (executor,)
        )
    total_seconds = time.perf_counter() - start
    perf.get_registry().add_time("study.run_study", total_seconds)
    perf.count("study.tasks", len(tasks))

    kind = _objective_kind(objective)
    if kind == "yield":
        sweep = YieldSweep(results=results,
                           voltage_mode=session.voltage_mode,
                           code=objective[1], y_target=objective[2],
                           sampler=objective[3])
    elif kind == "pareto":
        sweep = ParetoSweep(results=results,
                            voltage_mode=session.voltage_mode)
    else:
        sweep = SweepResult(results=results,
                            voltage_mode=session.voltage_mode)
    ordered_timings = [timings[task.key] for task in tasks]
    return StudyRunResult(
        sweep=sweep,
        timings=ordered_timings,
        total_seconds=total_seconds,
        workers=workers if executor != "serial" else 1,
        executor=executor,
        fallback_reason=fallback_reason,
    )
