"""Programmatic reproduction self-check.

Runs the cheap, load-bearing calibration gates — the numbers that the
rest of the reproduction stands on — and reports pass/fail for each.
Exposed as ``python -m repro.cli selfcheck``; a fresh clone that passes
this check will reproduce the paper-level results.
"""

from __future__ import annotations

from dataclasses import dataclass

from .experiments import calibration_checkpoints
from .tables import render_dict_table


@dataclass(frozen=True)
class Check:
    """One gate: a name, the achieved value, and its accepted window."""

    name: str
    value: float
    lo: float
    hi: float

    @property
    def passed(self):
        return self.lo <= self.value <= self.hi


@dataclass
class SelfCheckResult:
    checks: list

    @property
    def all_passed(self):
        return all(c.passed for c in self.checks)

    @property
    def n_failed(self):
        return sum(1 for c in self.checks if not c.passed)

    def report(self):
        rows = [{
            "check": c.name,
            "value": c.value,
            "window": "[%.4g, %.4g]" % (c.lo, c.hi),
            "pass": c.passed,
        } for c in self.checks]
        verdict = ("ALL CHECKS PASSED" if self.all_passed
                   else "%d CHECK(S) FAILED" % self.n_failed)
        return render_dict_table(
            rows, title="Reproduction self-check"
        ) + "\n" + verdict


def run_selfcheck(session):
    """Evaluate every calibration gate against its accepted window."""
    cal = calibration_checkpoints(session)
    a, b, vt = cal.read_fit
    hvt_char = session.chars["hvt"]
    checks = [
        Check("Ion ratio LVT/HVT (paper 2.0)", cal.ion_ratio, 1.8, 2.2),
        Check("Ioff ratio LVT/HVT (paper 20)", cal.ioff_ratio, 17.0, 23.0),
        Check("ON/OFF gain HVT/LVT (paper 10)", cal.onoff_gain, 8.0, 13.0),
        Check("6T-LVT leakage nW (paper 1.692)",
              cal.leakage["lvt"] * 1e9, 1.60, 1.78),
        Check("6T-HVT leakage nW (paper 0.082)",
              cal.leakage["hvt"] * 1e9, 0.078, 0.086),
        Check("read fit a (paper 1.3)", a, 1.0, 1.7),
        Check("read fit b A/V^a (paper 9.5e-5)", b, 3e-5, 3e-4),
        Check("read fit Vt mV (paper 335)", vt * 1e3, 250.0, 480.0),
        Check("I_read boost at -240mV (paper 4.3x)",
              cal.iread_boost_ratio, 3.0, 5.5),
        Check("HVT V_WL flip mV (paper implies 382)",
              hvt_char.v_wl_flip * 1e3, 350.0, 400.0),
        Check("cell write delay ps (paper 1.5, anchored)",
              hvt_char.d_write_sram(session.library.vdd) * 1e12,
              1.3, 1.7),
        Check("sense delay ps (constant, sanity)",
              hvt_char.sense.delay * 1e12, 0.5, 50.0),
    ]
    return SelfCheckResult(checks=checks)
