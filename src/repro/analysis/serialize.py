"""JSON round-trip of experiment results (for archiving bench outputs)."""

from __future__ import annotations

import dataclasses
import json

import numpy as np


def _coerce(value):
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _coerce(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _coerce(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_coerce(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # Fall back to the repr for non-data objects (models, LUTs, ...).
    return repr(value)


def to_json(result, indent=2):
    """Serialize any result dataclass (best effort) to JSON text."""
    return json.dumps(_coerce(result), indent=indent)


def save_json(result, path):
    """Write a result to ``path`` as JSON."""
    with open(path, "w") as handle:
        handle.write(to_json(result))


def load_json(path):
    """Load a previously saved result as plain dicts/lists."""
    with open(path) as handle:
        return json.load(handle)
