"""Ground-truth numbers transcribed from the paper, for side-by-side
reporting in benchmarks and EXPERIMENTS.md.

Only values printed in the paper's text and Table 4 are recorded here;
figure curves (Figs. 2, 3, 5, 7) are published as plots without data
tables, so their reproductions are judged by cross points and ratios
the text states.
"""

from __future__ import annotations

#: Paper Table 4: minimum-EDP design parameters.  Voltages in mV.
PAPER_TABLE4 = {
    (128, "lvt", "M1"): dict(n_r=64, n_c=16, n_pre=7, n_wr=1,
                             v_ddc=640, v_ssc=0, v_wl=640),
    (128, "hvt", "M1"): dict(n_r=32, n_c=32, n_pre=4, n_wr=1,
                             v_ddc=550, v_ssc=0, v_wl=550),
    (128, "lvt", "M2"): dict(n_r=64, n_c=16, n_pre=8, n_wr=1,
                             v_ddc=640, v_ssc=-210, v_wl=490),
    (128, "hvt", "M2"): dict(n_r=64, n_c=16, n_pre=7, n_wr=1,
                             v_ddc=550, v_ssc=-240, v_wl=550),
    (256, "lvt", "M1"): dict(n_r=64, n_c=32, n_pre=7, n_wr=1,
                             v_ddc=640, v_ssc=0, v_wl=640),
    (256, "hvt", "M1"): dict(n_r=64, n_c=32, n_pre=5, n_wr=1,
                             v_ddc=550, v_ssc=0, v_wl=550),
    (256, "lvt", "M2"): dict(n_r=64, n_c=32, n_pre=9, n_wr=1,
                             v_ddc=640, v_ssc=-180, v_wl=490),
    (256, "hvt", "M2"): dict(n_r=64, n_c=32, n_pre=8, n_wr=1,
                             v_ddc=550, v_ssc=-230, v_wl=550),
    (1024, "lvt", "M1"): dict(n_r=128, n_c=64, n_pre=12, n_wr=1,
                              v_ddc=640, v_ssc=0, v_wl=640),
    (1024, "hvt", "M1"): dict(n_r=128, n_c=64, n_pre=7, n_wr=1,
                              v_ddc=550, v_ssc=0, v_wl=550),
    (1024, "lvt", "M2"): dict(n_r=128, n_c=64, n_pre=16, n_wr=2,
                              v_ddc=640, v_ssc=-240, v_wl=490),
    (1024, "hvt", "M2"): dict(n_r=128, n_c=64, n_pre=12, n_wr=2,
                              v_ddc=550, v_ssc=-240, v_wl=550),
    (4096, "lvt", "M1"): dict(n_r=256, n_c=128, n_pre=18, n_wr=4,
                              v_ddc=640, v_ssc=0, v_wl=640),
    (4096, "hvt", "M1"): dict(n_r=256, n_c=128, n_pre=11, n_wr=2,
                              v_ddc=550, v_ssc=0, v_wl=550),
    (4096, "lvt", "M2"): dict(n_r=512, n_c=64, n_pre=37, n_wr=3,
                              v_ddc=640, v_ssc=-240, v_wl=490),
    (4096, "hvt", "M2"): dict(n_r=512, n_c=64, n_pre=25, n_wr=3,
                              v_ddc=550, v_ssc=-240, v_wl=550),
    (16384, "lvt", "M1"): dict(n_r=512, n_c=256, n_pre=26, n_wr=4,
                               v_ddc=640, v_ssc=0, v_wl=640),
    (16384, "hvt", "M1"): dict(n_r=512, n_c=256, n_pre=16, n_wr=2,
                               v_ddc=550, v_ssc=0, v_wl=550),
    (16384, "lvt", "M2"): dict(n_r=512, n_c=256, n_pre=40, n_wr=8,
                               v_ddc=640, v_ssc=-240, v_wl=490),
    (16384, "hvt", "M2"): dict(n_r=512, n_c=256, n_pre=30, n_wr=6,
                               v_ddc=550, v_ssc=-240, v_wl=550),
}

#: Headline statistics from the abstract and Section 5.
PAPER_HEADLINE = {
    "avg_edp_gain_large_pct": 59.0,
    "avg_edp_gain_small_pct": 14.0,
    "avg_delay_penalty_large_pct": 9.0,
    "max_delay_penalty_pct": 12.0,
    "gain_16kb_pct": 78.0,
    "penalty_16kb_pct": 8.0,
    "bl_delay_reduction_x": 3.3,
    "total_delay_reduction_x": 1.8,
}

#: Device/cell calibration points (Sections 2 and 5).
PAPER_DEVICE = {
    "ion_ratio": 2.0,
    "ioff_ratio": 20.0,
    "onoff_gain": 10.0,
    "leak_lvt_nw": 1.692,
    "leak_hvt_nw": 0.082,
    "read_fit_a": 1.3,
    "read_fit_b": 9.5e-5,
    "read_fit_vt_mv": 335.0,
    "rsnm_ratio_hvt_lvt": 1.9,
    "iread_boost_x": 4.3,
}

#: Assist cross points (Sections 3 and 5), in mV.
PAPER_ASSIST_LEVELS = {
    "v_ddc_min_lvt": 640,
    "v_ddc_min_hvt": 550,
    "v_wl_min_lvt": 490,
    "v_wl_min_hvt": 540,
    "wlud_max_hvt": 300,
    "neg_bl_hvt": -100,
    "v_ssc_match_lvt_delay": -100,
    "cell_write_delay_ps": 1.5,
}


def table4_comparison_rows(sweep):
    """Side-by-side (ours vs paper) rows for a finished sweep."""
    rows = []
    for (capacity, flavor, method), paper in sorted(
        PAPER_TABLE4.items(), key=lambda kv: (kv[0][0], kv[0][1], kv[0][2])
    ):
        result = sweep.get(capacity, flavor, method)
        d = result.design
        rows.append({
            "capacity": "%dB" % capacity if capacity < 1024
            else "%dKB" % (capacity // 1024),
            "config": result.label,
            "n_r": "%d/%d" % (d.n_r, paper["n_r"]),
            "n_c": "%d/%d" % (d.n_c, paper["n_c"]),
            "N_pre": "%d/%d" % (d.n_pre, paper["n_pre"]),
            "N_wr": "%d/%d" % (d.n_wr, paper["n_wr"]),
            "V_SSC": "%d/%d" % (round(d.v_ssc * 1e3), paper["v_ssc"]),
            "org_match": (d.n_r == paper["n_r"]),
        })
    return rows
