"""Experiment drivers: one function per paper figure/table.

Each driver returns a plain-data result object with a ``report()``
method producing the text the benchmarks print.  Expensive state
(characterization, yield constraints) lives in a shared
:class:`Session`, so a benchmark run characterizes each flavor once.

Voltage modes
-------------

``measured`` (default) pre-sets V_DDC / V_WL to the minima *our* cell
simulations need to reach the yield floor (the paper's own procedure);
``paper`` pins them to the values the paper reports (640/490 mV for LVT,
550/540 mV for HVT).  EXPERIMENTS.md reports both.
"""

from __future__ import annotations

import math
from contextlib import nullcontext as _nullcontext
from dataclasses import dataclass, field

import numpy as np

from ..array.config import ArrayConfig
from ..array.model import SRAMArrayModel
from ..assist.study import (
    bitline_delay,
    matching_negative_gnd,
    maximum_wl_underdrive,
    minimum_negative_bl,
    minimum_vdd_boost,
    sweep_negative_bl,
    sweep_negative_gnd,
    sweep_vdd_boost,
    sweep_wl_overdrive,
    sweep_wl_underdrive,
)
from ..cell.leakage import cell_leakage_power
from ..cell.read_current import read_current
from ..cell.snm import hold_snm, read_snm
from ..cell.sram6t import SRAM6TCell
from ..devices.calibration import device_ratios, fit_power_law
from ..devices.library import DeviceLibrary
from ..lut.cache import CharacterizationCache
from ..opt.constraints import YieldConstraint
from ..opt.exhaustive import ExhaustiveOptimizer
from ..opt.methods import YieldLevels, make_policy
from ..opt.space import DesignSpace
from ..periphery.characterize import characterize
from ..units import capacity_label
from .tables import paper_vs_measured, render_dict_table

#: The paper's evaluation capacities (Figure 7 / Table 4).
CAPACITIES_BYTES = (128, 256, 1024, 4096, 16384)

FLAVORS = ("lvt", "hvt")
METHODS = ("M1", "M2")

#: The rail settings the paper reports (Section 5).
PAPER_LEVELS = {
    "lvt": YieldLevels(v_ddc_min=0.640, v_wl_min=0.490),
    "hvt": YieldLevels(v_ddc_min=0.550, v_wl_min=0.540),
}

DEFAULT_CACHE_PATH = ".repro_cache.json"


@dataclass
class Session:
    """Shared expensive state for a batch of experiments."""

    library: object
    config: ArrayConfig
    cache: object
    voltage_mode: str
    chars: dict = field(default_factory=dict)
    cells: dict = field(default_factory=dict)
    constraints: dict = field(default_factory=dict)
    levels: dict = field(default_factory=dict)

    @classmethod
    def create(cls, cache_path=DEFAULT_CACHE_PATH, voltage_mode="measured",
               config=None, library=None):
        if voltage_mode not in ("measured", "paper"):
            raise ValueError("voltage_mode must be 'measured' or 'paper'")
        library = library or DeviceLibrary.default_7nm()
        config = config or ArrayConfig()
        cache = CharacterizationCache(cache_path) if cache_path else None
        session = cls(
            library=library, config=config, cache=cache,
            voltage_mode=voltage_mode,
        )
        # Batch all cold-start characterization inserts into one flush.
        with cache.deferred() if cache is not None else _nullcontext():
            for flavor in FLAVORS:
                session.chars[flavor] = characterize(library, flavor,
                                                     cache=cache)
                session.cells[flavor] = SRAM6TCell.from_library(
                    library, flavor
                )
        return session

    @property
    def delta(self):
        return self.config.delta(self.library.vdd)

    def constraint(self, flavor):
        if flavor not in self.constraints:
            constraint = YieldConstraint(
                self.library, flavor, self.delta,
                trust_fixed_rails=(self.voltage_mode == "paper"),
            )
            # Seed the flip voltages from the characterization (they
            # were already measured when building the write-delay LUTs).
            constraint._v_flip = self.chars[flavor].v_wl_flip
            constraint.flip_lookup = self.chars[flavor].v_wl_flip_vs_vbl
            self.constraints[flavor] = constraint
        return self.constraints[flavor]

    def yield_levels(self, flavor):
        """Rail presets: measured minima or the paper's values."""
        if flavor not in self.levels:
            if self.voltage_mode == "paper":
                self.levels[flavor] = PAPER_LEVELS[flavor]
            else:
                v_ddc = minimum_vdd_boost(
                    self.library, self.cells[flavor], self.delta
                )
                v_flip = self.chars[flavor].v_wl_flip
                v_wl = math.ceil((v_flip + self.delta) / 0.010) * 0.010
                self.levels[flavor] = YieldLevels(
                    v_ddc_min=v_ddc, v_wl_min=round(v_wl, 3)
                )
        return self.levels[flavor]

    def model(self, flavor):
        return SRAMArrayModel(self.chars[flavor], self.config)


# ---------------------------------------------------------------------------
# Figure 2: HSNM and leakage vs Vdd
# ---------------------------------------------------------------------------

@dataclass
class Fig2Result:
    vdd_values: list
    hsnm: dict           # flavor -> [V]
    leakage: dict        # flavor -> [W]

    def leakage_reduction_at_nominal(self):
        return self.leakage["lvt"][-1] / self.leakage["hvt"][-1]

    def lvt_low_vs_hvt_nominal(self):
        """Paper: LVT leakage at 100 mV is still ~5x HVT at 450 mV."""
        return self.leakage["lvt"][0] / self.leakage["hvt"][-1]

    def hsnm_yield_vdd(self, flavor, delta_fraction=0.35):
        """Lowest swept Vdd at which HSNM >= delta_fraction * Vdd."""
        for vdd, snm in zip(self.vdd_values, self.hsnm[flavor]):
            if snm >= delta_fraction * vdd:
                return vdd
        return None

    def report(self):
        rows = []
        for i, vdd in enumerate(self.vdd_values):
            rows.append({
                "Vdd_mV": round(vdd * 1e3),
                "HSNM_lvt_mV": round(self.hsnm["lvt"][i] * 1e3, 1),
                "HSNM_hvt_mV": round(self.hsnm["hvt"][i] * 1e3, 1),
                "leak_lvt_nW": self.leakage["lvt"][i] * 1e9,
                "leak_hvt_nW": self.leakage["hvt"][i] * 1e9,
            })
        from .charts import sparkline

        text = render_dict_table(
            rows, title="Figure 2: HSNM and leakage vs Vdd"
        )
        text += "\nleakage trend (lvt): %s  (hvt): %s" % (
            sparkline(self.leakage["lvt"]), sparkline(self.leakage["hvt"])
        )
        checks = paper_vs_measured([
            ("leakage reduction at 450mV (x)", 20.0,
             self.leakage_reduction_at_nominal()),
            ("LVT@100mV / HVT@450mV leakage (x)", 5.0,
             self.lvt_low_vs_hvt_nominal()),
            ("6T-LVT leakage @450mV (nW)", 1.692,
             self.leakage["lvt"][-1] * 1e9),
            ("6T-HVT leakage @450mV (nW)", 0.082,
             self.leakage["hvt"][-1] * 1e9),
        ], title="Figure 2 checkpoints")
        return text + "\n\n" + checks


def fig2_cell_vdd_scaling(session, vdd_values=None):
    """Reproduce Figure 2: hold SNM and leakage across supply scaling."""
    if vdd_values is None:
        vdd_values = [round(v, 3) for v in np.arange(0.10, 0.4501, 0.05)]
        if vdd_values[-1] != 0.45:
            vdd_values.append(0.45)
    hsnm = {}
    leakage = {}
    for flavor in FLAVORS:
        cell = session.cells[flavor]
        hsnm[flavor] = [hold_snm(cell, vdd=v) for v in vdd_values]
        leakage[flavor] = [cell_leakage_power(cell, vdd=v)
                           for v in vdd_values]
    return Fig2Result(vdd_values=list(vdd_values), hsnm=hsnm,
                      leakage=leakage)


# ---------------------------------------------------------------------------
# Figure 3: read assists
# ---------------------------------------------------------------------------

@dataclass
class Fig3Result:
    rsnm_ratio: float
    iread_ratio: float
    boost_rows: dict      # flavor -> [ReadAssistRow]
    gnd_rows: list        # HVT negative-Gnd sweep
    wlud_rows: list       # HVT WL-underdrive sweep
    v_ddc_cross: dict     # flavor -> minimum V_DDC meeting delta
    v_ssc_match: float    # V_SSC matching LVT no-assist BL delay
    v_wl_cross: float     # maximum read V_WL meeting delta (WLUD)
    delta: float

    def report(self):
        lines = [
            "Figure 3(a): HVT/LVT RSNM ratio = %.2f (paper 1.9)"
            % self.rsnm_ratio,
            "Figure 3(a): HVT/LVT read-current ratio = %.2f (paper 0.5)"
            % self.iread_ratio,
        ]
        for flavor in FLAVORS:
            rows = [{
                "V_DDC_mV": round(r.level * 1e3),
                "RSNM_mV": round(r.rsnm * 1e3, 1),
                "BL_delay_ps": r.bl_delay * 1e12,
                "meets_delta": r.rsnm >= self.delta,
            } for r in self.boost_rows[flavor]]
            lines.append(render_dict_table(
                rows, title="Figure 3(b): Vdd boost sweep (%s)" % flavor
            ))
        rows = [{
            "V_SSC_mV": round(r.level * 1e3),
            "RSNM_mV": round(r.rsnm * 1e3, 1),
            "BL_delay_ps": r.bl_delay * 1e12,
        } for r in self.gnd_rows]
        lines.append(render_dict_table(
            rows, title="Figure 3(c): negative Gnd sweep (HVT)"
        ))
        rows = [{
            "V_WL_mV": round(r.level * 1e3),
            "RSNM_mV": round(r.rsnm * 1e3, 1),
            "BL_delay_ps": r.bl_delay * 1e12,
            "meets_delta": r.rsnm >= self.delta,
        } for r in self.wlud_rows]
        lines.append(render_dict_table(
            rows, title="Figure 3(d): WL underdrive sweep (HVT)"
        ))
        lines.append(paper_vs_measured([
            ("HVT V_DDC for RSNM=delta (mV)", 550,
             self.v_ddc_cross["hvt"] * 1e3),
            ("LVT V_DDC for RSNM=delta (mV)", 640,
             self.v_ddc_cross["lvt"] * 1e3),
            ("V_SSC matching LVT BL delay (mV)", -100,
             self.v_ssc_match * 1e3),
            ("HVT WLUD V_WL for RSNM=delta (mV)", 300,
             self.v_wl_cross * 1e3),
        ], title="Figure 3 cross points"))
        return "\n\n".join(lines)


def fig3_read_assists(session):
    """Reproduce Figure 3: read-assist sweeps and cross points."""
    library = session.library
    vdd = library.vdd
    lvt, hvt = session.cells["lvt"], session.cells["hvt"]
    rsnm_ratio = read_snm(hvt, vdd=vdd) / read_snm(lvt, vdd=vdd)
    iread_ratio = (read_current(hvt, vdd=vdd)
                   / read_current(lvt, vdd=vdd))
    boost_levels = np.arange(0.45, 0.7001, 0.025)
    boost_rows = {
        flavor: sweep_vdd_boost(library, session.cells[flavor],
                                boost_levels)
        for flavor in FLAVORS
    }
    gnd_rows = sweep_negative_gnd(
        library, hvt, np.arange(0.0, -0.2401, -0.03)
    )
    wlud_rows = sweep_wl_underdrive(
        library, hvt, np.arange(0.45, 0.2399, -0.03)
    )
    v_ddc_cross = {
        flavor: minimum_vdd_boost(library, session.cells[flavor],
                                  session.delta)
        for flavor in FLAVORS
    }
    return Fig3Result(
        rsnm_ratio=rsnm_ratio,
        iread_ratio=iread_ratio,
        boost_rows=boost_rows,
        gnd_rows=gnd_rows,
        wlud_rows=wlud_rows,
        v_ddc_cross=v_ddc_cross,
        v_ssc_match=matching_negative_gnd(library, hvt, lvt),
        v_wl_cross=maximum_wl_underdrive(library, hvt, session.delta),
        delta=session.delta,
    )


# ---------------------------------------------------------------------------
# Figure 5: write assists
# ---------------------------------------------------------------------------

@dataclass
class Fig5Result:
    wlod_rows: list
    negbl_rows: list
    v_wl_cross: dict      # flavor -> V_WL for WM = delta
    v_bl_cross: float     # HVT negative BL for WM = delta
    write_delay_no_assist: float
    delta: float

    def report(self):
        lines = []
        rows = [{
            "V_WL_mV": round(r.level * 1e3),
            "WM_mV": round(r.wm * 1e3, 1),
            "write_delay_ps": r.write_delay * 1e12,
            "meets_delta": r.wm >= self.delta,
        } for r in self.wlod_rows]
        lines.append(render_dict_table(
            rows, title="Figure 5(a): WL overdrive sweep (HVT)"
        ))
        rows = [{
            "V_BL_mV": round(r.level * 1e3),
            "WM_mV": round(r.wm * 1e3, 1),
            "write_delay_ps": r.write_delay * 1e12,
            "meets_delta": r.wm >= self.delta,
        } for r in self.negbl_rows]
        lines.append(render_dict_table(
            rows, title="Figure 5(b): negative BL sweep (HVT)"
        ))
        lines.append(paper_vs_measured([
            ("HVT WLOD V_WL for WM=delta (mV)", 540,
             self.v_wl_cross["hvt"] * 1e3),
            ("LVT WLOD V_WL for WM=delta (mV)", 490,
             self.v_wl_cross["lvt"] * 1e3),
            ("HVT negative BL for WM=delta (mV)", -100,
             self.v_bl_cross * 1e3),
            ("no-assist cell write delay (ps)", 1.5,
             self.write_delay_no_assist * 1e12),
        ], title="Figure 5 cross points"))
        return "\n\n".join(lines)


def fig5_write_assists(session):
    """Reproduce Figure 5: write-assist sweeps and cross points."""
    library = session.library
    hvt = session.cells["hvt"]
    scale = session.chars["hvt"].write_delay_scale
    wlod_rows = sweep_wl_overdrive(
        library, hvt, np.arange(0.45, 0.6501, 0.04),
        write_delay_scale=scale,
    )
    negbl_rows = sweep_negative_bl(
        library, hvt, np.arange(0.0, -0.2001, -0.05),
        write_delay_scale=scale,
    )
    v_wl_cross = {}
    for flavor in FLAVORS:
        v_flip = session.chars[flavor].v_wl_flip
        v_wl_cross[flavor] = v_flip + session.delta
    no_assist = session.chars["hvt"].d_write_sram(library.vdd)
    return Fig5Result(
        wlod_rows=wlod_rows,
        negbl_rows=negbl_rows,
        v_wl_cross=v_wl_cross,
        v_bl_cross=minimum_negative_bl(library, hvt, session.delta),
        write_delay_no_assist=no_assist,
        delta=session.delta,
    )


# ---------------------------------------------------------------------------
# Table 4 + Figure 7: the full optimization sweep
# ---------------------------------------------------------------------------

@dataclass
class SweepResult:
    """Optimization results for every capacity/flavor/method."""

    results: dict         # (capacity_bytes, flavor, method) -> OptimizationResult
    voltage_mode: str

    def get(self, capacity_bytes, flavor, method):
        return self.results[(capacity_bytes, flavor, method)]

    @property
    def capacities(self):
        """Capacities present in this sweep, ascending (bytes)."""
        return sorted({key[0] for key in self.results})

    def table4_rows(self):
        rows = []
        for capacity in self.capacities:
            for flavor in FLAVORS:
                for method in METHODS:
                    rows.append(self.get(capacity, flavor, method).row())
        return rows

    def report(self):
        return render_dict_table(
            self.table4_rows(),
            title="Table 4: minimum-EDP design parameters (%s voltages)"
            % self.voltage_mode,
        )

    # -- Figure 7 views ----------------------------------------------------

    def series(self, metric):
        """capacity -> {config-label: value} for 'delay'/'energy'/'edp'."""
        accessor = {
            "delay": lambda m: m.d_array,
            "energy": lambda m: m.e_total,
            "edp": lambda m: m.edp,
        }[metric]
        out = {}
        for capacity in self.capacities:
            row = {}
            for flavor in FLAVORS:
                for method in METHODS:
                    res = self.get(capacity, flavor, method)
                    row[res.label] = accessor(res.metrics)
            out[capacity] = row
        return out

    def fig7_report(self):
        lines = []
        for metric, unit, scale in (
            ("delay", "ns", 1e9), ("energy", "fJ", 1e15),
            ("edp", "1e-24 Js", 1e24),
        ):
            series = self.series(metric)
            rows = []
            for capacity in self.capacities:
                row = {"capacity": capacity_label(capacity)}
                for label, value in series[capacity].items():
                    row[label] = value * scale
                rows.append(row)
            lines.append(render_dict_table(
                rows, title="Figure 7 (%s, %s)" % (metric, unit)
            ))
        # Fig 7(d): BL vs total delay for the HVT arrays.
        rows = []
        for capacity in self.capacities:
            row = {"capacity": capacity_label(capacity)}
            for method in METHODS:
                res = self.get(capacity, "hvt", method)
                row["BL_%s_ps" % method] = res.metrics.bl_read_delay * 1e12
                row["total_%s_ps" % method] = res.metrics.d_array * 1e12
            rows.append(row)
        lines.append(render_dict_table(
            rows, title="Figure 7(d): BL delay vs total delay (HVT)"
        ))
        # The Figure-7(c) view as a log-scale terminal chart.
        from .charts import grouped_bar_chart

        edp = self.series("edp")
        categories = [capacity_label(c) for c in self.capacities]
        series = {}
        for capacity in self.capacities:
            for label, value in edp[capacity].items():
                series.setdefault(label, []).append(value * 1e24)
        lines.append(grouped_bar_chart(
            categories, series, unit="e-24 Js", log=True,
            title="Figure 7(c) as bars (log scale)",
        ))
        stats = self.headline()
        lines.append(stats.report())
        return "\n\n".join(lines)

    def headline(self):
        return compute_headline(self)


def optimize_all(session, capacities=CAPACITIES_BYTES,
                 keep_landscape=False, engine="vectorized"):
    """Run the exhaustive optimizer over the full evaluation matrix.

    Serial reference driver; :func:`repro.analysis.runner.run_study`
    produces the same sweep across a worker pool.
    """
    space = DesignSpace()
    results = {}
    for flavor in FLAVORS:
        model = session.model(flavor)
        constraint = session.constraint(flavor)
        optimizer = ExhaustiveOptimizer(model, space, constraint)
        levels = session.yield_levels(flavor)
        for method in METHODS:
            policy = make_policy(method, levels)
            for capacity in capacities:
                results[(capacity, flavor, method)] = optimizer.optimize(
                    capacity * 8, policy, keep_landscape=keep_landscape,
                    engine=engine,
                )
    return SweepResult(results=results, voltage_mode=session.voltage_mode)


# ---------------------------------------------------------------------------
# Headline statistics
# ---------------------------------------------------------------------------

@dataclass
class HeadlineResult:
    """The abstract's numbers: EDP gain and delay penalty of HVT-M2."""

    per_capacity: list    # dicts with edp_gain / delay_penalty
    avg_edp_gain_large: float
    avg_edp_gain_small: float
    avg_delay_penalty_large: float
    max_delay_penalty_large: float
    gain_16kb: float
    penalty_16kb: float
    bl_delay_reduction: float
    total_delay_reduction: float

    def report(self):
        table = render_dict_table(
            self.per_capacity,
            title="Headline: 6T-HVT-M2 vs 6T-LVT-M2",
        )
        checks = paper_vs_measured([
            ("avg EDP reduction >=1KB (%)", 59.0,
             self.avg_edp_gain_large * 100.0),
            ("avg EDP reduction <1KB (%)", 14.0,
             self.avg_edp_gain_small * 100.0),
            ("avg delay penalty >=1KB (%)", 9.0,
             self.avg_delay_penalty_large * 100.0),
            ("max delay penalty (%)", 12.0,
             self.max_delay_penalty_large * 100.0),
            ("16KB EDP reduction (%)", 78.0, self.gain_16kb * 100.0),
            ("16KB delay penalty (%)", 8.0, self.penalty_16kb * 100.0),
            ("HVT-M2 BL-delay reduction vs M1 (x)", 3.3,
             self.bl_delay_reduction),
            ("HVT-M2 total-delay reduction vs M1 (x)", 1.8,
             self.total_delay_reduction),
        ], title="Headline checkpoints")
        return table + "\n\n" + checks


def compute_headline(sweep):
    """Derive the paper's headline statistics from a full sweep."""
    per_capacity = []
    gains_large, gains_small = [], []
    penalties_large = []
    bl_reductions, total_reductions = [], []
    for capacity in sweep.capacities:
        hvt = sweep.get(capacity, "hvt", "M2").metrics
        lvt = sweep.get(capacity, "lvt", "M2").metrics
        hvt_m1 = sweep.get(capacity, "hvt", "M1").metrics
        gain = 1.0 - hvt.edp / lvt.edp
        penalty = hvt.d_array / lvt.d_array - 1.0
        per_capacity.append({
            "capacity": capacity_label(capacity),
            "edp_gain_pct": gain * 100.0,
            "delay_penalty_pct": penalty * 100.0,
        })
        if capacity >= 1024:
            gains_large.append(gain)
            penalties_large.append(penalty)
        else:
            gains_small.append(gain)
        bl_reductions.append(
            hvt_m1.bl_read_delay / hvt.bl_read_delay
        )
        total_reductions.append(hvt_m1.d_array / hvt.d_array)
    gain_16kb = per_capacity[-1]["edp_gain_pct"] / 100.0
    penalty_16kb = per_capacity[-1]["delay_penalty_pct"] / 100.0
    return HeadlineResult(
        per_capacity=per_capacity,
        avg_edp_gain_large=float(np.mean(gains_large)),
        avg_edp_gain_small=float(np.mean(gains_small)),
        avg_delay_penalty_large=float(np.mean(penalties_large)),
        max_delay_penalty_large=float(np.max(penalties_large)),
        gain_16kb=gain_16kb,
        penalty_16kb=penalty_16kb,
        bl_delay_reduction=float(np.mean(bl_reductions)),
        total_delay_reduction=float(np.mean(total_reductions)),
    )


# ---------------------------------------------------------------------------
# Device calibration checkpoints
# ---------------------------------------------------------------------------

@dataclass
class CalibrationResult:
    ion_ratio: float
    ioff_ratio: float
    onoff_gain: float
    leakage: dict
    read_fit: tuple       # (a, b, vt) for the HVT read stack
    iread_boost_ratio: float

    def report(self):
        a, b, vt = self.read_fit
        return paper_vs_measured([
            ("Ion ratio LVT/HVT", 2.0, self.ion_ratio),
            ("Ioff ratio LVT/HVT", 20.0, self.ioff_ratio),
            ("ON/OFF gain HVT/LVT", 10.0, self.onoff_gain),
            ("6T-LVT leakage (nW)", 1.692, self.leakage["lvt"] * 1e9),
            ("6T-HVT leakage (nW)", 0.082, self.leakage["hvt"] * 1e9),
            ("read fit a", 1.3, a),
            ("read fit b (A/V^a)", 9.5e-5, b),
            ("read fit Vt (mV)", 335.0, vt * 1e3),
            ("I_read boost at V_SSC=-240 (x)", 4.3,
             self.iread_boost_ratio),
        ], title="Device calibration checkpoints")


def calibration_checkpoints(session):
    """Verify every device-level number the paper states."""
    library = session.library
    ion_ratio, ioff_ratio, gain = device_ratios(library)
    leakage = {
        flavor: cell_leakage_power(session.cells[flavor], library.vdd)
        for flavor in FLAVORS
    }
    # Re-fit the paper's read-current law on the measured HVT stack,
    # along the slice where the paper applies it: V_DDC fixed at its
    # 550 mV operating point, V_SSC swept by the negative-Gnd assist.
    # (I_read is nearly flat in V_DDC alone — which is exactly why the
    # paper says boosting V_DDC has no read-delay impact — so a fit over
    # the full 2-D grid would not be the paper's one-variable law.)
    char = session.chars["hvt"]
    v_ddc_op = 0.550
    v_drive, currents = [], []
    for v_ssc in char.i_read.ys:
        v_drive.append(v_ddc_op - float(v_ssc))
        currents.append(char.i_read(v_ddc_op, float(v_ssc)))
    a, b, vt = fit_power_law(np.array(v_drive), np.array(currents))
    boost = char.i_read(0.55, -0.24) / char.i_read(0.55, 0.0)
    return CalibrationResult(
        ion_ratio=ion_ratio,
        ioff_ratio=ioff_ratio,
        onoff_gain=gain,
        leakage=leakage,
        read_fit=(a, b, vt),
        iread_boost_ratio=boost,
    )
