"""Fleet membership: peers, health probing, and pooled peer clients.

A fleet is configured statically — every replica is started with the
same peer list (``repro serve --peer URL`` repeated) — so membership
needs no gossip protocol: each replica derives the identical
:class:`~repro.fleet.ring.HashRing` from its own URL plus its peers.
What *is* dynamic is health: a peer that stops answering is marked down
(routing fails over to the next preference, usually local compute) and
a background probe of ``GET /healthz`` brings it back when it recovers.

Peer traffic (shard proxying, store sync, metrics aggregation) goes
through a small per-peer connection pool of keep-alive
:class:`~repro.service.client.ServiceClient` instances, so heartbeat-
and probe-heavy fleets do not pay a TCP handshake per call.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from urllib.parse import urlsplit

from .. import perf
from ..errors import ServiceError
from .ring import DEFAULT_VNODES, HashRing


def parse_peer_url(url):
    """``(host, port)`` of a peer base URL; raises ValueError when it
    is not plain ``http://host:port`` (the stdlib service speaks
    unencrypted HTTP/1.1 only — front it with a proxy for TLS)."""
    parts = urlsplit(url if "//" in url else "//" + url, scheme="http")
    if parts.scheme != "http":
        raise ValueError("peer URL %r must use http://" % (url,))
    if not parts.hostname:
        raise ValueError("peer URL %r has no host" % (url,))
    if parts.path not in ("", "/") or parts.query or parts.fragment:
        raise ValueError("peer URL %r must be a bare base URL" % (url,))
    return parts.hostname, parts.port or 80


def normalize_peer_url(url):
    """Canonical ``http://host:port`` spelling of a peer URL."""
    host, port = parse_peer_url(url)
    return "http://%s:%d" % (host, port)


class PeerClientPool:
    """Keep-alive clients for one peer, reused across sequential calls.

    ``acquire``/``release`` hand out idle clients (each holding one
    persistent connection); concurrent callers each get their own,
    and up to ``max_idle`` are retained for reuse.
    """

    def __init__(self, url, timeout=30.0, connect_timeout=2.0,
                 max_idle=4):
        self.url = url
        self.host, self.port = parse_peer_url(url)
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.max_idle = max_idle
        self._idle = []
        self._lock = threading.Lock()

    def _new_client(self):
        from ..service.client import ServiceClient

        return ServiceClient(
            host=self.host, port=self.port, timeout=self.timeout,
            connect_timeout=self.connect_timeout, max_retries=0,
        )

    def acquire(self):
        with self._lock:
            if self._idle:
                return self._idle.pop()
        return self._new_client()

    def release(self, client, discard=False):
        if discard:
            client.close()
            return
        with self._lock:
            if len(self._idle) < self.max_idle:
                self._idle.append(client)
                return
        client.close()

    def close(self):
        with self._lock:
            idle, self._idle = self._idle, []
        for client in idle:
            client.close()

    def request(self, method, path, body=None, request_id=None,
                extra_headers=None):
        """One pooled round trip; returns ``(status, payload, headers)``.

        Raises ``ServiceError``/``OSError`` on transport failure (the
        caller decides whether that marks the peer down).
        """
        client = self.acquire()
        try:
            result = client.request(method, path, body, check=False,
                                    request_id=request_id,
                                    extra_headers=extra_headers)
        except BaseException:
            self.release(client, discard=True)
            raise
        self.release(client)
        return result


@dataclass
class Peer:
    """One remote replica and its observed health."""

    url: str
    healthy: bool = True
    last_probe_at: float = None
    last_ok_at: float = None
    last_error: str = None
    consecutive_failures: int = 0
    pool: PeerClientPool = field(default=None, repr=False)

    def to_payload(self):
        return {
            "url": self.url,
            "healthy": self.healthy,
            "last_probe_at": self.last_probe_at,
            "last_ok_at": self.last_ok_at,
            "last_error": self.last_error,
            "consecutive_failures": self.consecutive_failures,
        }


class FleetTopology:
    """This replica's view of the fleet: self, peers, ring, health.

    Thread-safe: health transitions take a lock; the ring is immutable
    (membership is static) so routing lookups are lock-free.
    """

    def __init__(self, self_url, peer_urls=(), vnodes=DEFAULT_VNODES,
                 peer_timeout=30.0, connect_timeout=2.0):
        self.self_url = normalize_peer_url(self_url)
        self._lock = threading.Lock()
        self.peers = {}
        for url in peer_urls or ():
            url = normalize_peer_url(url)
            if url == self.self_url or url in self.peers:
                continue
            self.peers[url] = Peer(url=url, pool=PeerClientPool(
                url, timeout=peer_timeout,
                connect_timeout=connect_timeout))
        self.ring = HashRing([self.self_url] + list(self.peers),
                             vnodes=vnodes)

    # -- routing -----------------------------------------------------------

    def owner_of(self, key):
        """The member URL owning ``key`` on the ring."""
        return self.ring.node_for(key)

    def route(self, key):
        """``(owner_url, peer_or_None)`` for ``key`` after health
        failover: the first *healthy* member in preference order (self
        is always considered healthy).  Returns ``peer=None`` when the
        key lands on this replica."""
        for url in self.ring.preference(key):
            if url == self.self_url:
                return url, None
            peer = self.peers[url]
            if peer.healthy:
                return url, peer
        return self.self_url, None

    # -- health ------------------------------------------------------------

    def mark_down(self, url, error=None):
        with self._lock:
            peer = self.peers.get(url)
            if peer is None:
                return
            if peer.healthy:
                perf.count("fleet.peer_marked_down")
            peer.healthy = False
            peer.consecutive_failures += 1
            peer.last_error = str(error)[:500] if error else peer.last_error

    def mark_up(self, url):
        with self._lock:
            peer = self.peers.get(url)
            if peer is None:
                return
            if not peer.healthy:
                perf.count("fleet.peer_marked_up")
            peer.healthy = True
            peer.consecutive_failures = 0
            peer.last_error = None
            peer.last_ok_at = time.time()

    def probe(self, peer):
        """One synchronous ``GET /healthz`` probe of ``peer``."""
        now = time.time()
        try:
            status, payload, _ = peer.pool.request("GET", "/healthz")
        except (ServiceError, OSError) as exc:
            self.mark_down(peer.url, exc)
            ok = False
        else:
            ok = status == 200 and payload.get("status") in ("ok",
                                                             "draining")
            if ok:
                self.mark_up(peer.url)
            else:
                self.mark_down(peer.url, "healthz answered %d" % status)
        with self._lock:
            peer.last_probe_at = now
        perf.count("fleet.probes")
        return ok

    def probe_all(self):
        """Probe every peer; returns ``url -> healthy``."""
        return {url: self.probe(peer)
                for url, peer in list(self.peers.items())}

    def healthy_peers(self):
        return [peer for peer in self.peers.values() if peer.healthy]

    def close(self):
        for peer in self.peers.values():
            peer.pool.close()

    def to_payload(self):
        """The ``GET /v1/fleet`` membership/health view."""
        return {
            "self": self.self_url,
            "peers": [peer.to_payload()
                      for _, peer in sorted(self.peers.items())],
            "ring": {"nodes": list(self.ring.nodes),
                     "vnodes": self.ring.vnodes},
        }
