"""End-to-end fleet smoke test: N replicas + N remote workers, the
queue replica SIGKILLed mid-sweep, bit-identical resume, zero recompute.

The topology is real — every box is its own OS process on localhost,
and ``--hosts`` sets the replica count (default 2, minimum 2):

* **replica 0** — ``repro serve`` hosting the durable queue *and* a
  store replica (``--jobs`` + ``--store``), zero in-process job
  workers,
* **replicas 1..N-1** — ``repro serve`` each hosting a store replica
  only; all replicas are peered in a full mesh,
* **N workers** — ``python -m repro.jobs.worker --server <replica 0>``
  draining the queue over HTTP, each with its own local checkpoint
  store replicated to every replica.

The script submits a 16-cell study sweep, SIGKILLs replica 0 (queue
*and* store) mid-run, restarts it on the same port and files, and then
proves the durable-fleet contract:

1. the abandoned job is re-queued by lease expiry and re-claimed by a
   remote worker over HTTP,
2. the resumed run recomputes **zero** completed cells — every cell is
   computed exactly once fleet-wide (checkpoints survive via the
   workers' local stores and the surviving replicas, and flow back to
   the restarted replica 0 through write-back backlogs and read
   repair),
3. the final sweep on *every* replica is **bit-identical** to an
   uninterrupted in-process :func:`run_study` over the same matrix.

Run it directly (CI does)::

    python -m repro.fleet.smoke --cache .repro_cache.json --hosts 3

Exit status 0 on success, 1 with a diagnosis on any violated guarantee.
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time

from ..analysis.experiments import Session
from ..analysis.runner import run_study
from ..jobs import JobQueue
from ..jobs.worker import normalize_study_spec, study_cell_keys
from ..store import ExperimentStore, result_to_payload

SPEC = {
    "capacities": [128, 256, 512, 1024],
    "flavors": ["lvt", "hvt"],
    "methods": ["M1", "M2"],
    "voltage_mode": "paper",
}

_STATS_RE = re.compile(
    r"worker \S+: (\d+) done, (\d+) failed, (\d+) lost; "
    r"(\d+) cells computed, (\d+) skipped")


def _src_pythonpath():
    return os.pathsep.join(
        p for p in [os.environ.get("PYTHONPATH"),
                    os.path.join(os.path.dirname(__file__), "..", "..")]
        if p)


def _popen(argv):
    return subprocess.Popen(
        argv, env={**os.environ, "PYTHONPATH": _src_pythonpath()},
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)


def _tail(proc):
    """Drain ``proc`` stdout on a background thread; returns the
    growing line list (so the smoke can react to worker output live
    without ever filling the pipe)."""
    import threading

    lines = []

    def pump():
        for line in proc.stdout:
            lines.append(line)

    thread = threading.Thread(target=pump, daemon=True)
    thread.start()
    proc._tail_thread = thread
    return lines


def _reserve_port():
    """A free localhost port (bind-then-close; localhost CI is calm
    enough that the tiny reuse race does not bite)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn_replica(port, peer_ports, cache, jobs_path=None,
                   store_path=None):
    """One serve replica fully peered with ``peer_ports`` (every other
    replica in the fleet — the topology is a complete graph, so store
    replication and shard routing see all N hosts)."""
    argv = [sys.executable, "-m", "repro.cli", "serve",
            "--host", "127.0.0.1", "--port", str(port),
            "--executor", "thread", "--workers", "2",
            "--cache", cache, "--store", store_path,
            "--probe-interval", "0.5"]
    for peer_port in peer_ports:
        argv += ["--peer", "http://127.0.0.1:%d" % peer_port]
    if jobs_path:
        argv += ["--jobs", jobs_path, "--job-workers", "0"]
    return _popen(argv)


def _spawn_worker(server_url, store_path, replicate, cache, worker_id,
                  throttle):
    argv = [sys.executable, "-m", "repro.jobs.worker",
            "--server", server_url, "--store", store_path,
            "--cache", cache, "--worker-id", worker_id,
            "--lease", "2", "--poll", "0.1",
            "--throttle", str(throttle)]
    for url in replicate:
        argv += ["--replicate", url]
    return _popen(argv)


def _wait(predicate, timeout, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _wait_healthy(port, timeout):
    from ..service.client import ServiceClient

    def up():
        try:
            with ServiceClient(port=port, timeout=2.0,
                               max_retries=0) as client:
                return client.healthz().get("status") == "ok"
        except Exception:
            return False
    return _wait(up, timeout, interval=0.2)


def _stop_workers(workers, tails):
    """SIGTERM every worker and collect (exit code, stdout) pairs
    (stdout was drained live by the :func:`_tail` threads)."""
    for worker in workers:
        if worker.poll() is None:
            worker.send_signal(signal.SIGTERM)
    collected = []
    for worker, lines in zip(workers, tails):
        try:
            worker.wait(timeout=60)
        except subprocess.TimeoutExpired:
            worker.kill()
            worker.wait(timeout=30)
        worker._tail_thread.join(timeout=10)
        collected.append((worker.returncode, "".join(lines)))
    return collected


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro.fleet.smoke",
        description="Fleet kill/resume smoke test "
                    "(N replicas + N remote workers).")
    parser.add_argument("--cache", default=".repro_cache.json",
                        help="characterization cache (reused, not "
                             "recomputed, when it exists)")
    parser.add_argument("--hosts", type=int, default=2,
                        help="serve replica count (>= 2; replica 0 "
                             "hosts the queue, the rest are store-only)")
    parser.add_argument("--workers", type=int, default=2,
                        help="remote worker subprocess count")
    parser.add_argument("--throttle", type=float, default=0.4,
                        help="per-cell pacing of the workers; sets the "
                             "SIGKILL window")
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args(argv)
    if args.hosts < 2:
        parser.error("--hosts must be >= 2 (the kill/resume proof "
                     "needs a surviving store replica)")
    cache = os.path.abspath(args.cache)

    failures = []

    def check(ok, what):
        print("%s %s" % ("ok  " if ok else "FAIL", what), flush=True)
        if not ok:
            failures.append(what)

    procs = []
    try:
        with tempfile.TemporaryDirectory(prefix="repro-fleet-smoke-") \
                as d:
            hosts = args.hosts
            ports = [_reserve_port() for _ in range(hosts)]
            urls = ["http://127.0.0.1:%d" % port for port in ports]
            port_a, url_a = ports[0], urls[0]
            queue_path = os.path.join(d, "queue-a.db")
            stores = [os.path.join(d, "store-%d.db" % i)
                      for i in range(hosts)]

            def start_replica_a():
                replica = _spawn_replica(port_a, ports[1:], cache,
                                         jobs_path=queue_path,
                                         store_path=stores[0])
                procs.append(replica)
                return replica

            # Store-only replicas 1..N-1 first (full-mesh peering:
            # every replica lists every other as --peer), then the
            # queue+store replica 0.
            for i in range(1, hosts):
                peer_ports = [p for p in ports if p != ports[i]]
                procs.append(_spawn_replica(ports[i], peer_ports, cache,
                                            store_path=stores[i]))
            replica_a = start_replica_a()
            check(all(_wait_healthy(port, args.timeout)
                      for port in ports),
                  "all %d replicas serving (:%d queue+store, %s "
                  "store-only)" % (hosts, port_a,
                                   ", ".join(":%d" % p
                                             for p in ports[1:])))

            # Submit the sweep to A over HTTP, like any fleet client.
            from ..service.client import ServiceClient

            spec = dict(SPEC, cache_path=cache)
            with ServiceClient(port=port_a) as client:
                job_id = client.submit_job(spec)["id"]
            print("submitted %s (16-cell sweep) to %s"
                  % (job_id, url_a), flush=True)

            # The smoke process's own reference view (same host, so the
            # queue/store SQLite files are directly readable).
            queue = JobQueue(queue_path)
            session = Session.create(cache_path=cache,
                                     voltage_mode="paper")
            cells = study_cell_keys(session, normalize_study_spec(spec))
            total = len(cells)
            check(total == 16, "study matrix has 16 cells")

            workers = [
                _spawn_worker(url_a, os.path.join(d, "w%d.db" % i),
                              list(urls), cache, "fleet-w%d" % i,
                              args.throttle)
                for i in range(max(1, args.workers))
            ]
            procs.extend(workers)
            tails = [_tail(worker) for worker in workers]

            killed_at = None

            def mid_sweep():
                nonlocal killed_at
                job = queue.get(job_id)
                completed = (job.progress or {}).get("completed", 0)
                if job.state == "running" \
                        and 1 <= completed <= total - 2:
                    killed_at = completed
                    return True
                return job.terminal    # ran through; window missed

            _wait(mid_sweep, args.timeout)
            replica_a.send_signal(signal.SIGKILL)
            replica_a.wait(timeout=30)
            job = queue.get(job_id)
            check(killed_at is not None and not job.terminal,
                  "replica 0 (queue+store) SIGKILLed mid-sweep "
                  "(after %s/%d cells, job state %r)"
                  % (killed_at, total, job.state))

            # Keep A down until the claim holder's heartbeat actually
            # fails and it abandons the job (it logs "job <id> lost").
            # Restarting sooner can slip between two heartbeats — the
            # original lease would then survive and the lease-expiry
            # re-queue path this smoke exists to prove would never run.
            abandoned_line = "job %s lost" % job_id
            check(_wait(lambda: any(abandoned_line in line
                                    for lines in tails
                                    for line in list(lines)),
                        args.timeout),
                  "claim holder noticed the dead queue and abandoned "
                  "the job")

            # Restart A on the same port and files; the abandoned
            # job's lease expires and the next remote claim re-queues
            # it (bumping the attempt counter).
            replica_a = start_replica_a()
            check(_wait_healthy(port_a, args.timeout),
                  "replica 0 restarted on :%d" % port_a)

            def done():
                return queue.get(job_id).state == "done"
            _wait(done, args.timeout)
            job = queue.get(job_id)
            check(job.state == "done" and job.attempts >= 2,
                  "remote worker re-claimed and finished the job "
                  "(state %r, attempt %d)" % (job.state, job.attempts))

            # Stop the workers and read their own accounting: across
            # the whole fleet every cell was computed exactly once.
            stats = _stop_workers(workers, tails)
            computed = skipped = 0
            for code, out in stats:
                match = _STATS_RE.search(out or "")
                if match is None:
                    check(False, "worker stats line missing "
                                 "(exit %s):\n%s" % (code, out))
                    continue
                computed += int(match.group(4))
                skipped += int(match.group(5))
            check(computed == total,
                  "zero re-computed cells (%d computed across %d "
                  "workers, %d skipped on resume)"
                  % (computed, len(workers), skipped))

            # Bit-identity on EVERY replica: the restarted replica 0
            # converged through write-back backlogs and read repair,
            # the store-only survivors through live pushes — and every
            # payload equals the uninterrupted in-process reference
            # exactly.
            study = run_study(
                session=session,
                capacities=tuple(spec["capacities"]),
                flavors=tuple(spec["flavors"]),
                methods=tuple(spec["methods"]), workers=1,
            )
            for name, path in [(str(i), stores[i])
                               for i in range(hosts)]:
                store = ExperimentStore(path)
                mismatches = [
                    task.label for task, key in cells
                    if store.get(key, touch=False) != result_to_payload(
                        study.sweep.results[(task.capacity_bytes,
                                             task.flavor, task.method)])
                ]
                check(not mismatches,
                      "replica %s holds the full sweep bit-identical "
                      "to the uninterrupted run" % name
                      + ("" if not mismatches else " (mismatch: %s)"
                         % ", ".join(mismatches)))

            record = ExperimentStore(stores[0]).get(job.result_key,
                                                    touch=False)
            check(record is not None
                  and len(record["cells"]) == total,
                  "sweep record on replica 0 lists all %d cells"
                  % total)
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
        for proc in procs:
            if proc.poll() is None:
                proc.wait(timeout=30)

    if failures:
        print("\nfleet smoke FAILED: %d check(s)" % len(failures),
              flush=True)
        return 1
    print("\nfleet smoke passed", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
