"""Consistent-hash ring for sharding result-cache keys across replicas.

The fleet routes ``/v1/optimize`` / ``/v1/pareto`` result-cache keys to
an *owner* replica so each search is computed (and cached) on exactly
one host no matter which replica the client happened to hit.  A classic
consistent-hash ring keeps that assignment stable under membership
changes: each node is hashed onto the ring at ``vnodes`` points, a key
is owned by the first node clockwise from its own hash, and adding or
removing one node only moves the keys adjacent to its points (~1/N of
the space) instead of reshuffling everything.

Hashing is SHA-256 (stdlib, stable across processes, platforms and
Python versions — ``hash()`` is salted and useless here), so every
replica given the same member list derives the *same* ring without any
coordination traffic.
"""

from __future__ import annotations

import bisect
import hashlib

#: Points per node on the ring.  128 vnodes keeps the max/mean load
#: imbalance under ~1.2x for small fleets while the ring stays tiny
#: (N*128 ints) and O(log) to query.
DEFAULT_VNODES = 128


def ring_hash(text):
    """Stable 64-bit position of ``text`` on the ring."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Immutable consistent-hash ring over a set of node names.

    Nodes are opaque strings (the fleet uses replica base URLs).  The
    ring is rebuilt wholesale on membership change — it is tiny, and
    immutability means lookups need no locking.
    """

    def __init__(self, nodes, vnodes=DEFAULT_VNODES):
        self.nodes = tuple(sorted(set(nodes)))
        self.vnodes = int(vnodes)
        if not self.nodes:
            raise ValueError("a hash ring needs at least one node")
        if self.vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        points = []
        for node in self.nodes:
            for index in range(self.vnodes):
                points.append((ring_hash("%s#%d" % (node, index)), node))
        points.sort()
        self._points = [position for position, _ in points]
        self._owners = [node for _, node in points]

    def __len__(self):
        return len(self.nodes)

    def __contains__(self, node):
        return node in self.nodes

    def _first_index(self, key):
        position = ring_hash(key)
        index = bisect.bisect_right(self._points, position)
        return index % len(self._points)

    def node_for(self, key):
        """The owner of ``key``: first node clockwise from its hash."""
        return self._owners[self._first_index(key)]

    def preference(self, key, limit=None):
        """Distinct nodes in failover order for ``key``.

        The owner first, then each further node in ring order — the
        deterministic sequence every replica agrees on, so failover
        (owner down -> next preference) needs no negotiation.
        """
        limit = len(self.nodes) if limit is None else min(int(limit),
                                                         len(self.nodes))
        ordered = []
        seen = set()
        start = self._first_index(key)
        for offset in range(len(self._owners)):
            node = self._owners[(start + offset) % len(self._owners)]
            if node not in seen:
                seen.add(node)
                ordered.append(node)
                if len(ordered) >= limit:
                    break
        return ordered

    def spread(self, keys):
        """``node -> count`` over ``keys`` (balance diagnostics)."""
        counts = {node: 0 for node in self.nodes}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts
