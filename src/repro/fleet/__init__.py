"""repro.fleet: multi-host scale-out of the jobs/store/serve stack.

One machine's stack — the durable :mod:`~repro.jobs` queue, the
content-addressed :mod:`~repro.store`, the :mod:`~repro.service`
server — becomes a fleet with three stdlib-only HTTP protocols:

* **remote job claiming** (:mod:`~repro.fleet` via
  :class:`~repro.jobs.remote.RemoteJobQueue`) — the queue's lease
  protocol over ``POST /v1/jobs/claim|heartbeat|complete|fail``, with
  attempt-fencing lease tokens, so workers on any host drain one queue
  and a SIGKILLed remote worker's jobs are re-queued by lease expiry
  exactly like a local one's.
* **store replication** (:class:`~repro.store.ReplicatedStore`) —
  read-through / write-back sync of content-addressed result blobs
  over ``GET/PUT /v1/store/<key>``; payload JSON preserves floats
  bit-exactly, so resumed sweeps stay bit-identical across hosts.
* **sharded serving** (:class:`~repro.fleet.ring.HashRing` +
  :class:`~repro.fleet.topology.FleetTopology`) — consistent-hash
  routing of ``/v1/optimize``/``/v1/pareto`` result-cache keys across
  ``repro serve --peer`` replicas, with health probing and failover to
  local compute.

``python -m repro.fleet.smoke`` (or ``repro fleet smoke``) stands up a
real localhost topology — two serve replicas, N remote workers — kills
a replica mid-sweep, restarts it, and proves the resumed sweep is
bit-identical with zero recomputed cells.  See ``docs/FLEET.md``.
"""

from .ring import DEFAULT_VNODES, HashRing, ring_hash
from .topology import (
    FleetTopology,
    Peer,
    PeerClientPool,
    normalize_peer_url,
    parse_peer_url,
)

__all__ = [
    "DEFAULT_VNODES",
    "FleetTopology",
    "HashRing",
    "Peer",
    "PeerClientPool",
    "normalize_peer_url",
    "parse_peer_url",
    "ring_hash",
]
