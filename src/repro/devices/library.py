"""The 7nm FinFET device library used throughout the reproduction.

This is the stand-in for the multi-threshold 7nm FinFET library of
Chen et al. [4] that the paper adopts (nominal supply 450 mV, LVT and
HVT flavors).  The parameter values below are *derived from the paper's
own calibration points* — see :mod:`repro.devices.calibration` for the
closed-form derivations and the numeric refinement:

* HVT vs LVT at nominal Vdd: 2x lower ON current, 20x lower OFF current,
  10x higher ON/OFF ratio (paper Section 2);
* 6T cell leakage 1.692 nW (LVT) and 0.082 nW (HVT) (paper Section 5);
* HVT read-current fit ``I_read = b (V_DDC - V_SSC - Vt)^a`` with
  a = 1.3, b = 9.5e-5 A/V^1.3, Vt = 335 mV (paper Section 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .model import FinFET
from .params import FinFETParams

#: Nominal supply voltage of the adopted 7nm library [V].
VDD_NOMINAL = 0.450

#: HVT threshold magnitude [V] — anchored to the paper's read-current fit.
VT_HVT = 0.335

#: ON-current ratio LVT/HVT at nominal Vdd (paper Section 2).
ION_RATIO = 2.0

#: OFF-current ratio LVT/HVT (paper Section 2).
IOFF_RATIO = 20.0

#: Alpha-power exponent (paper's read-current fit).
ALPHA = 1.3

# --- derived quantities (see calibration.derive_* for the algebra) --------

#: LVT threshold [V]: (Vdd - VT_LVT) = ION_RATIO**(1/ALPHA) * (Vdd - VT_HVT).
VT_LVT = VDD_NOMINAL - ION_RATIO ** (1.0 / ALPHA) * (VDD_NOMINAL - VT_HVT)

#: Softplus overdrive width [V] chosen so the channel-term OFF-current
#: ratio across the Vt split equals IOFF_RATIO:
#: gamma_s = ALPHA * (VT_HVT - VT_LVT) / ln(IOFF_RATIO).
GAMMA_S = ALPHA * (VT_HVT - VT_LVT) / math.log(IOFF_RATIO)

#: NFET strong-inversion prefactor [A/V^alpha] per fin, set so the
#: *series read stack* of the 6T-HVT cell reproduces the paper's fit
#: prefactor b = 9.5e-5 A/V^1.3 (numerically refined in calibration.py).
B_NFET = 1.89e-4

#: PFET drive relative to NFET (FinFET hole/electron drive ratio).
PFET_DRIVE_RATIO = 0.85

#: Leakage floors [A] per fin, calibrated so the simulated 6T cell
#: leakage at nominal Vdd equals the paper's values
#: (1.692 nW for 6T-LVT, 0.082 nW for 6T-HVT); see calibration.py.
I_FLOOR_LVT = 1.056e-9
I_FLOOR_HVT = 50.85e-12

#: Per-fin gate / drain capacitances [F] (SPICE-extracted in the paper;
#: here set to representative 7nm single-fin values).
C_GATE_N = 0.07e-15
C_GATE_P = 0.07e-15
C_DRAIN_N = 0.05e-15
C_DRAIN_P = 0.05e-15


def _make_params(polarity, vt, i_floor, drive_ratio=1.0):
    c_gate = C_GATE_N if polarity == "n" else C_GATE_P
    c_drain = C_DRAIN_N if polarity == "n" else C_DRAIN_P
    return FinFETParams(
        polarity=polarity,
        vt=vt,
        b=B_NFET * drive_ratio,
        alpha=ALPHA,
        gamma_s=GAMMA_S,
        i_floor=i_floor,
        c_gate=c_gate,
        c_drain=c_drain,
    )


@dataclass(frozen=True)
class DeviceLibrary:
    """A multi-threshold FinFET library (one NFET and PFET per flavor).

    ``flavor`` is ``"lvt"`` or ``"hvt"`` everywhere in this package.
    The paper's arrays always build peripheral circuits from LVT devices;
    the SRAM cell transistors are either all-LVT or all-HVT.
    """

    vdd: float
    nfet_lvt: FinFETParams
    nfet_hvt: FinFETParams
    pfet_lvt: FinFETParams
    pfet_hvt: FinFETParams

    FLAVORS = ("lvt", "hvt")

    @classmethod
    def default_7nm(cls):
        """The calibrated 7nm library described in the module docstring."""
        return cls(
            vdd=VDD_NOMINAL,
            nfet_lvt=_make_params("n", VT_LVT, I_FLOOR_LVT),
            nfet_hvt=_make_params("n", VT_HVT, I_FLOOR_HVT),
            pfet_lvt=_make_params("p", VT_LVT, I_FLOOR_LVT, PFET_DRIVE_RATIO),
            pfet_hvt=_make_params("p", VT_HVT, I_FLOOR_HVT, PFET_DRIVE_RATIO),
        )

    def _check_flavor(self, flavor):
        if flavor not in self.FLAVORS:
            raise ValueError(
                "unknown device flavor %r (expected one of %r)"
                % (flavor, self.FLAVORS)
            )

    def nfet_params(self, flavor):
        """NFET parameter set for ``flavor`` ('lvt' or 'hvt')."""
        self._check_flavor(flavor)
        return self.nfet_lvt if flavor == "lvt" else self.nfet_hvt

    def pfet_params(self, flavor):
        """PFET parameter set for ``flavor`` ('lvt' or 'hvt')."""
        self._check_flavor(flavor)
        return self.pfet_lvt if flavor == "lvt" else self.pfet_hvt

    def nfet(self, flavor, nfin=1):
        """An NFET instance of the given flavor and fin count."""
        return FinFET(self.nfet_params(flavor), nfin)

    def pfet(self, flavor, nfin=1):
        """A PFET instance of the given flavor and fin count."""
        return FinFET(self.pfet_params(flavor), nfin)
