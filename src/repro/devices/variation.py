"""Process-variation sampling for Monte Carlo yield analysis.

The dominant random-variation mechanism in scaled FinFETs is
work-function / random-dopant threshold-voltage variation, which the
paper's Monte Carlo analysis captures to justify its yield constraint
(noise margins must exceed 35% of Vdd).  We model per-transistor Vt as an
independent Gaussian; a Pelgrom-style area law relates the per-fin sigma
to an A_vt matching coefficient.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Pelgrom matching coefficient [V * m] representative of a 7nm FinFET
#: (about 1.2 mV * um).
A_VT_DEFAULT = 1.2e-9

#: Effective single-fin gate area [m^2]: Lg ~ 14 nm, Weff ~ 2*Hfin + Tfin
#: with Hfin ~ 30 nm and Tfin ~ 7 nm.
FIN_AREA_DEFAULT = 14e-9 * 67e-9


def sigma_vt_single_fin(a_vt=A_VT_DEFAULT, fin_area=FIN_AREA_DEFAULT):
    """Pelgrom sigma(Vt) [V] for a single-fin device: A_vt / sqrt(W*L)."""
    return a_vt / math.sqrt(fin_area)


@dataclass(frozen=True)
class VariationModel:
    """Gaussian per-transistor threshold-voltage variation.

    ``sigma_vt`` is the per-fin standard deviation; a multi-fin device
    averages ``nfin`` independent fins, so its sigma shrinks by
    ``1/sqrt(nfin)``.
    """

    sigma_vt: float = sigma_vt_single_fin()

    def __post_init__(self):
        if self.sigma_vt < 0:
            raise ValueError("sigma_vt must be non-negative")

    def sigma_for(self, nfin):
        """Sigma(Vt) [V] for an ``nfin``-fin device."""
        if nfin < 1:
            raise ValueError("nfin must be >= 1")
        return self.sigma_vt / math.sqrt(nfin)

    def sample_shifts(self, n_transistors, n_samples, rng, nfin=1):
        """Draw Vt shifts [V], shape ``(n_samples, n_transistors)``.

        ``rng`` is a :class:`numpy.random.Generator`; passing it in keeps
        every Monte Carlo run reproducible from a caller-owned seed.
        """
        return rng.normal(
            0.0, self.sigma_for(nfin), size=(n_samples, n_transistors)
        )


def apply_shift_matrix(params_list, shift_matrix):
    """Batch a Monte Carlo shift matrix onto a circuit's transistors.

    ``shift_matrix`` has shape ``(n_samples, n_transistors)`` — the
    layout :meth:`VariationModel.sample_shifts` draws.  Returns one
    **batched** :class:`FinFETParams` per transistor, each carrying its
    column of the matrix as an ``(n_samples, 1)`` per-sample ``vt``, so
    all samples evaluate in single numpy expressions downstream.

    The thresholds are floored exactly like the scalar
    :func:`apply_shifts` path (``with_vt_shift``), keeping batched and
    per-sample evaluation bit-identical.
    """
    shift_matrix = np.asarray(shift_matrix, dtype=float)
    if shift_matrix.ndim != 2:
        raise ValueError(
            "shift_matrix must be (n_samples, n_transistors); got shape %r"
            % (shift_matrix.shape,)
        )
    if len(params_list) != shift_matrix.shape[1]:
        raise ValueError(
            "got %d parameter sets but %d shift columns"
            % (len(params_list), shift_matrix.shape[1])
        )
    return [
        params.with_vt_shifts(shift_matrix[:, column])
        for column, params in enumerate(params_list)
    ]


def apply_shifts(params_list, shifts):
    """Shift each parameter set in ``params_list`` by the matching entry
    of ``shifts`` (one Monte Carlo instance of a circuit's transistors).

    Returns a new list of :class:`FinFETParams`.
    """
    if len(params_list) != len(shifts):
        raise ValueError(
            "got %d parameter sets but %d shifts"
            % (len(params_list), len(shifts))
        )
    return [
        params.with_vt_shift(float(shift))
        for params, shift in zip(params_list, shifts)
    ]
