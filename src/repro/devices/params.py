"""Parameter sets for the compact FinFET model.

A :class:`FinFETParams` instance fully describes one device flavor
(e.g. the 7nm LVT NFET).  The numeric defaults for the paper's library
live in :mod:`repro.devices.library`; the derivations that produced them
live in :mod:`repro.devices.calibration`.

The threshold voltage ``vt`` may also be a numpy *column vector* of
shape ``(n, 1)`` — a **batched** parameter set carrying one threshold
per Monte Carlo sample.  Every downstream expression in
:mod:`repro.devices.model` is pure numpy, so a batched parameter set
evaluates all samples simultaneously: scalar node voltages broadcast
against the sample column, and 1-D voltage sweeps (shape ``(points,)``)
broadcast to ``(n, points)`` grids.  See
:meth:`FinFETParams.with_vt_shifts`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace

import numpy as np

from ..units import PHI_T


@dataclass(frozen=True, eq=False)
class FinFETParams:
    """Compact-model parameters for a single FinFET flavor.

    The drain current per fin is ``I = I_channel + I_floor``:

    * a single smooth channel expression spanning subthreshold and strong
      inversion (alpha-power law with a softplus effective overdrive, so
      the paper's read-current fit exponent a = 1.3 emerges in strong
      inversion while subthreshold decays exponentially with swing
      ``S = gamma_s * ln(10) / alpha``)::

          Veff      = gamma_s * ln(1 + exp((Vgs - vt) / gamma_s))
          Vdsat     = kappa_sat * Veff + vdsat0
          I_channel = b * Veff**alpha * tanh(Vds / Vdsat)
                        * (1 + lambda_ * Vds)

    * a gate-independent junction/GIDL leakage floor that dominates the
      OFF current and is calibrated against the paper's absolute cell
      leakage powers (1.692 nW LVT / 0.082 nW HVT)::

          I_floor = i_floor * (1 - exp(-Vds / phi_t))

    All voltages in volts, currents in amperes, per single fin; drive
    strength scales linearly with the integer fin count (the FinFET
    width-quantization property).
    """

    #: "n" or "p".  For PFETs all voltages are mirrored before evaluation.
    polarity: str
    #: Threshold voltage magnitude [V] — a float, or an ``(n, 1)`` column
    #: of per-sample thresholds (see :meth:`with_vt_shifts`).
    vt: float
    #: Strong-inversion transconductance coefficient [A / V**alpha] per fin.
    b: float
    #: Alpha-power-law exponent (paper fit: 1.3).
    alpha: float = 1.3
    #: Softplus width of the effective overdrive [V].  Sets the
    #: subthreshold swing: S = gamma_s * ln(10) / alpha.
    gamma_s: float = 0.03515
    #: Junction/GIDL leakage floor [A] per fin (gate independent).
    i_floor: float = 50e-12
    #: Output-conductance coefficient [1/V] (FinFETs: negligible DIBL).
    lambda_: float = 0.05
    #: Saturation-voltage slope: Vdsat = kappa_sat * Veff + vdsat0.
    kappa_sat: float = 0.8
    #: Saturation-voltage floor [V] (~ 2 thermal voltages; avoids div/0).
    vdsat0: float = 2.0 * PHI_T
    #: Gate capacitance per fin [F].
    c_gate: float = 0.07e-15
    #: Drain (junction + contact) capacitance per fin [F].
    c_drain: float = 0.05e-15

    def __post_init__(self):
        if self.polarity not in ("n", "p"):
            raise ValueError("polarity must be 'n' or 'p', got %r" % (self.polarity,))
        if np.ndim(self.vt) not in (0, 2):
            raise ValueError(
                "vt must be a scalar or an (n, 1) sample column; got shape %r"
                % (np.shape(self.vt),)
            )
        if np.ndim(self.vt) == 2 and np.shape(self.vt)[1] != 1:
            raise ValueError(
                "batched vt must be a column of shape (n, 1); got %r"
                % (np.shape(self.vt),)
            )
        if np.any(np.asarray(self.vt) <= 0):
            raise ValueError("vt must be a positive magnitude")
        if self.b <= 0:
            raise ValueError("current prefactor b must be positive")
        if self.i_floor < 0:
            raise ValueError("leakage floor must be non-negative")
        if self.alpha <= 0 or self.gamma_s <= 0:
            raise ValueError("alpha and gamma_s must be positive")

    # -- batching -----------------------------------------------------------

    @property
    def batch_size(self):
        """Number of samples carried by a batched ``vt``; None if scalar."""
        if np.ndim(self.vt) == 0:
            return None
        return int(np.shape(self.vt)[0])

    @property
    def is_batched(self):
        return self.batch_size is not None

    # -- equality / hashing -------------------------------------------------
    # The generated dataclass __eq__ would raise on a batched (array) vt,
    # so equality and hashing are spelled out with array-aware semantics.

    def __eq__(self, other):
        if other.__class__ is not self.__class__:
            return NotImplemented
        for f in fields(self):
            a = getattr(self, f.name)
            b = getattr(other, f.name)
            if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
                if not np.array_equal(a, b):
                    return False
            elif a != b:
                return False
        return True

    def __hash__(self):
        key = []
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, np.ndarray):
                value = (value.shape, value.tobytes())
            key.append(value)
        return hash(tuple(key))

    @property
    def subthreshold_swing(self):
        """Subthreshold swing S of the channel term, in volts per decade."""
        return self.gamma_s * math.log(10.0) / self.alpha

    def with_vt_shift(self, delta_vt):
        """A copy of these parameters with the threshold shifted by
        ``delta_vt`` volts (used by Monte Carlo variation sampling).

        The shifted threshold is floored at 1 mV so that extreme variation
        samples remain physically valid (vt must stay positive).
        """
        if np.ndim(self.vt) == 0 and np.ndim(delta_vt) == 0:
            return replace(self, vt=max(self.vt + delta_vt, 1e-3))
        return replace(self, vt=np.maximum(self.vt + delta_vt, 1e-3))

    def with_vt_shifts(self, shifts):
        """Batched copy: one threshold per sample, all evaluated at once.

        ``shifts`` is a 1-D array of ``n`` per-sample Vt shifts [V]; the
        result carries ``vt`` as an ``(n, 1)`` column (floored at 1 mV
        exactly like :meth:`with_vt_shift`) so that voltage sweeps of
        shape ``(points,)`` broadcast to ``(n, points)`` sample grids.
        """
        shifts = np.asarray(shifts, dtype=float)
        if shifts.ndim != 1:
            raise ValueError(
                "shifts must be a 1-D per-sample vector; got shape %r"
                % (shifts.shape,)
            )
        if self.is_batched:
            raise ValueError("parameters are already batched")
        column = np.maximum(self.vt + shifts.reshape(-1, 1), 1e-3)
        return replace(self, vt=column)

    def scaled_drive(self, factor):
        """A copy with the channel drive scaled by ``factor``.

        Used for what-if studies (e.g. mobility degradation ablations);
        fin-count scaling is handled at the instance level, not here.
        """
        if factor <= 0:
            raise ValueError("drive scale factor must be positive")
        return replace(self, b=self.b * factor)
