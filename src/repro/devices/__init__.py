"""7nm FinFET compact device models (the paper's SPICE/PTM substitute).

Public API:

* :class:`FinFETParams` — parameter set for one device flavor.
* :class:`FinFET` — a device instance (flavor + fin count) with smooth
  I-V evaluation and analytic derivatives.
* :class:`DeviceLibrary` — the calibrated 7nm LVT/HVT library
  (:meth:`DeviceLibrary.default_7nm`).
* :class:`VariationModel` — Pelgrom threshold-voltage variation for
  Monte Carlo yield analysis.
"""

from .corners import (
    GLOBAL_VT_SHIFT,
    CornerSummary,
    ProcessCorner,
    corner_cell_summary,
    corner_library,
    corner_sweep,
    standard_corners,
)
from .library import (
    ALPHA,
    VDD_NOMINAL,
    VT_HVT,
    VT_LVT,
    DeviceLibrary,
)
from .model import FinFET, ids_core, ids_core_with_derivatives
from .params import FinFETParams
from .temperature import (
    T_REF,
    celsius,
    library_at_temperature,
    params_at_temperature,
)
from .variation import VariationModel, apply_shifts, sigma_vt_single_fin

__all__ = [
    "ALPHA",
    "GLOBAL_VT_SHIFT",
    "VDD_NOMINAL",
    "VT_HVT",
    "VT_LVT",
    "CornerSummary",
    "DeviceLibrary",
    "FinFET",
    "FinFETParams",
    "ProcessCorner",
    "T_REF",
    "VariationModel",
    "apply_shifts",
    "celsius",
    "corner_cell_summary",
    "corner_library",
    "corner_sweep",
    "ids_core",
    "ids_core_with_derivatives",
    "library_at_temperature",
    "params_at_temperature",
    "sigma_vt_single_fin",
    "standard_corners",
]
