"""Calibration of the compact FinFET library to the paper's data points.

The paper characterizes its devices with HSPICE over a 7nm FinFET PTM
library; we do not have that library, so instead we *calibrate* the
compact model of :mod:`repro.devices.model` against every device-level
quantity the paper states:

======================================================  ====================
Paper statement (Sections 2 and 5)                       Calibrated quantity
======================================================  ====================
HVT has 2x lower ON current than LVT                     Vt split (closed form)
HVT has 20x lower OFF current than LVT                   gamma_s (closed form)
HVT has 10x higher ON/OFF ratio                          follows from the two above
6T-LVT cell leakage = 1.692 nW at 450 mV                 i_floor (LVT), numeric
6T-HVT cell leakage = 0.082 nW at 450 mV                 i_floor (HVT), numeric
I_read = b (V_DDC - V_SSC - Vt)^a, a=1.3, b=9.5e-5,      b (NFET) + power-law
Vt=335 mV for the HVT read stack                         re-fit, numeric
======================================================  ====================

Closed forms
------------

With the alpha-power channel ``I_on ~ b (Vdd - Vt)^alpha`` the 2x ON
ratio pins the Vt split::

    (Vdd - VT_LVT) = 2**(1/alpha) * (Vdd - VT_HVT)

and with the subthreshold decay ``I ~ exp(alpha * (Vgs - Vt) / gamma_s)``
the 20x channel OFF ratio pins the softplus width::

    gamma_s = alpha * (VT_HVT - VT_LVT) / ln(20)

The ON/OFF-ratio claim (10x) then follows: the ratio of ratios is
(Ioff ratio)/(Ion ratio) = 20/2 = 10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import CalibrationError
from ..units import nW
from .library import DeviceLibrary
from .model import FinFET

#: Paper targets (Section 2 / Section 5).
TARGET_ION_RATIO = 2.0
TARGET_IOFF_RATIO = 20.0
TARGET_ONOFF_RATIO_GAIN = 10.0
TARGET_LEAKAGE_LVT_W = nW(1.692)
TARGET_LEAKAGE_HVT_W = nW(0.082)
TARGET_READ_FIT_A = 1.3
TARGET_READ_FIT_B = 9.5e-5
TARGET_READ_FIT_VT = 0.335


def derive_vt_lvt(vdd, vt_hvt, ion_ratio=TARGET_ION_RATIO, alpha=1.3):
    """LVT threshold [V] from the ON-current ratio (closed form above)."""
    return vdd - ion_ratio ** (1.0 / alpha) * (vdd - vt_hvt)


def derive_gamma_s(vt_hvt, vt_lvt, ioff_ratio=TARGET_IOFF_RATIO, alpha=1.3):
    """Softplus width [V] from the OFF-current ratio (closed form above)."""
    return alpha * (vt_hvt - vt_lvt) / math.log(ioff_ratio)


def fit_power_law(v_drive, currents):
    """Least-squares fit of ``I = b * (V - Vt)**a`` to measured currents.

    This mirrors the paper's analytical read-current expression.  The fit
    is linear in log space for fixed Vt; Vt itself is found by a golden
    scan over [0, min(v_drive)).  Returns ``(a, b, vt)``.
    """
    v = np.asarray(v_drive, dtype=float)
    i = np.asarray(currents, dtype=float)
    if v.shape != i.shape or v.size < 3:
        raise ValueError("need at least three (V, I) samples of equal length")
    if np.any(i <= 0):
        raise ValueError("currents must be positive for a log-space fit")

    def residual(vt):
        overdrive = v - vt
        if np.any(overdrive <= 0):
            return np.inf, (np.nan, np.nan)
        x = np.log(overdrive)
        y = np.log(i)
        a, log_b = np.polyfit(x, y, 1)
        return float(np.sum((np.polyval([a, log_b], x) - y) ** 2)), (
            float(a),
            float(math.exp(log_b)),
        )

    vt_grid = np.linspace(0.0, float(np.min(v)) - 1e-3, 400)
    errors = [residual(vt)[0] for vt in vt_grid]
    best = int(np.argmin(errors))
    # Local refinement around the best grid point.
    lo = vt_grid[max(best - 1, 0)]
    hi = vt_grid[min(best + 1, len(vt_grid) - 1)]
    for _ in range(60):
        mids = np.linspace(lo, hi, 5)
        errs = [residual(m)[0] for m in mids]
        k = int(np.argmin(errs))
        lo = mids[max(k - 1, 0)]
        hi = mids[min(k + 1, len(mids) - 1)]
    vt_best = 0.5 * (lo + hi)
    _err, (a, b) = residual(vt_best)
    return a, b, vt_best


@dataclass
class CalibrationReport:
    """Achieved-vs-target summary produced by :func:`verify_library`."""

    ion_ratio: float = 0.0
    ioff_ratio: float = 0.0
    onoff_ratio_gain: float = 0.0
    leakage_lvt_w: float = 0.0
    leakage_hvt_w: float = 0.0
    read_fit: tuple = (0.0, 0.0, 0.0)
    notes: list = field(default_factory=list)

    def rows(self):
        """(name, target, achieved) rows for table rendering."""
        return [
            ("Ion ratio LVT/HVT", TARGET_ION_RATIO, self.ion_ratio),
            ("Ioff ratio LVT/HVT", TARGET_IOFF_RATIO, self.ioff_ratio),
            ("ON/OFF ratio gain HVT/LVT", TARGET_ONOFF_RATIO_GAIN,
             self.onoff_ratio_gain),
            ("6T-LVT leakage [nW]", TARGET_LEAKAGE_LVT_W * 1e9,
             self.leakage_lvt_w * 1e9),
            ("6T-HVT leakage [nW]", TARGET_LEAKAGE_HVT_W * 1e9,
             self.leakage_hvt_w * 1e9),
            ("read fit a", TARGET_READ_FIT_A, self.read_fit[0]),
            ("read fit b [A/V^a]", TARGET_READ_FIT_B, self.read_fit[1]),
            ("read fit Vt [mV]", TARGET_READ_FIT_VT * 1e3,
             self.read_fit[2] * 1e3),
        ]


def device_ratios(library=None):
    """(ion_ratio, ioff_ratio, onoff_gain) of the library's NFETs."""
    library = library or DeviceLibrary.default_7nm()
    lvt = FinFET(library.nfet_lvt)
    hvt = FinFET(library.nfet_hvt)
    vdd = library.vdd
    ion_ratio = lvt.ion(vdd) / hvt.ion(vdd)
    ioff_ratio = lvt.ioff(vdd) / hvt.ioff(vdd)
    gain = hvt.on_off_ratio(vdd) / lvt.on_off_ratio(vdd)
    return ion_ratio, ioff_ratio, gain


def calibrate_i_floor(library=None, tolerance=0.005, max_iter=40):
    """Numerically solve the leakage floors against the paper's cell
    leakage targets using the actual DC cell simulation.

    Returns ``(i_floor_lvt, i_floor_hvt)`` in amperes per fin.  Uses a
    secant iteration on the (nearly linear) floor -> leakage map.
    Imported lazily to avoid a devices -> cell package cycle.
    """
    from dataclasses import replace

    from ..cell.leakage import cell_leakage_power
    from ..cell.sram6t import SRAM6TCell

    library = library or DeviceLibrary.default_7nm()
    results = {}
    for flavor, target in (
        ("lvt", TARGET_LEAKAGE_LVT_W),
        ("hvt", TARGET_LEAKAGE_HVT_W),
    ):
        nfet = library.nfet_params(flavor)
        pfet = library.pfet_params(flavor)
        floor = nfet.i_floor

        def leakage_at(floor_value):
            cell = SRAM6TCell(
                nfet=replace(nfet, i_floor=floor_value),
                pfet=replace(pfet, i_floor=floor_value),
            )
            return cell_leakage_power(cell, library.vdd)

        lo, hi = floor * 0.05, floor * 20.0
        for _ in range(max_iter):
            mid = math.sqrt(lo * hi)
            leak = leakage_at(mid)
            if abs(leak - target) / target < tolerance:
                break
            if leak > target:
                hi = mid
            else:
                lo = mid
        results[flavor] = mid
    return results["lvt"], results["hvt"]


def verify_library(library=None, read_currents=None):
    """Produce a :class:`CalibrationReport` for ``library``.

    ``read_currents`` may supply pre-measured ``(v_drive, i_read)`` arrays
    for the read-stack fit; when omitted the fit entries are left zero
    (cell-level measurements live in :mod:`repro.cell.read_current`).
    """
    library = library or DeviceLibrary.default_7nm()
    report = CalibrationReport()
    report.ion_ratio, report.ioff_ratio, report.onoff_ratio_gain = (
        device_ratios(library)
    )
    try:
        from ..cell.leakage import cell_leakage_power
        from ..cell.sram6t import SRAM6TCell

        for flavor in ("lvt", "hvt"):
            cell = SRAM6TCell.from_library(library, flavor)
            leak = cell_leakage_power(cell, library.vdd)
            if flavor == "lvt":
                report.leakage_lvt_w = leak
            else:
                report.leakage_hvt_w = leak
    except ImportError:  # pragma: no cover - cell package always present
        report.notes.append("cell package unavailable; leakage skipped")
    if read_currents is not None:
        v_drive, currents = read_currents
        report.read_fit = fit_power_law(v_drive, currents)
    return report


def require_within(name, achieved, target, rel_tol):
    """Raise :class:`CalibrationError` when achieved misses target."""
    if target == 0:
        raise ValueError("target must be nonzero")
    rel = abs(achieved - target) / abs(target)
    if rel > rel_tol:
        raise CalibrationError(
            "%s: achieved %.4g vs target %.4g (%.1f%% off, tolerance %.1f%%)"
            % (name, achieved, target, rel * 100.0, rel_tol * 100.0)
        )
