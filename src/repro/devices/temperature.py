"""Temperature scaling of the device library (extension).

The paper evaluates at a single (room) temperature; leakage-dominated
designs live or die at the hot corner, so this module provides a
behavioral temperature model with the three first-order effects:

* **subthreshold slope** scales with absolute temperature
  (S ~ n*kT/q*ln10), so the softplus width ``gamma_s`` scales by
  ``T / 300K`` — leakage rises exponentially and, importantly, the
  LVT/HVT OFF-current *ratio* shrinks (the Vt split is worth fewer
  decades at a shallower slope);
* **threshold voltage** drops linearly with temperature
  (~ -0.7 mV/K for FinFETs);
* **junction/GIDL floor** follows an Arrhenius-like law, doubling
  roughly every 12 K;
* **drive** degrades with mobility as ``(T/300K)^-1.3`` (partly offset
  by the falling Vt, which the model captures separately).

The thermal-voltage constant inside the drain-saturation factor remains
at its 300 K value — a documented approximation; the effects above
dominate by orders of magnitude.
"""

from __future__ import annotations

from dataclasses import replace

from .library import DeviceLibrary

T_REF = 300.0

#: Threshold temperature coefficient [V/K].
DVT_DT = -0.7e-3

#: Junction-leakage doubling interval [K].
FLOOR_DOUBLING_K = 12.0

#: Mobility exponent.
MOBILITY_EXPONENT = -1.3


def params_at_temperature(params, t_kelvin, t_ref=T_REF):
    """Parameter set re-targeted to ``t_kelvin``."""
    if t_kelvin <= 0:
        raise ValueError("temperature must be positive kelvin")
    ratio = t_kelvin / t_ref
    new_vt = max(params.vt + DVT_DT * (t_kelvin - t_ref), 1e-3)
    return replace(
        params,
        vt=new_vt,
        gamma_s=params.gamma_s * ratio,
        i_floor=params.i_floor * 2.0 ** ((t_kelvin - t_ref)
                                         / FLOOR_DOUBLING_K),
        b=params.b * ratio ** MOBILITY_EXPONENT,
    )


def library_at_temperature(library, t_kelvin):
    """The whole library re-targeted to ``t_kelvin``."""
    if t_kelvin == T_REF:
        return library
    return DeviceLibrary(
        vdd=library.vdd,
        nfet_lvt=params_at_temperature(library.nfet_lvt, t_kelvin),
        nfet_hvt=params_at_temperature(library.nfet_hvt, t_kelvin),
        pfet_lvt=params_at_temperature(library.pfet_lvt, t_kelvin),
        pfet_hvt=params_at_temperature(library.pfet_hvt, t_kelvin),
    )


def celsius(degrees):
    """Degrees Celsius to kelvin."""
    return degrees + 273.15
