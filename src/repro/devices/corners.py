"""Systematic process corners (extension).

The paper handles *random* (within-die) variation with Monte Carlo;
real signoff also checks *global* (die-to-die) corners, where every
NFET or PFET on the die shifts together.  We model the five classic
corners as global threshold-voltage shifts:

=======  ==============  ==============
corner   NFET Vt shift   PFET Vt shift
=======  ==============  ==============
TT       0               0
FF       -sigma_g        -sigma_g
SS       +sigma_g        +sigma_g
FS       -sigma_g        +sigma_g
SF       +sigma_g        -sigma_g
=======  ==============  ==============

with ``sigma_g`` a 3-sigma global shift (default 15 mV).  A corner
library behaves exactly like the nominal one, so every cell/array
analysis can be rerun at a corner unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .library import DeviceLibrary

#: Default 3-sigma global Vt shift [V].
GLOBAL_VT_SHIFT = 0.015


@dataclass(frozen=True)
class ProcessCorner:
    """One global corner: signed NFET/PFET threshold shifts [V]."""

    name: str
    delta_vt_n: float
    delta_vt_p: float

    @property
    def is_typical(self):
        return self.delta_vt_n == 0.0 and self.delta_vt_p == 0.0


def standard_corners(sigma=GLOBAL_VT_SHIFT):
    """The five classic corners at the given global shift."""
    return {
        "tt": ProcessCorner("tt", 0.0, 0.0),
        "ff": ProcessCorner("ff", -sigma, -sigma),
        "ss": ProcessCorner("ss", +sigma, +sigma),
        "fs": ProcessCorner("fs", -sigma, +sigma),
        "sf": ProcessCorner("sf", +sigma, -sigma),
    }


def corner_library(library, corner):
    """A :class:`DeviceLibrary` with every flavor shifted to ``corner``."""
    if corner.is_typical:
        return library
    return DeviceLibrary(
        vdd=library.vdd,
        nfet_lvt=library.nfet_lvt.with_vt_shift(corner.delta_vt_n),
        nfet_hvt=library.nfet_hvt.with_vt_shift(corner.delta_vt_n),
        pfet_lvt=library.pfet_lvt.with_vt_shift(corner.delta_vt_p),
        pfet_hvt=library.pfet_hvt.with_vt_shift(corner.delta_vt_p),
    )


@dataclass
class CornerSummary:
    """Cell figures of merit at one corner."""

    corner: str
    hsnm: float
    rsnm: float
    leakage: float
    i_read: float
    v_wl_flip: float


def corner_cell_summary(library, flavor, corner, flip_resolution=0.005):
    """HSNM/RSNM/leakage/read-current/flip-voltage at one corner."""
    from ..cell.leakage import cell_leakage_power
    from ..cell.read_current import read_current
    from ..cell.snm import hold_snm, read_snm
    from ..cell.sram6t import SRAM6TCell
    from ..cell.write import flip_wordline_voltage

    lib_c = corner_library(library, corner)
    cell = SRAM6TCell.from_library(lib_c, flavor)
    vdd = library.vdd
    return CornerSummary(
        corner=corner.name,
        hsnm=hold_snm(cell, vdd),
        rsnm=read_snm(cell, vdd=vdd),
        leakage=cell_leakage_power(cell, vdd),
        i_read=read_current(cell, vdd=vdd),
        v_wl_flip=flip_wordline_voltage(cell, vdd=vdd,
                                        resolution=flip_resolution),
    )


def corner_sweep(library, flavor, sigma=GLOBAL_VT_SHIFT):
    """:class:`CornerSummary` for every standard corner (dict by name)."""
    return {
        name: corner_cell_summary(library, flavor, corner)
        for name, corner in standard_corners(sigma).items()
    }
