"""Smooth compact FinFET I-V model.

This module is the library's substitute for the paper's SPICE + 7nm PTM
FinFET models.  It provides a single-expression, continuously
differentiable drain-current model with:

* an alpha-power-law channel branch (exponent 1.3, matching the
  read-current fit the paper reports in Section 5) whose softplus
  overdrive also produces the exponential subthreshold region,
* a gate-independent junction/GIDL leakage floor calibrated against the
  paper's absolute cell leakage powers,
* symmetric source/drain-exchange handling and PFET mirroring, and
* analytic first derivatives for the Newton-Raphson DC solver.

Currents scale linearly with the integer fin count ``nfin`` — the FinFET
width-quantization property the paper highlights.
"""

from __future__ import annotations

import numpy as np

from ..units import PHI_T
from .params import FinFETParams
from .smooth import power, safe_exp, sigmoid, softplus, tanh_sat

__all__ = ["FinFET", "ids_core", "ids_core_with_derivatives"]


def ids_core(vgs, vds, params):
    """Forward-mode drain current per fin for ``vds >= 0`` [A].

    See :class:`repro.devices.params.FinFETParams` for the equations.
    Accepts scalars or numpy arrays.
    """
    current, _unused_dvgs, _unused_dvds = ids_core_with_derivatives(
        vgs, vds, params
    )
    return current


def ids_core_with_derivatives(vgs, vds, params):
    """Drain current per fin and its partials w.r.t. (vgs, vds).

    Only meaningful for ``vds >= 0``; callers handle source/drain exchange.
    Returns ``(i, di/dvgs, di/dvds)``.
    """
    p = params

    # Channel branch (covers subthreshold and strong inversion).
    veff = softplus(vgs - p.vt, p.gamma_s)
    dveff = sigmoid(vgs - p.vt, p.gamma_s)
    pref = p.b * power(veff, p.alpha)
    dpref_dvgs = p.b * p.alpha * power(veff, p.alpha - 1.0) * dveff
    vdsat = p.kappa_sat * veff + p.vdsat0
    dvdsat_dvgs = p.kappa_sat * dveff
    sat, dsat_dvds, dsat_dvdsat = tanh_sat(vds, vdsat)
    clm = 1.0 + p.lambda_ * vds
    i_channel = pref * sat * clm
    di_channel_dvgs = (dpref_dvgs * sat + pref * dsat_dvdsat * dvdsat_dvgs) * clm
    di_channel_dvds = pref * (dsat_dvds * clm + sat * p.lambda_)

    # Gate-independent leakage floor (junction/GIDL).
    drain_dep = 1.0 - safe_exp(-vds / PHI_T)
    ddrain_dvds = safe_exp(-vds / PHI_T) / PHI_T
    i_floor = p.i_floor * drain_dep
    di_floor_dvds = p.i_floor * ddrain_dvds

    return (
        i_channel + i_floor,
        di_channel_dvgs,
        di_channel_dvds + di_floor_dvds,
    )


class FinFET:
    """A FinFET instance: a parameter flavor plus an integer fin count.

    Terminal convention: :meth:`current` returns the current flowing from
    the *drain node into the device* (positive for a conducting NFET with
    ``vd > vs``, negative for a conducting PFET with ``vs > vd``).
    Source/drain exchange and PFET voltage mirroring are handled
    internally, so callers may wire the device either way around.
    """

    def __init__(self, params, nfin=1):
        if not isinstance(params, FinFETParams):
            raise TypeError("params must be a FinFETParams")
        if int(nfin) != nfin or nfin < 1:
            raise ValueError(
                "nfin must be a positive integer (width quantization); "
                "got %r" % (nfin,)
            )
        self.params = params
        self.nfin = int(nfin)

    def __repr__(self):
        if self.params.is_batched:
            vt_label = "batched[%d]" % self.params.batch_size
        else:
            vt_label = "%.0fmV" % (self.params.vt * 1e3)
        return "FinFET(%sFET, vt=%s, nfin=%d)" % (
            self.params.polarity,
            vt_label,
            self.nfin,
        )

    # -- raw current --------------------------------------------------------

    def current(self, vg, vd, vs):
        """Drain-terminal current [A] at the given node voltages."""
        i, _dg, _dd, _dsrc = self.current_and_derivatives(vg, vd, vs)
        return i

    def current_and_derivatives(self, vg, vd, vs):
        """Drain current and partials w.r.t. (vg, vd, vs).

        Vectorizes over numpy arrays of node voltages.
        """
        vg = np.asarray(vg, dtype=float)
        vd = np.asarray(vd, dtype=float)
        vs = np.asarray(vs, dtype=float)
        if self.params.polarity == "n":
            fwd = vd >= vs
            # Forward: (vgs, vds) = (vg-vs, vd-vs); reverse swaps d and s.
            vgs = np.where(fwd, vg - vs, vg - vd)
            vds = np.where(fwd, vd - vs, vs - vd)
            i, di_dvgs, di_dvds = ids_core_with_derivatives(
                vgs, vds, self.params
            )
            sign = np.where(fwd, 1.0, -1.0)
            current = sign * i
            d_vg = sign * di_dvgs
            d_high = sign * di_dvds  # partial w.r.t. the higher terminal
            # Forward: d/dvd = di_dvds, d/dvs = -(di_dvgs + di_dvds).
            # Reverse: the roles of vd and vs exchange.
            d_vd = np.where(fwd, d_high, -(d_vg + d_high))
            d_vs = np.where(fwd, -(d_vg + d_high), d_high)
        else:
            fwd = vs >= vd
            vgs = np.where(fwd, vs - vg, vd - vg)
            vds = np.where(fwd, vs - vd, vd - vs)
            i, di_dvgs, di_dvds = ids_core_with_derivatives(
                vgs, vds, self.params
            )
            sign = np.where(fwd, -1.0, 1.0)
            current = sign * i
            # d(vgs)/dvg = -1 in both orientations.
            d_vg = -sign * di_dvgs
            # Forward (vs >= vd): vgs = vs-vg, vds = vs-vd, I = -i:
            #   d/dvd = +di_dvds,  d/dvs = -(di_dvgs + di_dvds).
            # Reverse (vd > vs): vgs = vd-vg, vds = vd-vs, I = +i:
            #   d/dvd = di_dvgs + di_dvds,  d/dvs = -di_dvds.
            d_vd = np.where(fwd, di_dvds, di_dvgs + di_dvds)
            d_vs = np.where(fwd, -(di_dvgs + di_dvds), -di_dvds)
        # Single return path for scalars and arrays: scale by the fin
        # count, then demote 0-d results to Python floats.  Multiplying
        # before vs after the float() conversion is bitwise-equivalent
        # (both are one float64 multiply), so scalar callers see exactly
        # the values the old special case produced.
        scale = float(self.nfin)
        outputs = tuple(
            np.asarray(term) * scale for term in (current, d_vg, d_vd, d_vs)
        )
        for term in outputs:
            assert term.dtype == np.float64, (
                "current_and_derivatives produced dtype %s" % term.dtype
            )
        if outputs[0].ndim == 0:
            return tuple(term.item() for term in outputs)
        return outputs

    # -- figures of merit -----------------------------------------------------

    def ion(self, vdd):
        """ON current [A]: |Vgs| = |Vds| = vdd."""
        if self.params.polarity == "n":
            return self.current(vdd, vdd, 0.0)
        return -self.current(0.0, 0.0, vdd)

    def ioff(self, vdd):
        """OFF current [A]: |Vgs| = 0, |Vds| = vdd."""
        if self.params.polarity == "n":
            return self.current(0.0, vdd, 0.0)
        return -self.current(vdd, 0.0, vdd)

    def on_off_ratio(self, vdd):
        """ION / IOFF at the given supply."""
        return self.ion(vdd) / self.ioff(vdd)

    # -- capacitances -----------------------------------------------------------

    @property
    def c_gate(self):
        """Total gate capacitance [F] (per-fin value times fin count)."""
        return self.params.c_gate * self.nfin

    @property
    def c_drain(self):
        """Total drain capacitance [F] (per-fin value times fin count)."""
        return self.params.c_drain * self.nfin
