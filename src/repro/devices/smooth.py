"""Numerically robust smooth primitives for the compact device model.

The Newton-Raphson DC solver needs device equations that are smooth
(continuously differentiable) over the whole bias plane, including deep
subthreshold and reverse bias.  These helpers implement overflow-safe
softplus/sigmoid functions and their derivatives; all of them accept
scalars or numpy arrays transparently.
"""

from __future__ import annotations

import numpy as np

#: Argument beyond which exp() saturates in the softplus/sigmoid helpers.
_EXP_CLIP = 40.0


def softplus(x, width):
    """Smooth max(x, 0): ``width * log(1 + exp(x / width))``.

    ``width`` sets the transition region; as ``width -> 0`` this tends to
    ``max(x, 0)``.  Overflow-safe for large ``|x| / width``.
    """
    z = np.asarray(x, dtype=float) / width
    # For large z, softplus(z) ~ z; for very negative z it ~ exp(z).
    out = np.where(
        z > _EXP_CLIP,
        z,
        np.log1p(np.exp(np.clip(z, -_EXP_CLIP, _EXP_CLIP))),
    )
    result = width * out
    if np.isscalar(x) or np.ndim(x) == 0:
        return float(result)
    return result


def sigmoid(x, width):
    """Derivative of :func:`softplus` with respect to ``x``.

    Equals ``1 / (1 + exp(-x / width))``; overflow-safe.
    """
    z = np.asarray(x, dtype=float) / width
    z = np.clip(z, -_EXP_CLIP, _EXP_CLIP)
    result = 1.0 / (1.0 + np.exp(-z))
    if np.isscalar(x) or np.ndim(x) == 0:
        return float(result)
    return result


def safe_exp(x):
    """exp() clipped to avoid overflow (saturates at exp(+-40))."""
    z = np.clip(np.asarray(x, dtype=float), -_EXP_CLIP, _EXP_CLIP)
    result = np.exp(z)
    if np.isscalar(x) or np.ndim(x) == 0:
        return float(result)
    return result


def tanh_sat(vds, vdsat):
    """Saturation shape function tanh(vds/vdsat) and its partials.

    Returns ``(value, d/dvds, d/dvdsat)``.
    """
    x = np.asarray(vds, dtype=float) / vdsat
    t = np.tanh(x)
    sech2 = 1.0 - t * t
    d_dvds = sech2 / vdsat
    d_dvdsat = -sech2 * x / vdsat
    if np.isscalar(vds) and np.isscalar(vdsat):
        return float(t), float(d_dvds), float(d_dvdsat)
    return t, d_dvds, d_dvdsat


def power(base, exponent):
    """``base ** exponent`` that tolerates base == 0 for exponent > 0."""
    b = np.asarray(base, dtype=float)
    result = np.where(b > 0.0, np.power(np.maximum(b, 1e-300), exponent), 0.0)
    if np.isscalar(base) or np.ndim(base) == 0:
        return float(result)
    return result
