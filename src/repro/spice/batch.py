"""Lane-batched Newton and transient analysis.

Batches *independent operating points of the same topology* — e.g. the
write-delay characterization's per-wordline transients — through one set
of numpy solves.  The unknown vector becomes an ``(n_unknowns, lanes)``
matrix; because every element stamp is elementwise in the unknowns, the
existing :mod:`repro.spice.elements` stamping code assembles the batched
residual ``(n, lanes)`` and Jacobian ``(n, n, lanes)`` unchanged.  Lane
differences ride in through **array-valued source values**: a voltage
source whose value (or stimulus callable) yields a ``(lanes,)`` row
drives each lane at its own level.

Bit-identity with the scalar solvers is a hard requirement (the LUT
characterization must not change with the engine), maintained by:

* per-lane Newton: voltage-step limiting, convergence tests, and the
  final update all apply lane-by-lane, and a converged lane is frozen so
  later iterations cannot perturb it (multiplying an unlimited lane's
  update by 1.0 is exact);
* batched ``np.linalg.solve`` over stacked Jacobians matches per-matrix
  solves bitwise (LAPACK processes each matrix independently);
* any lane that needs a convergence aid (gmin ladder, source stepping,
  transient step halving) drops out of the batch and re-runs the exact
  scalar path via :func:`lane_circuit`, which substitutes that lane's
  source values as scalars.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from ..errors import ConvergenceError
from .dc import (
    MAX_ITERATIONS,
    RESIDUAL_TOL,
    VOLTAGE_STEP_LIMIT,
    VOLTAGE_TOL,
    _initial_vector,
    operating_point,
    solve_from,
)
from .elements import SolverState
from .transient import transient
from .waveform import TransientResult

__all__ = [
    "lane_circuit",
    "operating_point_batch",
    "solve_from_batch",
    "transient_batch",
]


def _lane_value(value, lane):
    """One lane's scalar from a possibly array-valued source value."""
    if np.ndim(value) == 0:
        return value
    return value[lane]


def _lane_callable(stimulus, lane):
    """Wrap an array-valued stimulus so it yields one lane's level.

    The wrapped callable evaluates the original elementwise expression
    and selects the lane, so it is bitwise equal to a scalar stimulus
    built from that lane's parameters.
    """

    def value(t):
        return _lane_value(stimulus(t), lane)

    return value


@contextmanager
def lane_circuit(circuit, lane):
    """Temporarily substitute one lane's scalar source values.

    Inside the context the circuit is exactly the scalar circuit of lane
    ``lane``; used to run the reference scalar solvers on lanes that
    fall out of a batch.
    """
    originals = [(src, src.value) for src in circuit.vsources]
    try:
        for src, value in originals:
            if callable(value):
                src.value = _lane_callable(value, lane)
            elif np.ndim(value) != 0:
                src.value = float(np.asarray(value)[lane])
        yield circuit
    finally:
        for src, value in originals:
            src.value = value


def _assemble_batch(circuit, state, lanes):
    n = circuit.n_unknowns
    residual = np.zeros((n, lanes))
    jacobian = np.zeros((n, n, lanes))
    for element in circuit.elements:
        element.stamp(state, residual, jacobian)
    return residual, jacobian


def _solve_lanes(jacobian, residual):
    """Per-lane Newton updates ``dx`` with the scalar path's fallback.

    The stacked solve equals per-matrix solves bitwise; when any lane's
    Jacobian is singular the whole stacked solve raises, so each lane is
    then solved exactly like the scalar loop (including its gentle
    regularization of singular matrices).
    """
    try:
        stacked = np.linalg.solve(
            jacobian.transpose(2, 0, 1), (-residual).T[:, :, None]
        )
        return stacked[..., 0].T
    except np.linalg.LinAlgError:
        dx = np.empty_like(residual)
        n = residual.shape[0]
        for k in range(residual.shape[1]):
            jac_k = jacobian[:, :, k]
            rhs_k = -residual[:, k]
            try:
                dx[:, k] = np.linalg.solve(jac_k, rhs_k)
            except np.linalg.LinAlgError:
                dx[:, k] = np.linalg.solve(
                    jac_k + 1e-12 * np.eye(n), rhs_k
                )
        return dx


def _newton_batch(circuit, x0, time=None, dt=None, x_prev=None,
                  max_iterations=MAX_ITERATIONS):
    """Per-lane Newton; returns ``(x, iterations, failed)`` arrays.

    ``failed`` marks lanes that did not converge within
    ``max_iterations``; their columns hold the last iterate.  Converged
    lanes freeze at their converged value (the scalar loop returns
    immediately after its final update; iterations past a lane's
    convergence must not touch it).
    """
    x = np.array(x0, dtype=float)
    n_nodes = circuit.n_nodes
    lanes = x.shape[1]
    active = np.ones(lanes, dtype=bool)
    iterations = np.zeros(lanes, dtype=int)
    for iteration in range(1, max_iterations + 1):
        state = SolverState(x, time=time, dt=dt, x_prev=x_prev)
        residual, jacobian = _assemble_batch(circuit, state, lanes)
        res_max = np.max(np.abs(residual), axis=0)
        dx = _solve_lanes(jacobian, residual)
        v_step = dx[:n_nodes]
        worst = np.max(np.abs(v_step), axis=0) if n_nodes else np.zeros(lanes)
        scale = np.where(worst > VOLTAGE_STEP_LIMIT,
                         VOLTAGE_STEP_LIMIT / np.where(worst > 0, worst, 1.0),
                         1.0)
        x = np.where(active[None, :], x + dx * scale[None, :], x)
        newly = active & (worst < VOLTAGE_TOL) & (res_max < RESIDUAL_TOL)
        iterations[newly] = iteration
        active &= ~newly
        if not active.any():
            break
    return x, iterations, active


def solve_from_batch(circuit, x_start, time=None, dt=None, x_prev=None):
    """Batched :func:`repro.spice.dc.solve_from`.

    Lanes that fail plain Newton re-run the scalar :func:`solve_from`
    (plain attempt plus its gmin ladder) under :func:`lane_circuit`, so
    every lane's result matches the scalar path bitwise.  Raises
    :class:`ConvergenceError` when a lane cannot be rescued — callers
    fall back to fully scalar integration (which may halve steps).
    """
    if not circuit.compiled:
        circuit.compile()
    x, _iters, failed = _newton_batch(circuit, x_start, time=time, dt=dt,
                                      x_prev=x_prev)
    for k in np.nonzero(failed)[0]:
        with lane_circuit(circuit, int(k)):
            x_k, _ = solve_from(
                circuit, np.array(x_start[:, k]), time=time, dt=dt,
                x_prev=None if x_prev is None else np.array(x_prev[:, k]),
            )
        x[:, k] = x_k
    return x


def operating_point_batch(circuit, lanes, initial_guess=None):
    """Batched DC operating point; returns the ``(n, lanes)`` matrix.

    Lanes whose plain Newton fails re-run the scalar
    :func:`operating_point` (with its gmin/source-stepping fallbacks)
    under :func:`lane_circuit`.
    """
    if not circuit.compiled:
        circuit.compile()
    x0 = _initial_vector(circuit, initial_guess)
    x0_batch = np.repeat(x0[:, None], lanes, axis=1)
    x, _iters, failed = _newton_batch(circuit, x0_batch)
    for k in np.nonzero(failed)[0]:
        with lane_circuit(circuit, int(k)):
            solution = operating_point(circuit, initial_guess)
        x[:, k] = solution.x
    return x


def transient_batch(circuit, lanes, t_stop, dt, initial_guess=None,
                    stop_condition=None, stop_margin=0):
    """Batched backward-Euler transient over per-lane source values.

    Marches the shared uniform time grid for all lanes at once.
    ``stop_condition`` is evaluated with **array-valued** node voltages
    (shape ``(lanes,)``) and must return a per-lane boolean array (an
    elementwise expression such as ``v["q"] < v["qb"] - 0.1`` works for
    both the scalar and batched engines); each lane then runs
    ``stop_margin`` further steps and freezes, exactly like the scalar
    early-stop bookkeeping.  The march ends when every lane has stopped
    or ``t_stop`` is reached, and each lane's waveforms are cut at its
    own stop point, so per-lane results equal scalar runs bitwise.

    If any lane would need transient step halving (its Newton fails even
    through the gmin ladder), the whole batch falls back to per-lane
    scalar :func:`repro.spice.transient.transient` runs — exactness over
    speed.

    Returns a list of ``lanes`` :class:`TransientResult` objects.
    """
    if t_stop <= 0 or dt <= 0:
        raise ValueError("t_stop and dt must be positive")
    if not circuit.compiled:
        circuit.compile()
    try:
        return _march_batch(circuit, lanes, t_stop, dt, initial_guess,
                            stop_condition, stop_margin)
    except ConvergenceError:
        results = []
        for k in range(lanes):
            with lane_circuit(circuit, k):
                results.append(
                    transient(circuit, t_stop, dt,
                              initial_guess=initial_guess,
                              stop_condition=stop_condition,
                              stop_margin=stop_margin)
                )
        return results


def _march_batch(circuit, lanes, t_stop, dt, initial_guess, stop_condition,
                 stop_margin):
    x = operating_point_batch(circuit, lanes, initial_guess)
    times = [0.0]
    states = [x.copy()]
    alive = np.ones(lanes, dtype=bool)
    triggered = np.zeros(lanes, dtype=bool)
    remaining = np.zeros(lanes, dtype=int)
    # Final recorded step index per lane; -1 = ran to t_stop.
    end_index = np.full(lanes, -1, dtype=int)
    t = 0.0
    index = 0
    while t < t_stop - 1e-21 and alive.any():
        step = min(dt, t_stop - t)
        x = solve_from_batch(circuit, x, time=t + step, dt=step, x_prev=x)
        t += step
        index += 1
        times.append(t)
        states.append(x.copy())
        if stop_condition is not None:
            voltages = {
                name: x[idx]
                for idx, name in enumerate(circuit.node_names)
            }
            flags = np.broadcast_to(
                np.asarray(stop_condition(t, voltages), dtype=bool), (lanes,)
            )
            newly = ~triggered & alive & flags
            remaining = np.where(newly, stop_margin, remaining)
            triggered |= newly
            done = alive & triggered & (remaining <= 0)
            end_index[done] = index
            alive &= ~done
            remaining = np.where(alive & triggered, remaining - 1, remaining)
    return _package_batch(circuit, times, states, end_index)


def _package_batch(circuit, times, states, end_index):
    times = np.asarray(times)
    stacked = np.stack(states)  # (points, n_unknowns, lanes)
    results = []
    for k, end in enumerate(end_index):
        points = len(times) if end < 0 else int(end) + 1
        lane_times = times[:points]
        node_values = {
            name: stacked[:points, idx, k]
            for idx, name in enumerate(circuit.node_names)
        }
        branch_values = {}
        source_voltages = {}
        for src in circuit.vsources:
            branch_values[src.name] = stacked[:points, src.branch_index, k]
            source_voltages[src.name] = np.array(
                [_lane_value(src.voltage_at(t), k) for t in lane_times]
            )
        results.append(
            TransientResult(lane_times, node_values, branch_values,
                            source_voltages)
        )
    return results
