"""Transient analysis (backward-Euler or trapezoidal, with automatic
step refinement).

The integrator starts from a DC operating point (sources evaluated at
t = 0), then marches fixed steps of ``dt``, halving the step locally when
Newton fails at a time point.  Backward Euler (the default) is
unconditionally stable and — for the delay/energy characterization this
library needs — its numerical damping is harmless, because measurements
compare crossing times of strongly driven nodes.  The trapezoidal
method (``method="trap"``) is second-order accurate and preserves
energy much better at coarse steps, at the cost of possible ringing on
discontinuous stimuli.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConvergenceError
from .dc import operating_point, solve_from
from .elements import Capacitor, SolverState
from .waveform import TransientResult

#: How many times a failing step may be halved before giving up.
MAX_STEP_HALVINGS = 8

_METHODS = ("be", "trap")


def transient(circuit, t_stop, dt, initial_guess=None, record_every=1,
              stop_condition=None, stop_margin=0, method="be"):
    """Integrate the circuit from 0 to ``t_stop`` with base step ``dt``.

    ``initial_guess`` seeds the t=0 operating point (it selects the
    initial state of bistable circuits such as an SRAM cell).
    ``record_every`` subsamples stored points for long runs.

    ``stop_condition``, if given, is called after each accepted step as
    ``f(t, voltages)`` with a dict of node voltages; once it returns
    True the run continues for ``stop_margin`` further steps and then
    ends early.  This keeps characterization sweeps cheap: a cell-flip
    measurement can end right after the crossover instead of integrating
    the full window.

    ``method`` selects the integrator: ``"be"`` or ``"trap"``.

    Returns a :class:`repro.spice.waveform.TransientResult`.
    """
    if t_stop <= 0 or dt <= 0:
        raise ValueError("t_stop and dt must be positive")
    if method not in _METHODS:
        raise ValueError("method must be one of %r" % (_METHODS,))
    if not circuit.compiled:
        circuit.compile()

    op = operating_point(circuit, initial_guess)
    x = np.array(op.x, dtype=float)

    times = [0.0]
    states = [x.copy()]
    capacitors = [el for el in circuit.elements
                  if isinstance(el, Capacitor)]
    # At the DC operating point every capacitor current is zero.
    cap_currents = {el.name: 0.0 for el in capacitors}

    t = 0.0
    step = dt
    remaining_after_stop = None
    while t < t_stop - 1e-21:
        step = min(step, t_stop - t)
        x_next, accepted_step = _advance(circuit, x, t, step, method,
                                         cap_currents)
        if method == "trap":
            accepted_state = SolverState(
                x_next, time=t + accepted_step, dt=accepted_step,
                x_prev=x, integrator="trap", cap_currents=cap_currents,
            )
            cap_currents = {
                el.name: el.companion_current(accepted_state)
                for el in capacitors
            }
        t += accepted_step
        x = x_next
        times.append(t)
        states.append(x.copy())
        if stop_condition is not None and remaining_after_stop is None:
            voltages = {
                name: float(x[idx])
                for idx, name in enumerate(circuit.node_names)
            }
            if stop_condition(t, voltages):
                remaining_after_stop = stop_margin
        if remaining_after_stop is not None:
            if remaining_after_stop <= 0:
                break
            remaining_after_stop -= 1
        # Grow the step back toward the base dt after a halving.
        step = min(dt, step * 2.0)

    return _package(circuit, times, states, record_every)


def _advance(circuit, x, t, step, method="be", cap_currents=None):
    """One accepted time step, halving on Newton failure."""
    for _attempt in range(MAX_STEP_HALVINGS + 1):
        try:
            x_next, _iters = solve_from(
                circuit, x, time=t + step, dt=step, x_prev=x,
                integrator=method, cap_currents=cap_currents,
            )
            return x_next, step
        except ConvergenceError:
            step *= 0.5
    raise ConvergenceError(
        "transient step at t=%.4g s failed after %d halvings"
        % (t, MAX_STEP_HALVINGS)
    )


def _package(circuit, times, states, record_every):
    times = np.asarray(times)
    stacked = np.vstack(states)
    if record_every > 1:
        keep = np.zeros(len(times), dtype=bool)
        keep[::record_every] = True
        keep[-1] = True
        times = times[keep]
        stacked = stacked[keep]
    node_values = {
        name: stacked[:, idx] for idx, name in enumerate(circuit.node_names)
    }
    branch_values = {}
    source_voltages = {}
    for src in circuit.vsources:
        branch_values[src.name] = stacked[:, src.branch_index]
        source_voltages[src.name] = np.array(
            [src.voltage_at(t) for t in times]
        )
    return TransientResult(times, node_values, branch_values, source_voltages)
