"""Time-domain stimulus builders (callables ``f(t)`` for sources)."""

from __future__ import annotations


def step(t_step, v_before, v_after, t_rise=1e-15):
    """A voltage step at ``t_step`` with linear rise time ``t_rise``."""
    if t_rise <= 0:
        raise ValueError("t_rise must be positive")

    def value(t):
        if t <= t_step:
            return v_before
        if t >= t_step + t_rise:
            return v_after
        frac = (t - t_step) / t_rise
        return v_before + frac * (v_after - v_before)

    return value


def pulse(v_low, v_high, t_delay, t_width, t_rise=1e-15, t_fall=None):
    """A single pulse: low until ``t_delay``, high for ``t_width``."""
    if t_fall is None:
        t_fall = t_rise
    t1 = t_delay
    t2 = t_delay + t_rise
    t3 = t2 + t_width
    t4 = t3 + t_fall
    return piecewise_linear(
        [(0.0, v_low), (t1, v_low), (t2, v_high), (t3, v_high), (t4, v_low)]
    )


def piecewise_linear(points):
    """PWL source from ``[(t0, v0), (t1, v1), ...]`` (sorted by time)."""
    if len(points) < 1:
        raise ValueError("need at least one (t, v) point")
    times = [float(t) for t, _v in points]
    if any(b < a for a, b in zip(times, times[1:])):
        raise ValueError("PWL points must be sorted by time")
    values = [float(v) for _t, v in points]

    def value(t):
        if t <= times[0]:
            return values[0]
        if t >= times[-1]:
            return values[-1]
        for k in range(len(times) - 1):
            if times[k] <= t <= times[k + 1]:
                span = times[k + 1] - times[k]
                if span == 0:
                    return values[k + 1]
                frac = (t - times[k]) / span
                return values[k] + frac * (values[k + 1] - values[k])
        return values[-1]

    return value
