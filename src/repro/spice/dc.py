"""DC operating-point and sweep analysis (Newton-Raphson).

The solver assembles the full nonlinear KCL residual and its analytic
Jacobian from the element stamps, then iterates Newton with a per-step
voltage limiter.  Two convergence aids mirror the classic SPICE
strategies:

* **gmin stepping** — a shunt conductance from every transistor's
  drain-source pair is swept from 1e-3 S down to (effectively) zero,
  warm-starting each stage from the previous solution;
* **source stepping** — all sources are ramped from 0 to 100%.

Operating points of bistable circuits (an SRAM cell!) depend on the
initial guess; callers control which stable state they land in by
seeding node voltages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConvergenceError
from .elements import GROUND_INDEX, SolverState, VoltageSource

#: Maximum Newton update per iteration [V]; limits overshoot through the
#: exponential subthreshold region.
VOLTAGE_STEP_LIMIT = 0.12

#: Convergence tolerances.
VOLTAGE_TOL = 1e-9
RESIDUAL_TOL = 1e-12

MAX_ITERATIONS = 200


@dataclass
class Solution:
    """A converged DC solution.

    ``voltages`` maps node name to volts; ``branch_currents`` maps
    voltage-source name to the MNA branch current (flowing from the
    positive node into the source).
    """

    voltages: dict
    branch_currents: dict
    iterations: int
    x: np.ndarray

    def __getitem__(self, node_name):
        return self.voltages[node_name]

    def source_current(self, source_name):
        """Current delivered by a voltage source [A] (out of its + node)."""
        return -self.branch_currents[source_name]

    def source_power(self, source_name, voltage):
        """Power delivered by the named source at the given voltage [W]."""
        return voltage * self.source_current(source_name)


def _assemble(circuit, state):
    n = circuit.n_unknowns
    residual = np.zeros(n)
    jacobian = np.zeros((n, n))
    for element in circuit.elements:
        element.stamp(state, residual, jacobian)
    return residual, jacobian


def _newton(circuit, x0, time=None, dt=None, x_prev=None, gmin=0.0,
            max_iterations=MAX_ITERATIONS, integrator="be",
            cap_currents=None):
    """Raw Newton loop; returns (x, iterations) or raises ConvergenceError."""
    x = np.array(x0, dtype=float)
    n_nodes = circuit.n_nodes
    last_residual = np.inf
    for iteration in range(1, max_iterations + 1):
        state = SolverState(x, time=time, dt=dt, x_prev=x_prev, gmin=gmin,
                            integrator=integrator,
                            cap_currents=cap_currents)
        residual, jacobian = _assemble(circuit, state)
        last_residual = float(np.max(np.abs(residual)))
        try:
            dx = np.linalg.solve(jacobian, -residual)
        except np.linalg.LinAlgError:
            # Singular Jacobian: regularize gently and continue.
            jacobian = jacobian + 1e-12 * np.eye(len(jacobian))
            dx = np.linalg.solve(jacobian, -residual)
        # Limit only the node-voltage entries; branch currents are linear.
        v_step = dx[:n_nodes]
        worst = np.max(np.abs(v_step)) if n_nodes else 0.0
        if worst > VOLTAGE_STEP_LIMIT:
            dx = dx * (VOLTAGE_STEP_LIMIT / worst)
        x = x + dx
        if worst < VOLTAGE_TOL and last_residual < RESIDUAL_TOL:
            return x, iteration
    raise ConvergenceError(
        "Newton failed to converge in %d iterations (worst residual %.3g A)"
        % (max_iterations, last_residual),
        iterations=max_iterations,
        residual=last_residual,
    )


def _initial_vector(circuit, initial_guess):
    x0 = np.zeros(circuit.n_unknowns)
    if initial_guess:
        for name, voltage in initial_guess.items():
            idx = circuit.index_of(name)
            if idx != GROUND_INDEX:
                x0[idx] = voltage
    return x0


def _solution_from_vector(circuit, x, iterations):
    voltages = {
        name: float(x[idx]) for idx, name in enumerate(circuit.node_names)
    }
    branch_currents = {
        src.name: float(x[src.branch_index]) for src in circuit.vsources
    }
    return Solution(voltages, branch_currents, iterations, x)


def operating_point(circuit, initial_guess=None):
    """Solve the DC operating point.

    ``initial_guess`` maps node names to starting voltages and selects the
    stable state for bistable circuits.  Falls back to gmin stepping and
    then source stepping when plain Newton fails.
    """
    if not circuit.compiled:
        circuit.compile()
    x0 = _initial_vector(circuit, initial_guess)

    try:
        x, iterations = _newton(circuit, x0)
        return _solution_from_vector(circuit, x, iterations)
    except ConvergenceError:
        pass

    # gmin stepping.
    x = x0
    total_iterations = 0
    try:
        for exponent in range(3, 13):
            gmin = 10.0 ** (-exponent)
            x, iters = _newton(circuit, x, gmin=gmin)
            total_iterations += iters
        x, iters = _newton(circuit, x, gmin=0.0)
        return _solution_from_vector(circuit, x, total_iterations + iters)
    except ConvergenceError:
        pass

    # Source stepping: scale every constant source up from zero.
    originals = [(src, src.value) for src in circuit.vsources]
    x = _initial_vector(circuit, None)
    try:
        total_iterations = 0
        for fraction in np.linspace(0.1, 1.0, 10):
            for src, value in originals:
                if callable(value):
                    src.value = (
                        lambda t, f=fraction, v=value: f * v(t)
                    )
                else:
                    src.value = fraction * value
            x, iters = _newton(circuit, x, gmin=1e-12)
            total_iterations += iters
        for src, value in originals:
            src.value = value
        x, iters = _newton(circuit, x)
        return _solution_from_vector(circuit, x, total_iterations + iters)
    finally:
        for src, value in originals:
            src.value = value


def solve_from(circuit, x_start, time=None, dt=None, x_prev=None,
               integrator="be", cap_currents=None):
    """Newton solve warm-started from an explicit unknown vector.

    Used by sweeps and the transient integrator.  Retries once with a
    brief gmin ramp on failure.
    """
    if not circuit.compiled:
        circuit.compile()
    extras = dict(integrator=integrator, cap_currents=cap_currents)
    try:
        return _newton(circuit, x_start, time=time, dt=dt, x_prev=x_prev,
                       **extras)
    except ConvergenceError:
        x = np.array(x_start, dtype=float)
        iterations = 0
        for exponent in (6, 9, 12):
            x, iters = _newton(
                circuit, x, time=time, dt=dt, x_prev=x_prev,
                gmin=10.0 ** (-exponent), **extras,
            )
            iterations += iters
        x, iters = _newton(circuit, x, time=time, dt=dt, x_prev=x_prev,
                           **extras)
        return x, iterations + iters


def dc_sweep(circuit, source_name, values, initial_guess=None):
    """Sweep a voltage source through ``values``, warm-starting each point.

    Returns a list of :class:`Solution`.  Warm starting provides natural
    continuation along stable branches of bistable circuits, which is how
    the butterfly curves in :mod:`repro.cell.snm` trace their lobes.
    """
    if not circuit.compiled:
        circuit.compile()
    source = circuit.element(source_name)
    if not isinstance(source, VoltageSource):
        raise TypeError("%r is not a voltage source" % source_name)
    original = source.value
    solutions = []
    try:
        source.value = float(values[0])
        first = operating_point(circuit, initial_guess)
        solutions.append(first)
        x = first.x
        for value in values[1:]:
            source.value = float(value)
            x, iterations = solve_from(circuit, x)
            solutions.append(_solution_from_vector(circuit, x, iterations))
    finally:
        source.value = original
    return solutions
