"""A small nonlinear circuit simulator (the paper's SPICE substitute).

Public API:

* :class:`Circuit` — netlist construction.
* :func:`operating_point`, :func:`dc_sweep` — Newton-Raphson DC analysis
  with gmin/source stepping.
* :func:`transient` — backward-Euler transient analysis.
* :class:`Waveform` / :class:`TransientResult` — measurement helpers.
* :mod:`repro.spice.stimuli` — step/pulse/PWL stimulus builders.
"""

from .dc import Solution, dc_sweep, operating_point
from .io import parse_netlist, parse_value, write_netlist
from .netlist import Circuit
from .stimuli import piecewise_linear, pulse, step
from .transient import transient
from .waveform import TransientResult, Waveform

__all__ = [
    "Circuit",
    "Solution",
    "TransientResult",
    "Waveform",
    "dc_sweep",
    "operating_point",
    "parse_netlist",
    "parse_value",
    "piecewise_linear",
    "pulse",
    "step",
    "transient",
    "write_netlist",
]
