"""Circuit elements for the built-in simulator.

Every element implements the residual-stamping interface used by the
Newton-Raphson solver in :mod:`repro.spice.dc`:

``stamp(state, residual, jacobian)``

where ``state`` is a :class:`SolverState` carrying the current unknown
vector, node-index resolution, and (during transient analysis) the
companion-model history.  The residual convention is nodal KCL: for each
non-ground node, the sum of currents flowing *out of the node into
elements* must be zero.  Voltage sources add one branch-current unknown
and one constraint row each (modified nodal analysis).
"""

from __future__ import annotations

import numpy as np

from ..devices.model import FinFET
from ..errors import NetlistError

GROUND_INDEX = -1


class SolverState:
    """Shared view of the unknown vector during one Newton iteration.

    Attributes
    ----------
    x:
        The unknown vector: node voltages followed by source branch
        currents.
    time, dt:
        Transient time point and step (``None`` during DC analysis).
    x_prev:
        Unknown vector at the previous accepted time point (transient
        only); used by capacitor companion models.
    gmin:
        Extra conductance to ground applied by every element's
        high-impedance nodes (convergence aid; 0 when not stepping).
    """

    def __init__(self, x, time=None, dt=None, x_prev=None, gmin=0.0,
                 integrator="be", cap_currents=None):
        self.x = x
        self.time = time
        self.dt = dt
        self.x_prev = x_prev
        self.gmin = gmin
        #: "be" (backward Euler) or "trap" (trapezoidal).
        self.integrator = integrator
        #: Capacitor name -> accepted current at the previous time point
        #: (trapezoidal companion history).
        self.cap_currents = cap_currents or {}

    def voltage(self, index):
        """Voltage of a node index (ground reads as 0)."""
        if index == GROUND_INDEX:
            return 0.0
        return self.x[index]

    def voltage_prev(self, index):
        """Previous-timepoint voltage of a node index."""
        if index == GROUND_INDEX or self.x_prev is None:
            return 0.0
        return self.x_prev[index]

    @property
    def transient(self):
        return self.dt is not None


def _add(matrix_or_vector, row, value):
    if row != GROUND_INDEX:
        matrix_or_vector[row] += value


def _add_jac(jacobian, row, col, value):
    if row != GROUND_INDEX and col != GROUND_INDEX:
        jacobian[row, col] += value


class Element:
    """Base class; subclasses define nodes and stamping."""

    name = "element"

    def node_indices(self):
        """Indices of the nodes this element touches."""
        raise NotImplementedError

    def stamp(self, state, residual, jacobian):
        raise NotImplementedError


class Resistor(Element):
    """Linear resistor between nodes ``a`` and ``b``."""

    def __init__(self, name, a, b, resistance):
        if resistance <= 0:
            raise NetlistError("resistor %s must have positive resistance" % name)
        self.name = name
        self.a = a
        self.b = b
        self.resistance = float(resistance)

    def node_indices(self):
        return (self.a, self.b)

    def stamp(self, state, residual, jacobian):
        g = 1.0 / self.resistance
        va = state.voltage(self.a)
        vb = state.voltage(self.b)
        current = g * (va - vb)
        _add(residual, self.a, current)
        _add(residual, self.b, -current)
        _add_jac(jacobian, self.a, self.a, g)
        _add_jac(jacobian, self.a, self.b, -g)
        _add_jac(jacobian, self.b, self.a, -g)
        _add_jac(jacobian, self.b, self.b, g)


class Capacitor(Element):
    """Linear capacitor; open in DC.  In transient it stamps the
    backward-Euler companion model by default, or the trapezoidal one
    (``i = (2C/h)(v - v_prev) - i_prev``) when the integrator asks."""

    def __init__(self, name, a, b, capacitance):
        if capacitance <= 0:
            raise NetlistError("capacitor %s must have positive capacitance" % name)
        self.name = name
        self.a = a
        self.b = b
        self.capacitance = float(capacitance)

    def node_indices(self):
        return (self.a, self.b)

    def branch_voltage(self, state, previous=False):
        if previous:
            return (state.voltage_prev(self.a)
                    - state.voltage_prev(self.b))
        return state.voltage(self.a) - state.voltage(self.b)

    def companion_current(self, state):
        """The companion-model current at the present iterate [A]."""
        dv = self.branch_voltage(state) - self.branch_voltage(
            state, previous=True
        )
        if state.integrator == "trap":
            geq = 2.0 * self.capacitance / state.dt
            return geq * dv - state.cap_currents.get(self.name, 0.0)
        return (self.capacitance / state.dt) * dv

    def stamp(self, state, residual, jacobian):
        if not state.transient:
            return
        if state.integrator == "trap":
            geq = 2.0 * self.capacitance / state.dt
        else:
            geq = self.capacitance / state.dt
        current = self.companion_current(state)
        _add(residual, self.a, current)
        _add(residual, self.b, -current)
        _add_jac(jacobian, self.a, self.a, geq)
        _add_jac(jacobian, self.a, self.b, -geq)
        _add_jac(jacobian, self.b, self.a, -geq)
        _add_jac(jacobian, self.b, self.b, geq)


class VoltageSource(Element):
    """Independent voltage source with an MNA branch-current unknown.

    ``value`` is either a constant voltage [V] or a callable ``f(t)`` for
    transient stimuli.  The branch current is defined flowing from the
    positive node *into* the source; the power the source delivers to the
    circuit is therefore ``-V * i_branch``.
    """

    def __init__(self, name, plus, minus, value, branch_index=None):
        self.name = name
        self.plus = plus
        self.minus = minus
        self.value = value
        self.branch_index = branch_index

    def node_indices(self):
        return (self.plus, self.minus)

    def voltage_at(self, time):
        """Source voltage at ``time`` (time ignored for constants).

        Scalar values come back as floats; array-valued sources (one
        level per lane of a batched analysis) come back as arrays.
        """
        if callable(self.value):
            value = self.value(0.0 if time is None else time)
        else:
            value = self.value
        if np.ndim(value) == 0:
            return float(value)
        return np.asarray(value, dtype=float)

    def stamp(self, state, residual, jacobian):
        if self.branch_index is None:
            raise NetlistError(
                "voltage source %s was not assigned a branch index "
                "(compile the circuit first)" % self.name
            )
        j = state.x[self.branch_index]
        _add(residual, self.plus, j)
        _add(residual, self.minus, -j)
        _add_jac(jacobian, self.plus, self.branch_index, 1.0)
        _add_jac(jacobian, self.minus, self.branch_index, -1.0)
        vp = state.voltage(self.plus)
        vm = state.voltage(self.minus)
        residual[self.branch_index] += vp - vm - self.voltage_at(state.time)
        _add_jac(jacobian, self.branch_index, self.plus, 1.0)
        _add_jac(jacobian, self.branch_index, self.minus, -1.0)


class CurrentSource(Element):
    """Independent current source; current flows from ``a`` to ``b``
    through the element.  ``value`` may be a constant or ``f(t)``.
    """

    def __init__(self, name, a, b, value):
        self.name = name
        self.a = a
        self.b = b
        self.value = value

    def node_indices(self):
        return (self.a, self.b)

    def current_at(self, time):
        if callable(self.value):
            value = self.value(0.0 if time is None else time)
        else:
            value = self.value
        if np.ndim(value) == 0:
            return float(value)
        return np.asarray(value, dtype=float)

    def stamp(self, state, residual, jacobian):
        current = self.current_at(state.time)
        _add(residual, self.a, current)
        _add(residual, self.b, -current)


class Transistor(Element):
    """A FinFET instance wired (gate, drain, source).

    The gate is treated as a pure capacitive terminal (zero DC current);
    gate/drain capacitances from the device parameters are *not* stamped
    automatically — add explicit :class:`Capacitor` elements where load
    modeling matters, mirroring how the paper separates I-V behaviour
    from look-up-table capacitance values.

    A per-device ``gmin`` (from the solver's stepping loop) is stamped
    drain-to-source to aid convergence in deep cutoff.
    """

    def __init__(self, name, device, gate, drain, source):
        if not isinstance(device, FinFET):
            raise NetlistError(
                "transistor %s requires a FinFET device instance" % name
            )
        self.name = name
        self.device = device
        self.gate = gate
        self.drain = drain
        self.source = source

    def node_indices(self):
        return (self.gate, self.drain, self.source)

    def stamp(self, state, residual, jacobian):
        vg = state.voltage(self.gate)
        vd = state.voltage(self.drain)
        vs = state.voltage(self.source)
        i_d, d_vg, d_vd, d_vs = self.device.current_and_derivatives(vg, vd, vs)
        if state.gmin:
            i_d += state.gmin * (vd - vs)
            d_vd += state.gmin
            d_vs -= state.gmin
        _add(residual, self.drain, i_d)
        _add(residual, self.source, -i_d)
        for col, dval in ((self.gate, d_vg), (self.drain, d_vd), (self.source, d_vs)):
            _add_jac(jacobian, self.drain, col, dval)
            _add_jac(jacobian, self.source, col, -dval)
