"""Waveform containers and measurements for transient results.

Measurement semantics follow the usual SPICE ``.measure`` conventions:
crossings are located by linear interpolation between stored time points,
and delays are differences between crossing times of two signals.
"""

from __future__ import annotations

import numpy as np

from ..errors import CharacterizationError


class Waveform:
    """A sampled signal ``value(t)`` with measurement helpers."""

    def __init__(self, times, values, name="signal"):
        self.times = np.asarray(times, dtype=float)
        self.values = np.asarray(values, dtype=float)
        self.name = name
        if self.times.shape != self.values.shape:
            raise ValueError("times and values must have identical shape")
        if self.times.size < 2:
            raise ValueError("a waveform needs at least two samples")

    def value_at(self, time):
        """Linearly interpolated value at ``time``."""
        return float(np.interp(time, self.times, self.values))

    @property
    def final(self):
        return float(self.values[-1])

    @property
    def initial(self):
        return float(self.values[0])

    def cross(self, level, edge="any", occurrence=1):
        """Time of the ``occurrence``-th crossing of ``level``.

        ``edge`` is ``"rise"``, ``"fall"``, or ``"any"``.  Raises
        :class:`CharacterizationError` when the crossing never happens —
        a deliberate loud failure, since a missing crossing in a delay
        measurement almost always means the stimulus or circuit is wrong.
        """
        v = self.values - level
        t = self.times
        count = 0
        for k in range(len(v) - 1):
            a, b = v[k], v[k + 1]
            if a == b:
                continue
            rising = b > a
            crossed = (a < 0 <= b) if rising else (a >= 0 > b)
            if not crossed:
                continue
            if edge == "rise" and not rising:
                continue
            if edge == "fall" and rising:
                continue
            count += 1
            if count == occurrence:
                frac = -a / (b - a)
                return float(t[k] + frac * (t[k + 1] - t[k]))
        raise CharacterizationError(
            "signal %r never crosses %.4g V (%s edge, occurrence %d); "
            "final value %.4g V"
            % (self.name, level, edge, occurrence, self.final)
        )

    def crosses(self, level, edge="any"):
        """True when the crossing exists."""
        try:
            self.cross(level, edge)
            return True
        except CharacterizationError:
            return False

    def integral(self):
        """Trapezoidal integral of the waveform over time."""
        return float(np.trapezoid(self.values, self.times))

    def __repr__(self):
        return "Waveform(%r, %d points, [%g, %g])" % (
            self.name,
            len(self.times),
            self.initial,
            self.final,
        )


class TransientResult:
    """All node voltages and source branch currents from a transient run."""

    def __init__(self, times, node_values, branch_values, source_voltages):
        self.times = np.asarray(times, dtype=float)
        self._nodes = {k: np.asarray(v) for k, v in node_values.items()}
        self._branches = {k: np.asarray(v) for k, v in branch_values.items()}
        self._source_voltages = {
            k: np.asarray(v) for k, v in source_voltages.items()
        }

    def node(self, name):
        """Voltage waveform of node ``name`` (ground is all zeros)."""
        if name in self._nodes:
            return Waveform(self.times, self._nodes[name], name)
        if name in ("0", "gnd", "GND"):
            return Waveform(self.times, np.zeros_like(self.times), name)
        raise KeyError("no recorded node %r" % name)

    def branch_current(self, source_name):
        """Branch current of a voltage source (into its + node) [A]."""
        return Waveform(
            self.times, self._branches[source_name], source_name + ".i"
        )

    def delivered_power(self, source_name):
        """Instantaneous power delivered by a source [W]."""
        v = self._source_voltages[source_name]
        i = self._branches[source_name]
        return Waveform(self.times, -v * i, source_name + ".p")

    def delivered_energy(self, source_name, t_start=None, t_stop=None):
        """Energy delivered by a source over [t_start, t_stop] [J]."""
        power = self.delivered_power(source_name)
        t = power.times
        mask = np.ones_like(t, dtype=bool)
        if t_start is not None:
            mask &= t >= t_start
        if t_stop is not None:
            mask &= t <= t_stop
        if mask.sum() < 2:
            return 0.0
        return float(np.trapezoid(power.values[mask], t[mask]))

    def delay(self, from_node, to_node, level, from_edge="any", to_edge="any"):
        """Crossing-to-crossing delay between two nodes at ``level``."""
        t0 = self.node(from_node).cross(level, from_edge)
        t1 = self.node(to_node).cross(level, to_edge)
        return t1 - t0

    @property
    def node_names(self):
        return tuple(self._nodes)
