"""SPICE-format netlist import/export for the built-in simulator.

Lets decks be written the way circuit people expect (extension beyond
the paper's needs, but the natural interface for an open-source release
of this kind of tool)::

    * 6T read half-circuit
    VDD vdd 0 450m
    VIN in  0 PWL(0 0 1p 0 1.1p 450m)
    MN1 out in 0   nfet_hvt nfin=1
    MP1 out in vdd pfet_hvt
    CL  out 0 0.28f
    .end

Supported cards
---------------

* ``R<name> a b value`` — resistor.
* ``C<name> a b value`` — capacitor.
* ``V<name> p m value | PULSE(v1 v2 td tr tf pw) | PWL(t1 v1 ...)`` —
  voltage source.
* ``I<name> a b value`` — current source.
* ``M<name> d g s model [nfin=N]`` — FinFET; ``model`` is one of
  ``nfet_lvt``, ``nfet_hvt``, ``pfet_lvt``, ``pfet_hvt`` resolved
  against the :class:`~repro.devices.DeviceLibrary` passed to the
  parser.  (Three terminals — our compact model has no body node.)
* ``*`` / ``;`` comments, ``+`` continuation lines, ``.end``.

Values accept the usual engineering suffixes (``f p n u m k meg g``).
"""

from __future__ import annotations

import re

from ..devices.model import FinFET
from ..errors import NetlistError
from .elements import (
    Capacitor,
    CurrentSource,
    Resistor,
    Transistor,
    VoltageSource,
)
from .netlist import Circuit
from .stimuli import piecewise_linear, pulse

_SUFFIXES = {
    "meg": 1e6,
    "f": 1e-15,
    "p": 1e-12,
    "n": 1e-9,
    "u": 1e-6,
    "m": 1e-3,
    "k": 1e3,
    "g": 1e9,
    "t": 1e12,
}

_NUMBER_RE = re.compile(
    r"^([+-]?\d*\.?\d+(?:[eE][+-]?\d+)?)(meg|[fpnumkgt])?[a-z]*$"
)


def parse_value(token):
    """A SPICE number with optional engineering suffix -> float."""
    match = _NUMBER_RE.match(token.strip().lower())
    if not match:
        raise NetlistError("cannot parse value %r" % (token,))
    base = float(match.group(1))
    suffix = match.group(2)
    return base * _SUFFIXES.get(suffix, 1.0)


def _join_continuations(text):
    lines = []
    for raw in text.splitlines():
        line = raw.split(";")[0].rstrip()
        if not line.strip():
            continue
        if line.lstrip().startswith("*"):
            continue
        if line.lstrip().startswith("+") and lines:
            lines[-1] += " " + line.lstrip()[1:].strip()
        else:
            lines.append(line.strip())
    return lines


def _parse_source_value(spec):
    """A source spec: plain value, PULSE(...), or PWL(...)."""
    lowered = spec.strip().lower()
    if lowered.startswith("pulse"):
        args = [parse_value(t) for t in _paren_args(spec)]
        if len(args) < 6:
            raise NetlistError(
                "PULSE needs (v1 v2 td tr tf pw); got %r" % (spec,)
            )
        v1, v2, td, tr, tf, pw = args[:6]
        return pulse(v1, v2, t_delay=td, t_width=pw, t_rise=tr, t_fall=tf)
    if lowered.startswith("pwl"):
        args = [parse_value(t) for t in _paren_args(spec)]
        if len(args) < 2 or len(args) % 2:
            raise NetlistError("PWL needs (t1 v1 t2 v2 ...); got %r" % spec)
        points = list(zip(args[0::2], args[1::2]))
        return piecewise_linear(points)
    return parse_value(spec)


def _paren_args(spec):
    inner = spec[spec.index("(") + 1:spec.rindex(")")]
    return inner.replace(",", " ").split()


def parse_netlist(text, library=None, title=None):
    """Parse SPICE-format ``text`` into a :class:`Circuit`.

    ``library`` resolves FinFET model names; it is required only when
    the deck contains M cards.
    """
    lines = _join_continuations(text)
    circuit = Circuit(title or "netlist")
    for line in lines:
        lowered = line.lower()
        if lowered.startswith(".end"):
            break
        if lowered.startswith("."):
            raise NetlistError("unsupported directive %r" % line.split()[0])
        kind = lowered[0]
        tokens = line.split()
        name = tokens[0]
        if kind == "r":
            _expect(tokens, 4, line)
            circuit.add_resistor(name, tokens[1], tokens[2],
                                 parse_value(tokens[3]))
        elif kind == "c":
            _expect(tokens, 4, line)
            circuit.add_capacitor(name, tokens[1], tokens[2],
                                  parse_value(tokens[3]))
        elif kind == "v":
            spec = " ".join(tokens[3:])
            if not spec:
                raise NetlistError("voltage source %r has no value" % name)
            circuit.add_vsource(name, tokens[1], tokens[2],
                                _parse_source_value(spec))
        elif kind == "i":
            spec = " ".join(tokens[3:])
            if not spec:
                raise NetlistError("current source %r has no value" % name)
            circuit.add_isource(name, tokens[1], tokens[2],
                                _parse_source_value(spec))
        elif kind == "m":
            if library is None:
                raise NetlistError(
                    "deck contains FinFETs; pass a DeviceLibrary"
                )
            if len(tokens) < 5:
                raise NetlistError("malformed M card: %r" % line)
            drain, gate, source, model = tokens[1:5]
            nfin = 1
            for extra in tokens[5:]:
                key, _eq, value = extra.partition("=")
                if key.lower() == "nfin":
                    nfin = int(value)
                else:
                    raise NetlistError(
                        "unknown M-card parameter %r" % extra
                    )
            params = _resolve_model(library, model)
            circuit.add_fet(name, FinFET(params, nfin), gate, drain,
                            source)
        else:
            raise NetlistError("unsupported card %r" % line)
    return circuit


def _expect(tokens, count, line):
    if len(tokens) != count:
        raise NetlistError("malformed card %r" % line)


def _resolve_model(library, model):
    lowered = model.lower()
    table = {
        "nfet_lvt": library.nfet_lvt,
        "nfet_hvt": library.nfet_hvt,
        "pfet_lvt": library.pfet_lvt,
        "pfet_hvt": library.pfet_hvt,
    }
    if lowered not in table:
        raise NetlistError(
            "unknown device model %r (expected one of %s)"
            % (model, sorted(table))
        )
    return table[lowered]


# ---------------------------------------------------------------------------
# Export
# ---------------------------------------------------------------------------

def _node_name(circuit, index):
    if index == -1:
        return "0"
    return circuit.node_names[index]


def _flavor_of(params, library):
    for name, candidate in (
        ("nfet_lvt", library.nfet_lvt),
        ("nfet_hvt", library.nfet_hvt),
        ("pfet_lvt", library.pfet_lvt),
        ("pfet_hvt", library.pfet_hvt),
    ):
        if params == candidate:
            return name
    return "nfet_custom" if params.polarity == "n" else "pfet_custom"


def write_netlist(circuit, library=None):
    """Render a :class:`Circuit` as SPICE-format text.

    Constant sources round-trip exactly; time-varying sources (Python
    callables) are emitted as their t=0 value with a warning comment,
    since the original stimulus specification is not retained.
    """
    lines = ["* %s" % circuit.title]
    for element in circuit.elements:
        if isinstance(element, Resistor):
            lines.append("%s %s %s %.10g" % (
                element.name,
                _node_name(circuit, element.a),
                _node_name(circuit, element.b),
                element.resistance,
            ))
        elif isinstance(element, Capacitor):
            lines.append("%s %s %s %.10g" % (
                element.name,
                _node_name(circuit, element.a),
                _node_name(circuit, element.b),
                element.capacitance,
            ))
        elif isinstance(element, VoltageSource):
            lines.append(_source_card(circuit, element, element.plus,
                                      element.minus,
                                      element.voltage_at(0.0)))
        elif isinstance(element, CurrentSource):
            lines.append(_source_card(circuit, element, element.a,
                                      element.b,
                                      element.current_at(0.0)))
        elif isinstance(element, Transistor):
            model = (_flavor_of(element.device.params, library)
                     if library is not None else "unknown_model")
            lines.append("%s %s %s %s %s nfin=%d" % (
                element.name,
                _node_name(circuit, element.drain),
                _node_name(circuit, element.gate),
                _node_name(circuit, element.source),
                model,
                element.device.nfin,
            ))
        else:  # pragma: no cover - all element kinds handled
            raise NetlistError(
                "cannot export element %r" % (element.name,)
            )
    lines.append(".end")
    return "\n".join(lines) + "\n"


def _source_card(circuit, element, plus, minus, value):
    card = "%s %s %s %.10g" % (
        element.name,
        _node_name(circuit, plus),
        _node_name(circuit, minus),
        value,
    )
    if callable(element.value):
        card += "  ; time-varying stimulus exported as its t=0 value"
    return card
