"""Circuit (netlist) construction for the built-in simulator.

A :class:`Circuit` collects named nodes and elements, then compiles to
the unknown-vector layout used by the DC and transient solvers: node
voltages first (in declaration order), followed by one branch current
per voltage source.

Node ``"0"`` (aliases ``"gnd"``, ``"GND"``) is ground and carries no
unknown.
"""

from __future__ import annotations

from ..errors import NetlistError
from .elements import (
    GROUND_INDEX,
    Capacitor,
    CurrentSource,
    Element,
    Resistor,
    Transistor,
    VoltageSource,
)

GROUND_NAMES = ("0", "gnd", "GND", "vss!", "ground")


class Circuit:
    """A flat netlist of elements over named nodes."""

    def __init__(self, title="circuit"):
        self.title = title
        self._node_index = {}
        self._node_names = []
        self.elements = []
        self._element_names = set()
        self._vsources = []
        self._compiled = False

    # -- node bookkeeping ---------------------------------------------------

    def node(self, name):
        """Index for node ``name``, creating it on first use."""
        if name in GROUND_NAMES:
            return GROUND_INDEX
        if name not in self._node_index:
            if self._compiled:
                raise NetlistError(
                    "cannot add node %r after the circuit was compiled" % name
                )
            self._node_index[name] = len(self._node_names)
            self._node_names.append(name)
        return self._node_index[name]

    @property
    def node_names(self):
        """Non-ground node names in unknown order."""
        return tuple(self._node_names)

    @property
    def n_nodes(self):
        return len(self._node_names)

    @property
    def n_unknowns(self):
        return len(self._node_names) + len(self._vsources)

    def index_of(self, name):
        """Unknown index of an existing node (ground -> -1)."""
        if name in GROUND_NAMES:
            return GROUND_INDEX
        try:
            return self._node_index[name]
        except KeyError:
            raise NetlistError("unknown node %r in circuit %r" % (name, self.title))

    # -- element construction -------------------------------------------------

    def _register(self, element):
        if element.name in self._element_names:
            raise NetlistError(
                "duplicate element name %r in circuit %r"
                % (element.name, self.title)
            )
        self._element_names.add(element.name)
        self.elements.append(element)
        self._compiled = False
        return element

    def add_resistor(self, name, a, b, resistance):
        """Resistor of ``resistance`` ohms between nodes ``a`` and ``b``."""
        return self._register(Resistor(name, self.node(a), self.node(b), resistance))

    def add_capacitor(self, name, a, b, capacitance):
        """Capacitor of ``capacitance`` farads between ``a`` and ``b``."""
        return self._register(
            Capacitor(name, self.node(a), self.node(b), capacitance)
        )

    def add_vsource(self, name, plus, minus, value):
        """Voltage source; ``value`` is volts or a callable ``f(t)``."""
        element = VoltageSource(name, self.node(plus), self.node(minus), value)
        self._vsources.append(element)
        return self._register(element)

    def add_isource(self, name, a, b, value):
        """Current source from ``a`` to ``b``; constant amps or ``f(t)``."""
        return self._register(
            CurrentSource(name, self.node(a), self.node(b), value)
        )

    def add_fet(self, name, device, gate, drain, source):
        """A FinFET wired (gate, drain, source)."""
        return self._register(
            Transistor(name, device, self.node(gate), self.node(drain),
                       self.node(source))
        )

    def element(self, name):
        """Look up an element by name."""
        for el in self.elements:
            if el.name == name:
                return el
        raise NetlistError("no element named %r in circuit %r" % (name, self.title))

    @property
    def vsources(self):
        return tuple(self._vsources)

    # -- compilation ------------------------------------------------------------

    def compile(self):
        """Freeze the unknown layout; assign branch indices to V sources.

        Also validates that every non-ground node has at least two element
        connections or a voltage-source connection (a heuristic floating
        node check).
        """
        if not self.elements:
            raise NetlistError("circuit %r has no elements" % self.title)
        for k, source in enumerate(self._vsources):
            source.branch_index = self.n_nodes + k
        touch_count = [0] * self.n_nodes
        driven = [False] * self.n_nodes
        for el in self.elements:
            for idx in el.node_indices():
                if idx != GROUND_INDEX:
                    touch_count[idx] += 1
            if isinstance(el, VoltageSource):
                for idx in (el.plus, el.minus):
                    if idx != GROUND_INDEX:
                        driven[idx] = True
        for idx, count in enumerate(touch_count):
            if count == 0:
                raise NetlistError(
                    "node %r is declared but unconnected" % self._node_names[idx]
                )
            if count == 1 and not driven[idx]:
                raise NetlistError(
                    "node %r has a single connection and no source; "
                    "it would float in DC" % self._node_names[idx]
                )
        self._compiled = True
        return self

    @property
    def compiled(self):
        return self._compiled

    def __repr__(self):
        return "Circuit(%r, %d nodes, %d elements)" % (
            self.title,
            self.n_nodes,
            len(self.elements),
        )
