"""Lightweight timing/counter telemetry for the performance engine.

The optimizer, the parallel study runner, and the characterization cache
all report where their milliseconds go through one process-global
:class:`PerfRegistry`.  Instrumentation is two calls deep — a
``with timed("name"):`` context manager and a ``count("name")``
increment — so the hot paths stay readable and the overhead stays at a
pair of ``perf_counter`` calls per timed block.

``python -m repro.cli <experiment> --profile`` prints the registry's
report after the run; worker processes of the parallel runner snapshot
their registries and the parent merges them, so a profiled parallel
study still accounts for every task.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class TimerStat:
    """Accumulated statistics for one named timer."""

    name: str
    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = 0.0

    def add(self, seconds):
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0


class PerfRegistry:
    """Named timers and counters with mergeable snapshots."""

    def __init__(self):
        self.timers = {}
        self.counters = {}

    # -- recording ---------------------------------------------------------

    @contextmanager
    def timer(self, name):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def add_time(self, name, seconds):
        stat = self.timers.get(name)
        if stat is None:
            stat = self.timers[name] = TimerStat(name)
        stat.add(seconds)

    def count(self, name, n=1):
        self.counters[name] = self.counters.get(name, 0) + n

    # -- aggregation -------------------------------------------------------

    def snapshot(self):
        """Plain-data (picklable) view, mergeable via :meth:`merge`."""
        return {
            "timers": {
                name: {"count": s.count, "total": s.total,
                       "min": s.min, "max": s.max}
                for name, s in self.timers.items()
            },
            "counters": dict(self.counters),
        }

    def merge(self, snapshot):
        """Fold another registry's :meth:`snapshot` into this one."""
        for name, data in snapshot.get("timers", {}).items():
            stat = self.timers.get(name)
            if stat is None:
                stat = self.timers[name] = TimerStat(name)
            stat.count += data["count"]
            stat.total += data["total"]
            if data["count"] > 0:
                # A zero-count timer carries a placeholder min (inf in a
                # live registry, 0.0 after a JSON round trip); folding
                # either into a real minimum would corrupt it.
                stat.min = min(stat.min, data["min"])
                stat.max = max(stat.max, data["max"])
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, value)

    def to_json(self):
        """Serialize a snapshot as strict JSON (crosses process/HTTP
        boundaries; a worker's registry travels to the parent's
        ``/metrics`` endpoint this way).

        Zero-count timers store ``min`` as 0.0 because ``inf`` is not
        representable in strict JSON; :meth:`merge` ignores the min/max
        of zero-count entries, so the round trip is lossless.
        """
        snapshot = self.snapshot()
        for data in snapshot["timers"].values():
            if data["count"] == 0:
                data["min"] = 0.0
        return json.dumps(snapshot, sort_keys=True)

    @classmethod
    def from_json(cls, text):
        """Rebuild a registry from :meth:`to_json` output."""
        registry = cls()
        registry.merge(json.loads(text))
        return registry

    def reset(self):
        self.timers.clear()
        self.counters.clear()

    # -- reporting ---------------------------------------------------------

    def report(self, title="Performance profile"):
        lines = [title, "=" * len(title)]
        if self.timers:
            lines.append("%-36s %7s %10s %10s %10s"
                         % ("timer", "calls", "total_ms", "mean_ms",
                            "max_ms"))
            for name in sorted(self.timers):
                s = self.timers[name]
                # Zero-count entries (a merged snapshot may carry them)
                # render as zeros instead of inf/nan.
                mean = s.total / s.count if s.count else 0.0
                lines.append(
                    "%-36s %7d %10.2f %10.3f %10.3f"
                    % (name, s.count, s.total * 1e3, mean * 1e3,
                       s.max * 1e3)
                )
        if self.counters:
            lines.append("%-36s %17s" % ("counter", "value"))
            for name in sorted(self.counters):
                lines.append("%-36s %17d" % (name, self.counters[name]))
        if not self.timers and not self.counters:
            lines.append("(no telemetry recorded)")
        return "\n".join(lines)


#: The process-global registry all built-in instrumentation records to.
_GLOBAL = PerfRegistry()


def get_registry():
    """The process-global :class:`PerfRegistry`."""
    return _GLOBAL


def timed(name):
    """``with timed("phase"):`` — time a block into the global registry."""
    return _GLOBAL.timer(name)


def count(name, n=1):
    """Increment a counter in the global registry."""
    _GLOBAL.count(name, n)
