"""The ECC-relaxed co-optimization study: fixed-delta vs yield-target.

One study cell compares two full exhaustive searches over the same
capacity / flavor / method:

* **baseline** — the paper's fixed floor ``min(margins) >= delta`` with
  no check-bit columns;
* **relaxed** — the same search under a
  :class:`~repro.opt.constraints.YieldTargetConstraint`: the array must
  yield at probability >= ``y_target`` *given* an error-correcting
  code.  The coded per-cell failure budget is split evenly (union
  bound) between the two margins the code protects:

  - *cell stability* — the margin floor drops by ``delta_z * sigma``,
    admitting lower assist rails (V_DDC_min / V_WL_min are re-measured
    at the relaxed delta);
  - *sensing* — the paper keeps ``DeltaV_S`` fixed because process
    variation makes a smaller window lose to the sense-amp offset;
    with correction those sense flips are correctable bit errors, so
    ``DeltaV_S`` shrinks to its budgeted z-score over the offset sigma
    (:func:`repro.yields.failure.relaxed_sense_voltage`), cutting the
    dominant bitline discharge/precharge terms.

  The evaluation charges the code's full cost — check-bit columns
  widening every row, plus encode/correct delay and energy.

Both arms evaluate with ``count_all_columns=True`` and
``ecc_pipelined=True`` (the realistic-accounting extension): the
paper's single-worst-column accounting would make the shared ECC logic
look disproportionate against an artificially small per-access energy,
and a serial correction chain would dominate the near-threshold access
time that real macros pipeline.

With ``code="none"`` the relaxation is exactly zero, the relaxed rails
degenerate to the baseline levels, and both arms return the identical
fixed-delta optimum — the cross-check
``tests/test_yield_constraint.py`` pins.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace

from ..assist.study import minimum_vdd_boost
from ..errors import CharacterizationError, DesignSpaceError
from ..opt.constraints import YieldTargetConstraint
from ..opt.exhaustive import ExhaustiveOptimizer
from ..opt.methods import YieldLevels, make_policy
from ..opt.space import DesignSpace
from ..units import capacity_label
from .ecc import make_code
from .failure import relaxed_sense_voltage

#: Input-referred sense-amp offset sigma the sensing-margin relaxation
#: is sized against (matches :mod:`repro.cell.timing_yield`).
SA_OFFSET_SIGMA = 0.015

#: Coded per-cell failure budget share granted to cell stability; the
#: other half funds the relaxed sensing margin (union bound).
MARGIN_BUDGET_FRACTION = 0.5


def relaxed_yield_levels(session, flavor, delta_relaxed):
    """Minimum assist levels at a relaxed margin floor.

    Mirrors :meth:`Session.yield_levels`'s measured mode — V_DDC from
    the RSNM grid scan, V_WL from the flip voltage plus the floor,
    ceiled to the 10 mV rail grid — but always measures (the paper's
    pinned levels certify the *unrelaxed* floor only).
    """
    v_ddc = minimum_vdd_boost(session.library, session.cells[flavor],
                              delta_relaxed)
    v_flip = session.chars[flavor].v_wl_flip
    v_wl = math.ceil((v_flip + delta_relaxed) / 0.010) * 0.010
    return YieldLevels(v_ddc_min=v_ddc, v_wl_min=round(v_wl, 3))


@dataclass(frozen=True)
class YieldCellResult:
    """One capacity/flavor/method cell of the yield study."""

    capacity_bytes: int
    flavor: str
    method: str
    code: str             # resolved code name
    code_described: str   # e.g. "(72,64) SECDED"
    y_target: float
    delta: float
    #: Margin-floor relaxation inputs: z-score the code buys and the
    #: min-margin variation sigma at the baseline rails.  ``sigma0`` is
    #: None for a non-correcting code (no Monte Carlo runs at all).
    delta_z: float
    sigma0: float
    delta_relaxed: float
    #: Sensing voltages [V]: the baseline's nominal window and the
    #: relaxed window the code's sense-error budget supports.
    sense_voltage: float
    sense_voltage_relaxed: float
    #: Assist-rail minima each arm searched under.
    baseline_levels: tuple   # (v_ddc_min, v_wl_min)
    relaxed_levels: tuple
    #: The two optima (:class:`~repro.opt.OptimizationResult`).
    baseline: object
    relaxed: object
    #: Per-cell failure probability at the relaxed optimum's rails
    #: (both estimators), and the array yields it composes to.  None
    #: for a non-correcting code.
    p_fail: object
    yield_coded: float
    yield_uncoded: float
    #: True when the relaxed search fell back to the baseline rails
    #: (relaxed-level measurement or search infeasible).
    fallback: bool = False
    #: Relaxation estimator: "gaussian" (closed form) or a rare-event
    #: sampler name (:data:`repro.cell.importance.SAMPLERS`).
    sampler: str = "gaussian"
    #: Sampled :class:`~repro.cell.importance.TailEstimate` of the
    #: functional tail ``P(margin < 0)`` at the relaxed optimum's rails
    #: (None in gaussian mode or for a non-correcting code).
    tail: object = None

    @property
    def key(self):
        return (self.capacity_bytes, self.flavor, self.method)

    @property
    def label(self):
        return "%s/%s/%s" % (capacity_label(self.capacity_bytes),
                             self.flavor.upper(), self.method)

    @property
    def edp_gain(self):
        """Fractional EDP reduction of the relaxed optimum (negative
        when the code's overhead outweighs the relaxation)."""
        return 1.0 - self.relaxed.metrics.edp / self.baseline.metrics.edp

    @property
    def n_evaluated(self):
        return self.baseline.n_evaluated + self.relaxed.n_evaluated

    def row(self):
        return {
            "cell": self.label,
            "code": self.code_described,
            "delta (mV)": round(self.delta * 1e3, 1),
            "relaxed (mV)": round(self.delta_relaxed * 1e3, 1),
            "dVs (mV)": round(self.sense_voltage_relaxed * 1e3, 1),
            "base EDP": self.baseline.metrics.edp,
            "ecc EDP": self.relaxed.metrics.edp,
            "gain (%)": round(100.0 * self.edp_gain, 2),
            "yield": self.yield_coded,
        }

    def summary(self):
        """JSON-safe scalars (the service / bench payload core)."""
        return {
            "capacity_bytes": self.capacity_bytes,
            "flavor": self.flavor,
            "method": self.method,
            "code": self.code,
            "code_described": self.code_described,
            "y_target": self.y_target,
            "delta": self.delta,
            "delta_z": self.delta_z,
            "sigma0": self.sigma0,
            "delta_relaxed": self.delta_relaxed,
            "sense_voltage": self.sense_voltage,
            "sense_voltage_relaxed": self.sense_voltage_relaxed,
            "baseline_levels": list(self.baseline_levels),
            "relaxed_levels": list(self.relaxed_levels),
            "baseline_edp": self.baseline.metrics.edp,
            "relaxed_edp": self.relaxed.metrics.edp,
            "edp_gain": self.edp_gain,
            "p_fail": None if self.p_fail is None else {
                "empirical": self.p_fail.empirical,
                "gaussian": self.p_fail.gaussian,
                "n_samples": self.p_fail.n_samples,
                "tail_count": self.p_fail.tail_count,
                "source": self.p_fail.source,
            },
            "yield_coded": self.yield_coded,
            "yield_uncoded": self.yield_uncoded,
            "fallback": self.fallback,
            "sampler": self.sampler,
            "tail": None if self.tail is None else self.tail.summary(),
        }


def yield_study_configs(config, code_name, delta_v_sense=None):
    """(baseline, ecc) array configs for one study cell.

    Both use the realistic-accounting extensions; the arms differ only
    in the code and its relaxed sensing voltage, so the EDP delta
    isolates {check columns + ECC logic + relaxed rails + relaxed
    DeltaV_S}.
    """
    base = replace(config, count_all_columns=True, ecc="none",
                   ecc_pipelined=True)
    ecc = replace(base, ecc=code_name)
    if delta_v_sense is not None:
        ecc = replace(ecc, delta_v_sense=delta_v_sense)
    return base, ecc


def compute_yield_cell(session, capacity_bytes, flavor, method="M2",
                       code="secded", y_target=0.9, engine="pruned",
                       space=None, n_samples=120, seed=0,
                       sampler="gaussian", ci_target=0.1,
                       max_samples=4096):
    """Run one study cell: fixed-delta baseline vs ECC-relaxed search.

    ``sampler`` selects the margin-floor relaxation estimator:
    ``"gaussian"`` keeps the closed-form ``delta_z * sigma`` path
    bit-for-bit; a rare-event sampler name runs the importance-sampled
    margin-floor solve of :class:`~repro.opt.constraints.
    YieldTargetConstraint` (one shared sample buffer per rail pair,
    adaptive budget up to ``max_samples`` per pair targeting relative
    CI ``ci_target``) and attaches the sampled functional-tail estimate
    at the relaxed optimum to the result.
    """
    from ..array.model import SRAMArrayModel

    space = space or DesignSpace()
    capacity_bits = capacity_bytes * 8
    code_obj = make_code(code, session.config.word_bits)
    sense_relaxed = relaxed_sense_voltage(
        y_target, code_obj, capacity_bits // session.config.word_bits,
        SA_OFFSET_SIGMA, nominal=session.config.delta_v_sense,
        budget_fraction=1.0 - MARGIN_BUDGET_FRACTION,
    )
    base_cfg, ecc_cfg = yield_study_configs(session.config,
                                            code_obj.name, sense_relaxed)

    base_constraint = session.constraint(flavor)
    base_levels = session.yield_levels(flavor)
    base_model = SRAMArrayModel(session.chars[flavor], base_cfg)
    baseline = ExhaustiveOptimizer(
        base_model, space, base_constraint
    ).optimize(capacity_bits, make_policy(method, base_levels),
               engine=engine)

    constraint = YieldTargetConstraint(
        library=session.library, flavor=flavor, delta=session.delta,
        y_target=y_target, code=code_obj, capacity_bits=capacity_bits,
        word_bits=session.config.word_bits,
        trust_fixed_rails=base_constraint.trust_fixed_rails,
        flip_lookup=base_constraint.flip_lookup,
        n_samples=n_samples, seed=seed,
        margin_budget_fraction=MARGIN_BUDGET_FRACTION,
        sampler=sampler, ci_target=ci_target, max_samples=max_samples,
    )
    # Share every deterministic margin the baseline already measured.
    constraint.seed_margin_memo(base_constraint.export_margin_memo())

    fallback = False
    if constraint.delta_z == 0.0:
        # No correction, no relaxation: the arms are identical by
        # construction (and no Monte Carlo ever runs).
        sigma0 = None
        delta_relaxed = session.delta
        levels = base_levels
    else:
        sigma0 = constraint.sigma(base_levels.v_ddc_min, 0.0)
        delta_relaxed = max(
            session.delta - constraint.delta_z * sigma0, 0.0
        )
        try:
            levels = relaxed_yield_levels(session, flavor, delta_relaxed)
        except CharacterizationError:
            levels = base_levels
            fallback = True

    ecc_model = SRAMArrayModel(session.chars[flavor], ecc_cfg)
    optimizer = ExhaustiveOptimizer(ecc_model, space, constraint)
    try:
        relaxed = optimizer.optimize(
            capacity_bits, make_policy(method, levels), engine=engine
        )
    except DesignSpaceError:
        if levels is base_levels:
            raise
        # The relaxed rails left no feasible design (the per-point
        # sigma undercut the one-step relaxation); retry at the
        # certified baseline rails.
        levels = base_levels
        fallback = True
        relaxed = optimizer.optimize(
            capacity_bits, make_policy(method, levels), engine=engine
        )

    tail = None
    if code_obj.corrects:
        design = relaxed.design
        p_fail = constraint.failure_estimate(design.v_ddc,
                                             float(design.v_ssc))
        yield_coded, yield_uncoded = constraint.array_yield(
            design.v_ddc, float(design.v_ssc)
        )
        if sampler != "gaussian":
            tail = constraint.tail_estimate(design.v_ddc,
                                            float(design.v_ssc))
    else:
        p_fail, yield_coded, yield_uncoded = None, 1.0, 1.0

    return YieldCellResult(
        capacity_bytes=capacity_bytes, flavor=flavor, method=method,
        code=code_obj.name, code_described=code_obj.describe(),
        y_target=y_target, delta=session.delta,
        delta_z=constraint.delta_z, sigma0=sigma0,
        delta_relaxed=delta_relaxed,
        sense_voltage=session.config.delta_v_sense,
        sense_voltage_relaxed=sense_relaxed,
        baseline_levels=(base_levels.v_ddc_min, base_levels.v_wl_min),
        relaxed_levels=(levels.v_ddc_min, levels.v_wl_min),
        baseline=baseline, relaxed=relaxed,
        p_fail=p_fail, yield_coded=yield_coded,
        yield_uncoded=yield_uncoded, fallback=fallback,
        sampler=sampler, tail=tail,
    )


def compute_yield_cell_timed(session, capacity_bytes, flavor,
                             method="M2", **kwargs):
    """(result, seconds) — the study-runner dispatch wrapper."""
    start = time.perf_counter()
    result = compute_yield_cell(session, capacity_bytes, flavor, method,
                                **kwargs)
    return result, time.perf_counter() - start
