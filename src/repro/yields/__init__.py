"""ECC-aware yield modeling.

(The issue tracker calls this subsystem ``repro.yield``; ``yield`` is a
Python keyword, so the package is named ``repro.yields``.)

* :mod:`repro.yields.ecc` — error-correcting codes as check-bit columns
  per word: check-bit counts from the data width, plus encode/correct
  delay and energy assembled from the characterized unit gates.
* :mod:`repro.yields.failure` — per-cell failure probability from Monte
  Carlo margin distributions (empirical tail counts cross-checked
  against a Gaussian-tail extrapolation, plus the rare-event sampled
  path of :mod:`repro.cell.importance` for 1e-9 tails) and its
  composition into codeword / word / array yield with and without
  correction.
* :mod:`repro.yields.study` — the co-optimization driver comparing the
  fixed-delta baseline against the ECC-relaxed search (imported lazily
  by the study runner / service / CLI; it pulls in the analysis stack).
"""

from .ecc import ECCCode, ECCOverhead, ecc_overhead, hamming_check_bits, \
    make_code, secded_check_bits
from .failure import MIN_TAIL_EVENTS, FailureEstimate, TailEstimate, \
    array_yield, coded_p_fail_budget, codeword_fail_probability, \
    estimate_p_fail, estimate_p_fail_sampled, margin_relaxation_z, \
    p_fail_empirical, p_fail_gaussian, relaxed_sense_voltage, \
    sense_fail_probability, uncoded_array_yield, uncoded_p_fail_budget, \
    word_fail_probability, z_score

__all__ = [
    "ECCCode",
    "ECCOverhead",
    "FailureEstimate",
    "MIN_TAIL_EVENTS",
    "TailEstimate",
    "array_yield",
    "coded_p_fail_budget",
    "codeword_fail_probability",
    "ecc_overhead",
    "estimate_p_fail",
    "estimate_p_fail_sampled",
    "hamming_check_bits",
    "make_code",
    "margin_relaxation_z",
    "p_fail_empirical",
    "p_fail_gaussian",
    "relaxed_sense_voltage",
    "secded_check_bits",
    "sense_fail_probability",
    "uncoded_array_yield",
    "uncoded_p_fail_budget",
    "word_fail_probability",
    "z_score",
]
