"""Cell failure probability and its composition into array yield.

Per-cell failure probability
----------------------------

The Monte Carlo engine (:mod:`repro.cell.montecarlo`) produces
per-sample margin distributions.  A cell *fails functionally* when its
realized margin falls below a floor (zero margin = the cell flips /
cannot be read), so ``p_fail = P(margin < floor)``.  Two estimators:

* **empirical** — the observed tail fraction.  Unbiased, but useless in
  the deep-yield regime: at ``p ~ 1e-7`` a 200-sample run observes zero
  failures.
* **Gaussian tail** — fit (mu, sigma) to the samples and extrapolate
  ``Phi((floor - mu) / sigma)``.  This is the paper's own framing: the
  delta = 0.35*Vdd margin requirement is a z-score headroom over the
  variation sigma.

:func:`estimate_p_fail` exposes both and selects the empirical count
only when enough tail events were actually observed; the tests
cross-check the two in the observable regime.  For the deep tail a
third, *sampled* path (:func:`estimate_p_fail_sampled`, or
``estimate_p_fail(..., sampler=...)`` with a margin solver) runs the
rare-event engine of :mod:`repro.cell.importance` and returns a
:class:`~repro.cell.importance.TailEstimate` carrying confidence-
interval fields.

Composition
-----------

Independent cell failures compose upward:

* a *codeword* of ``n`` bits correcting ``t`` errors fails only when
  more than ``t`` of its cells fail (binomial survival);
* a *word* fails when any of its interleaved codewords fails;
* the *array* yields only when every stored word survives.

All compositions run in log space (``log1p``/``expm1``) so yields
distinguishable from 1.0 only at the 1e-12 level stay exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import NormalDist

import numpy as np

from ..cell.importance import TailEstimate, estimate_tail

_NORMAL = NormalDist()


# ---------------------------------------------------------------------------
# Per-cell estimators
# ---------------------------------------------------------------------------

def p_fail_empirical(samples, floor):
    """Observed fraction of samples strictly below ``floor``."""
    values = np.asarray(samples, dtype=float)
    if values.size == 0:
        raise ValueError("p_fail_empirical needs at least one sample")
    return float(np.mean(values < floor))


def p_fail_gaussian(samples, floor):
    """Gaussian-tail extrapolation ``Phi((floor - mu) / sigma)``.

    ``mu``/``sigma`` are the sample mean and ddof=1 standard deviation
    (matching :class:`repro.cell.montecarlo.MetricSamples`).  Degenerate
    inputs return finite values rather than relying on ``sigma > 0``: a
    zero-variance vector (including a single sample, whose ddof=1 sigma
    is undefined) collapses to a step at the mean — ``1.0`` when the
    floor sits above every sample, ``0.0`` otherwise.
    """
    values = np.asarray(samples, dtype=float)
    if values.size == 0:
        raise ValueError("p_fail_gaussian needs at least one sample")
    mu = float(np.mean(values))
    sigma = (float(np.std(values, ddof=1)) if values.size > 1 else 0.0)
    if not sigma > 0.0 or not math.isfinite(sigma):
        return 1.0 if floor > mu else 0.0
    return _NORMAL.cdf((floor - mu) / sigma)


@dataclass(frozen=True)
class FailureEstimate:
    """Both per-cell estimators plus the selected value."""

    empirical: float
    gaussian: float
    n_samples: int
    tail_count: int
    #: "empirical" when enough tail events were observed, else
    #: "gaussian".
    source: str

    @property
    def p_fail(self):
        return self.empirical if self.source == "empirical" \
            else self.gaussian


#: Minimum observed tail events before the empirical estimator is
#: trusted over the Gaussian extrapolation (binomial relative error
#: ~ 1/sqrt(count); 8 events ~ 35%).
MIN_TAIL_EVENTS = 8


def estimate_p_fail(samples, floor, min_tail=MIN_TAIL_EVENTS, *,
                    solver=None, sampler=None, ci_target=0.1,
                    max_samples=4096, seed=0):
    """Per-cell failure probability with estimator selection.

    Empirical when at least ``min_tail`` samples fell below ``floor``
    (the tail is actually observed); Gaussian-tail extrapolation
    otherwise — in particular in the ``tail_count == 0`` regime the
    deep-yield search lives in, where the extrapolation is always
    finite (zero-variance vectors step at the sample mean, see
    :func:`p_fail_gaussian`).

    Passing ``sampler`` (one of :data:`repro.cell.importance.SAMPLERS`)
    together with a margin ``solver`` switches to the rare-event
    engine instead: ``samples`` is ignored and the returned value is a
    :class:`~repro.cell.importance.TailEstimate` with CI fields
    (``p_fail``/``ci_half``/``ess``/``converged``) — the path that
    stays meaningful down to 1e-9 tails.
    """
    if sampler is not None:
        if solver is None:
            raise ValueError(
                "sampler=%r needs a margin solver (samples alone "
                "cannot resolve a deep tail)" % (sampler,)
            )
        return estimate_p_fail_sampled(
            solver, floor, sampler=sampler, ci_target=ci_target,
            max_samples=max_samples, seed=seed,
        )
    values = np.asarray(samples, dtype=float)
    if values.size == 0:
        raise ValueError("estimate_p_fail needs at least one sample")
    tail = int(np.sum(values < floor))
    empirical = float(tail) / values.size
    gaussian = p_fail_gaussian(values, floor)
    source = "empirical" if tail >= min_tail else "gaussian"
    return FailureEstimate(
        empirical=empirical, gaussian=gaussian,
        n_samples=int(values.size), tail_count=tail, source=source,
    )


def estimate_p_fail_sampled(solver, floor, sampler="shifted",
                            ci_target=0.1, max_samples=4096, seed=0,
                            **kwargs):
    """Rare-event :class:`~repro.cell.importance.TailEstimate` of
    ``P(margin < floor)`` through a margin solver.

    A thin front door over :func:`repro.cell.importance.estimate_tail`
    (adaptive budget loop, deterministic block streams, the full
    sampler menu) re-exported here so yield-layer callers get the
    sampled estimator next to the empirical/Gaussian ones.
    """
    return estimate_tail(
        solver, floor, sampler=sampler, ci_target=ci_target,
        max_samples=max_samples, seed=seed, **kwargs
    )


# ---------------------------------------------------------------------------
# Composition: cell -> codeword -> word -> array
# ---------------------------------------------------------------------------

def codeword_fail_probability(p_cell, n_bits, t):
    """P(more than ``t`` of ``n_bits`` independent cells fail)."""
    if not 0.0 <= p_cell <= 1.0:
        raise ValueError("p_cell must be in [0, 1], got %r" % (p_cell,))
    if n_bits < 1:
        raise ValueError("n_bits must be >= 1")
    if t >= n_bits:
        return 0.0
    if p_cell == 0.0:
        return 0.0
    if p_cell == 1.0:
        return 1.0
    if t <= 0:
        # 1 - (1-p)^n without cancellation.
        return -math.expm1(n_bits * math.log1p(-p_cell))
    # Survival mass sum_{i<=t} C(n,i) p^i (1-p)^(n-i) loses precision
    # when the failure mass is tiny; sum the failure mass directly.
    log_p = math.log(p_cell)
    log_q = math.log1p(-p_cell)
    terms = []
    for i in range(t + 1, n_bits + 1):
        log_term = (math.lgamma(n_bits + 1) - math.lgamma(i + 1)
                    - math.lgamma(n_bits - i + 1)
                    + i * log_p + (n_bits - i) * log_q)
        terms.append(math.exp(log_term))
    return min(math.fsum(terms), 1.0)


def word_fail_probability(p_cell, code):
    """P(a stored word is uncorrectable): any interleave way fails."""
    q_way = codeword_fail_probability(p_cell, code.codeword_bits, code.t)
    if code.interleave == 1:
        return q_way
    if q_way >= 1.0:
        return 1.0
    return -math.expm1(code.interleave * math.log1p(-q_way))


def array_yield(p_cell, code, n_words):
    """P(every stored word survives) for ``n_words`` words."""
    if n_words < 1:
        raise ValueError("n_words must be >= 1")
    q_way = codeword_fail_probability(p_cell, code.codeword_bits, code.t)
    if q_way >= 1.0:
        return 0.0
    return math.exp(n_words * code.interleave * math.log1p(-q_way))


def uncoded_array_yield(p_cell, n_bits):
    """P(all ``n_bits`` cells work) with no correction at all."""
    if p_cell >= 1.0:
        return 0.0
    return math.exp(n_bits * math.log1p(-p_cell))


# ---------------------------------------------------------------------------
# Budgets: target yield -> admissible per-cell failure probability
# ---------------------------------------------------------------------------

def uncoded_p_fail_budget(y_target, n_bits):
    """Largest ``p_cell`` with ``(1-p)^n_bits >= y_target``."""
    if not 0.0 < y_target < 1.0:
        raise ValueError("y_target must be in (0, 1), got %r"
                         % (y_target,))
    return -math.expm1(math.log(y_target) / n_bits)


def coded_p_fail_budget(y_target, code, n_words):
    """Largest ``p_cell`` with ``array_yield(p, code, n_words) >= Y``.

    Closed form for non-correcting codes; bisection on the monotone
    codeword failure mass otherwise.
    """
    if not 0.0 < y_target < 1.0:
        raise ValueError("y_target must be in (0, 1), got %r"
                         % (y_target,))
    n_codewords = n_words * code.interleave
    # Per-codeword failure budget from Y = (1 - q)^M.
    q_max = -math.expm1(math.log(y_target) / n_codewords)
    n_cw = code.codeword_bits
    if code.t <= 0:
        return -math.expm1(math.log1p(-q_max) / n_cw)
    lo, hi = 0.0, 1.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if codeword_fail_probability(mid, n_cw, code.t) <= q_max:
            lo = mid
        else:
            hi = mid
    return lo


def z_score(p_fail):
    """The Gaussian headroom ``z`` with ``Phi(-z) = p_fail``."""
    if not 0.0 < p_fail < 1.0:
        raise ValueError("p_fail must be in (0, 1), got %r" % (p_fail,))
    return -_NORMAL.inv_cdf(p_fail)


def margin_relaxation_z(y_target, code, n_words, budget_fraction=1.0):
    """Z-score relaxation the code buys at the target array yield.

    ``z(uncoded budget) - z(coded budget)`` over the *same* stored data
    bits: with the Gaussian tail model a cell's required margin is
    ``z * sigma`` above the functional floor, so correction lowers the
    required margin by ``delta_z * sigma``.  Exactly zero for a
    non-correcting code.

    ``budget_fraction`` reserves part of the coded per-cell budget for
    another failure mechanism (the union bound: mechanisms sized
    against disjoint budget shares compose to at most the total).  The
    ECC study splits the budget evenly between cell stability and
    sensing (:func:`relaxed_sense_voltage`).
    """
    if not code.corrects:
        return 0.0
    if not 0.0 < budget_fraction <= 1.0:
        raise ValueError("budget_fraction must be in (0, 1]")
    p_uncoded = uncoded_p_fail_budget(y_target,
                                      n_words * code.data_bits)
    p_coded = budget_fraction * coded_p_fail_budget(y_target, code,
                                                    n_words)
    if p_coded <= p_uncoded:
        return 0.0
    return z_score(p_uncoded) - z_score(p_coded)


# ---------------------------------------------------------------------------
# Sensing margin: the second mechanism correction pays for
# ---------------------------------------------------------------------------

def sense_fail_probability(delta_v_sense, sa_offset_sigma):
    """P(a sensed bit resolves wrongly): the developed bitline split
    ``DeltaV_S`` loses to the sense amplifier's Gaussian input-referred
    offset."""
    if delta_v_sense < 0.0:
        raise ValueError("delta_v_sense must be >= 0")
    if sa_offset_sigma <= 0.0:
        return 0.0
    return _NORMAL.cdf(-delta_v_sense / sa_offset_sigma)


def relaxed_sense_voltage(y_target, code, n_words, sa_offset_sigma,
                          nominal, budget_fraction=0.5):
    """Smallest sensing voltage the code supports at the yield target.

    The paper keeps ``DeltaV_S`` fixed because "reducing DeltaV_S ...
    is difficult ... with increased effect of process variations" — a
    smaller sensing window loses to the sense-amp offset and flips read
    bits.  With correction those flips are single-bit errors inside a
    codeword, so the sensing margin can shrink until the per-bit sense
    error probability consumes its ``budget_fraction`` share of the
    coded per-cell failure budget:

        DeltaV_S,relaxed = sigma_offset * z(budget_fraction * p_coded)

    ceiled to the 1 mV bias grid and never above ``nominal`` (the code
    is a license to relax, not a requirement to).  Non-correcting codes
    keep the nominal window exactly.
    """
    if not code.corrects:
        return nominal
    p_sense = budget_fraction * coded_p_fail_budget(y_target, code,
                                                    n_words)
    if p_sense >= 0.5:
        return nominal
    relaxed = sa_offset_sigma * z_score(p_sense)
    relaxed = math.ceil(relaxed * 1e3) / 1e3
    return min(nominal, relaxed)
