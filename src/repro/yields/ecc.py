"""Error-correcting codes as check-bit columns per word.

A code adds ``check_bits`` physical columns beside every stored word.
The array model threads that count through
:class:`~repro.array.organization.ArrayOrganization` (``n_c_phys``), so
the extra columns flow through the existing Table-1/2/3 component
equations — wider rows mean larger C_CVDD/C_CVSS/C_WL/C_COL and more
leaking cells, while the decoders keep addressing the logical geometry.

Check-bit counts
----------------

A Hamming code over ``d`` data bits needs the smallest ``k`` with
``2**k >= d + k + 1``; SECDED (single-error-correct, double-error-
detect) adds one overall parity bit.  ``W = 64`` data bits therefore
carry ``k = 8`` check bits (the classic (72,64) code).  An interleaved
variant ``secded-xN`` splits the word into ``N`` independent SECDED
codewords of ``W/N`` data bits each — more check bits, but each
codeword tolerates its own single-bit error, so a word survives up to
``N`` cell failures when they land in different ways.

Encode / correct overhead
-------------------------

The syndrome logic is XOR trees over the codeword plus a syndrome
decoder, assembled from the same characterized unit gates the row
decoder uses (:mod:`repro.periphery.gates` via the decoder model):

* an XOR2 is the standard four-NAND2 cell: critical path three NAND2
  stages, and on a toggling input about half the internal nodes move,
  so its switching energy is counted as two NAND2 events;
* encoding computes ``k`` parity trees in parallel — depth
  ``ceil(log2(h))`` XORs over the ``h ~ ceil(n/2)`` positions each
  check bit covers, ``h - 1`` XOR gates per tree;
* correction recomputes the same trees over the read codeword, XORs
  each against the stored check bit (one more stage), decodes the
  ``k``-bit syndrome with the structural decoder model (a k-to-2^k
  decoder is exactly what a syndrome decoder is), and applies the
  correcting XOR.

Interleaved ways run in parallel: delay is one way's, energy scales
with the way count.  All terms are independent of the array
organization, which is what keeps the bound-and-prune engine's lower
bounds admissible — the same constants appear in the production
evaluation and in the bound evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import DesignSpaceError


def hamming_check_bits(data_bits):
    """Smallest ``k`` with ``2**k >= data_bits + k + 1`` (SEC code)."""
    if data_bits < 1:
        raise DesignSpaceError(
            "a code needs at least 1 data bit, got %r" % (data_bits,)
        )
    k = 1
    while (1 << k) < data_bits + k + 1:
        k += 1
    return k


def secded_check_bits(data_bits):
    """Hamming check bits plus the overall SECDED parity bit."""
    return hamming_check_bits(data_bits) + 1


@dataclass(frozen=True)
class ECCCode:
    """One resolved code: geometry and correction capability.

    ``interleave`` ways each protect ``data_bits_per_way`` data bits
    with ``check_bits_per_way`` check bits and correct up to ``t``
    errors per codeword.  ``check_bits`` is the total per stored word —
    the number of extra physical columns each word carries.
    """

    name: str
    data_bits: int
    interleave: int
    check_bits_per_way: int
    t: int

    def __post_init__(self):
        if self.interleave < 1:
            raise DesignSpaceError("interleave must be >= 1")
        if self.data_bits % self.interleave:
            raise DesignSpaceError(
                "interleave %d does not divide the %d-bit word"
                % (self.interleave, self.data_bits)
            )

    @property
    def data_bits_per_way(self):
        return self.data_bits // self.interleave

    @property
    def check_bits(self):
        """Total check bits per stored word (extra columns)."""
        return self.check_bits_per_way * self.interleave

    @property
    def codeword_bits(self):
        """Physical bits per codeword (one interleave way)."""
        return self.data_bits_per_way + self.check_bits_per_way

    @property
    def corrects(self):
        return self.t > 0

    def describe(self):
        if not self.corrects:
            return "none"
        base = "(%d,%d) SECDED" % (self.codeword_bits,
                                   self.data_bits_per_way)
        if self.interleave > 1:
            return "%dx %s" % (self.interleave, base)
        return base


def make_code(name, word_bits):
    """Resolve a code name for a ``word_bits``-bit word.

    * ``"none"`` — no code, no check columns.
    * ``"secded"`` — one SECDED codeword over the whole word.
    * ``"secded-xN"`` — N interleaved SECDED codewords (N must divide
      the word width).
    """
    if name == "none":
        return ECCCode(name="none", data_bits=word_bits, interleave=1,
                       check_bits_per_way=0, t=0)
    if name == "secded":
        return ECCCode(name="secded", data_bits=word_bits, interleave=1,
                       check_bits_per_way=secded_check_bits(word_bits),
                       t=1)
    if name.startswith("secded-x"):
        try:
            ways = int(name[len("secded-x"):])
        except ValueError:
            ways = 0
        if ways < 2:
            raise DesignSpaceError("malformed code name %r" % (name,))
        if word_bits % ways:
            raise DesignSpaceError(
                "%d-way interleave does not divide a %d-bit word"
                % (ways, word_bits)
            )
        return ECCCode(
            name=name, data_bits=word_bits, interleave=ways,
            check_bits_per_way=secded_check_bits(word_bits // ways), t=1,
        )
    raise DesignSpaceError(
        "unknown ECC code %r (expected 'none', 'secded' or 'secded-xN')"
        % (name,)
    )


@dataclass(frozen=True)
class ECCOverhead:
    """Organization-independent encode/correct delay and energy terms."""

    encode_delay: float
    encode_energy: float
    correct_delay: float
    correct_energy: float

    @classmethod
    def zero(cls):
        return cls(0.0, 0.0, 0.0, 0.0)


def _xor_tree(n_inputs, xor_delay, xor_energy):
    """(delay, energy) of a balanced parity tree over ``n_inputs``."""
    if n_inputs <= 1:
        return 0.0, 0.0
    depth = int(math.ceil(math.log2(n_inputs)))
    gates = n_inputs - 1
    return depth * xor_delay, gates * xor_energy


def ecc_overhead(code, decoder):
    """Encode/correct overhead of ``code`` from characterized gates.

    ``decoder`` is the structural
    :class:`~repro.periphery.decoder.DecoderModel` — it carries the
    characterized unit NAND2 (for the XOR cells) and doubles as the
    syndrome decoder (a ``k``-bit address decode).  Returns
    :meth:`ECCOverhead.zero` for a non-correcting code, so the
    no-ECC evaluation path adds exact zeros (or skips the adds
    entirely).
    """
    if not code.corrects:
        return ECCOverhead.zero()
    nand2 = decoder.nands[2]
    # XOR2 = four NAND2s: three-stage critical path, ~two toggling
    # gate events; each stage drives the next XOR's input (two NAND
    # gate inputs).
    xor_load = 2.0 * nand2.c_input
    xor_delay = 3.0 * nand2.delay(xor_load)
    xor_energy = 2.0 * nand2.energy(xor_load)

    k = code.check_bits_per_way
    n_cw = code.codeword_bits
    coverage = (n_cw + 1) // 2    # positions per Hamming check tree

    tree_delay, tree_energy = _xor_tree(coverage, xor_delay, xor_energy)
    # Encode: k parallel parity trees over the data bits.
    encode_delay = tree_delay
    encode_energy = k * tree_energy
    # Correct: the same trees over the read codeword, one extra XOR
    # against the stored check bit, the syndrome decode, and the
    # correcting XOR on the failing bit.
    correct_delay = (
        tree_delay + xor_delay
        + float(decoder.delay(k))
        + xor_delay
    )
    correct_energy = (
        k * (tree_energy + xor_energy)
        + float(decoder.energy(k))
        + xor_energy
    )
    ways = code.interleave
    return ECCOverhead(
        encode_delay=encode_delay,
        encode_energy=ways * encode_energy,
        correct_delay=correct_delay,
        correct_energy=ways * correct_energy,
    )
