"""The job worker: claim, sweep cell-by-cell, checkpoint, resume.

A *study* job is the paper's full co-optimization over a capacity x
flavor x method matrix.  The worker executes it one matrix cell at a
time, committing each finished :class:`OptimizationResult` to the
content-addressed :class:`~repro.store.ExperimentStore` **as it
lands** and heartbeating the queue after every cell.  Checkpointing at
cell granularity buys two properties:

* **Crash recovery** — if the worker dies mid-sweep (SIGKILL included),
  the job's lease expires and the next ``claim`` re-queues it.  The
  restarted worker recomputes *only* the missing cells: every cell key
  is a pure function of the inputs, so finished cells are found in the
  store and skipped.
* **Bit-identical resume** — the engines are deterministic and the
  store's JSON round trip is exact, so a resumed sweep's final results
  are indistinguishable from an uninterrupted run's.

Run one from the shell::

    python -m repro.jobs.worker --queue jobs.db --once

or keep a fleet draining the queue (each worker is independent; the
lease protocol needs no coordinator)::

    python -m repro.jobs.worker --queue jobs.db --lease 60

The optimization service embeds this same loop in its background worker
pool (``repro serve --jobs``), sharing the server's warm session.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import sys
import threading
import time
import uuid
from dataclasses import dataclass, field

from .. import perf
from ..analysis.experiments import (
    CAPACITIES_BYTES,
    FLAVORS,
    METHODS,
    Session,
    SweepResult,
)
from ..analysis.runner import execute_study_task, study_matrix
from ..errors import JobError
from ..opt import DesignSpace
from ..store import (
    ExperimentStore,
    make_provenance,
    payload_to_result,
    result_to_payload,
    study_cell_key,
    sweep_key,
)
from ..units import is_power_of_two
from .queue import JobQueue

#: Spec defaults / validation domains.
STUDY_ENGINES = ("fused", "pruned", "vectorized", "loop")
VOLTAGE_MODES = ("paper", "measured")


def new_worker_id():
    return "%s-%d-%s" % (socket.gethostname(), os.getpid(),
                         uuid.uuid4().hex[:6])


# ---------------------------------------------------------------------------
# Job specs
# ---------------------------------------------------------------------------

def normalize_study_spec(raw):
    """Validate and canonicalize a study-job spec.

    Canonical form sorts capacities ascending and orders flavors and
    methods in their reference order, so equivalent submissions share
    one :func:`~repro.store.sweep_key` (and therefore one stored
    sweep).  Raises :class:`JobError` on anything invalid.
    """
    if not isinstance(raw, dict):
        raise JobError("study spec must be an object, got %r"
                       % type(raw).__name__)
    known = {"capacities", "flavors", "methods", "engine",
             "voltage_mode", "cache_path"}
    unknown = set(raw) - known
    if unknown:
        raise JobError("unknown study spec field(s): %s"
                       % ", ".join(sorted(unknown)))
    capacities = raw.get("capacities") or list(CAPACITIES_BYTES)
    if (not isinstance(capacities, (list, tuple)) or not capacities
            or not all(isinstance(c, int) and not isinstance(c, bool)
                       and c > 0 and is_power_of_two(c)
                       for c in capacities)):
        raise JobError("capacities must be positive powers of two "
                       "(bytes), got %r" % (capacities,))
    flavors = raw.get("flavors") or list(FLAVORS)
    if (not isinstance(flavors, (list, tuple)) or not flavors
            or any(f not in FLAVORS for f in flavors)):
        raise JobError("flavors must be a non-empty subset of %s"
                       % "/".join(FLAVORS))
    methods = raw.get("methods") or list(METHODS)
    if (not isinstance(methods, (list, tuple)) or not methods
            or any(m not in METHODS for m in methods)):
        raise JobError("methods must be a non-empty subset of %s"
                       % "/".join(METHODS))
    engine = raw.get("engine", "vectorized")
    if engine not in STUDY_ENGINES:
        raise JobError("engine must be one of %s, got %r"
                       % ("/".join(STUDY_ENGINES), engine))
    voltage_mode = raw.get("voltage_mode", "paper")
    if voltage_mode not in VOLTAGE_MODES:
        raise JobError("voltage_mode must be one of %s, got %r"
                       % ("/".join(VOLTAGE_MODES), voltage_mode))
    cache_path = raw.get("cache_path")
    if cache_path is not None and not isinstance(cache_path, str):
        raise JobError("cache_path must be a string or null")
    return {
        "capacities": sorted(set(int(c) for c in capacities)),
        "flavors": [f for f in FLAVORS if f in flavors],
        "methods": [m for m in METHODS if m in methods],
        "engine": engine,
        "voltage_mode": voltage_mode,
        "cache_path": cache_path,
    }


def study_cell_keys(session, spec, space=None):
    """``[(StudyTask, store key), ...]`` in canonical matrix order."""
    space = space or DesignSpace()
    tasks = study_matrix(tuple(spec["capacities"]),
                         tuple(spec["flavors"]),
                         tuple(spec["methods"]))
    return [
        (task, study_cell_key(session, space, task.capacity_bytes,
                              task.flavor, task.method, spec["engine"]))
        for task in tasks
    ]


def load_sweep_results(store, result_key):
    """Rebuild a :class:`SweepResult` from a stored sweep record.

    Every cell payload round-trips through
    :func:`~repro.store.payload_to_result`, so the returned sweep
    reports (Table 4, Figure 7, headline) exactly as a live one.
    """
    record = store.get(result_key)
    if record is None:
        raise JobError("no sweep record %r in the store" % result_key)
    results = {}
    for cell_key_ in record["cells"]:
        payload = store.get(cell_key_)
        if payload is None:
            raise JobError("sweep %r references missing cell %r"
                           % (result_key, cell_key_))
        result = payload_to_result(payload)
        results[(result.capacity_bytes, result.flavor,
                 result.method)] = result
    return SweepResult(results=results,
                       voltage_mode=record["spec"]["voltage_mode"])


# ---------------------------------------------------------------------------
# Session cache (one warm session per (cache, voltage-mode))
# ---------------------------------------------------------------------------

class SessionProvider:
    """Builds and memoizes sessions per (cache_path, voltage_mode).

    The service seeds this with its already-warm session so background
    job workers never re-characterize; a standalone worker builds from
    the (disk-cached) characterization store on first use.  With
    ``arena_name`` (``repro jobs work --arena``) a spec whose voltage
    mode matches the published :class:`~repro.shm.SessionArena` is
    served by a zero-copy arena session instead of a cold build; any
    attach failure silently falls back.
    """

    def __init__(self, default_cache_path=None, arena_name=None):
        self.default_cache_path = default_cache_path
        self.arena_name = arena_name
        self._arena = None
        self._sessions = {}
        self._lock = threading.Lock()

    @staticmethod
    def _key(cache_path, voltage_mode):
        path = os.path.abspath(cache_path) if cache_path else None
        return (path, voltage_mode)

    def seed(self, session, cache_path=None):
        path = cache_path or (session.cache.path if session.cache
                              else None)
        with self._lock:
            self._sessions[self._key(path, session.voltage_mode)] = session

    def _from_arena(self, voltage_mode):
        """An arena-backed session for matching specs, or None."""
        if not self.arena_name:
            return None
        if self._arena is None:
            from ..shm import SessionArena

            try:
                # Kept for the provider's lifetime: the sessions built
                # from it hold views into the mapping.
                self._arena = SessionArena.attach(self.arena_name)
            except Exception:
                self.arena_name = None
                return None
        if self._arena.voltage_mode != voltage_mode:
            return None
        return self._arena.to_session()

    def for_spec(self, spec):
        cache_path = spec.get("cache_path") or self.default_cache_path
        voltage_mode = spec.get("voltage_mode", "paper")
        key = self._key(cache_path, voltage_mode)
        with self._lock:
            session = self._sessions.get(key)
            if session is None:
                session = self._from_arena(voltage_mode)
            if session is None:
                session = Session.create(cache_path=cache_path,
                                         voltage_mode=voltage_mode)
            self._sessions[key] = session
            return session


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def execute_study_job(job, queue, store, worker_id, sessions,
                      lease_seconds=30.0, stop=None, throttle=0.0,
                      log=None):
    """Run one claimed study job to completion (or until ownership is
    lost).  Returns ``"done"``, ``"lost"`` (cancelled / lease stolen),
    or ``"stopped"`` (graceful worker shutdown; the lease will expire
    and the job will be re-queued)."""
    spec = normalize_study_spec(job.spec)
    # Fleet plumbing (both hooks are optional on plain local stacks):
    # thread the claim's correlation id into the store's sync traffic so
    # one sweep's id survives the host hops.
    request_id_for = getattr(queue, "request_id_for", None)
    if request_id_for is not None and hasattr(store, "set_request_id"):
        store.set_request_id(request_id_for(job.id))
    session = sessions.for_spec(spec)
    space = DesignSpace()
    cells = study_cell_keys(session, spec, space)
    total = len(cells)
    computed = skipped = 0
    for index, (task, key) in enumerate(cells):
        if stop is not None and stop.is_set():
            return "stopped"
        if store.has(key):
            skipped += 1
            perf.count("jobs.cells_skipped")
        else:
            result, seconds = execute_study_task(
                session, space, task, engine=spec["engine"]
            )
            store.put(key, result_to_payload(result), make_provenance(
                inputs={"job": job.id, "task": task.label,
                        "spec": {k: v for k, v in spec.items()
                                 if k != "cache_path"}},
                elapsed_seconds=round(seconds, 6), worker=worker_id,
            ))
            computed += 1
            perf.count("jobs.cells_computed")
            if throttle > 0:
                time.sleep(throttle)
        progress = {"total": total, "completed": index + 1,
                    "computed": computed, "skipped": skipped,
                    "current": task.label}
        if not queue.heartbeat(job.id, worker_id, lease_seconds,
                               progress=progress):
            # Cancelled, or the lease expired and another worker owns
            # the job now.  Either way: stop; the store keeps our cells.
            return "lost"
        if log is not None:
            log("  [%d/%d] %s %s" % (index + 1, total, task.label,
                                     "cached" if store.has(key)
                                     and not computed else "done"))
    key = sweep_key(spec)
    store.put(key, {"spec": spec, "cells": [k for _, k in cells]},
              make_provenance(inputs={"job": job.id, "spec": {
                  k: v for k, v in spec.items() if k != "cache_path"}},
                  worker=worker_id))
    if hasattr(store, "flush"):
        # Replicated store: settle any write-back backlog before the
        # queue marks the job done, so "done" implies every replica
        # that is reachable holds every cell.
        store.flush()
    return "done" if queue.complete(job.id, worker_id,
                                    result_key=key) else "lost"


_JOB_EXECUTORS = {"study": execute_study_job}


@dataclass
class WorkerStats:
    """What one :func:`run_worker` invocation did."""

    worker: str
    jobs_done: int = 0
    jobs_failed: int = 0
    jobs_lost: int = 0
    cells_computed: int = 0
    cells_skipped: int = 0
    seconds: float = 0.0
    outcomes: list = field(default_factory=list)   # (job_id, outcome)


def run_worker(queue_path=None, store_path=None, worker_id=None,
               lease_seconds=30.0, poll_interval=0.5, max_jobs=None,
               once=False, stop=None, sessions=None,
               default_cache_path=None, throttle=0.0, log=None,
               arena_name=None, queue=None, store=None):
    """The worker loop: claim -> execute -> repeat.

    ``once`` waits (polling) for the first claimable job, runs it, and
    returns; otherwise the loop runs until ``stop`` is set or
    ``max_jobs`` jobs finished.  ``store_path`` defaults to the queue
    path — both subsystems happily share one SQLite file.
    ``arena_name`` points the default :class:`SessionProvider` at a
    published shared-memory session arena (zero-copy warm start).

    ``queue``/``store`` accept pre-built queue- and store-like objects
    instead of paths — that is how a fleet worker drains a **remote**
    queue (:class:`~repro.jobs.remote.RemoteJobQueue`) and replicates
    its checkpoints (:class:`~repro.store.ReplicatedStore`); the loop
    itself is identical either way.
    """
    if queue is None:
        if queue_path is None:
            raise JobError("run_worker needs queue_path or queue")
        queue = JobQueue(queue_path)
    if store is None:
        if store_path is None and queue_path is None:
            raise JobError("run_worker needs store_path or store when "
                           "the queue is remote")
        store = ExperimentStore(store_path or queue_path)
    worker_id = worker_id or new_worker_id()
    sessions = sessions or SessionProvider(default_cache_path,
                                           arena_name=arena_name)
    stats = WorkerStats(worker=worker_id)
    start = time.perf_counter()
    while True:
        if stop is not None and stop.is_set():
            break
        if max_jobs is not None and stats.jobs_done \
                + stats.jobs_failed >= max_jobs:
            break
        job = queue.claim(worker_id, lease_seconds)
        if job is None:
            if once and not stats.outcomes:
                time.sleep(poll_interval)   # wait for the first job
                continue
            if once:
                break
            if stop is not None:
                stop.wait(poll_interval)
            else:
                time.sleep(poll_interval)
            continue
        if log is not None:
            log("claimed %s (%s, attempt %d/%d)"
                % (job.id, job.kind, job.attempts, job.max_attempts))
        executor = _JOB_EXECUTORS.get(job.kind)
        before = _cell_counts()
        try:
            if executor is None:
                raise JobError("unknown job kind %r" % job.kind,
                               job_id=job.id)
            outcome = executor(job, queue, store, worker_id, sessions,
                               lease_seconds=lease_seconds, stop=stop,
                               throttle=throttle, log=log)
        except Exception as exc:
            state = queue.fail(job.id, worker_id,
                               "%s: %s" % (type(exc).__name__, exc))
            outcome = "failed:%s" % state
            stats.jobs_failed += 1
            if log is not None:
                log("job %s failed (%s): %s" % (job.id, state, exc))
        else:
            if outcome == "done":
                stats.jobs_done += 1
            elif outcome == "lost":
                stats.jobs_lost += 1
            if log is not None:
                log("job %s %s" % (job.id, outcome))
        after = _cell_counts()
        stats.cells_computed += after[0] - before[0]
        stats.cells_skipped += after[1] - before[1]
        stats.outcomes.append((job.id, outcome))
        if once:
            break
    stats.seconds = time.perf_counter() - start
    return stats


def _cell_counts():
    counters = perf.get_registry().snapshot()["counters"]
    return (counters.get("jobs.cells_computed", 0),
            counters.get("jobs.cells_skipped", 0))


# ---------------------------------------------------------------------------
# CLI entry: python -m repro.jobs.worker
# ---------------------------------------------------------------------------

def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro.jobs.worker",
        description="Claim and execute durable study jobs "
                    "(see docs/JOBS.md).",
    )
    parser.add_argument("--queue", default=None,
                        help="job queue SQLite path (local mode)")
    parser.add_argument("--server", default=None, metavar="URL",
                        help="claim jobs from this repro serve instance "
                             "over HTTP instead of a local queue file "
                             "(fleet mode; see docs/FLEET.md)")
    parser.add_argument("--store", default=None,
                        help="experiment store path (default: the "
                             "queue file; required with --server)")
    parser.add_argument("--replicate", action="append", default=[],
                        metavar="URL",
                        help="replicate store checkpoints to this serve "
                             "replica (repeatable; read-through on "
                             "miss, write-back on put)")
    parser.add_argument("--once", action="store_true",
                        help="wait for one job, run it, exit")
    parser.add_argument("--max-jobs", type=int, default=None,
                        help="exit after this many jobs")
    parser.add_argument("--poll", type=float, default=0.5,
                        help="idle poll interval [s]")
    parser.add_argument("--lease", type=float, default=30.0,
                        help="claim lease / heartbeat horizon [s]")
    parser.add_argument("--worker-id", default=None)
    parser.add_argument("--cache", default=".repro_cache.json",
                        help="default characterization cache for specs "
                             "that do not name one")
    parser.add_argument("--throttle", type=float, default=0.0,
                        help="sleep this long after each computed cell "
                             "(pacing / test knob)")
    parser.add_argument("--arena", default=None, metavar="NAME",
                        help="attach the named shared-memory session "
                             "arena (zero-copy warm start; falls back "
                             "to the cache when unavailable)")
    args = parser.parse_args(argv)
    if bool(args.queue) == bool(args.server):
        parser.error("exactly one of --queue (local) or --server "
                     "(remote) is required")
    if args.server and not args.store:
        parser.error("--server needs --store (the worker's local "
                     "checkpoint store)")

    queue = store = None
    if args.server:
        from ..store.replicated import ReplicatedStore
        from .remote import RemoteJobQueue

        queue = RemoteJobQueue(args.server)
        store = ReplicatedStore(args.store, replicas=args.replicate)
    elif args.replicate:
        from ..store.replicated import ReplicatedStore

        store = ReplicatedStore(args.store or args.queue,
                                replicas=args.replicate)

    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, lambda *_: stop.set())
        except ValueError:
            pass    # not the main thread
    stats = run_worker(
        queue_path=args.queue, store_path=args.store,
        queue=queue, store=store,
        worker_id=args.worker_id, lease_seconds=args.lease,
        poll_interval=args.poll, max_jobs=args.max_jobs,
        once=args.once, stop=stop,
        default_cache_path=args.cache or None,
        throttle=args.throttle, log=lambda line: print(line, flush=True),
        arena_name=args.arena,
    )
    print("worker %s: %d done, %d failed, %d lost; "
          "%d cells computed, %d skipped (%.1f s)"
          % (stats.worker, stats.jobs_done, stats.jobs_failed,
             stats.jobs_lost, stats.cells_computed, stats.cells_skipped,
             stats.seconds), flush=True)
    return 0 if stats.jobs_failed == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
