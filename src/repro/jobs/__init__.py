"""repro.jobs: durable, resumable batch execution of EDP sweeps.

The paper's exhaustive co-optimization repeated over the full study
matrix is a long-running batch workload; this package makes it durable:

* :mod:`~repro.jobs.queue` — a stdlib-only SQLite job table with states
  ``queued``/``running``/``done``/``failed``/``cancelled``, lease-based
  claiming, and heartbeats, so a crashed worker's jobs are re-queued
  automatically.
* :mod:`~repro.jobs.worker` — the worker loop: claims a job, runs the
  study sweep cell by cell, and commits every finished cell to the
  content-addressed :class:`~repro.store.ExperimentStore` as it lands.
  A restarted worker skips cells already in the store, so a resumed
  sweep finishes with results bit-identical to an uninterrupted run.
* :mod:`~repro.jobs.smoke` — the CI end-to-end check
  (submit -> crash -> resume -> verify); run it with
  ``python -m repro.jobs.smoke``.

Submit work with ``repro jobs submit`` (or ``POST /v1/jobs`` against a
service started with ``repro serve --jobs``), execute it with
``repro jobs work`` or the service's background worker pool, and
inspect results with ``repro store ls|show``.  See ``docs/JOBS.md``.
"""

from .queue import Job, JobQueue, JOB_STATES
from .remote import RemoteJobQueue, make_lease_token, parse_lease_token
from .worker import (
    WorkerStats,
    execute_study_job,
    load_sweep_results,
    normalize_study_spec,
    run_worker,
    study_cell_keys,
)

__all__ = [
    "JOB_STATES",
    "Job",
    "JobQueue",
    "RemoteJobQueue",
    "WorkerStats",
    "make_lease_token",
    "parse_lease_token",
    "execute_study_job",
    "load_sweep_results",
    "normalize_study_spec",
    "run_worker",
    "study_cell_keys",
]
