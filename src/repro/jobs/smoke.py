"""End-to-end crash-recovery smoke test: submit -> kill -> resume -> verify.

Exercises the whole durable-jobs contract with real subprocess workers:

1. submit a 16-cell study sweep to a fresh queue,
2. start a worker, SIGKILL it after at least one cell has landed in the
   store (a throttle flag guarantees the kill window),
3. start a second worker, which re-queues the expired lease, claims the
   job, skips every stored cell, and finishes the sweep,
4. verify the resumed sweep's payloads are **bit-identical** to an
   uninterrupted in-process :func:`run_study` over the same matrix, and
   that provenance proves the second worker recomputed only the missing
   cells.

Run it directly (CI does)::

    python -m repro.jobs.smoke --cache .repro_cache.json

Exit status 0 on success, 1 with a diagnosis on any violated guarantee.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time

from ..analysis.experiments import Session
from ..analysis.runner import run_study
from ..jobs import JobQueue
from ..jobs.worker import normalize_study_spec, study_cell_keys
from ..store import ExperimentStore, result_to_payload

SPEC = {
    "capacities": [128, 256, 512, 1024],
    "flavors": ["lvt", "hvt"],
    "methods": ["M1", "M2"],
    "voltage_mode": "paper",
}


def _spawn_worker(queue_path, cache_path, worker_id, throttle):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.jobs.worker",
         "--queue", queue_path, "--once", "--poll", "0.1",
         "--lease", "2", "--throttle", str(throttle),
         "--cache", cache_path, "--worker-id", worker_id],
        env={**os.environ,
             "PYTHONPATH": os.pathsep.join(
                 p for p in [os.environ.get("PYTHONPATH"),
                             os.path.join(os.path.dirname(__file__),
                                          "..", "..")] if p)},
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def _wait(predicate, timeout, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro.jobs.smoke",
        description="Durable-jobs crash/resume smoke test.")
    parser.add_argument("--cache", default=".repro_cache.json",
                        help="characterization cache (reused, not "
                             "recomputed, when it exists)")
    parser.add_argument("--throttle", type=float, default=0.4,
                        help="per-cell pacing of the first worker; "
                             "sets the SIGKILL window")
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args(argv)
    cache = os.path.abspath(args.cache)

    failures = []

    def check(ok, what):
        print("%s %s" % ("ok  " if ok else "FAIL", what), flush=True)
        if not ok:
            failures.append(what)

    with tempfile.TemporaryDirectory(prefix="repro-jobs-smoke-") as d:
        queue_path = os.path.join(d, "jobs.db")
        queue = JobQueue(queue_path)
        store = ExperimentStore(queue_path)
        spec = dict(SPEC, cache_path=cache)
        job_id = queue.submit("study", spec)
        print("submitted %s (16-cell sweep)" % job_id, flush=True)

        # Warm the characterization cache up front so the kill window
        # is pure sweep time, then size the uninterrupted reference.
        session = Session.create(cache_path=cache, voltage_mode="paper")
        cells = study_cell_keys(session, normalize_study_spec(spec))
        total = len(cells)
        check(total == 16, "study matrix has 16 cells")

        worker1 = _spawn_worker(queue_path, cache, "smoke-w1",
                                args.throttle)
        killed_at = None

        def mid_sweep():
            nonlocal killed_at
            job = queue.get(job_id)
            completed = job.progress.get("completed", 0)
            if job.state == "running" and 1 <= completed <= total - 2:
                killed_at = completed
                return True
            return job.terminal    # ran through; kill window missed
        _wait(mid_sweep, args.timeout)
        worker1.send_signal(signal.SIGKILL)
        worker1.wait(timeout=30)
        job = queue.get(job_id)
        check(killed_at is not None and not job.terminal,
              "worker killed mid-sweep (after %s/%d cells, state %r)"
              % (killed_at, total, job.state))
        stored_before = sum(store.has(key) for _, key in cells)
        check(1 <= stored_before < total,
              "%d/%d cells checkpointed at kill time"
              % (stored_before, total))

        worker2 = _spawn_worker(queue_path, cache, "smoke-w2",
                                throttle=0.0)
        try:
            worker2.wait(timeout=args.timeout)
        except subprocess.TimeoutExpired:
            worker2.kill()
        out = worker2.communicate()[0]
        job = queue.get(job_id)
        check(job.state == "done",
              "resumed worker finished the job (state %r, attempt %d)"
              % (job.state, job.attempts))
        if job.state != "done":
            print(out, flush=True)

        # Provenance: w1's cells survived, w2 computed only the rest.
        owners = {}
        for _, key in cells:
            provenance = store.provenance(key) or {}
            owners[provenance.get("worker")] = \
                owners.get(provenance.get("worker"), 0) + 1
        check(owners.get("smoke-w1", 0) == stored_before
              and owners.get("smoke-w1", 0) + owners.get("smoke-w2", 0)
              == total,
              "resume recomputed only missing cells (by worker: %r)"
              % owners)

        # Bit-identity: resumed sweep == uninterrupted run_study.
        study = run_study(
            session=session,
            capacities=tuple(spec["capacities"]),
            flavors=tuple(spec["flavors"]),
            methods=tuple(spec["methods"]), workers=1,
        )
        mismatches = [
            task.label for task, key in cells
            if store.get(key) != result_to_payload(
                study.sweep.results[(task.capacity_bytes, task.flavor,
                                     task.method)])
        ]
        check(not mismatches,
              "resumed sweep bit-identical to uninterrupted run"
              + ("" if not mismatches
                 else " (mismatch: %s)" % ", ".join(mismatches)))

        record = store.get(job.result_key)
        check(record is not None and len(record["cells"]) == total,
              "sweep record lists all %d cells" % total)

    if failures:
        print("\nsmoke FAILED: %d check(s)" % len(failures), flush=True)
        return 1
    print("\nsmoke passed", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
