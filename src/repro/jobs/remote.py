"""Remote job claiming: the queue's lease protocol over HTTP.

:class:`RemoteJobQueue` mirrors the worker-side surface of
:class:`~repro.jobs.queue.JobQueue` (``claim`` / ``heartbeat`` /
``complete`` / ``fail`` plus ``submit`` / ``get`` / ``counts``) against
a queue hosted by another machine's ``repro serve --jobs`` instance, so
``run_worker`` drains a remote queue through the exact same loop it
uses locally — fleet workers need no new execution code.

Lease tokens
------------

Every successful claim returns a **lease token** encoding the claim's
attempt number.  The worker presents it on each heartbeat / complete /
fail, and the server fences the update with ``AND attempts = ?``: once
a lease expires and the job is re-claimed (bumping ``attempts``), the
stale claimant's token no longer matches — even when the *same* worker
re-claimed its own job — so a dead-then-resurrected remote worker can
never complete over a live one's run.

Failure semantics
-----------------

The network is allowed to fail; the protocol maps transport errors to
the same outcomes a crashed local worker produces:

* ``claim`` -> ``None`` (idle; the worker polls again),
* ``heartbeat`` -> ``False`` (abandon the job; the server-side lease
  expires and the job is re-queued exactly like a SIGKILLed local
  worker's),
* ``complete``/``fail`` -> ownership-lost (the store keeps the cells;
  the re-claimed run skips them).

Correlation: the claim's ``X-Request-Id`` (the server's echo of ours)
is remembered per job and re-sent on every subsequent heartbeat /
complete / fail — and exposed via :meth:`request_id_for` so the store
sync traffic of the same sweep carries it across host hops too.
"""

from __future__ import annotations

import threading
import uuid

from .. import perf
from ..errors import JobError, ServiceError
from .queue import Job

#: Fields of a job payload consumed back into a :class:`Job`.
_JOB_FIELDS = ("id", "kind", "spec", "state", "priority", "attempts",
               "max_attempts", "created_at", "updated_at", "started_at",
               "finished_at", "lease_expires_at", "worker", "error",
               "progress", "result_key")


def make_lease_token(job_id, attempt):
    """The fencing token of one claim (job identity + attempt)."""
    return "lt.%d.%s" % (int(attempt), job_id)


def parse_lease_token(token):
    """``(job_id, attempt)`` from a token; raises JobError when bogus."""
    try:
        prefix, attempt, job_id = str(token).split(".", 2)
        if prefix != "lt" or not job_id:
            raise ValueError
        return job_id, int(attempt)
    except (ValueError, AttributeError):
        raise JobError("malformed lease token %r" % (token,))


def job_from_payload(payload):
    """Rebuild a :class:`Job` from its JSON service representation."""
    return Job(**{name: payload.get(name) for name in _JOB_FIELDS})


class RemoteJobQueue:
    """Claim and drive jobs on a queue served by another host.

    One keep-alive :class:`~repro.service.client.ServiceClient` under a
    lock (heartbeat traffic must not open a socket per beat); safe to
    share across threads, though each fleet worker normally owns one.
    """

    def __init__(self, url, timeout=60.0, connect_timeout=5.0,
                 client=None):
        from ..fleet.topology import normalize_peer_url, parse_peer_url
        from ..service.client import ServiceClient

        self.url = normalize_peer_url(url)
        if client is None:
            host, port = parse_peer_url(self.url)
            client = ServiceClient(host=host, port=port, timeout=timeout,
                                   connect_timeout=connect_timeout,
                                   max_retries=1)
        self._client = client
        self._lock = threading.Lock()
        #: job id -> (lease token, correlation id) of the live claim.
        self._claims = {}

    def close(self):
        with self._lock:
            self._client.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # -- plumbing ----------------------------------------------------------

    def _request(self, method, path, body=None, request_id=None):
        with self._lock:
            return self._client.request(method, path, body, check=False,
                                        request_id=request_id)

    def _claim_of(self, job_id):
        token, request_id = self._claims.get(job_id, (None, None))
        return token, request_id

    def request_id_for(self, job_id):
        """The correlation id of the live claim on ``job_id`` (None
        when this queue does not hold one)."""
        return self._claim_of(job_id)[1]

    # -- worker side -------------------------------------------------------

    def claim(self, worker, lease_seconds=30.0):
        """Atomically claim the best queued job; ``None`` when idle or
        when the queue host is unreachable."""
        request_id = "work-%s" % uuid.uuid4().hex[:12]
        try:
            status, payload, headers = self._request(
                "POST", "/v1/jobs/claim",
                {"worker": worker,
                 "lease_seconds": float(lease_seconds)},
                request_id=request_id)
        except (ServiceError, OSError):
            perf.count("fleet.remote_claim_errors")
            return None
        if status != 200 or not payload.get("job"):
            if status != 200:
                perf.count("fleet.remote_claim_errors")
            return None
        job = job_from_payload(payload["job"])
        token = payload["job"].get("lease_token")
        # The server echoes our id (or minted its own); either way the
        # echoed one is the sweep's correlation id from here on.
        request_id = headers.get("x-request-id", request_id)
        self._claims[job.id] = (token, request_id)
        perf.count("fleet.remote_claims")
        return job

    def heartbeat(self, job_id, worker, lease_seconds=30.0,
                  progress=None):
        token, request_id = self._claim_of(job_id)
        body = {"worker": worker, "lease_token": token,
                "lease_seconds": float(lease_seconds)}
        if progress is not None:
            body["progress"] = progress
        try:
            status, payload, _ = self._request(
                "POST", "/v1/jobs/%s/heartbeat" % job_id, body,
                request_id=request_id)
        except (ServiceError, OSError):
            # Unreachable queue host == lost ownership: abandon the job
            # and let the lease expire server-side.
            perf.count("fleet.remote_heartbeat_errors")
            return False
        return status == 200 and bool(payload.get("ok"))

    def complete(self, job_id, worker, result_key=None):
        token, request_id = self._claim_of(job_id)
        try:
            status, payload, _ = self._request(
                "POST", "/v1/jobs/%s/complete" % job_id,
                {"worker": worker, "lease_token": token,
                 "result_key": result_key},
                request_id=request_id)
        except (ServiceError, OSError):
            perf.count("fleet.remote_complete_errors")
            return False
        self._claims.pop(job_id, None)
        return status == 200 and bool(payload.get("ok"))

    def fail(self, job_id, worker, error):
        token, request_id = self._claim_of(job_id)
        try:
            status, payload, _ = self._request(
                "POST", "/v1/jobs/%s/fail" % job_id,
                {"worker": worker, "lease_token": token,
                 "error": str(error)},
                request_id=request_id)
        except (ServiceError, OSError):
            perf.count("fleet.remote_fail_errors")
            return None
        self._claims.pop(job_id, None)
        if status != 200:
            return None
        return payload.get("state")

    # -- producer / introspection side ---------------------------------

    def submit(self, kind, spec, priority=0, max_attempts=3):
        status, payload, _ = self._request(
            "POST", "/v1/jobs",
            {"kind": kind, "spec": spec, "priority": priority,
             "max_attempts": max_attempts})
        if status != 202:
            raise JobError("remote submit failed: HTTP %d: %s"
                           % (status, payload.get("error", payload)))
        return payload["id"]

    def cancel(self, job_id):
        status, payload, _ = self._request("DELETE",
                                           "/v1/jobs/%s" % job_id)
        if status == 404:
            raise JobError(payload.get("error",
                                       "no such job %r" % job_id),
                           job_id=job_id)
        return status == 200

    def get(self, job_id):
        status, payload, _ = self._request("GET", "/v1/jobs/%s" % job_id)
        if status != 200:
            raise JobError(payload.get("error",
                                       "no such job %r" % job_id),
                           job_id=job_id)
        return job_from_payload(payload)

    def counts(self):
        status, payload, _ = self._request("GET", "/v1/jobs")
        if status != 200:
            raise JobError("remote job listing failed: HTTP %d" % status)
        return payload["counts"]
