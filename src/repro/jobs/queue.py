"""Durable job queue: one SQLite table, lease-based claiming.

Lifecycle::

            submit              claim                complete
    (new) --------> queued --------------> running ----------> done
                      ^                      |  |
                      |   lease expired /    |  +-- fail ----> failed
                      +---- fail w/ retry ---+      (attempts
                      |                             exhausted)
                      +--- cancel (any non-terminal state) --> cancelled

A worker *claims* the oldest queued job, which marks it ``running`` and
grants a **lease** (``lease_expires_at``).  While working it
*heartbeats* to extend the lease; if the worker dies (SIGKILL, OOM,
power loss) the lease expires and the next ``claim`` by any worker
re-queues the job first — no separate janitor process is needed.  A job
whose attempts are exhausted parks in ``failed`` with the last error.

Durability model: every transition is one SQLite transaction
(``BEGIN IMMEDIATE`` under WAL), so any number of worker processes can
share a queue file; there is no in-memory state to lose.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field

from .. import perf
from ..errors import JobError

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job can never leave.
TERMINAL_STATES = ("done", "failed", "cancelled")

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS jobs (
    id               TEXT PRIMARY KEY,
    kind             TEXT NOT NULL,
    spec             TEXT NOT NULL,
    state            TEXT NOT NULL,
    priority         INTEGER NOT NULL DEFAULT 0,
    attempts         INTEGER NOT NULL DEFAULT 0,
    max_attempts     INTEGER NOT NULL DEFAULT 3,
    created_at       REAL NOT NULL,
    updated_at       REAL NOT NULL,
    started_at       REAL,
    finished_at      REAL,
    lease_expires_at REAL,
    worker           TEXT,
    error            TEXT,
    progress         TEXT NOT NULL DEFAULT '{}',
    result_key       TEXT
);
CREATE INDEX IF NOT EXISTS idx_jobs_state ON jobs (state, priority, created_at);
"""


@dataclass
class Job:
    """One row of the job table, decoded."""

    id: str
    kind: str
    spec: dict
    state: str
    priority: int = 0
    attempts: int = 0
    max_attempts: int = 3
    created_at: float = 0.0
    updated_at: float = 0.0
    started_at: float = None
    finished_at: float = None
    lease_expires_at: float = None
    worker: str = None
    error: str = None
    progress: dict = field(default_factory=dict)
    result_key: str = None

    @classmethod
    def from_row(cls, row):
        return cls(
            id=row["id"], kind=row["kind"],
            spec=json.loads(row["spec"]), state=row["state"],
            priority=row["priority"], attempts=row["attempts"],
            max_attempts=row["max_attempts"],
            created_at=row["created_at"], updated_at=row["updated_at"],
            started_at=row["started_at"], finished_at=row["finished_at"],
            lease_expires_at=row["lease_expires_at"],
            worker=row["worker"], error=row["error"],
            progress=json.loads(row["progress"] or "{}"),
            result_key=row["result_key"],
        )

    @property
    def terminal(self):
        return self.state in TERMINAL_STATES

    def to_payload(self):
        """JSON-able status view (the service/CLI representation)."""
        return {
            "id": self.id,
            "kind": self.kind,
            "spec": self.spec,
            "state": self.state,
            "priority": self.priority,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "lease_expires_at": self.lease_expires_at,
            "worker": self.worker,
            "error": self.error,
            "progress": self.progress,
            "result_key": self.result_key,
        }


def new_job_id():
    return "job-%s" % uuid.uuid4().hex[:12]


class JobQueue:
    """SQLite-backed durable queue; safe across threads and processes."""

    def __init__(self, path):
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        # executescript() commits implicitly, so it must not run inside
        # the _txn() BEGIN/COMMIT pair.
        with self._read() as conn:
            conn.executescript(_SCHEMA_SQL)

    def _connect(self):
        conn = sqlite3.connect(self.path, timeout=30.0,
                               isolation_level=None)
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        return conn

    @contextmanager
    def _read(self):
        conn = self._connect()
        try:
            yield conn
        finally:
            conn.close()

    @contextmanager
    def _txn(self):
        """One write transaction; ``BEGIN IMMEDIATE`` takes the write
        lock up front so a claim's read-then-update is atomic."""
        conn = self._connect()
        try:
            conn.execute("BEGIN IMMEDIATE")
            yield conn
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        finally:
            conn.close()

    # -- producer side -----------------------------------------------------

    def submit(self, kind, spec, priority=0, max_attempts=3):
        """Enqueue one job; returns its id."""
        job_id = new_job_id()
        now = time.time()
        with self._txn() as conn:
            conn.execute(
                "INSERT INTO jobs (id, kind, spec, state, priority, "
                "max_attempts, created_at, updated_at) "
                "VALUES (?, ?, ?, 'queued', ?, ?, ?, ?)",
                (job_id, kind, json.dumps(spec), int(priority),
                 int(max_attempts), now, now),
            )
        perf.count("jobs.submitted")
        return job_id

    def cancel(self, job_id):
        """Cancel a queued or running job.

        A running job's worker notices at its next heartbeat (which
        fails) and abandons the sweep; completed cells stay in the
        store.  Returns False when the job is already terminal.
        """
        now = time.time()
        with self._txn() as conn:
            cursor = conn.execute(
                "UPDATE jobs SET state = 'cancelled', updated_at = ?, "
                "finished_at = ?, lease_expires_at = NULL "
                "WHERE id = ? AND state IN ('queued', 'running')",
                (now, now, job_id),
            )
            if cursor.rowcount == 0:
                exists = conn.execute(
                    "SELECT 1 FROM jobs WHERE id = ?", (job_id,)
                ).fetchone()
        if cursor.rowcount > 0:
            perf.count("jobs.cancelled")
            return True
        if not exists:
            raise JobError("no such job %r" % job_id, job_id=job_id)
        return False

    # -- worker side -------------------------------------------------------

    def _requeue_expired(self, conn, now):
        """Give crashed workers' jobs back to the queue (or fail them)."""
        rows = conn.execute(
            "SELECT id, attempts, max_attempts FROM jobs "
            "WHERE state = 'running' AND lease_expires_at < ?", (now,)
        ).fetchall()
        for row in rows:
            if row["attempts"] >= row["max_attempts"]:
                conn.execute(
                    "UPDATE jobs SET state = 'failed', updated_at = ?, "
                    "finished_at = ?, lease_expires_at = NULL, error = ? "
                    "WHERE id = ? AND state = 'running'",
                    (now, now,
                     "lease expired after %d attempt%s"
                     % (row["attempts"],
                        "" if row["attempts"] == 1 else "s"),
                     row["id"]),
                )
                perf.count("jobs.lease_failed")
            else:
                conn.execute(
                    "UPDATE jobs SET state = 'queued', updated_at = ?, "
                    "lease_expires_at = NULL, worker = NULL "
                    "WHERE id = ? AND state = 'running'",
                    (now, row["id"]),
                )
                perf.count("jobs.lease_requeued")

    def claim(self, worker, lease_seconds=30.0):
        """Atomically claim the best queued job; ``None`` when idle.

        Also re-queues any expired leases first, so a fleet of plain
        workers is self-healing without a supervisor.
        """
        now = time.time()
        with self._txn() as conn:
            self._requeue_expired(conn, now)
            row = conn.execute(
                "SELECT * FROM jobs WHERE state = 'queued' "
                "ORDER BY priority DESC, created_at, id LIMIT 1"
            ).fetchone()
            if row is None:
                return None
            conn.execute(
                "UPDATE jobs SET state = 'running', worker = ?, "
                "attempts = attempts + 1, updated_at = ?, "
                "started_at = COALESCE(started_at, ?), "
                "lease_expires_at = ? WHERE id = ?",
                (worker, now, now, now + float(lease_seconds), row["id"]),
            )
            claimed = conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (row["id"],)
            ).fetchone()
        perf.count("jobs.claimed")
        return Job.from_row(claimed)

    def heartbeat(self, job_id, worker, lease_seconds=30.0,
                  progress=None, attempt=None):
        """Extend the lease (and optionally record progress).

        Returns False when the job is no longer this worker's — it was
        cancelled, or the lease expired and another worker took over —
        in which case the worker must abandon the job.  ``attempt``
        (when given) additionally fences against the worker's *own*
        stale claim: a lease that expired and was re-claimed bumped the
        attempt counter, so updates carrying the old attempt number are
        rejected even if the same worker holds the new claim.
        """
        now = time.time()
        sets = ["lease_expires_at = ?", "updated_at = ?"]
        args = [now + float(lease_seconds), now]
        if progress is not None:
            sets.append("progress = ?")
            args.append(json.dumps(progress))
        args += [job_id, worker]
        clause = ""
        if attempt is not None:
            clause = " AND attempts = ?"
            args.append(int(attempt))
        with self._txn() as conn:
            cursor = conn.execute(
                "UPDATE jobs SET %s WHERE id = ? AND worker = ? "
                "AND state = 'running'%s" % (", ".join(sets), clause),
                args,
            )
        return cursor.rowcount == 1

    def complete(self, job_id, worker, result_key=None, attempt=None):
        """Mark a running job done; False when ownership was lost.

        ``attempt`` fences stale claims exactly as in
        :meth:`heartbeat` — the remote-claim protocol always passes it.
        """
        now = time.time()
        args = [now, now, result_key, job_id, worker]
        clause = ""
        if attempt is not None:
            clause = " AND attempts = ?"
            args.append(int(attempt))
        with self._txn() as conn:
            cursor = conn.execute(
                "UPDATE jobs SET state = 'done', updated_at = ?, "
                "finished_at = ?, lease_expires_at = NULL, error = NULL, "
                "result_key = ? "
                "WHERE id = ? AND worker = ? AND state = 'running'"
                + clause,
                args,
            )
        if cursor.rowcount == 1:
            perf.count("jobs.completed")
            return True
        return False

    def fail(self, job_id, worker, error, attempt=None):
        """Record a failure: re-queue while attempts remain, else park
        the job in ``failed``.  Returns the resulting state (or None
        when ownership was lost)."""
        now = time.time()
        args = [job_id, worker]
        clause = ""
        if attempt is not None:
            clause = " AND attempts = ?"
            args.append(int(attempt))
        with self._txn() as conn:
            row = conn.execute(
                "SELECT attempts, max_attempts FROM jobs "
                "WHERE id = ? AND worker = ? AND state = 'running'"
                + clause,
                args,
            ).fetchone()
            if row is None:
                return None
            retry = row["attempts"] < row["max_attempts"]
            state = "queued" if retry else "failed"
            conn.execute(
                "UPDATE jobs SET state = ?, updated_at = ?, error = ?, "
                "lease_expires_at = NULL, worker = NULL, "
                "finished_at = CASE WHEN ? = 'failed' THEN ? ELSE NULL "
                "END WHERE id = ?",
                (state, now, str(error)[:4000], state, now, job_id),
            )
        perf.count("jobs.failed" if state == "failed"
                   else "jobs.retried")
        return state

    # -- introspection -----------------------------------------------------

    def get(self, job_id):
        with self._read() as conn:
            row = conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        if row is None:
            raise JobError("no such job %r" % job_id, job_id=job_id)
        return Job.from_row(row)

    def list_jobs(self, state=None, limit=None):
        query = "SELECT * FROM jobs"
        args = []
        if state is not None:
            if state not in JOB_STATES:
                raise JobError("unknown job state %r" % state)
            query += " WHERE state = ?"
            args.append(state)
        query += " ORDER BY created_at DESC, id"
        if limit is not None:
            query += " LIMIT ?"
            args.append(int(limit))
        with self._read() as conn:
            rows = conn.execute(query, args).fetchall()
        return [Job.from_row(row) for row in rows]

    def counts(self):
        """``state -> number of jobs`` (zero-filled for every state)."""
        with self._read() as conn:
            rows = conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        out = {state: 0 for state in JOB_STATES}
        for row in rows:
            out[row["state"]] = row["n"]
        return out
