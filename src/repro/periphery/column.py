"""Transistor-level read-column testbench (validation substrate).

The analytical array model predicts the bitline delay as
``C_BL * DeltaV_S / I_read`` with a DC-extracted read current; the
paper claims its periphery models are "verified by SPICE simulations".
This module provides the same verification for our stack: a full
transient testbench of one column — the accessed 6T cell at transistor
level, the inactive rows lumped into the Table-1 bitline capacitance,
the N_pre-fin precharger, and the (possibly assisted) cell rails — so
the analytic BL delay can be checked against simulation.

Used by ``tests/test_periphery_column.py`` and
``benchmarks/bench_column_validation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..array.capacitance import DeviceCaps, c_bl
from ..array.geometry import ArrayGeometry
from ..array.organization import ArrayOrganization
from ..cell.bias import CellBias
from ..cell.read_current import read_current
from ..devices.model import FinFET
from ..spice.netlist import Circuit
from ..spice.stimuli import step
from ..spice.transient import transient

#: Wordline assertion time in the testbench.
_T_WL = 2e-12
_T_RISE = 0.1e-12


def column_bitline_capacitance(library, n_rows, n_pre, n_wr=1):
    """Lumped Table-1 BL capacitance for the inactive part of the
    column [F]: the full C_BL minus the accessed cell's own access
    drain (which is present at transistor level in the testbench)."""
    geometry = ArrayGeometry()
    caps = DeviceCaps.from_library(library)
    org = ArrayOrganization(n_r=n_rows, n_c=64)
    return c_bl(geometry, caps, org, n_pre, n_wr) - caps.c_dn


def build_read_column_circuit(library, cell, n_rows, n_pre=4,
                              v_ddc=None, v_ssc=0.0):
    """One column reading a '0': precharger on until the WL fires."""
    vdd = library.vdd
    v_ddc = vdd if v_ddc is None else v_ddc
    bias = CellBias.read(vdd=vdd, v_ddc=v_ddc, v_ssc=v_ssc)

    circuit = Circuit("read_column")
    circuit.add_vsource("vps", "vdd", "0", vdd)
    circuit.add_vsource("vddc", "cvdd", "0", v_ddc)
    circuit.add_vsource("vssc", "cvss", "0", v_ssc)
    circuit.add_vsource("vwl", "wl", "0", step(_T_WL, 0.0, vdd, _T_RISE))
    # The precharger releases as the WL fires (gate rises = PFET off).
    circuit.add_vsource("vpreb", "preb", "0",
                        step(_T_WL, 0.0, vdd, _T_RISE))
    # BLB stays precharged; model it as a source (we only sense BL).
    circuit.add_vsource("vblb", "blb", "0", vdd)

    # The accessed cell, at transistor level, storing Q = 0.
    circuit.add_fet("pu_l", cell.device("pu_l"), "qb", "q", "cvdd")
    circuit.add_fet("pd_l", cell.device("pd_l"), "qb", "q", "cvss")
    circuit.add_fet("ax_l", cell.device("ax_l"), "wl", "bl", "q")
    circuit.add_fet("pu_r", cell.device("pu_r"), "q", "qb", "cvdd")
    circuit.add_fet("pd_r", cell.device("pd_r"), "q", "qb", "cvss")
    circuit.add_fet("ax_r", cell.device("ax_r"), "wl", "blb", "qb")
    c_node = cell.internal_node_capacitance()
    circuit.add_capacitor("c_q", "q", "0", c_node)
    circuit.add_capacitor("c_qb", "qb", "0", c_node)

    # Precharger bank and the lumped rest-of-column load.
    circuit.add_fet("mpre", FinFET(library.pfet_lvt, n_pre),
                    "preb", "bl", "vdd")
    circuit.add_capacitor(
        "c_bl", "bl", "0",
        column_bitline_capacitance(library, n_rows, n_pre),
    )
    return circuit, bias


@dataclass
class ColumnReadMeasurement:
    """Analytic vs simulated bitline development."""

    n_rows: int
    v_ddc: float
    v_ssc: float
    analytic_delay: float
    simulated_delay: float

    @property
    def agreement(self):
        """simulated / analytic (1.0 = exact)."""
        return self.simulated_delay / self.analytic_delay


def measure_read_column(library, cell, n_rows=64, n_pre=4, v_ddc=None,
                        v_ssc=0.0, delta_v_sense=0.120, dt=0.5e-12):
    """Run the testbench and compare against the analytic BL delay."""
    vdd = library.vdd
    v_ddc = vdd if v_ddc is None else v_ddc
    circuit, bias = build_read_column_circuit(
        library, cell, n_rows, n_pre, v_ddc, v_ssc
    )
    target = vdd - delta_v_sense
    i_read = read_current(cell, bias=bias)
    c_total = (column_bitline_capacitance(library, n_rows, n_pre)
               + DeviceCaps.from_library(library).c_dn)
    analytic = c_total * delta_v_sense / i_read

    result = transient(
        circuit, _T_WL + 6.0 * analytic + 20e-12, dt,
        initial_guess={"q": v_ssc, "qb": v_ddc, "bl": vdd},
        stop_condition=lambda _t, v: v["bl"] < target - 0.02,
        stop_margin=3,
    )
    t_wl = result.node("wl").cross(0.5 * vdd, "rise")
    t_sense = result.node("bl").cross(target, "fall")
    return ColumnReadMeasurement(
        n_rows=n_rows,
        v_ddc=v_ddc,
        v_ssc=v_ssc,
        analytic_delay=analytic,
        simulated_delay=t_sense - t_wl,
    )
