"""Unit logic gates (inverter, NAND-m) and their characterization.

The decoder and driver models are assembled from characterized unit
gates, mirroring the paper's "derived analytically and verified by SPICE
simulations" methodology: each gate's propagation delay is fitted to the
linear model ``d(C_load) = d0 + r * C_load`` from two transient
simulations, and its switching energy to ``e(C_load) = e0 + C_load *
Vdd**2`` (internal energy plus load energy).

All periphery gates use LVT devices, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices.model import FinFET
from ..spice.netlist import Circuit
from ..spice.stimuli import pulse
from ..spice.transient import transient

#: Stimulus timing for the gate testbenches: a full input pulse so the
#: measured supply energy covers one complete output fall+rise cycle
#: (one load charge), making e(C) = e0 + C*V^2 directly fittable.  The
#: pulse width adapts to the expected RC of the gate (series NFET stacks
#: at near-threshold supplies are many times slower than an inverter).
_T_START = 0.5e-12
_T_RISE = 0.1e-12
_DT = 5e-14

#: Rough single-fin LVT inverter drive resistance [ohm] used only to
#: size testbench windows (the characterized value replaces it).
_R_GUESS = 11e3


def inverter_circuit(library, nfin, v_supply, load_cap, input_value):
    """An LVT inverter of ``nfin`` fins driving ``load_cap``."""
    circuit = Circuit("inverter")
    circuit.add_vsource("vps", "vdd", "0", v_supply)
    circuit.add_vsource("vin", "in", "0", input_value)
    circuit.add_fet("mp", FinFET(library.pfet_lvt, nfin), "in", "out", "vdd")
    circuit.add_fet("mn", FinFET(library.nfet_lvt, nfin), "in", "out", "0")
    # Output parasitics: the two drain junctions.
    circuit.add_capacitor(
        "cpar", "out", "0",
        (library.pfet_lvt.c_drain + library.nfet_lvt.c_drain) * nfin,
    )
    if load_cap > 0:
        circuit.add_capacitor("cl", "out", "0", load_cap)
    return circuit


def nand_circuit(library, fan_in, nfin, v_supply, load_cap, input_value):
    """An LVT ``fan_in``-input NAND with the critical (bottom) input
    switching and all other inputs held high."""
    circuit = Circuit("nand%d" % fan_in)
    circuit.add_vsource("vps", "vdd", "0", v_supply)
    circuit.add_vsource("vin", "in", "0", input_value)
    # Parallel PFETs: the switching input plus (fan_in - 1) held-off ones.
    circuit.add_fet("mp0", FinFET(library.pfet_lvt, nfin), "in", "out", "vdd")
    for k in range(1, fan_in):
        circuit.add_fet(
            "mp%d" % k, FinFET(library.pfet_lvt, nfin), "vdd", "out", "vdd"
        )
    # Series NFET stack; the switching input at the bottom (worst case).
    node = "out"
    for k in range(fan_in - 1):
        mid = "s%d" % k
        circuit.add_fet(
            "mn%d" % k, FinFET(library.nfet_lvt, nfin), "vdd", node, mid
        )
        node = mid
    circuit.add_fet(
        "mn%d" % (fan_in - 1), FinFET(library.nfet_lvt, nfin),
        "in", node, "0",
    )
    # Output parasitics: all PFET drains plus the top NFET drain.
    circuit.add_capacitor(
        "cpar", "out", "0",
        (fan_in * library.pfet_lvt.c_drain + library.nfet_lvt.c_drain) * nfin,
    )
    if load_cap > 0:
        circuit.add_capacitor("cl", "out", "0", load_cap)
    return circuit


@dataclass(frozen=True)
class GateCharacterization:
    """Linear delay/energy model of one gate: d = d0 + r*C, e = e0 + C*V^2."""

    name: str
    #: Intrinsic (zero-load) delay [s].
    d0: float
    #: Effective drive resistance [s/F = ohm].
    drive_resistance: float
    #: Internal switching energy [J].
    e0: float
    #: Supply voltage the model was characterized at [V].
    v_supply: float
    #: Input gate capacitance presented to the previous stage [F].
    c_input: float

    def delay(self, load_cap):
        """Propagation delay [s] into ``load_cap``."""
        return self.d0 + self.drive_resistance * load_cap

    def energy(self, load_cap):
        """Switching energy [J] of one output transition into the load."""
        return self.e0 + load_cap * self.v_supply ** 2


def _measure(circuit_builder, v_supply, load_cap, slowness=1):
    """One transient: returns (propagation delay, supply energy).

    The input pulses high and back low; the delay is measured on the
    first (output-falling) edge and the supply energy over the whole
    cycle, which includes exactly one full recharge of the load.
    ``slowness`` (the NFET stack height) scales the testbench window.
    """
    t_fallback = _T_START + 8.0 * slowness * _R_GUESS * load_cap + 5e-12
    t_stop = 2.5 * t_fallback
    stimulus = pulse(0.0, v_supply, _T_START,
                     t_fallback - _T_START, _T_RISE)
    circuit = circuit_builder(load_cap, stimulus)
    half = 0.5 * v_supply
    result = transient(
        circuit, t_stop, _DT,
        stop_condition=lambda t, v: (
            t > t_fallback and v["out"] > 0.98 * v_supply
        ),
        stop_margin=3,
    )
    t_in = result.node("in").cross(half, "rise")
    t_out = result.node("out").cross(half, "fall")
    energy = result.delivered_energy("vps", t_start=_T_START)
    return t_out - t_in, energy


def characterize_inverter(library, nfin=1, v_supply=None, loads=None):
    """Fit the linear gate model for an ``nfin``-fin inverter."""
    v_supply = library.vdd if v_supply is None else v_supply
    return _characterize(
        "inv_x%d" % nfin,
        lambda load, stim: inverter_circuit(library, nfin, v_supply, load, stim),
        library, nfin, v_supply, loads, slowness=1,
    )


def characterize_nand(library, fan_in, nfin=1, v_supply=None, loads=None):
    """Fit the linear gate model for a ``fan_in``-input NAND."""
    v_supply = library.vdd if v_supply is None else v_supply
    model = _characterize(
        "nand%d_x%d" % (fan_in, nfin),
        lambda load, stim: nand_circuit(
            library, fan_in, nfin, v_supply, load, stim
        ),
        library, nfin, v_supply, loads, slowness=fan_in,
    )
    return model


def _characterize(name, builder, library, nfin, v_supply, loads, slowness):
    c_in = (library.nfet_lvt.c_gate + library.pfet_lvt.c_gate) * nfin
    if loads is None:
        loads = (1.5 * c_in, 5.0 * c_in)
    (load_a, load_b) = loads
    d_a, e_a = _measure(builder, v_supply, load_a, slowness)
    d_b, e_b = _measure(builder, v_supply, load_b, slowness)
    resistance = (d_b - d_a) / (load_b - load_a)
    d0 = d_a - resistance * load_a
    # Internal energy: subtract the load's own CV^2 from the measured
    # supply energy at the smaller load.
    e0 = max(e_a - load_a * v_supply ** 2, 0.0)
    return GateCharacterization(
        name=name,
        d0=max(d0, 0.0),
        drive_resistance=resistance,
        e0=e0,
        v_supply=v_supply,
        c_input=c_in,
    )
