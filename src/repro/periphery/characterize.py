"""Characterization driver: runs the built-in simulator over every
cell/periphery quantity the array model needs and packages the results
as look-up tables (the paper's Section-5 flow).

All results are JSON-cacheable through
:class:`repro.lut.CharacterizationCache`, because full-array studies
reuse the same characterization across every capacity and method.

One deliberate calibration step: the paper states the no-assist
cell-level write delay is 1.5 ps in its technology, while the relative
universe of our compact model produces a different absolute value.  The
write-delay LUT is therefore scaled by a single global factor anchoring
the 6T-HVT no-assist point to the paper's 1.5 ps; the V_WL dependence
(the shape that matters to the optimizer) comes entirely from our
simulations.  See EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from .. import perf
from ..array.capacitance import DeviceCaps
from ..array.geometry import ArrayGeometry
from ..cell.bias import CellBias
from ..cell.leakage import cell_leakage_power
from ..cell.read_current import read_current_grid
from ..cell.sram6t import SRAM6TCell
from ..cell.write import flip_wordline_voltage, flip_wordline_voltage_batch
from ..cell.write_delay import cell_write_event, cell_write_event_batch
from ..devices.model import FinFET
from ..lut.table import LUT1D, LUT2D
from .decoder import DecoderModel, build_decoder_model
from .driver import SuperbufferModel
from .gates import GateCharacterization, characterize_inverter, characterize_nand
from .precharge import i_on_pfet
from .senseamp import SenseAmpCharacterization, characterize_senseamp
from .writebuffer import characterize_i_on_tg

#: Bump to invalidate stale caches when the characterization flow changes.
VERSION = "v6"

#: The paper's stated no-assist cell write delay (Section 3.2).
PAPER_WRITE_DELAY_NO_ASSIST = 1.5e-12

#: Default sensing voltage (paper Section 5).
DELTA_V_SENSE = 0.120


@dataclass(frozen=True)
class CharacterizationGrids:
    """Grid definitions for every LUT."""

    v_ddc: tuple = tuple(np.round(np.arange(0.45, 0.7201, 0.025), 4))
    v_ssc: tuple = tuple(np.round(np.arange(-0.25, 0.0001, 0.025), 4))
    v_wl_points: int = 11
    v_wl_max: float = 0.72
    #: Negative-BL write-assist levels (ascending, ending at 0).
    v_bl: tuple = (-0.20, -0.15, -0.10, -0.05, 0.0)
    nand_fan_ins: tuple = (2, 3, 4, 5)

    def signature(self):
        return "ddc%d_ssc%d_wl%d_%g_bl%d" % (
            len(self.v_ddc), len(self.v_ssc), self.v_wl_points,
            self.v_wl_max, len(self.v_bl),
        )


@dataclass
class ArrayCharacterization:
    """Everything the analytical array model consumes."""

    flavor: str
    vdd: float
    delta_v_sense: float
    geometry: ArrayGeometry
    caps: DeviceCaps
    #: Single-fin LVT PFET ON current (Table 2 ``I_ON,PFET``) [A].
    i_on_pfet: float
    #: Effective single-fin TG ON current (Table 2 ``I_ON,TG``) [A].
    i_on_tg: float
    #: WL-driver last-stage drive vs V_WL (Table 2 ``I_WL``) [A].
    i_wl: LUT1D
    #: CVDD rail-mux drive vs V_DDC (Table 2 ``I_CVDD``) [A].
    i_cvdd: LUT1D
    #: CVSS rail-mux drive vs V_SSC (Table 2 ``I_CVSS``) [A].
    i_cvss: LUT1D
    #: Cell read current vs (V_DDC, V_SSC) (Table 2 ``I_read``) [A].
    i_read: LUT2D
    #: Cell standby leakage power [W].
    p_leak_sram: float
    #: Structural decoder model (rows and columns share unit gates).
    decoder: DecoderModel
    #: WL superbuffer model.
    driver: SuperbufferModel
    #: Sense amplifier constants.
    sense: SenseAmpCharacterization
    #: Cell write delay vs V_WL (anchored; see module docstring) [s].
    d_write_sram: LUT1D
    #: Cell write energy vs V_WL [J].
    e_write_sram: LUT1D
    #: The global anchoring factor applied to d_write_sram.
    write_delay_scale: float
    #: Minimum WL voltage that flips the cell (no BL assist) [V].
    v_wl_flip: float
    #: Flip WL voltage vs the negative-BL level (for the negative-BL
    #: write-assist policy): the WM at (v_wl, v_bl) is
    #: ``v_wl - v_wl_flip_vs_vbl(v_bl)``.
    v_wl_flip_vs_vbl: LUT1D
    #: Cell write delay vs negative-BL level at V_WL = Vdd (anchored).
    d_write_negbl: LUT1D
    #: Cell write energy vs negative-BL level at V_WL = Vdd.
    e_write_negbl: LUT1D


def characterize_write_delay_scale(library, cache=None):
    """Global write-delay anchoring factor (HVT no-assist -> 1.5 ps)."""
    def compute():
        cell = SRAM6TCell.from_library(library, "hvt")
        event = cell_write_event(cell, v_wl=library.vdd, vdd=library.vdd)
        if not event.completed:
            raise RuntimeError(
                "HVT no-assist write did not complete; cannot anchor"
            )
        return PAPER_WRITE_DELAY_NO_ASSIST / event.delay

    if cache is None:
        return compute()
    key = "%s:write_delay_scale" % VERSION
    return cache.get_or_compute(key, compute)


def characterize_gates(library, grids=None, cache=None):
    """Unit inverter + NAND characterizations (shared by both flavors)."""
    grids = grids or CharacterizationGrids()

    def compute():
        inv = characterize_inverter(library)
        nands = {
            fan_in: characterize_nand(library, fan_in)
            for fan_in in grids.nand_fan_ins
        }
        return {
            "inv": _gate_to_dict(inv),
            "nands": {str(k): _gate_to_dict(v) for k, v in nands.items()},
        }

    if cache is None:
        data = compute()
    else:
        key = "%s:gates" % VERSION
        data = cache.get_or_compute(key, compute)
    inv = _gate_from_dict(data["inv"])
    nands = {int(k): _gate_from_dict(v) for k, v in data["nands"].items()}
    return inv, nands


def characterize(library, flavor, cache=None, grids=None, engine="batched"):
    """Full characterization for one cell flavor.

    Returns an :class:`ArrayCharacterization`.  With a cache, repeated
    calls are instant.

    ``engine`` selects how the cell-level LUT grids are evaluated:
    ``"batched"`` (default) flattens each sweep into one lane-batched
    evaluation; ``"loop"`` retains the per-point reference.  Both are
    bit-identical (same cache key, same ``VERSION``).
    """
    grids = grids or CharacterizationGrids()
    key = "%s:%s:%s:array" % (VERSION, flavor, grids.signature())
    if cache is not None and key in cache:
        return _from_dict(cache.get(key), library, grids)
    with cache.deferred() if cache is not None else nullcontext():
        return _characterize_cold(library, flavor, cache, grids, key, engine)


def _characterize_cold(library, flavor, cache, grids, key, engine="batched"):
    if engine not in ("batched", "loop"):
        raise ValueError("unknown engine %r" % (engine,))
    vdd = library.vdd
    cell = SRAM6TCell.from_library(library, flavor)
    geometry = ArrayGeometry()
    caps = DeviceCaps.from_library(library)

    inv, nands = characterize_gates(library, grids, cache)
    driver = SuperbufferModel(unit_inverter=inv)
    decoder = build_decoder_model(inv, nands, driver.input_capacitance)
    sense = characterize_senseamp(library, DELTA_V_SENSE)
    i_tg = characterize_i_on_tg(library)
    scale = characterize_write_delay_scale(library, cache)

    # Table-2 drive currents as LUTs over their assist voltage.
    pfet = FinFET(library.pfet_lvt, 1)
    nfet = FinFET(library.nfet_lvt, 1)
    v_ddc_axis = np.asarray(grids.v_ddc)
    i_cvdd = LUT1D(
        v_ddc_axis,
        [pfet.ion(float(v)) for v in v_ddc_axis],
        name="i_cvdd",
    )
    v_ssc_axis = np.asarray(grids.v_ssc)
    # CVSS mux NFET: gate at Vdd, pulling the rail from 0 down to V_SSC;
    # initial drive at Vgs = Vdd - V_SSC, Vds = |V_SSC|.
    i_cvss = LUT1D(
        v_ssc_axis,
        [nfet.current(vdd - float(v), abs(float(v)), 0.0)
         for v in v_ssc_axis],
        name="i_cvss",
    )
    i_wl = LUT1D(
        v_ddc_axis,
        [pfet.ion(float(v)) for v in v_ddc_axis],
        name="i_wl",
    )

    # Cell-level LUTs.  The batched engine evaluates each sweep as one
    # flattened lane batch; both engines are bit-identical.
    with perf.timed("characterize.i_read.%s" % engine):
        i_read_grid = read_current_grid(
            cell, v_ddc_axis, v_ssc_axis, vdd=vdd, engine=engine
        )
    i_read = LUT2D(v_ddc_axis, v_ssc_axis, i_read_grid, name="i_read")
    p_leak = cell_leakage_power(cell, vdd)

    v_flip = flip_wordline_voltage(cell, vdd=vdd, resolution=0.002)
    v_wl_lo = min(v_flip + 0.03, vdd)
    v_wl_axis = np.linspace(v_wl_lo, grids.v_wl_max, grids.v_wl_points)
    with perf.timed("characterize.d_write.%s" % engine):
        if engine == "batched":
            events = cell_write_event_batch(cell, v_wl_axis, vdd=vdd)
        else:
            events = [
                cell_write_event(cell, v_wl=float(v_wl), vdd=vdd)
                for v_wl in v_wl_axis
            ]
    d_write_raw, e_write = [], []
    for v_wl, event in zip(v_wl_axis, events):
        if not event.completed:
            raise RuntimeError(
                "write did not complete at V_WL=%.3f (flip at %.3f)"
                % (v_wl, v_flip)
            )
        d_write_raw.append(event.delay)
        e_write.append(event.energy)
    d_write = LUT1D(v_wl_axis, [d * scale for d in d_write_raw],
                    name="d_write_sram")
    e_write_lut = LUT1D(v_wl_axis, e_write, name="e_write_sram")

    # Negative-BL write assist: flip voltage and write delay/energy at
    # nominal WL across the assist levels.
    v_bl_axis = np.asarray(grids.v_bl)
    with perf.timed("characterize.negbl.%s" % engine):
        if engine == "batched":
            lanes = len(v_bl_axis)
            flips = list(flip_wordline_voltage_batch(
                cell, lanes, vdd=vdd, v_bl_low=v_bl_axis.reshape(-1, 1),
                resolution=0.002,
            ))
            negbl_events = cell_write_event_batch(
                cell, np.full(lanes, float(vdd)), vdd=vdd,
                v_bl_low=v_bl_axis,
            )
        else:
            flips = [
                flip_wordline_voltage(cell, vdd=vdd, v_bl_low=float(v_bl),
                                      resolution=0.002)
                for v_bl in v_bl_axis
            ]
            negbl_events = [
                cell_write_event(cell, v_wl=vdd, vdd=vdd,
                                 v_bl_low=float(v_bl))
                for v_bl in v_bl_axis
            ]
    d_negbl, e_negbl = [], []
    for v_bl, event in zip(v_bl_axis, negbl_events):
        if not event.completed:
            raise RuntimeError(
                "negative-BL write did not complete at V_BL=%.3f" % v_bl
            )
        d_negbl.append(event.delay * scale)
        e_negbl.append(event.energy)
    v_flip_vs_vbl = LUT1D(v_bl_axis, flips, name="v_wl_flip_vs_vbl")
    d_write_negbl = LUT1D(v_bl_axis, d_negbl, name="d_write_negbl")
    e_write_negbl = LUT1D(v_bl_axis, e_negbl, name="e_write_negbl")

    result = ArrayCharacterization(
        flavor=flavor,
        vdd=vdd,
        delta_v_sense=DELTA_V_SENSE,
        geometry=geometry,
        caps=caps,
        i_on_pfet=i_on_pfet(library),
        i_on_tg=i_tg,
        i_wl=i_wl,
        i_cvdd=i_cvdd,
        i_cvss=i_cvss,
        i_read=i_read,
        p_leak_sram=p_leak,
        decoder=decoder,
        driver=driver,
        sense=sense,
        d_write_sram=d_write,
        e_write_sram=e_write_lut,
        write_delay_scale=scale,
        v_wl_flip=v_flip,
        v_wl_flip_vs_vbl=v_flip_vs_vbl,
        d_write_negbl=d_write_negbl,
        e_write_negbl=e_write_negbl,
    )
    if cache is not None:
        cache.put(key, _to_dict(result))
    return result


# ---------------------------------------------------------------------------
# JSON (de)serialization
# ---------------------------------------------------------------------------

def _gate_to_dict(gate):
    return {
        "name": gate.name,
        "d0": gate.d0,
        "drive_resistance": gate.drive_resistance,
        "e0": gate.e0,
        "v_supply": gate.v_supply,
        "c_input": gate.c_input,
    }


def _gate_from_dict(data):
    return GateCharacterization(**data)


def _lut1d_to_dict(lut):
    return {"xs": list(lut.xs), "ys": list(lut.ys), "name": lut.name}


def _lut1d_from_dict(data):
    return LUT1D(data["xs"], data["ys"], name=data["name"])


def _to_dict(char):
    return {
        "flavor": char.flavor,
        "vdd": char.vdd,
        "delta_v_sense": char.delta_v_sense,
        "i_on_pfet": char.i_on_pfet,
        "i_on_tg": char.i_on_tg,
        "i_wl": _lut1d_to_dict(char.i_wl),
        "i_cvdd": _lut1d_to_dict(char.i_cvdd),
        "i_cvss": _lut1d_to_dict(char.i_cvss),
        "i_read": {
            "xs": list(char.i_read.xs),
            "ys": list(char.i_read.ys),
            "zs": [list(row) for row in char.i_read.zs],
        },
        "p_leak_sram": char.p_leak_sram,
        "inv": _gate_to_dict(char.decoder.inverter),
        "nands": {
            str(k): _gate_to_dict(v) for k, v in char.decoder.nands.items()
        },
        "sense": {
            "delay": char.sense.delay,
            "energy": char.sense.energy,
            "delta_v_sense": char.sense.delta_v_sense,
            "v_supply": char.sense.v_supply,
        },
        "d_write_sram": _lut1d_to_dict(char.d_write_sram),
        "e_write_sram": _lut1d_to_dict(char.e_write_sram),
        "write_delay_scale": char.write_delay_scale,
        "v_wl_flip": char.v_wl_flip,
        "v_wl_flip_vs_vbl": _lut1d_to_dict(char.v_wl_flip_vs_vbl),
        "d_write_negbl": _lut1d_to_dict(char.d_write_negbl),
        "e_write_negbl": _lut1d_to_dict(char.e_write_negbl),
    }


def _from_dict(data, library, grids):
    inv = _gate_from_dict(data["inv"])
    nands = {int(k): _gate_from_dict(v) for k, v in data["nands"].items()}
    driver = SuperbufferModel(unit_inverter=inv)
    decoder = build_decoder_model(inv, nands, driver.input_capacitance)
    return ArrayCharacterization(
        flavor=data["flavor"],
        vdd=data["vdd"],
        delta_v_sense=data["delta_v_sense"],
        geometry=ArrayGeometry(),
        caps=DeviceCaps.from_library(library),
        i_on_pfet=data["i_on_pfet"],
        i_on_tg=data["i_on_tg"],
        i_wl=_lut1d_from_dict(data["i_wl"]),
        i_cvdd=_lut1d_from_dict(data["i_cvdd"]),
        i_cvss=_lut1d_from_dict(data["i_cvss"]),
        i_read=LUT2D(
            data["i_read"]["xs"], data["i_read"]["ys"], data["i_read"]["zs"],
            name="i_read",
        ),
        p_leak_sram=data["p_leak_sram"],
        decoder=decoder,
        driver=driver,
        sense=SenseAmpCharacterization(**data["sense"]),
        d_write_sram=_lut1d_from_dict(data["d_write_sram"]),
        e_write_sram=_lut1d_from_dict(data["e_write_sram"]),
        write_delay_scale=data["write_delay_scale"],
        v_wl_flip=data["v_wl_flip"],
        v_wl_flip_vs_vbl=_lut1d_from_dict(data["v_wl_flip_vs_vbl"]),
        d_write_negbl=_lut1d_from_dict(data["d_write_negbl"]),
        e_write_negbl=_lut1d_from_dict(data["e_write_negbl"]),
    )
