"""Bitline precharger model.

The precharger is a PFET bank of ``N_pre`` fins per bitline (plus an
equalizer, whose drain loading is the ``+1`` in the Table-1 C_BL
equation).  Its drive enters Table 2 as ``0.50 * N_pre * I_ON,PFET``:
the 0.50 coefficient is the paper's fitted average-current factor for a
PFET charging a rail through its full Vds excursion.
"""

from __future__ import annotations

from ..devices.model import FinFET

#: The paper's fitted average-current coefficient for prechargers.
PRECHARGE_CURRENT_COEFF = 0.50


def i_on_pfet(library, vdd=None):
    """Single-fin LVT PFET ON current [A] (the Table-2 ``I_ON,PFET``)."""
    vdd = library.vdd if vdd is None else vdd
    return FinFET(library.pfet_lvt, 1).ion(vdd)


def precharge_current(library, n_pre, vdd=None):
    """Effective precharge drive [A]: ``0.50 * N_pre * I_ON,PFET``.

    ``n_pre`` may be a numpy array (vectorized optimization sweeps).
    """
    return PRECHARGE_CURRENT_COEFF * n_pre * i_on_pfet(library, vdd)
