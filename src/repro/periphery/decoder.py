"""Row / column decoder delay and energy model.

The paper treats ``D_row_dec`` and ``E_row_dec`` as SPICE-characterized
look-up tables indexed by the address width ``log(n_r)`` (and
``log(n_c/W)`` for the column decoder).  We reproduce the flow with a
structural model assembled from characterized unit gates
(:mod:`repro.periphery.gates`):

* each address bit is buffered (true/complement inverters);
* bits are predecoded in 2-bit groups (NAND2 + INV), each predecode line
  driving ``n_outputs / 4`` final-gate inputs *through a tapered buffer
  chain* sized with a stage effort of 4 (large predecode lines cannot be
  driven by a unit gate; real decoders insert buffers, and so does the
  paper's analytically-derived periphery);
* one fan-in-``ceil(k/2)`` NAND per output ANDs the predecode lines and
  drives the superbuffer's first stage.

Delays are the critical path through those stages; energies count the
gates that actually toggle on an address change (on average half the
address bits, two predecode lines per toggling group, and the old/new
row gates).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import DesignSpaceError
from .driver import scaled_gate


@dataclass(frozen=True)
class DecoderModel:
    """Structural decoder model over characterized unit gates."""

    #: 1-fin inverter characterization.
    inverter: object
    #: fan-in -> NAND characterization (must cover 2..max needed).
    nands: dict
    #: Input capacitance of the driver the decoder output feeds [F].
    driver_input_cap: float
    #: Memo of scalar delay/energy per address width.  The model is
    #: immutable and both are pure functions of the width, so search
    #: engines hitting the same handful of widths millions of times pay
    #: the buffer-chain derivation once per width per instance.
    _memo: dict = field(default_factory=dict, repr=False, compare=False)

    def _final_gate(self, address_bits):
        """The per-output AND gate model (fan-in ceil(k/2))."""
        fan_in = max(int(math.ceil(address_bits / 2.0)), 1)
        if fan_in == 1:
            return self.inverter
        if fan_in not in self.nands:
            raise DesignSpaceError(
                "decoder model has no NAND%d characterization "
                "(address_bits=%d)" % (fan_in, address_bits)
            )
        return self.nands[fan_in]

    def _buffer_chain(self, load_cap):
        """(delay, energy, n_stages) of a stage-effort-4 buffer chain
        from a unit inverter input up to ``load_cap``."""
        c_in = self.inverter.c_input
        if load_cap <= c_in:
            return 0.0, 0.0, 0
        n_stages = max(int(math.ceil(math.log(load_cap / c_in, 4.0))), 1)
        taper = (load_cap / c_in) ** (1.0 / n_stages)
        delay = 0.0
        energy = 0.0
        size = 1.0
        for _ in range(n_stages):
            stage = scaled_gate(self.inverter, size)
            stage_load = min(size * taper * c_in, load_cap)
            delay += stage.delay(stage_load)
            energy += stage.energy(stage_load)
            size *= taper
        return delay, energy, n_stages

    def _map_bits_memo(self, tag, func, address_bits):
        """Array-path memo keyed by the widths' raw bytes: broadcast
        searches hand the same small address-bit arrays to every
        delay/energy call, so the mapped result is cached alongside the
        scalar memo (callers never mutate these operand arrays)."""
        bits = np.asarray(address_bits)
        key = (tag, bits.shape, bits.tobytes())
        hit = self._memo.get(key)
        if hit is None:
            hit = self._memo[key] = self._map_bits(func, bits)
        return hit

    def _map_bits(self, func, address_bits):
        """Evaluate a scalar-integer method over an integer array by
        looking up each distinct width through the scalar path — the
        address-bit axis has only a handful of distinct values, and
        reusing the scalar arithmetic keeps array results bit-identical
        to per-organization calls."""
        bits = np.asarray(address_bits)
        flat = bits.ravel()
        table = {int(b): func(int(b)) for b in np.unique(flat)}
        out = np.fromiter((table[int(b)] for b in flat), dtype=float,
                          count=flat.size)
        return out.reshape(bits.shape)

    def delay(self, address_bits):
        """Propagation delay [s] for a ``2**address_bits``-output decoder.

        Zero for a degenerate decoder (one output, no addressing).
        ``address_bits`` may be an integer array; the result then has
        the same shape (each distinct width goes through the scalar
        path, so array and scalar calls are bit-identical).
        """
        if np.ndim(address_bits) > 0:
            return self._map_bits_memo("delay", self.delay, address_bits)
        key = ("delay", float(address_bits))
        hit = self._memo.get(key)
        if hit is None:
            hit = self._memo[key] = self._delay_uncached(address_bits)
        return hit

    def _delay_uncached(self, address_bits):
        if address_bits <= 0:
            return 0.0
        n_outputs = 2 ** address_bits
        final_gate = self._final_gate(address_bits)
        nand2 = self.nands[2]
        # Address buffer: drives the two predecode NAND inputs using it.
        total = self.inverter.delay(2.0 * nand2.c_input)
        if address_bits >= 2:
            # Predecode NAND2, then a tapered buffer chain driving the
            # predecode line loaded by n_outputs/4 final-gate inputs.
            line_load = (n_outputs / 4.0) * final_gate.c_input
            total += nand2.delay(self.inverter.c_input)
            chain_delay, _chain_energy, _n = self._buffer_chain(line_load)
            total += chain_delay
        # Final AND stage into the superbuffer.
        total += final_gate.delay(self.driver_input_cap)
        return total

    def energy(self, address_bits):
        """Switching energy [J] per random address change.

        Counts, on average: half the address buffers, one predecode
        group (NAND2 + buffered line) per toggling bit pair, and the
        deactivating + activating final gates.  Accepts integer arrays
        like :meth:`delay`.
        """
        if np.ndim(address_bits) > 0:
            return self._map_bits_memo("energy", self.energy, address_bits)
        key = ("energy", float(address_bits))
        hit = self._memo.get(key)
        if hit is None:
            hit = self._memo[key] = self._energy_uncached(address_bits)
        return hit

    def _energy_uncached(self, address_bits):
        if address_bits <= 0:
            return 0.0
        n_outputs = 2 ** address_bits
        final_gate = self._final_gate(address_bits)
        nand2 = self.nands[2]
        toggling_bits = address_bits / 2.0
        total = toggling_bits * self.inverter.energy(2.0 * nand2.c_input)
        if address_bits >= 2:
            line_load = (n_outputs / 4.0) * final_gate.c_input
            groups_toggling = max(toggling_bits / 2.0, 1.0)
            _chain_delay, chain_energy, _n = self._buffer_chain(line_load)
            total += groups_toggling * (
                nand2.energy(self.inverter.c_input) + chain_energy
            )
        total += 2.0 * final_gate.energy(self.driver_input_cap)
        return total

    def max_address_bits(self):
        """Largest k this model can evaluate (limited by NAND fan-ins)."""
        limit = 2 * max(self.nands)
        return limit


def build_decoder_model(inverter, nands, driver_input_cap):
    """Convenience constructor with validation."""
    if 2 not in nands:
        raise DesignSpaceError("decoder model requires at least a NAND2")
    return DecoderModel(
        inverter=inverter, nands=dict(nands),
        driver_input_cap=driver_input_cap,
    )
