"""Peripheral circuit models and their simulator-based characterization.

Public API:

* :func:`characterize` — build the full :class:`ArrayCharacterization`
  (all LUTs + constants) for one cell flavor.
* :class:`DecoderModel`, :class:`SuperbufferModel` — structural models.
* :func:`characterize_inverter`, :func:`characterize_nand` — unit gates.
* :func:`characterize_senseamp`, :func:`characterize_i_on_tg`,
  :func:`i_on_pfet` — the remaining Table-2 drive characterizations.
"""

from .characterize import (
    DELTA_V_SENSE,
    ArrayCharacterization,
    CharacterizationGrids,
    characterize,
    characterize_gates,
    characterize_write_delay_scale,
)
from .decoder import DecoderModel, build_decoder_model
from .driver import STAGE_FINS, SuperbufferModel, build_superbuffer_circuit, scaled_gate
from .gates import (
    GateCharacterization,
    characterize_inverter,
    characterize_nand,
    inverter_circuit,
    nand_circuit,
)
from .precharge import PRECHARGE_CURRENT_COEFF, i_on_pfet, precharge_current
from .senseamp import (
    SenseAmpCharacterization,
    build_senseamp_circuit,
    characterize_senseamp,
)
from .writebuffer import (
    WRITE_CURRENT_COEFF,
    build_tg_discharge_circuit,
    characterize_i_on_tg,
    write_drive_current,
)

__all__ = [
    "DELTA_V_SENSE",
    "PRECHARGE_CURRENT_COEFF",
    "STAGE_FINS",
    "WRITE_CURRENT_COEFF",
    "ArrayCharacterization",
    "CharacterizationGrids",
    "DecoderModel",
    "GateCharacterization",
    "SenseAmpCharacterization",
    "SuperbufferModel",
    "build_decoder_model",
    "build_senseamp_circuit",
    "build_superbuffer_circuit",
    "build_tg_discharge_circuit",
    "characterize",
    "characterize_gates",
    "characterize_i_on_tg",
    "characterize_inverter",
    "characterize_nand",
    "characterize_senseamp",
    "characterize_write_delay_scale",
    "i_on_pfet",
    "inverter_circuit",
    "nand_circuit",
    "precharge_current",
    "scaled_gate",
    "write_drive_current",
]
