"""The wordline (and column-select) superbuffer driver.

The paper drives every row-decoder output through a four-stage
superbuffer, "derived analytically and verified by SPICE", with the
last-stage inverter built from 27-fin devices (its drain loading appears
in the Table-1 C_WL equation, and its drive current in Table 2).  To
avoid large area overhead exactly four inverter stages are used; with a
27x final stage the natural taper is 3x per stage: 1 - 3 - 9 - 27.

``D_row_drv`` in Table 3 is the propagation delay of the *first three*
stages only — the fourth stage's delay is the C_WL-dependent ``D_WL``
term computed by the array model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..devices.model import FinFET
from ..spice.netlist import Circuit

#: Fin counts of the four superbuffer stages.
STAGE_FINS = (1, 3, 9, 27)


def scaled_gate(gate, nfin):
    """Scale a 1-fin :class:`GateCharacterization` to ``nfin`` fins.

    Drive resistance falls as 1/nfin; input capacitance and internal
    energy grow as nfin; the intrinsic delay d0 (self-loading) is
    size-invariant to first order.
    """
    return replace(
        gate,
        name="%s_scaled_x%d" % (gate.name, nfin),
        drive_resistance=gate.drive_resistance / nfin,
        e0=gate.e0 * nfin,
        c_input=gate.c_input * nfin,
    )


@dataclass(frozen=True)
class SuperbufferModel:
    """Analytic delay/energy model of the 1-3-9-27 superbuffer."""

    #: Characterized 1-fin inverter (from periphery.gates).
    unit_inverter: object

    @property
    def input_capacitance(self):
        """Load the superbuffer presents to the row-decoder output [F]."""
        return self.unit_inverter.c_input * STAGE_FINS[0]

    def _memo(self, key, compute):
        """Per-instance memo for the stage-chain derivations: the model
        is immutable and the search engines read these properties on
        every evaluation, so the gate scaling runs once per instance."""
        cache = self.__dict__.get("_stage_memo")
        if cache is None:
            object.__setattr__(self, "_stage_memo", {})
            cache = self._stage_memo
        if key not in cache:
            cache[key] = compute()
        return cache[key]

    @property
    def first_three_delay(self):
        """``D_row_drv``: delay of stages 1-3 [s]."""
        return self._memo("delay", self._first_three_delay)

    def _first_three_delay(self):
        total = 0.0
        for this_fins, next_fins in zip(STAGE_FINS[:-1], STAGE_FINS[1:]):
            stage = scaled_gate(self.unit_inverter, this_fins)
            total += stage.delay(self.unit_inverter.c_input * next_fins)
        return total

    @property
    def first_three_energy(self):
        """``E_row_drv``: switching energy of stages 1-3 [J].

        Each stage dissipates its internal energy plus the charging of
        the next stage's gate.
        """
        return self._memo("energy", self._first_three_energy)

    def _first_three_energy(self):
        total = 0.0
        for this_fins, next_fins in zip(STAGE_FINS[:-1], STAGE_FINS[1:]):
            stage = scaled_gate(self.unit_inverter, this_fins)
            total += stage.energy(self.unit_inverter.c_input * next_fins)
        return total

    def last_stage_device_fins(self):
        """Fin count of the final inverter (defines C_WL / I_WL terms)."""
        return STAGE_FINS[-1]


def build_superbuffer_circuit(library, load_cap, input_value,
                              v_supply=None, v_last=None):
    """A full transistor-level 4-stage superbuffer testbench.

    Used by the validation tests to check the analytic
    :class:`SuperbufferModel` against simulation.  ``v_last`` powers the
    final stage separately (the WL-overdrive mux rail); it defaults to
    the common supply.
    """
    v_supply = library.vdd if v_supply is None else v_supply
    v_last = v_supply if v_last is None else v_last
    circuit = Circuit("superbuffer")
    circuit.add_vsource("vps", "vdd", "0", v_supply)
    circuit.add_vsource("vwl_rail", "vddwl", "0", v_last)
    circuit.add_vsource("vin", "n0", "0", input_value)
    c_gate_unit = library.pfet_lvt.c_gate + library.nfet_lvt.c_gate
    c_drain_unit = library.pfet_lvt.c_drain + library.nfet_lvt.c_drain
    for k, fins in enumerate(STAGE_FINS):
        supply = "vddwl" if k == len(STAGE_FINS) - 1 else "vdd"
        node_in = "n%d" % k
        node_out = "n%d" % (k + 1)
        circuit.add_fet(
            "mp%d" % k, FinFET(library.pfet_lvt, fins),
            node_in, node_out, supply,
        )
        circuit.add_fet(
            "mn%d" % k, FinFET(library.nfet_lvt, fins),
            node_in, node_out, "0",
        )
        # Output parasitics (own drains) plus the next stage's gate
        # loading — gate capacitance is modeled explicitly, matching
        # how the Transistor element handles only the I-V behaviour.
        load = c_drain_unit * fins
        if k + 1 < len(STAGE_FINS):
            load += c_gate_unit * STAGE_FINS[k + 1]
        circuit.add_capacitor("cpar%d" % k, node_out, "0", load)
    if load_cap > 0:
        circuit.add_capacitor("cl", "n%d" % len(STAGE_FINS), "0", load_cap)
    return circuit
