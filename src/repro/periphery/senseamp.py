"""Latch-type voltage sense amplifier characterization.

The paper's ``D_sense_amp`` / ``E_sense_amp`` are SPICE-characterized
constants (the SA sees a fixed input split ``ΔV_S`` regardless of the
array organization, so its delay does not depend on the optimization
variables).  We reproduce them with a transistor-level latch SA:

* a cross-coupled inverter pair (out / outb) over a shared tail node,
* a tail NFET enabled by SE,
* two transmission gates that couple BL / BLB onto out / outb while SE
  is low (sampling) and isolate them during regeneration.

The testbench presets BL = Vdd and BLB = Vdd - ΔV_S, fires SE, and
measures the time until the outputs split to 90% of Vdd, plus the energy
all sources deliver during the event.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices.model import FinFET
from ..spice.netlist import Circuit
from ..spice.stimuli import step

#: SE timing for the testbench.
_T_ENABLE = 1e-12
_T_RISE = 0.1e-12
_DT = 1e-14
_T_STOP = 60e-12

#: Fin sizing of the SA devices.
_LATCH_FINS = 2
_TAIL_FINS = 4
_TG_FINS = 1


@dataclass(frozen=True)
class SenseAmpCharacterization:
    """Constant delay/energy of the sense amplifier."""

    delay: float
    energy: float
    delta_v_sense: float
    v_supply: float


def build_senseamp_circuit(library, delta_v_sense, v_supply=None,
                           load_cap=0.2e-15):
    """The latch SA testbench described in the module docstring."""
    v_supply = library.vdd if v_supply is None else v_supply
    se = step(_T_ENABLE, 0.0, v_supply, _T_RISE)
    se_bar = step(_T_ENABLE, v_supply, 0.0, _T_RISE)
    circuit = Circuit("senseamp")
    circuit.add_vsource("vps", "vdd", "0", v_supply)
    circuit.add_vsource("vse", "se", "0", se)
    circuit.add_vsource("vseb", "seb", "0", se_bar)
    circuit.add_vsource("vbl", "bl", "0", v_supply)
    circuit.add_vsource("vblb", "blb", "0", v_supply - delta_v_sense)
    # Cross-coupled latch.
    circuit.add_fet("mp1", FinFET(library.pfet_lvt, _LATCH_FINS),
                    "outb", "out", "vdd")
    circuit.add_fet("mn1", FinFET(library.nfet_lvt, _LATCH_FINS),
                    "outb", "out", "tail")
    circuit.add_fet("mp2", FinFET(library.pfet_lvt, _LATCH_FINS),
                    "out", "outb", "vdd")
    circuit.add_fet("mn2", FinFET(library.nfet_lvt, _LATCH_FINS),
                    "out", "outb", "tail")
    circuit.add_fet("mtail", FinFET(library.nfet_lvt, _TAIL_FINS),
                    "se", "tail", "0")
    # Bitline coupling transmission gates (on while SE is low).
    circuit.add_fet("mtgn1", FinFET(library.nfet_lvt, _TG_FINS),
                    "seb", "bl", "out")
    circuit.add_fet("mtgp1", FinFET(library.pfet_lvt, _TG_FINS),
                    "se", "bl", "out")
    circuit.add_fet("mtgn2", FinFET(library.nfet_lvt, _TG_FINS),
                    "seb", "blb", "outb")
    circuit.add_fet("mtgp2", FinFET(library.pfet_lvt, _TG_FINS),
                    "se", "blb", "outb")
    for node in ("out", "outb"):
        circuit.add_capacitor("c_%s" % node, node, "0", load_cap)
    # The tail node floats while SE is low; keep a small parasitic there.
    circuit.add_capacitor("c_tail", "tail", "0",
                          _TAIL_FINS * library.nfet_lvt.c_drain)
    return circuit


def characterize_senseamp(library, delta_v_sense, v_supply=None):
    """Measure (delay, energy) of the SA at the given sensing split."""
    from ..spice.transient import transient

    v_supply = library.vdd if v_supply is None else v_supply
    circuit = build_senseamp_circuit(library, delta_v_sense, v_supply)
    threshold = 0.1 * v_supply
    result = transient(
        circuit, _T_STOP, _DT,
        stop_condition=lambda t, v: (
            t > _T_ENABLE and v["outb"] < 0.05 * v_supply
        ),
        stop_margin=5,
    )
    t_se = result.node("se").cross(0.5 * v_supply, "rise")
    t_out = result.node("outb").cross(threshold, "fall")
    energy = sum(
        result.delivered_energy(name, t_start=t_se)
        for name in ("vps", "vbl", "vblb", "vse")
    )
    return SenseAmpCharacterization(
        delay=t_out - t_se,
        energy=energy,
        delta_v_sense=delta_v_sense,
        v_supply=v_supply,
    )
