"""Write buffer / transmission-gate drive characterization.

The write buffer drives the bitlines through transmission gates of
``N_wr`` fins; its Table-2 drive is ``0.50 * N_wr * I_ON,TG``.  The
effective single-fin TG ON current ``I_ON,TG`` is characterized by
simulation: a write driver pulls a Vdd-precharged test capacitor to
ground *through* a one-fin TG and the effective current is read from
the 50%-crossing time, ``I = C * (Vdd/2) / t_50``.
"""

from __future__ import annotations

from ..devices.model import FinFET
from ..spice.netlist import Circuit
from ..spice.stimuli import step
from ..spice.transient import transient

#: The paper's fitted average-current coefficient for write buffers.
WRITE_CURRENT_COEFF = 0.50

#: Test capacitor for the TG discharge measurement [F].
_C_TEST = 5e-15
_DT = 5e-14
_T_STOP = 600e-12
_T_DRIVE = 1e-12


def build_tg_discharge_circuit(library, v_supply=None, c_test=_C_TEST):
    """A driver pulling a precharged cap low through a single-fin TG.

    The driver node starts at Vdd (so the DC solution has the capacitor
    charged) and steps to 0 at ``_T_DRIVE``.
    """
    v_supply = library.vdd if v_supply is None else v_supply
    circuit = Circuit("tg_discharge")
    circuit.add_vsource("vps", "vdd", "0", v_supply)
    circuit.add_vsource("vdrv", "drv", "0",
                        step(_T_DRIVE, v_supply, 0.0, 0.1e-12))
    circuit.add_fet("mtgn", FinFET(library.nfet_lvt, 1), "vdd", "a", "drv")
    circuit.add_fet("mtgp", FinFET(library.pfet_lvt, 1), "0", "a", "drv")
    circuit.add_capacitor("ct", "a", "0", c_test)
    return circuit


def characterize_i_on_tg(library, v_supply=None, c_test=_C_TEST):
    """Effective single-fin TG ON current [A]."""
    v_supply = library.vdd if v_supply is None else v_supply
    circuit = build_tg_discharge_circuit(library, v_supply, c_test)
    half = 0.5 * v_supply
    result = transient(
        circuit, _T_STOP, _DT,
        stop_condition=lambda _t, v: v["a"] < 0.4 * v_supply,
        stop_margin=3,
    )
    t_start = result.node("drv").cross(half, "fall")
    t_half = result.node("a").cross(half, "fall")
    return c_test * half / (t_half - t_start)


def write_drive_current(i_on_tg, n_wr):
    """Effective write drive [A]: ``0.50 * N_wr * I_ON,TG``.

    ``n_wr`` may be a numpy array (vectorized optimization sweeps).
    """
    return WRITE_CURRENT_COEFF * n_wr * i_on_tg
