"""Energy-delay Pareto analysis (extension beyond the paper).

The paper optimizes the scalar EDP; designers often want the whole
energy-delay trade-off curve instead.  These helpers extract the Pareto
front from the optimizer's search landscape, maintain it incrementally
during a bound-and-prune sweep (:class:`ParetoFrontBuilder`), and locate
generalized ``E^a * D^b`` optima on it.

Tie rule
--------

A point *weakly dominates* another when it is no worse in both delay
and energy; it *dominates* when it is additionally strictly better in
at least one.  When two designs land on the exact same ``(delay,
energy)`` pair with different knob settings, the front keeps **the
first point in loop-engine visit order** (row counts ascending, V_SSC
candidates in policy order) and drops the later duplicates.  Both
:func:`pareto_front` and :class:`ParetoFrontBuilder` implement this
rule, so the incremental front built during a pruned sweep is
element-wise equal to the front extracted from a full
``keep_landscape=True`` landscape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated (delay, energy) design."""

    d_array: float
    e_total: float
    n_r: int
    v_ssc: float
    n_pre: int
    n_wr: int

    @property
    def edp(self):
        return self.d_array * self.e_total


def _as_pareto_point(p):
    return ParetoPoint(
        d_array=float(p.d_array), e_total=float(p.e_total),
        n_r=int(p.n_r), v_ssc=float(p.v_ssc),
        n_pre=int(p.n_pre), n_wr=int(p.n_wr),
    )


def pareto_front(landscape):
    """Non-dominated subset of :class:`LandscapePoint` entries,
    sorted by delay.

    Exact ``(delay, energy)`` duplicates keep the first point in input
    (loop-engine visit) order — see the module tie rule.  Raises
    :class:`ValueError` on an empty landscape (an empty front is always
    a caller bug: every non-empty landscape has at least one
    non-dominated point).
    """
    points = sorted(landscape, key=lambda p: (p.d_array, p.e_total))
    if not points:
        raise ValueError("empty landscape has no Pareto front")
    front = []
    best_energy = float("inf")
    # After the stable (delay, energy) sort, a point survives iff it
    # strictly improves the best energy seen so far: equal-delay points
    # arrive energy-ascending (only the cheapest survives), and exact
    # (d, e) duplicates keep their input order under the stable sort, so
    # the first-visited one wins and the rest fail the strict test.
    for p in points:
        if p.e_total < best_energy:
            front.append(p)
            best_energy = p.e_total
    return [_as_pareto_point(p) for p in front]


class ParetoFrontBuilder:
    """Incrementally maintained non-dominated front.

    Insert candidate points in loop-engine visit order; the final
    :meth:`front` is element-wise equal to
    ``pareto_front(inserted_points)``.  A newcomer weakly dominated by
    any existing member is rejected (which implements the first-wins
    rule for exact duplicates); members the newcomer dominates are
    evicted.

    The pruned Pareto sweep also uses the front to *skip* whole tiles:
    :meth:`dominates` tests a tile's ``(D_lb, E_lb)`` bound corner —
    when some member weakly dominates the corner it weakly dominates
    every point of the tile, so nothing in the tile can ever join the
    front.
    """

    def __init__(self):
        self._points = []

    def __len__(self):
        return len(self._points)

    def dominates(self, d_array, e_total):
        """True when some member weakly dominates ``(d_array, e_total)``."""
        return any(
            f.d_array <= d_array and f.e_total <= e_total
            for f in self._points
        )

    def dominated_mask(self, d_array, e_total):
        """Vectorized :meth:`dominates` over parallel coordinate arrays."""
        d_array = np.asarray(d_array, dtype=float)
        e_total = np.asarray(e_total, dtype=float)
        if not self._points:
            return np.zeros(d_array.shape, dtype=bool)
        fd = np.array([f.d_array for f in self._points]).reshape(-1, 1)
        fe = np.array([f.e_total for f in self._points]).reshape(-1, 1)
        covered = (fd <= d_array.reshape(1, -1)) \
            & (fe <= e_total.reshape(1, -1))
        return covered.any(axis=0).reshape(d_array.shape)

    def insert(self, point):
        """Offer one candidate (any object with ``d_array`` / ``e_total``
        and the knob fields).  Returns True when it joined the front."""
        d, e = point.d_array, point.e_total
        if self.dominates(d, e):
            # Weak dominance covers exact duplicates: the earlier-visited
            # member survives, implementing the first-wins tie rule.
            return False
        # Nothing weakly dominates the newcomer, so any member it weakly
        # dominates it dominates strictly — evict those.
        self._points = [
            f for f in self._points
            if not (d <= f.d_array and e <= f.e_total)
        ]
        self._points.append(point)
        return True

    def front(self):
        """The current front as delay-sorted :class:`ParetoPoint` rows.

        Members are pairwise non-dominated with distinct delays *and*
        distinct energies, so the delay sort is unambiguous and matches
        :func:`pareto_front`'s (delay, energy) ordering.
        """
        ordered = sorted(self._points,
                         key=lambda p: (p.d_array, p.e_total))
        return [_as_pareto_point(p) for p in ordered]


@dataclass(frozen=True)
class ParetoSearchResult:
    """Outcome of one :meth:`ExhaustiveOptimizer.pareto` sweep."""

    capacity_bits: int
    flavor: str
    method: str
    engine: str
    #: Delay-sorted non-dominated (delay, energy) designs.
    front: tuple
    #: Design points actually scored through ``model.evaluate``.
    n_evaluated: int
    #: Total (n_r, V_SSC) tiles of the feasible space.
    n_tiles: int
    #: Tiles skipped because the front dominated their bound corner.
    tiles_pruned: int

    @property
    def capacity_bytes(self):
        return self.capacity_bits // 8


def best_weighted(front, energy_exponent=1.0, delay_exponent=1.0):
    """The front point minimizing ``E^a * D^b``.

    ``(1, 1)`` recovers the paper's EDP objective; ``(1, 2)`` emphasizes
    performance (ED^2), ``(2, 1)`` emphasizes energy.
    """
    if not front:
        raise ValueError("empty Pareto front")
    return min(
        front,
        key=lambda p: (p.e_total ** energy_exponent)
        * (p.d_array ** delay_exponent),
    )
