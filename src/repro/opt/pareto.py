"""Energy-delay Pareto analysis (extension beyond the paper).

The paper optimizes the scalar EDP; designers often want the whole
energy-delay trade-off curve instead.  These helpers extract the Pareto
front from the optimizer's search landscape and locate generalized
``E^a * D^b`` optima on it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated (delay, energy) design."""

    d_array: float
    e_total: float
    n_r: int
    v_ssc: float
    n_pre: int
    n_wr: int

    @property
    def edp(self):
        return self.d_array * self.e_total


def pareto_front(landscape):
    """Non-dominated subset of :class:`LandscapePoint` entries,
    sorted by delay.

    A point dominates another when it is no worse in both delay and
    energy and strictly better in at least one.
    """
    points = sorted(landscape, key=lambda p: (p.d_array, p.e_total))
    front = []
    best_energy = float("inf")
    for p in points:
        if p.e_total < best_energy - 1e-30:
            front.append(p)
            best_energy = p.e_total
    return [
        ParetoPoint(
            d_array=p.d_array, e_total=p.e_total, n_r=p.n_r,
            v_ssc=p.v_ssc, n_pre=p.n_pre, n_wr=p.n_wr,
        )
        for p in front
    ]


def best_weighted(front, energy_exponent=1.0, delay_exponent=1.0):
    """The front point minimizing ``E^a * D^b``.

    ``(1, 1)`` recovers the paper's EDP objective; ``(1, 2)`` emphasizes
    performance (ED^2), ``(2, 1)`` emphasizes energy.
    """
    if not front:
        raise ValueError("empty Pareto front")
    return min(
        front,
        key=lambda p: (p.e_total ** energy_exponent)
        * (p.d_array ** delay_exponent),
    )
