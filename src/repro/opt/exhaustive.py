"""Exhaustive minimum-EDP search (paper Section 5).

With V_DDC / V_WL pre-set by the voltage policy, the free variables are
``(n_r, V_SSC, N_pre, N_wr)`` — small enough for exhaustive search (the
paper reports under two minutes on a 2011-era server; the vectorized
grid evaluation here takes well under a second per configuration).

For each ``(n_r, V_SSC)`` slice, the whole ``N_pre x N_wr`` fin grid is
evaluated in one broadcast call of the array model; the yield constraint
is checked once per slice (fin counts do not affect cell margins).
"""

from __future__ import annotations

import numpy as np

from ..array.model import DesignPoint
from ..errors import DesignSpaceError
from .results import LandscapePoint, OptimizationResult


class ExhaustiveOptimizer:
    """Minimum-EDP exhaustive search over a :class:`DesignSpace`."""

    def __init__(self, model, space, constraint):
        self.model = model
        self.space = space
        self.constraint = constraint

    def optimize(self, capacity_bits, policy, keep_landscape=False):
        """Search one capacity under one voltage policy.

        Returns an :class:`OptimizationResult`; raises
        :class:`DesignSpaceError` when no candidate satisfies the yield
        constraint.
        """
        n_pre_grid, n_wr_grid = np.meshgrid(
            self.space.n_pre_values, self.space.n_wr_values, indexing="ij"
        )
        best = None
        landscape = []
        n_evaluated = 0
        for n_r in self.space.row_counts(capacity_bits):
            n_c = capacity_bits // n_r
            for v_ssc in policy.v_ssc_candidates(self.space):
                if not self.constraint.satisfied(
                    policy.v_ddc, v_ssc, policy.v_wl, policy.v_bl
                ):
                    continue
                design = DesignPoint(
                    n_r=n_r, n_c=n_c,
                    n_pre=n_pre_grid, n_wr=n_wr_grid,
                    v_ddc=policy.v_ddc, v_ssc=float(v_ssc),
                    v_wl=policy.v_wl, v_bl=policy.v_bl,
                )
                metrics = self.model.evaluate(capacity_bits, design)
                n_evaluated += n_pre_grid.size
                flat = int(np.argmin(metrics.edp))
                i, j = np.unravel_index(flat, n_pre_grid.shape)
                slice_best = LandscapePoint(
                    n_r=n_r, v_ssc=float(v_ssc),
                    n_pre=int(n_pre_grid[i, j]),
                    n_wr=int(n_wr_grid[i, j]),
                    edp=float(metrics.edp[i, j]),
                    d_array=float(metrics.d_array[i, j]),
                    e_total=float(metrics.e_total[i, j]),
                )
                if keep_landscape:
                    landscape.append(slice_best)
                if best is None or slice_best.edp < best[0].edp:
                    best = (slice_best, design)
        if best is None:
            raise DesignSpaceError(
                "no feasible design for %d bits under policy %s "
                "(yield constraint unsatisfiable)"
                % (capacity_bits, policy.method)
            )
        slice_best, _grid_design = best
        final_design = DesignPoint(
            n_r=slice_best.n_r, n_c=capacity_bits // slice_best.n_r,
            n_pre=slice_best.n_pre, n_wr=slice_best.n_wr,
            v_ddc=policy.v_ddc, v_ssc=slice_best.v_ssc, v_wl=policy.v_wl,
            v_bl=policy.v_bl,
        )
        final_metrics = self.model.evaluate(capacity_bits, final_design)
        margins = self.constraint.margins(
            final_design.v_ddc, final_design.v_ssc, final_design.v_wl,
            final_design.v_bl,
        )
        return OptimizationResult(
            capacity_bits=capacity_bits,
            flavor=self.constraint.flavor,
            method=policy.method,
            design=final_design,
            metrics=final_metrics,
            margins=margins,
            n_evaluated=n_evaluated,
            landscape=landscape,
        )
