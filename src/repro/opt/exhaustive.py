"""Exhaustive minimum-EDP search (paper Section 5).

With V_DDC / V_WL pre-set by the voltage policy, the free variables are
``(n_r, V_SSC, N_pre, N_wr)`` — small enough for exhaustive search (the
paper reports under two minutes on a 2011-era server; the vectorized
grid evaluation here takes milliseconds per configuration).

Two search engines share one result path:

* ``engine="vectorized"`` (default) — the whole feasible
  ``V_SSC x N_pre x N_wr`` space of one row count is evaluated in a
  single broadcast call of the array model (``v_ssc`` rides along as a
  ``(S, 1, 1)`` axis over the fin grid), so a full policy search costs
  O(rows) model calls.  The yield constraint is applied once, up front,
  as a vectorized boolean mask over the V_SSC candidates
  (:meth:`YieldConstraint.satisfied_grid`) — cell margins do not depend
  on the organization or the fin counts.
* ``engine="loop"`` — the original per-``(n_r, V_SSC)`` slice loop,
  kept as the bit-exact reference the equivalence tests compare
  against.

Both engines perform the same elementwise arithmetic in the same order,
so they return bit-identical results (designs, EDP, evaluation counts,
and landscapes).
"""

from __future__ import annotations

import numpy as np

from .. import perf
from ..array.model import DesignPoint
from ..errors import DesignSpaceError
from .results import LandscapePoint, OptimizationResult


class ExhaustiveOptimizer:
    """Minimum-EDP exhaustive search over a :class:`DesignSpace`."""

    def __init__(self, model, space, constraint):
        self.model = model
        self.space = space
        self.constraint = constraint

    def optimize(self, capacity_bits, policy, keep_landscape=False,
                 engine="vectorized"):
        """Search one capacity under one voltage policy.

        Returns an :class:`OptimizationResult`; raises
        :class:`DesignSpaceError` when no candidate satisfies the yield
        constraint.
        """
        if engine == "vectorized":
            search = self._search_vectorized
        elif engine == "loop":
            search = self._search_loop
        else:
            raise ValueError(
                "unknown engine %r (expected 'vectorized' or 'loop')"
                % (engine,)
            )
        with perf.timed("optimizer.search.%s" % engine):
            best, landscape, n_evaluated = search(
                capacity_bits, policy, keep_landscape
            )
        perf.count("optimizer.evaluations", n_evaluated)
        if best is None:
            raise DesignSpaceError(
                "no feasible design for %d bits under policy %s "
                "(yield constraint unsatisfiable)"
                % (capacity_bits, policy.method)
            )
        final_design = DesignPoint(
            n_r=best.n_r, n_c=capacity_bits // best.n_r,
            n_pre=best.n_pre, n_wr=best.n_wr,
            v_ddc=policy.v_ddc, v_ssc=best.v_ssc, v_wl=policy.v_wl,
            v_bl=policy.v_bl,
        )
        final_metrics = self.model.evaluate(capacity_bits, final_design)
        margins = self.constraint.margins(
            final_design.v_ddc, final_design.v_ssc, final_design.v_wl,
            final_design.v_bl,
        )
        return OptimizationResult(
            capacity_bits=capacity_bits,
            flavor=self.constraint.flavor,
            method=policy.method,
            design=final_design,
            metrics=final_metrics,
            margins=margins,
            n_evaluated=n_evaluated,
            landscape=landscape,
        )

    # -- feasibility -------------------------------------------------------

    def _feasible_v_ssc(self, policy):
        """The policy's V_SSC candidates that clear the yield constraint,
        in candidate order (margins are organization-independent, so
        this is computed once per search, not once per slice)."""
        candidates = np.asarray(policy.v_ssc_candidates(self.space),
                                dtype=float)
        grid_check = getattr(self.constraint, "satisfied_grid", None)
        if grid_check is not None:
            mask = np.asarray(grid_check(
                policy.v_ddc, candidates, policy.v_wl, policy.v_bl
            ), dtype=bool)
        else:
            mask = np.array([
                bool(self.constraint.satisfied(
                    policy.v_ddc, float(v), policy.v_wl, policy.v_bl
                ))
                for v in candidates
            ], dtype=bool)
        return candidates[mask]

    # -- engines -----------------------------------------------------------

    def _search_vectorized(self, capacity_bits, policy, keep_landscape):
        """O(rows) broadcast calls: one ``(S, P, W)`` evaluation per
        row count, where S spans the feasible V_SSC candidates."""
        feasible = self._feasible_v_ssc(policy)
        best = None
        landscape = []
        n_evaluated = 0
        if feasible.size == 0:
            return best, landscape, n_evaluated
        n_pre_grid, n_wr_grid = np.meshgrid(
            self.space.n_pre_values, self.space.n_wr_values, indexing="ij"
        )
        v_ssc_axis = feasible.reshape(-1, 1, 1)
        full_shape = (feasible.size,) + n_pre_grid.shape
        for n_r in self.space.row_counts(capacity_bits):
            design = DesignPoint(
                n_r=n_r, n_c=capacity_bits // n_r,
                n_pre=n_pre_grid, n_wr=n_wr_grid,
                v_ddc=policy.v_ddc, v_ssc=v_ssc_axis,
                v_wl=policy.v_wl, v_bl=policy.v_bl,
            )
            metrics = self.model.evaluate(capacity_bits, design)
            n_evaluated += feasible.size * n_pre_grid.size
            edp = np.broadcast_to(metrics.edp, full_shape)
            d_array = np.broadcast_to(metrics.d_array, full_shape)
            e_total = np.broadcast_to(metrics.e_total, full_shape)
            flat = edp.reshape(feasible.size, -1)
            slice_argmins = flat.argmin(axis=1)
            for s in range(feasible.size):
                arg = int(slice_argmins[s])
                i, j = np.unravel_index(arg, n_pre_grid.shape)
                slice_best = LandscapePoint(
                    n_r=n_r, v_ssc=float(feasible[s]),
                    n_pre=int(n_pre_grid[i, j]),
                    n_wr=int(n_wr_grid[i, j]),
                    edp=float(edp[s, i, j]),
                    d_array=float(d_array[s, i, j]),
                    e_total=float(e_total[s, i, j]),
                )
                if keep_landscape:
                    landscape.append(slice_best)
                if best is None or slice_best.edp < best.edp:
                    best = slice_best
        return best, landscape, n_evaluated

    def _search_loop(self, capacity_bits, policy, keep_landscape):
        """The original per-(n_r, V_SSC) slice loop (reference engine)."""
        n_pre_grid, n_wr_grid = np.meshgrid(
            self.space.n_pre_values, self.space.n_wr_values, indexing="ij"
        )
        best = None
        landscape = []
        n_evaluated = 0
        for n_r in self.space.row_counts(capacity_bits):
            n_c = capacity_bits // n_r
            for v_ssc in policy.v_ssc_candidates(self.space):
                if not self.constraint.satisfied(
                    policy.v_ddc, v_ssc, policy.v_wl, policy.v_bl
                ):
                    continue
                design = DesignPoint(
                    n_r=n_r, n_c=n_c,
                    n_pre=n_pre_grid, n_wr=n_wr_grid,
                    v_ddc=policy.v_ddc, v_ssc=float(v_ssc),
                    v_wl=policy.v_wl, v_bl=policy.v_bl,
                )
                metrics = self.model.evaluate(capacity_bits, design)
                n_evaluated += n_pre_grid.size
                flat = int(np.argmin(metrics.edp))
                i, j = np.unravel_index(flat, n_pre_grid.shape)
                slice_best = LandscapePoint(
                    n_r=n_r, v_ssc=float(v_ssc),
                    n_pre=int(n_pre_grid[i, j]),
                    n_wr=int(n_wr_grid[i, j]),
                    edp=float(metrics.edp[i, j]),
                    d_array=float(metrics.d_array[i, j]),
                    e_total=float(metrics.e_total[i, j]),
                )
                if keep_landscape:
                    landscape.append(slice_best)
                if best is None or slice_best.edp < best.edp:
                    best = slice_best
        return best, landscape, n_evaluated
