"""Exhaustive minimum-EDP search (paper Section 5).

With V_DDC / V_WL pre-set by the voltage policy, the free variables are
``(n_r, V_SSC, N_pre, N_wr)`` — small enough for exhaustive search (the
paper reports under two minutes on a 2011-era server; the vectorized
grid evaluation here takes milliseconds per configuration).

Four search engines share one result path:

* ``engine="fused"`` — one policy's *entire* feasible
  ``n_r x V_SSC x N_pre x N_wr`` space in a single 4-D broadcast call
  of the array model: the row-count axis (with its paired
  ``n_c = capacity // n_r``) rides along as ``(R, 1, 1, 1)``, V_SSC as
  ``(1, S, 1, 1)``, over the ``(P, W)`` fin grid.  The per-slice
  reductions (one landscape point per ``(n_r, V_SSC)``) are pure
  ``argmin`` / ``unravel_index`` array ops, so a whole search is one
  ``model.evaluate`` call plus reductions.
* ``engine="vectorized"`` (default) — the whole feasible
  ``V_SSC x N_pre x N_wr`` space of one row count is evaluated in a
  single broadcast call of the array model (``v_ssc`` rides along as a
  ``(S, 1, 1)`` axis over the fin grid), so a full policy search costs
  O(rows) model calls.  The yield constraint is applied once, up front,
  as a vectorized boolean mask over the V_SSC candidates
  (:meth:`YieldConstraint.satisfied_grid`) — cell margins do not depend
  on the organization or the fin counts.
* ``engine="loop"`` — the original per-``(n_r, V_SSC)`` slice loop,
  kept as the bit-exact reference the equivalence tests compare
  against.
* ``engine="pruned"`` — the first engine that *shrinks* the space
  instead of evaluating it faster: admissible per-``(n_r, V_SSC)``
  lower bounds (:mod:`repro.opt.bounds`) are computed for every tile
  in one tiny broadcast call, the tile with the smallest EDP bound is
  evaluated first to seed an incumbent, and every tile whose bound
  strictly exceeds the incumbent is skipped without ever calling
  ``model.evaluate``.  Survivors score through gathered broadcast
  dispatches (the fused call shape, restricted to surviving tiles) and
  the final scan replays the loop engine's r-major/s-minor strict-``<``
  order, so the result — including argmin tie-breaking — is
  bit-identical to the reference.  ``keep_landscape=True`` needs every
  tile's slice-best anyway, so it disables pruning and matches the
  loop engine's landscape and evaluation count exactly.

On top of the fused engine, :meth:`ExhaustiveOptimizer.optimize_many`
stacks a leading *policy* axis: the rail voltages of ``B`` policies
ride in shaped ``(B, 1, 1, 1, 1)`` (with each policy's feasible V_SSC
set padded to a common width along a ``(B, 1, S, 1, 1)`` axis), so one
capacity's *every* policy is scored by a single broadcast
``model.evaluate`` over the ``(B, n_r, V_SSC, N_pre, N_wr)`` tensor.
Per-policy reductions mask the padded V_SSC slots with ``+inf``, so
each policy's best design, EDP, evaluation count, and landscape are
bit-identical to its own per-policy search through any engine.

All engines perform the same elementwise arithmetic in the same order,
so they return bit-identical results (designs, EDP, evaluation counts,
and landscapes).
"""

from __future__ import annotations

import numpy as np

from .. import perf
from ..array.model import DesignPoint
from ..errors import DesignSpaceError
from .bounds import tile_lower_bounds
from .pareto import ParetoFrontBuilder, ParetoSearchResult, pareto_front
from .results import LandscapePoint, OptimizationResult


class ExhaustiveOptimizer:
    """Minimum-EDP exhaustive search over a :class:`DesignSpace`."""

    def __init__(self, model, space, constraint):
        self.model = model
        self.space = space
        self.constraint = constraint

    def optimize(self, capacity_bits, policy, keep_landscape=False,
                 engine="vectorized"):
        """Search one capacity under one voltage policy.

        Returns an :class:`OptimizationResult`; raises
        :class:`DesignSpaceError` when no candidate satisfies the yield
        constraint.
        """
        if engine == "vectorized":
            search = self._search_vectorized
        elif engine == "fused":
            search = self._search_fused
        elif engine == "pruned":
            search = self._search_pruned
        elif engine == "loop":
            search = self._search_loop
        else:
            raise ValueError(
                "unknown engine %r (expected 'fused', 'pruned', "
                "'vectorized' or 'loop')" % (engine,)
            )
        with perf.timed("optimizer.search.%s" % engine):
            best, landscape, n_evaluated = search(
                capacity_bits, policy, keep_landscape
            )
        perf.count("optimizer.evaluations", n_evaluated)
        return self._finalize(capacity_bits, policy, best, landscape,
                              n_evaluated)

    def optimize_many(self, capacity_bits, policies, keep_landscape=False,
                      engine="fused"):
        """Search one capacity under *every* policy in one fused dispatch.

        The policies' rail voltages ride in as a leading batch axis of a
        single broadcast ``model.evaluate`` call (see
        :meth:`_search_fused_many`), so a study cell — or a batch of
        coalesced service requests — pays one engine dispatch instead of
        one per policy.  Returns one :class:`OptimizationResult` per
        policy, in input order, each bit-identical to what a per-policy
        :meth:`optimize` through any engine returns.

        Only the fused engine supports the policy axis; ``"loop"`` and
        ``"vectorized"`` stay the per-policy references.  Raises
        :class:`DesignSpaceError` when any policy's yield constraint is
        unsatisfiable (callers that need per-policy verdicts fall back
        to per-policy :meth:`optimize` calls).
        """
        if engine != "fused":
            raise ValueError(
                "optimize_many only supports engine='fused' (got %r); "
                "run optimize() per policy for the loop/vectorized "
                "reference paths" % (engine,)
            )
        policies = list(policies)
        if not policies:
            return []
        feasibles = self._feasible_many(policies)
        for policy, feasible in zip(policies, feasibles):
            if feasible.size == 0:
                raise DesignSpaceError(
                    "no feasible design for %d bits under policy %s "
                    "(yield constraint unsatisfiable)"
                    % (capacity_bits, policy.method)
                )
        with perf.timed("optimizer.search.fused_many"):
            searched = self._search_fused_many(
                capacity_bits, policies, feasibles, keep_landscape
            )
        results = []
        for policy, (best, landscape, n_evaluated) in zip(policies,
                                                          searched):
            perf.count("optimizer.evaluations", n_evaluated)
            results.append(self._finalize(
                capacity_bits, policy, best, landscape, n_evaluated
            ))
        return results

    def pareto(self, capacity_bits, policy, engine="pruned"):
        """Energy-delay Pareto front of one capacity under one policy.

        ``engine="pruned"`` maintains the front *incrementally* during a
        bound-accelerated sweep: a tile whose ``(D_lb, E_lb)`` bound
        corner is weakly dominated by the current front cannot
        contribute a front point (the corner lower-bounds every design
        in the tile) and is skipped without evaluation, so no
        ``keep_landscape=True`` landscape is ever materialized.  Any
        other engine falls back to a full ``keep_landscape=True`` search
        plus :func:`repro.opt.pareto.pareto_front` — both paths return
        element-wise equal fronts.

        Returns a :class:`ParetoSearchResult`; raises
        :class:`DesignSpaceError` when no candidate satisfies the yield
        constraint.
        """
        if engine != "pruned":
            result = self.optimize(capacity_bits, policy,
                                   keep_landscape=True, engine=engine)
            return ParetoSearchResult(
                capacity_bits=capacity_bits,
                flavor=self.constraint.flavor,
                method=policy.method,
                engine=engine,
                front=tuple(pareto_front(result.landscape)),
                n_evaluated=result.n_evaluated,
                n_tiles=len(result.landscape),
                tiles_pruned=0,
            )
        with perf.timed("optimizer.pareto.pruned"):
            front, n_evaluated, n_tiles, tiles_pruned = (
                self._pareto_pruned(capacity_bits, policy)
            )
        perf.count("optimizer.evaluations", n_evaluated)
        return ParetoSearchResult(
            capacity_bits=capacity_bits,
            flavor=self.constraint.flavor,
            method=policy.method,
            engine="pruned",
            front=tuple(front),
            n_evaluated=n_evaluated,
            n_tiles=n_tiles,
            tiles_pruned=tiles_pruned,
        )

    def _pareto_pruned(self, capacity_bits, policy):
        """The incremental front sweep behind :meth:`pareto`."""
        feasible = self._feasible_v_ssc(policy)
        if feasible.size == 0:
            raise DesignSpaceError(
                "no feasible design for %d bits under policy %s "
                "(yield constraint unsatisfiable)"
                % (capacity_bits, policy.method)
            )
        rows = np.asarray(self.space.row_counts(capacity_bits),
                          dtype=np.int64)
        n_slices = feasible.size
        n_tiles = rows.size * n_slices
        bounds = tile_lower_bounds(
            self.model, self.space, capacity_bits, policy, feasible
        )
        builder = ParetoFrontBuilder()
        evaluated = {}
        n_evaluated = 0
        tiles_pruned = 0
        for r in range(rows.size):
            # Skip decisions use the front as of the previous row: a
            # member dominating a tile's bound corner always precedes
            # that tile in visit order, which the first-wins tie rule
            # requires.  Same-row candidates only ever *add* work (a
            # tile the fresh inserts would have covered still evaluates
            # and gets rejected by the builder), never change the front.
            skip = builder.dominated_mask(
                bounds.d_array[r], bounds.e_total[r]
            )
            tiles_pruned += int(skip.sum())
            survivors = np.flatnonzero(~skip) + r * n_slices
            if survivors.size == 0:
                continue
            n_evaluated += self._score_tiles(
                capacity_bits, policy, rows, feasible, survivors,
                evaluated,
            )
            for tile in survivors:
                builder.insert(evaluated[int(tile)])
        perf.count("opt.pruned.tiles_pruned", tiles_pruned)
        perf.count("opt.pruned.points_evaluated", n_evaluated)
        return builder.front(), n_evaluated, n_tiles, tiles_pruned

    def _finalize(self, capacity_bits, policy, best, landscape,
                  n_evaluated):
        """Re-evaluate the winner at scalar rank and wrap the result
        (shared by :meth:`optimize` and :meth:`optimize_many`)."""
        if best is None:
            raise DesignSpaceError(
                "no feasible design for %d bits under policy %s "
                "(yield constraint unsatisfiable)"
                % (capacity_bits, policy.method)
            )
        final_design = DesignPoint(
            n_r=best.n_r, n_c=capacity_bits // best.n_r,
            n_pre=best.n_pre, n_wr=best.n_wr,
            v_ddc=policy.v_ddc, v_ssc=best.v_ssc, v_wl=policy.v_wl,
            v_bl=policy.v_bl,
        )
        final_metrics = self.model.evaluate(capacity_bits, final_design)
        margins = self.constraint.margins(
            final_design.v_ddc, final_design.v_ssc, final_design.v_wl,
            final_design.v_bl,
        )
        return OptimizationResult(
            capacity_bits=capacity_bits,
            flavor=self.constraint.flavor,
            method=policy.method,
            design=final_design,
            metrics=final_metrics,
            margins=margins,
            n_evaluated=n_evaluated,
            landscape=landscape,
        )

    # -- feasibility -------------------------------------------------------

    def _feasible_v_ssc(self, policy):
        """The policy's V_SSC candidates that clear the yield constraint,
        in candidate order (margins are organization-independent, so
        this is computed once per search, not once per slice)."""
        candidates = np.asarray(policy.v_ssc_candidates(self.space),
                                dtype=float)
        grid_check = getattr(self.constraint, "satisfied_grid", None)
        if grid_check is not None:
            mask = np.asarray(grid_check(
                policy.v_ddc, candidates, policy.v_wl, policy.v_bl
            ), dtype=bool)
        else:
            mask = np.array([
                bool(self.constraint.satisfied(
                    policy.v_ddc, float(v), policy.v_wl, policy.v_bl
                ))
                for v in candidates
            ], dtype=bool)
        return candidates[mask]

    def _feasible_many(self, policies):
        """Per-policy feasible V_SSC sets with the margin pass hoisted:
        policies sharing ``(v_ddc, v_wl, v_bl)`` — e.g. a consolidated
        M2 next to the M1 it collapsed onto — run *one* yield-grid
        lookup over the union of their candidate sets instead of one
        per policy.  Margins are per-``(v_ddc, v_ssc)`` values, so
        filtering each policy's own candidate list through the shared
        verdict map preserves candidate order and bit-identity with
        :meth:`_feasible_v_ssc`."""
        rails = {}
        for policy in policies:
            key = (float(policy.v_ddc), float(policy.v_wl),
                   float(policy.v_bl))
            rails.setdefault(key, []).extend(
                float(v) for v in policy.v_ssc_candidates(self.space)
            )
        grid_check = getattr(self.constraint, "satisfied_grid", None)
        verdicts = {}
        for (v_ddc, v_wl, v_bl), candidates in rails.items():
            # First-seen order, deduplicated, one grid pass per rail set.
            unique = list(dict.fromkeys(candidates))
            if grid_check is not None:
                mask = np.asarray(
                    grid_check(v_ddc, unique, v_wl, v_bl), dtype=bool
                )
            else:
                mask = np.array([
                    bool(self.constraint.satisfied(v_ddc, v, v_wl, v_bl))
                    for v in unique
                ], dtype=bool)
            verdicts[(v_ddc, v_wl, v_bl)] = dict(zip(unique, mask))
        feasibles = []
        for policy in policies:
            lookup = verdicts[(float(policy.v_ddc), float(policy.v_wl),
                               float(policy.v_bl))]
            candidates = np.asarray(
                [float(v) for v in policy.v_ssc_candidates(self.space)],
                dtype=float,
            )
            keep = np.array([lookup[float(v)] for v in candidates],
                            dtype=bool)
            feasibles.append(candidates[keep])
        return feasibles

    # -- engines -----------------------------------------------------------

    def _search_vectorized(self, capacity_bits, policy, keep_landscape):
        """O(rows) broadcast calls: one ``(S, P, W)`` evaluation per
        row count, where S spans the feasible V_SSC candidates."""
        feasible = self._feasible_v_ssc(policy)
        best = None
        landscape = []
        n_evaluated = 0
        if feasible.size == 0:
            return best, landscape, n_evaluated
        n_pre_grid, n_wr_grid = np.meshgrid(
            self.space.n_pre_values, self.space.n_wr_values, indexing="ij"
        )
        v_ssc_axis = feasible.reshape(-1, 1, 1)
        full_shape = (feasible.size,) + n_pre_grid.shape
        # One flat EDP buffer reused across row counts: broadcasting the
        # metrics into it replaces the per-row broadcast_to + reshape
        # (which copied an array per n_r).
        edp_buf = np.empty(full_shape)
        flat = edp_buf.reshape(feasible.size, -1)
        for n_r in self.space.row_counts(capacity_bits):
            design = DesignPoint(
                n_r=n_r, n_c=capacity_bits // n_r,
                n_pre=n_pre_grid, n_wr=n_wr_grid,
                v_ddc=policy.v_ddc, v_ssc=v_ssc_axis,
                v_wl=policy.v_wl, v_bl=policy.v_bl,
            )
            metrics = self.model.evaluate(capacity_bits, design)
            n_evaluated += feasible.size * n_pre_grid.size
            np.copyto(edp_buf, metrics.edp)
            d_array = np.broadcast_to(metrics.d_array, full_shape)
            e_total = np.broadcast_to(metrics.e_total, full_shape)
            slice_argmins = flat.argmin(axis=1)
            for s in range(feasible.size):
                arg = int(slice_argmins[s])
                i, j = np.unravel_index(arg, n_pre_grid.shape)
                slice_best = LandscapePoint(
                    n_r=n_r, v_ssc=float(feasible[s]),
                    n_pre=int(n_pre_grid[i, j]),
                    n_wr=int(n_wr_grid[i, j]),
                    edp=float(edp_buf[s, i, j]),
                    d_array=float(d_array[s, i, j]),
                    e_total=float(e_total[s, i, j]),
                )
                if keep_landscape:
                    landscape.append(slice_best)
                if best is None or slice_best.edp < best.edp:
                    best = slice_best
        return best, landscape, n_evaluated

    def _search_fused(self, capacity_bits, policy, keep_landscape):
        """The whole feasible space in one 4-D broadcast: axes
        ``(R, S, P, W)`` = (row counts, feasible V_SSC, N_pre, N_wr),
        reduced with pure array ops.

        The per-slice bests (one per ``(n_r, V_SSC)``) come from a
        single reshaped ``argmin`` over the fin grid; the global best is
        the argmin over those in C order, which reproduces the loop
        engines' r-major/s-minor strict-``<`` improvement scan exactly.
        """
        feasible = self._feasible_v_ssc(policy)
        landscape = []
        if feasible.size == 0:
            return None, landscape, 0
        rows = np.asarray(self.space.row_counts(capacity_bits),
                          dtype=np.int64)
        n_pre_grid, n_wr_grid = np.meshgrid(
            self.space.n_pre_values, self.space.n_wr_values, indexing="ij"
        )
        n_rows, n_slices = rows.size, feasible.size
        grid_shape = n_pre_grid.shape
        slice_shape = (n_slices,) + grid_shape
        full_shape = (n_rows,) + slice_shape
        # The fin axes go in *thin* — (P, 1) and (1, W) instead of the
        # materialized (P, W) meshgrids — so every Table-1/2 intermediate
        # keeps its minimal broadcast rank and only the final Eq.(2)-(5)
        # combines run at full rank.  Broadcasting never changes a
        # per-element value, so the results stay bit-identical.
        design = DesignPoint(
            n_r=rows.reshape(-1, 1, 1, 1),
            n_c=(capacity_bits // rows).reshape(-1, 1, 1, 1),
            n_pre=np.asarray(self.space.n_pre_values).reshape(-1, 1),
            n_wr=np.asarray(self.space.n_wr_values).reshape(1, -1),
            v_ddc=policy.v_ddc, v_ssc=feasible.reshape(1, -1, 1, 1),
            v_wl=policy.v_wl, v_bl=policy.v_bl,
        )
        metrics = self.model.evaluate(capacity_bits, design)
        n_evaluated = n_rows * n_slices * n_pre_grid.size
        row_blocks = getattr(metrics, "row_blocks", None)
        if row_blocks is not None:
            # Blocked executor: reduce each cache-sized row slice
            # directly — the full (R, S, P, W) arrays are never built.
            args_parts, edp_parts = [], []
            for row in row_blocks:
                flat = np.ascontiguousarray(
                    np.broadcast_to(row.edp, slice_shape)
                ).reshape(n_slices, -1)
                args = flat.argmin(axis=1)
                args_parts.append(args)
                edp_parts.append(np.take_along_axis(
                    flat, args.reshape(-1, 1), axis=1
                ).ravel())
            cell_args = np.concatenate(args_parts)
            slice_edp = np.concatenate(edp_parts)

            def metric_at(name, r, s, i, j):
                value = np.broadcast_to(
                    getattr(row_blocks[r], name), slice_shape
                )
                return float(value[s, i, j])
        else:
            edp = np.ascontiguousarray(
                np.broadcast_to(metrics.edp, full_shape)
            )
            flat = edp.reshape(n_rows * n_slices, -1)
            cell_args = flat.argmin(axis=1)
            slice_edp = np.take_along_axis(
                flat, cell_args.reshape(-1, 1), axis=1
            ).ravel()

            def metric_at(name, r, s, i, j):
                value = np.broadcast_to(getattr(metrics, name), full_shape)
                return float(value[r, s, i, j])
        best_slice = int(slice_edp.argmin())
        i_idx, j_idx = np.unravel_index(cell_args, grid_shape)
        slice_ids = np.arange(n_rows * n_slices)
        r_idx = slice_ids // n_slices
        s_idx = slice_ids % n_slices

        def point(k):
            r, s = int(r_idx[k]), int(s_idx[k])
            i, j = int(i_idx[k]), int(j_idx[k])
            return LandscapePoint(
                n_r=int(rows[r]), v_ssc=float(feasible[s]),
                n_pre=int(n_pre_grid[i, j]),
                n_wr=int(n_wr_grid[i, j]),
                edp=float(slice_edp[k]),
                d_array=metric_at("d_array", r, s, i, j),
                e_total=metric_at("e_total", r, s, i, j),
            )

        if keep_landscape:
            landscape = [point(k) for k in range(n_rows * n_slices)]
            best = landscape[best_slice]
        else:
            best = point(best_slice)
        return best, landscape, n_evaluated

    def _search_fused_many(self, capacity_bits, policies, feasibles,
                           keep_landscape):
        """Every policy's whole space in *one* broadcast: axes
        ``(B, R, S, P, W)`` = (policies, row counts, padded V_SSC,
        N_pre, N_wr), reduced per policy with pure array ops.

        Each policy's feasible V_SSC set is padded to the batch's widest
        (repeating its own first feasible value, so every padded slot is
        in-domain); the per-policy reductions mask padded slots with
        ``+inf``, and the surviving slots keep the exact r-major/s-minor
        flat order of the per-policy fused search — argmin ties resolve
        identically.  A rail whose value is shared by every policy rides
        in as the plain scalar (broadcasting equal values is value-
        neutral; the scalar keeps the reference arithmetic path).

        Returns one ``(best, landscape, n_evaluated)`` triple per
        policy, in input order.
        """
        rows = np.asarray(self.space.row_counts(capacity_bits),
                          dtype=np.int64)
        n_pre_grid, n_wr_grid = np.meshgrid(
            self.space.n_pre_values, self.space.n_wr_values, indexing="ij"
        )
        n_batch = len(policies)
        n_rows = rows.size
        grid_shape = n_pre_grid.shape
        s_max = max(feasible.size for feasible in feasibles)
        v_ssc_pad = np.empty((n_batch, s_max), dtype=float)
        for b, feasible in enumerate(feasibles):
            v_ssc_pad[b, :feasible.size] = feasible
            v_ssc_pad[b, feasible.size:] = feasible[0]

        def rail_axis(values):
            axis = np.asarray(values, dtype=float)
            if np.all(axis == axis[0]):
                return float(axis[0])
            return axis.reshape(-1, 1, 1, 1, 1)

        design = DesignPoint(
            n_r=rows.reshape(-1, 1, 1, 1),
            n_c=(capacity_bits // rows).reshape(-1, 1, 1, 1),
            n_pre=np.asarray(self.space.n_pre_values).reshape(-1, 1),
            n_wr=np.asarray(self.space.n_wr_values).reshape(1, -1),
            v_ddc=rail_axis([p.v_ddc for p in policies]),
            v_ssc=v_ssc_pad.reshape(n_batch, 1, s_max, 1, 1),
            v_wl=rail_axis([p.v_wl for p in policies]),
            v_bl=rail_axis([p.v_bl for p in policies]),
        )
        metrics = self.model.evaluate(capacity_bits, design)
        batch_slice_shape = (n_batch, s_max) + grid_shape
        row_blocks = getattr(metrics, "row_blocks", None)
        if row_blocks is not None:
            # Blocked executor: reduce each cache-sized row slice while
            # it is resident — the (B, R, S, P, W) tensor never exists.
            args_parts, edp_parts = [], []
            for row in row_blocks:
                flat = np.ascontiguousarray(
                    np.broadcast_to(row.edp, batch_slice_shape)
                ).reshape(n_batch * s_max, -1)
                args = flat.argmin(axis=1)
                args_parts.append(args.reshape(n_batch, s_max))
                edp_parts.append(np.take_along_axis(
                    flat, args.reshape(-1, 1), axis=1
                ).reshape(n_batch, s_max))
            cell_args = np.stack(args_parts, axis=1)   # (B, R, S)
            slice_edp = np.stack(edp_parts, axis=1)    # (B, R, S)

            def metric_at(name, b, r, s, i, j):
                value = np.broadcast_to(
                    getattr(row_blocks[r], name), batch_slice_shape
                )
                return float(value[b, s, i, j])
        else:
            full_shape = (n_batch, n_rows, s_max) + grid_shape
            edp = np.ascontiguousarray(
                np.broadcast_to(metrics.edp, full_shape)
            )
            flat = edp.reshape(n_batch * n_rows * s_max, -1)
            args = flat.argmin(axis=1)
            cell_args = args.reshape(n_batch, n_rows, s_max)
            slice_edp = np.take_along_axis(
                flat, args.reshape(-1, 1), axis=1
            ).reshape(n_batch, n_rows, s_max)

            def metric_at(name, b, r, s, i, j):
                value = np.broadcast_to(getattr(metrics, name), full_shape)
                return float(value[b, r, s, i, j])

        pad_mask = np.arange(s_max).reshape(1, -1)  # (1, S) vs S_b
        results = []
        for b, (policy, feasible) in enumerate(zip(policies, feasibles)):
            s_b = feasible.size

            def point(r, s):
                i, j = np.unravel_index(int(cell_args[b, r, s]),
                                        grid_shape)
                return LandscapePoint(
                    n_r=int(rows[r]), v_ssc=float(feasible[s]),
                    n_pre=int(n_pre_grid[i, j]),
                    n_wr=int(n_wr_grid[i, j]),
                    edp=float(slice_edp[b, r, s]),
                    d_array=metric_at("d_array", b, r, s, i, j),
                    e_total=metric_at("e_total", b, r, s, i, j),
                )

            # Padded slots never win: masked +inf keeps the valid slots'
            # relative C order, so the argmin reproduces the per-policy
            # engines' r-major/s-minor strict-< scan exactly.
            masked = np.where(pad_mask < s_b, slice_edp[b], np.inf)
            r_best, s_best = np.unravel_index(int(masked.argmin()),
                                              (n_rows, s_max))
            if keep_landscape:
                landscape = [point(r, s)
                             for r in range(n_rows) for s in range(s_b)]
                best = landscape[int(r_best) * s_b + int(s_best)]
            else:
                landscape = []
                best = point(int(r_best), int(s_best))
            n_evaluated = n_rows * s_b * n_pre_grid.size
            results.append((best, landscape, n_evaluated))
        return results

    def _score_tiles(self, capacity_bits, policy, rows, feasible,
                     tile_ids, out):
        """Evaluate the full fin grid of the given flat tile ids
        (r-major/s-minor C order) through gathered broadcast dispatches,
        recording each tile's slice-best :class:`LandscapePoint` in the
        ``out`` dict keyed by tile id.  Returns the number of design
        points evaluated.

        The gather rides the fused call shape restricted to surviving
        tiles: ``n_r`` / ``n_c`` / ``v_ssc`` carry one element per tile
        along a shared leading axis over the thin ``(P, 1) x (1, W)``
        fin axes.  A gathered ``v_ssc`` varies *along* the row axis, so
        the blocked executor never engages; instead the dispatch is
        chunked here so one call's broadcast stays within the same
        ``model.broadcast_block_elements`` working-set knob.  Chunking
        is value-neutral — every elementwise result is bit-identical to
        the scalar reference regardless of how tiles share a call.
        """
        n_pre_vals = np.asarray(self.space.n_pre_values)
        n_wr_vals = np.asarray(self.space.n_wr_values)
        n_pre_grid, n_wr_grid = np.meshgrid(
            n_pre_vals, n_wr_vals, indexing="ij"
        )
        grid_shape = n_pre_grid.shape
        grid_size = n_pre_grid.size
        n_slices = feasible.size
        tile_ids = np.asarray(tile_ids, dtype=np.int64).reshape(-1)
        chunk = max(
            1, int(self.model.broadcast_block_elements) // grid_size
        )
        n_evaluated = 0
        for start in range(0, tile_ids.size, chunk):
            ids = tile_ids[start:start + chunk]
            r_idx = ids // n_slices
            s_idx = ids % n_slices
            tile_rows = rows[r_idx]
            design = DesignPoint(
                n_r=tile_rows.reshape(-1, 1, 1),
                n_c=(capacity_bits // tile_rows).reshape(-1, 1, 1),
                n_pre=n_pre_vals.reshape(-1, 1),
                n_wr=n_wr_vals.reshape(1, -1),
                v_ddc=policy.v_ddc,
                v_ssc=feasible[s_idx].reshape(-1, 1, 1),
                v_wl=policy.v_wl, v_bl=policy.v_bl,
            )
            metrics = self.model.evaluate(capacity_bits, design)
            n_evaluated += ids.size * grid_size
            shape = (ids.size,) + grid_shape
            edp = np.ascontiguousarray(
                np.broadcast_to(metrics.edp, shape)
            )
            flat = edp.reshape(ids.size, -1)
            args = flat.argmin(axis=1)
            d_array = np.broadcast_to(metrics.d_array, shape)
            e_total = np.broadcast_to(metrics.e_total, shape)
            for t in range(ids.size):
                arg = int(args[t])
                i, j = np.unravel_index(arg, grid_shape)
                out[int(ids[t])] = LandscapePoint(
                    n_r=int(tile_rows[t]),
                    v_ssc=float(feasible[int(s_idx[t])]),
                    n_pre=int(n_pre_grid[i, j]),
                    n_wr=int(n_wr_grid[i, j]),
                    edp=float(flat[t, arg]),
                    d_array=float(d_array[t, i, j]),
                    e_total=float(e_total[t, i, j]),
                )
        return n_evaluated

    def _search_pruned(self, capacity_bits, policy, keep_landscape):
        """Bound-and-prune: skip every tile whose admissible EDP lower
        bound strictly exceeds the incumbent, then replay the loop
        engine's strict-``<`` scan over the evaluated tiles.

        Pruned tiles satisfy ``min_edp >= edp_lb > incumbent >= global
        minimum``, so they can neither win nor tie — any possible tie
        stays inside the evaluated set, where the visit-order scan
        resolves it exactly as the reference does.  The evaluation
        *count* is the one result field that legitimately differs from
        the exhaustive engines when pruning is active.
        """
        feasible = self._feasible_v_ssc(policy)
        landscape = []
        if feasible.size == 0:
            return None, landscape, 0
        rows = np.asarray(self.space.row_counts(capacity_bits),
                          dtype=np.int64)
        n_tiles = rows.size * feasible.size
        evaluated = {}
        if keep_landscape:
            # A landscape needs every tile's slice-best, so nothing can
            # be pruned; the full visit matches the loop engine exactly,
            # evaluation count included.
            n_evaluated = self._score_tiles(
                capacity_bits, policy, rows, feasible,
                np.arange(n_tiles), evaluated,
            )
            perf.count("opt.pruned.tiles_pruned", 0)
            perf.count("opt.pruned.points_evaluated", n_evaluated)
            landscape = [evaluated[t] for t in range(n_tiles)]
            best = None
            for point in landscape:
                if best is None or point.edp < best.edp:
                    best = point
            return best, landscape, n_evaluated

        bounds = tile_lower_bounds(
            self.model, self.space, capacity_bits, policy, feasible
        )
        edp_lb = bounds.edp.reshape(-1)
        # Seed: the tile with the smallest bound (first in visit order
        # on ties) is the likeliest home of the optimum; its true
        # slice-best becomes the incumbent before any pruning decision.
        seed = int(np.argmin(edp_lb))
        n_evaluated = self._score_tiles(
            capacity_bits, policy, rows, feasible, [seed], evaluated
        )
        incumbent = evaluated[seed].edp
        # Survive on <=: a bound that merely *equals* the incumbent
        # cannot justify pruning (the tile could tie, and ties must
        # resolve by visit order among evaluated tiles).
        survivors = np.flatnonzero(edp_lb <= incumbent)
        survivors = survivors[survivors != seed]
        n_evaluated += self._score_tiles(
            capacity_bits, policy, rows, feasible, survivors, evaluated
        )
        perf.count("opt.pruned.tiles_pruned",
                   n_tiles - 1 - int(survivors.size))
        perf.count("opt.pruned.points_evaluated", n_evaluated)
        best = None
        for tile in sorted(evaluated):
            point = evaluated[tile]
            if best is None or point.edp < best.edp:
                best = point
        return best, landscape, n_evaluated

    def _search_loop(self, capacity_bits, policy, keep_landscape):
        """The original per-(n_r, V_SSC) slice loop (reference engine)."""
        n_pre_grid, n_wr_grid = np.meshgrid(
            self.space.n_pre_values, self.space.n_wr_values, indexing="ij"
        )
        best = None
        landscape = []
        n_evaluated = 0
        for n_r in self.space.row_counts(capacity_bits):
            n_c = capacity_bits // n_r
            for v_ssc in policy.v_ssc_candidates(self.space):
                if not self.constraint.satisfied(
                    policy.v_ddc, v_ssc, policy.v_wl, policy.v_bl
                ):
                    continue
                design = DesignPoint(
                    n_r=n_r, n_c=n_c,
                    n_pre=n_pre_grid, n_wr=n_wr_grid,
                    v_ddc=policy.v_ddc, v_ssc=float(v_ssc),
                    v_wl=policy.v_wl, v_bl=policy.v_bl,
                )
                metrics = self.model.evaluate(capacity_bits, design)
                n_evaluated += n_pre_grid.size
                flat = int(np.argmin(metrics.edp))
                i, j = np.unravel_index(flat, n_pre_grid.shape)
                slice_best = LandscapePoint(
                    n_r=n_r, v_ssc=float(v_ssc),
                    n_pre=int(n_pre_grid[i, j]),
                    n_wr=int(n_wr_grid[i, j]),
                    edp=float(metrics.edp[i, j]),
                    d_array=float(metrics.d_array[i, j]),
                    e_total=float(metrics.e_total[i, j]),
                )
                if keep_landscape:
                    landscape.append(slice_best)
                if best is None or slice_best.edp < best.edp:
                    best = slice_best
        return best, landscape, n_evaluated
