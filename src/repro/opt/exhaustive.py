"""Exhaustive minimum-EDP search (paper Section 5).

With V_DDC / V_WL pre-set by the voltage policy, the free variables are
``(n_r, V_SSC, N_pre, N_wr)`` — small enough for exhaustive search (the
paper reports under two minutes on a 2011-era server; the vectorized
grid evaluation here takes milliseconds per configuration).

Three search engines share one result path:

* ``engine="fused"`` — one policy's *entire* feasible
  ``n_r x V_SSC x N_pre x N_wr`` space in a single 4-D broadcast call
  of the array model: the row-count axis (with its paired
  ``n_c = capacity // n_r``) rides along as ``(R, 1, 1, 1)``, V_SSC as
  ``(1, S, 1, 1)``, over the ``(P, W)`` fin grid.  The per-slice
  reductions (one landscape point per ``(n_r, V_SSC)``) are pure
  ``argmin`` / ``unravel_index`` array ops, so a whole search is one
  ``model.evaluate`` call plus reductions.
* ``engine="vectorized"`` (default) — the whole feasible
  ``V_SSC x N_pre x N_wr`` space of one row count is evaluated in a
  single broadcast call of the array model (``v_ssc`` rides along as a
  ``(S, 1, 1)`` axis over the fin grid), so a full policy search costs
  O(rows) model calls.  The yield constraint is applied once, up front,
  as a vectorized boolean mask over the V_SSC candidates
  (:meth:`YieldConstraint.satisfied_grid`) — cell margins do not depend
  on the organization or the fin counts.
* ``engine="loop"`` — the original per-``(n_r, V_SSC)`` slice loop,
  kept as the bit-exact reference the equivalence tests compare
  against.

All engines perform the same elementwise arithmetic in the same order,
so they return bit-identical results (designs, EDP, evaluation counts,
and landscapes).
"""

from __future__ import annotations

import numpy as np

from .. import perf
from ..array.model import DesignPoint
from ..errors import DesignSpaceError
from .results import LandscapePoint, OptimizationResult


class ExhaustiveOptimizer:
    """Minimum-EDP exhaustive search over a :class:`DesignSpace`."""

    def __init__(self, model, space, constraint):
        self.model = model
        self.space = space
        self.constraint = constraint

    def optimize(self, capacity_bits, policy, keep_landscape=False,
                 engine="vectorized"):
        """Search one capacity under one voltage policy.

        Returns an :class:`OptimizationResult`; raises
        :class:`DesignSpaceError` when no candidate satisfies the yield
        constraint.
        """
        if engine == "vectorized":
            search = self._search_vectorized
        elif engine == "fused":
            search = self._search_fused
        elif engine == "loop":
            search = self._search_loop
        else:
            raise ValueError(
                "unknown engine %r (expected 'fused', 'vectorized' or "
                "'loop')" % (engine,)
            )
        with perf.timed("optimizer.search.%s" % engine):
            best, landscape, n_evaluated = search(
                capacity_bits, policy, keep_landscape
            )
        perf.count("optimizer.evaluations", n_evaluated)
        if best is None:
            raise DesignSpaceError(
                "no feasible design for %d bits under policy %s "
                "(yield constraint unsatisfiable)"
                % (capacity_bits, policy.method)
            )
        final_design = DesignPoint(
            n_r=best.n_r, n_c=capacity_bits // best.n_r,
            n_pre=best.n_pre, n_wr=best.n_wr,
            v_ddc=policy.v_ddc, v_ssc=best.v_ssc, v_wl=policy.v_wl,
            v_bl=policy.v_bl,
        )
        final_metrics = self.model.evaluate(capacity_bits, final_design)
        margins = self.constraint.margins(
            final_design.v_ddc, final_design.v_ssc, final_design.v_wl,
            final_design.v_bl,
        )
        return OptimizationResult(
            capacity_bits=capacity_bits,
            flavor=self.constraint.flavor,
            method=policy.method,
            design=final_design,
            metrics=final_metrics,
            margins=margins,
            n_evaluated=n_evaluated,
            landscape=landscape,
        )

    # -- feasibility -------------------------------------------------------

    def _feasible_v_ssc(self, policy):
        """The policy's V_SSC candidates that clear the yield constraint,
        in candidate order (margins are organization-independent, so
        this is computed once per search, not once per slice)."""
        candidates = np.asarray(policy.v_ssc_candidates(self.space),
                                dtype=float)
        grid_check = getattr(self.constraint, "satisfied_grid", None)
        if grid_check is not None:
            mask = np.asarray(grid_check(
                policy.v_ddc, candidates, policy.v_wl, policy.v_bl
            ), dtype=bool)
        else:
            mask = np.array([
                bool(self.constraint.satisfied(
                    policy.v_ddc, float(v), policy.v_wl, policy.v_bl
                ))
                for v in candidates
            ], dtype=bool)
        return candidates[mask]

    # -- engines -----------------------------------------------------------

    def _search_vectorized(self, capacity_bits, policy, keep_landscape):
        """O(rows) broadcast calls: one ``(S, P, W)`` evaluation per
        row count, where S spans the feasible V_SSC candidates."""
        feasible = self._feasible_v_ssc(policy)
        best = None
        landscape = []
        n_evaluated = 0
        if feasible.size == 0:
            return best, landscape, n_evaluated
        n_pre_grid, n_wr_grid = np.meshgrid(
            self.space.n_pre_values, self.space.n_wr_values, indexing="ij"
        )
        v_ssc_axis = feasible.reshape(-1, 1, 1)
        full_shape = (feasible.size,) + n_pre_grid.shape
        # One flat EDP buffer reused across row counts: broadcasting the
        # metrics into it replaces the per-row broadcast_to + reshape
        # (which copied an array per n_r).
        edp_buf = np.empty(full_shape)
        flat = edp_buf.reshape(feasible.size, -1)
        for n_r in self.space.row_counts(capacity_bits):
            design = DesignPoint(
                n_r=n_r, n_c=capacity_bits // n_r,
                n_pre=n_pre_grid, n_wr=n_wr_grid,
                v_ddc=policy.v_ddc, v_ssc=v_ssc_axis,
                v_wl=policy.v_wl, v_bl=policy.v_bl,
            )
            metrics = self.model.evaluate(capacity_bits, design)
            n_evaluated += feasible.size * n_pre_grid.size
            np.copyto(edp_buf, metrics.edp)
            d_array = np.broadcast_to(metrics.d_array, full_shape)
            e_total = np.broadcast_to(metrics.e_total, full_shape)
            slice_argmins = flat.argmin(axis=1)
            for s in range(feasible.size):
                arg = int(slice_argmins[s])
                i, j = np.unravel_index(arg, n_pre_grid.shape)
                slice_best = LandscapePoint(
                    n_r=n_r, v_ssc=float(feasible[s]),
                    n_pre=int(n_pre_grid[i, j]),
                    n_wr=int(n_wr_grid[i, j]),
                    edp=float(edp_buf[s, i, j]),
                    d_array=float(d_array[s, i, j]),
                    e_total=float(e_total[s, i, j]),
                )
                if keep_landscape:
                    landscape.append(slice_best)
                if best is None or slice_best.edp < best.edp:
                    best = slice_best
        return best, landscape, n_evaluated

    def _search_fused(self, capacity_bits, policy, keep_landscape):
        """The whole feasible space in one 4-D broadcast: axes
        ``(R, S, P, W)`` = (row counts, feasible V_SSC, N_pre, N_wr),
        reduced with pure array ops.

        The per-slice bests (one per ``(n_r, V_SSC)``) come from a
        single reshaped ``argmin`` over the fin grid; the global best is
        the argmin over those in C order, which reproduces the loop
        engines' r-major/s-minor strict-``<`` improvement scan exactly.
        """
        feasible = self._feasible_v_ssc(policy)
        landscape = []
        if feasible.size == 0:
            return None, landscape, 0
        rows = np.asarray(self.space.row_counts(capacity_bits),
                          dtype=np.int64)
        n_pre_grid, n_wr_grid = np.meshgrid(
            self.space.n_pre_values, self.space.n_wr_values, indexing="ij"
        )
        n_rows, n_slices = rows.size, feasible.size
        grid_shape = n_pre_grid.shape
        slice_shape = (n_slices,) + grid_shape
        full_shape = (n_rows,) + slice_shape
        # The fin axes go in *thin* — (P, 1) and (1, W) instead of the
        # materialized (P, W) meshgrids — so every Table-1/2 intermediate
        # keeps its minimal broadcast rank and only the final Eq.(2)-(5)
        # combines run at full rank.  Broadcasting never changes a
        # per-element value, so the results stay bit-identical.
        design = DesignPoint(
            n_r=rows.reshape(-1, 1, 1, 1),
            n_c=(capacity_bits // rows).reshape(-1, 1, 1, 1),
            n_pre=np.asarray(self.space.n_pre_values).reshape(-1, 1),
            n_wr=np.asarray(self.space.n_wr_values).reshape(1, -1),
            v_ddc=policy.v_ddc, v_ssc=feasible.reshape(1, -1, 1, 1),
            v_wl=policy.v_wl, v_bl=policy.v_bl,
        )
        metrics = self.model.evaluate(capacity_bits, design)
        n_evaluated = n_rows * n_slices * n_pre_grid.size
        row_blocks = getattr(metrics, "row_blocks", None)
        if row_blocks is not None:
            # Blocked executor: reduce each cache-sized row slice
            # directly — the full (R, S, P, W) arrays are never built.
            args_parts, edp_parts = [], []
            for row in row_blocks:
                flat = np.ascontiguousarray(
                    np.broadcast_to(row.edp, slice_shape)
                ).reshape(n_slices, -1)
                args = flat.argmin(axis=1)
                args_parts.append(args)
                edp_parts.append(np.take_along_axis(
                    flat, args.reshape(-1, 1), axis=1
                ).ravel())
            cell_args = np.concatenate(args_parts)
            slice_edp = np.concatenate(edp_parts)

            def metric_at(name, r, s, i, j):
                value = np.broadcast_to(
                    getattr(row_blocks[r], name), slice_shape
                )
                return float(value[s, i, j])
        else:
            edp = np.ascontiguousarray(
                np.broadcast_to(metrics.edp, full_shape)
            )
            flat = edp.reshape(n_rows * n_slices, -1)
            cell_args = flat.argmin(axis=1)
            slice_edp = np.take_along_axis(
                flat, cell_args.reshape(-1, 1), axis=1
            ).ravel()

            def metric_at(name, r, s, i, j):
                value = np.broadcast_to(getattr(metrics, name), full_shape)
                return float(value[r, s, i, j])
        best_slice = int(slice_edp.argmin())
        i_idx, j_idx = np.unravel_index(cell_args, grid_shape)
        slice_ids = np.arange(n_rows * n_slices)
        r_idx = slice_ids // n_slices
        s_idx = slice_ids % n_slices

        def point(k):
            r, s = int(r_idx[k]), int(s_idx[k])
            i, j = int(i_idx[k]), int(j_idx[k])
            return LandscapePoint(
                n_r=int(rows[r]), v_ssc=float(feasible[s]),
                n_pre=int(n_pre_grid[i, j]),
                n_wr=int(n_wr_grid[i, j]),
                edp=float(slice_edp[k]),
                d_array=metric_at("d_array", r, s, i, j),
                e_total=metric_at("e_total", r, s, i, j),
            )

        if keep_landscape:
            landscape = [point(k) for k in range(n_rows * n_slices)]
            best = landscape[best_slice]
        else:
            best = point(best_slice)
        return best, landscape, n_evaluated

    def _search_loop(self, capacity_bits, policy, keep_landscape):
        """The original per-(n_r, V_SSC) slice loop (reference engine)."""
        n_pre_grid, n_wr_grid = np.meshgrid(
            self.space.n_pre_values, self.space.n_wr_values, indexing="ij"
        )
        best = None
        landscape = []
        n_evaluated = 0
        for n_r in self.space.row_counts(capacity_bits):
            n_c = capacity_bits // n_r
            for v_ssc in policy.v_ssc_candidates(self.space):
                if not self.constraint.satisfied(
                    policy.v_ddc, v_ssc, policy.v_wl, policy.v_bl
                ):
                    continue
                design = DesignPoint(
                    n_r=n_r, n_c=n_c,
                    n_pre=n_pre_grid, n_wr=n_wr_grid,
                    v_ddc=policy.v_ddc, v_ssc=float(v_ssc),
                    v_wl=policy.v_wl, v_bl=policy.v_bl,
                )
                metrics = self.model.evaluate(capacity_bits, design)
                n_evaluated += n_pre_grid.size
                flat = int(np.argmin(metrics.edp))
                i, j = np.unravel_index(flat, n_pre_grid.shape)
                slice_best = LandscapePoint(
                    n_r=n_r, v_ssc=float(v_ssc),
                    n_pre=int(n_pre_grid[i, j]),
                    n_wr=int(n_wr_grid[i, j]),
                    edp=float(metrics.edp[i, j]),
                    d_array=float(metrics.d_array[i, j]),
                    e_total=float(metrics.e_total[i, j]),
                )
                if keep_landscape:
                    landscape.append(slice_best)
                if best is None or slice_best.edp < best.edp:
                    best = slice_best
        return best, landscape, n_evaluated
