"""The optimization design space (paper Section 5).

Ranges: ``V_SSC in {0, -10mV, ..., -240mV}`` (RSNM degrades below
-240 mV), ``n_r in {2^1 .. 2^10}``, ``N_pre in 1..50``,
``N_wr in 1..20``.  ``V_DDC`` and ``V_WL`` are not swept — the paper
pre-sets them to the minimum levels meeting the RSNM / WM yield
requirements (see :mod:`repro.opt.methods`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import DesignSpaceError
from ..units import is_power_of_two


def _default_v_ssc():
    return tuple(np.round(np.arange(0.0, -0.2401, -0.010), 3))


@dataclass(frozen=True)
class DesignSpace:
    """Search ranges for the free optimization variables."""

    v_ssc_values: tuple = field(default_factory=_default_v_ssc)
    n_r_min: int = 2
    n_r_max: int = 1024
    #: The paper sizes fixed periphery for up to 1024 columns.
    n_c_max: int = 1024
    n_pre_max: int = 50
    n_wr_max: int = 20

    def __post_init__(self):
        if not (is_power_of_two(self.n_r_min)
                and is_power_of_two(self.n_r_max)):
            raise DesignSpaceError("row-count bounds must be powers of two")
        if self.n_r_min > self.n_r_max:
            raise DesignSpaceError("n_r_min must not exceed n_r_max")
        if self.n_pre_max < 1 or self.n_wr_max < 1:
            raise DesignSpaceError("fin-count ranges must be >= 1")

    def row_counts(self, capacity_bits):
        """Valid n_r values for a capacity: powers of two within range
        that divide the capacity and keep n_c <= n_c_max."""
        values = []
        n_r = self.n_r_min
        while n_r <= min(self.n_r_max, capacity_bits):
            if capacity_bits % n_r == 0:
                n_c = capacity_bits // n_r
                if 1 <= n_c <= self.n_c_max:
                    values.append(n_r)
            n_r *= 2
        if not values:
            raise DesignSpaceError(
                "no valid organization for %d bits within the space"
                % capacity_bits
            )
        return values

    @property
    def n_pre_values(self):
        return np.arange(1, self.n_pre_max + 1)

    @property
    def n_wr_values(self):
        return np.arange(1, self.n_wr_max + 1)

    def size(self, capacity_bits):
        """Number of raw design points for one capacity/method."""
        return (
            len(self.row_counts(capacity_bits))
            * len(self.v_ssc_values)
            * self.n_pre_max
            * self.n_wr_max
        )
