"""Voltage-rail policies M1 and M2 (paper Section 5).

The paper argues V_DDC and V_WL should simply sit at the minimum levels
that satisfy the RSNM / WM yield requirements (raising V_DDC costs read
energy without read-delay benefit; raising V_WL costs WL delay and
energy while the cell write delay it improves is negligible).  The two
methods then differ in how many extra voltage rails the design may use:

* **M1** — a single extra rail besides Vdd, at
  ``max(V_DDC_min, V_WL_min)``; both the cell supply boost and the WL
  overdrive use it, and no negative rail exists (``V_SSC = 0``).
* **M2** — no rail restriction: V_DDC and V_WL take their individual
  minima (consolidated onto one rail when they are within 20 mV, as the
  paper does for its HVT array where 550 vs 540 mV becomes one 550 mV
  pin) and V_SSC becomes a free optimization variable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..assist.study import minimum_vdd_boost, minimum_wl_overdrive
from ..cell.sram6t import SRAM6TCell

#: Rails closer than this are consolidated onto one pin under M2.
CONSOLIDATION_THRESHOLD = 0.020


@dataclass(frozen=True)
class YieldLevels:
    """Minimum assist levels meeting the yield requirement."""

    v_ddc_min: float
    v_wl_min: float

    @classmethod
    def measure(cls, library, flavor, delta):
        """Measure both minima for one cell flavor."""
        cell = SRAM6TCell.from_library(library, flavor)
        return cls(
            v_ddc_min=minimum_vdd_boost(library, cell, delta),
            v_wl_min=minimum_wl_overdrive(library, cell, delta),
        )


@dataclass(frozen=True)
class VoltagePolicy:
    """Resolved rail voltages for one method/flavor combination."""

    method: str
    v_ddc: float
    v_ssc_free: bool
    v_wl: float
    extra_rails: int
    #: Write-low bitline level (extension: the negative-BL policy).
    v_bl: float = 0.0

    def v_ssc_candidates(self, space):
        """The V_SSC values the optimizer may explore."""
        if self.v_ssc_free:
            return space.v_ssc_values
        return (0.0,)


def policy_m1(levels):
    """Method M1: one extra (high) rail, no negative rail."""
    v_high = max(levels.v_ddc_min, levels.v_wl_min)
    return VoltagePolicy(
        method="M1", v_ddc=v_high, v_ssc_free=False, v_wl=v_high,
        extra_rails=1,
    )


def policy_m2(levels, consolidation=CONSOLIDATION_THRESHOLD):
    """Method M2: unrestricted rails; V_SSC joins the search space."""
    v_ddc, v_wl = levels.v_ddc_min, levels.v_wl_min
    rails = 3
    if abs(v_ddc - v_wl) <= consolidation:
        shared = max(v_ddc, v_wl)
        v_ddc = v_wl = shared
        rails = 2
    return VoltagePolicy(
        method="M2", v_ddc=v_ddc, v_ssc_free=True, v_wl=v_wl,
        extra_rails=rails,
    )


def policy_m2_negative_bl(levels, vdd, v_bl):
    """Extension: M2-style rails with the negative-BL write assist
    instead of WL overdrive.

    The wordline stays at nominal Vdd (no WLOD rail) and the write
    margin is provided by driving the write-low bitline to ``v_bl``;
    V_DDC keeps its RSNM minimum and V_SSC stays a free variable.  The
    design needs the same number of extra rails as a 3-pin M2 (V_DDC,
    V_SSC, and the negative BL rail).
    """
    if v_bl >= 0:
        raise ValueError("the negative-BL policy needs v_bl < 0")
    return VoltagePolicy(
        method="M2-NBL", v_ddc=levels.v_ddc_min, v_ssc_free=True,
        v_wl=vdd, extra_rails=3, v_bl=v_bl,
    )


def make_policy(method, levels):
    """Policy by method name ("M1" or "M2")."""
    if method == "M1":
        return policy_m1(levels)
    if method == "M2":
        return policy_m2(levels)
    raise ValueError("unknown method %r (expected 'M1' or 'M2')" % (method,))
