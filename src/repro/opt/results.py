"""Result containers for the co-optimization framework."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..units import capacity_label


@dataclass
class OptimizationResult:
    """The minimum-EDP design found for one capacity/flavor/method."""

    capacity_bits: int
    flavor: str
    method: str
    design: object          # DesignPoint
    metrics: object         # ArrayMetrics (scalar fields)
    margins: tuple          # (HSNM, RSNM, WM) at the chosen point
    n_evaluated: int
    #: Per-(n_r, v_ssc) best EDP, for search-landscape analysis.
    landscape: list = field(default_factory=list)

    @property
    def capacity_bytes(self):
        return self.capacity_bits // 8

    @property
    def label(self):
        return "6T-%s-%s" % (self.flavor.upper(), self.method)

    def row(self):
        """A Table-4-style row of the design parameters."""
        d = self.design
        return {
            "capacity": capacity_label(self.capacity_bytes),
            "config": self.label,
            "n_r": d.n_r,
            "n_c": d.n_c,
            "N_pre": int(d.n_pre),
            "N_wr": int(d.n_wr),
            "V_DDC_mV": round(d.v_ddc * 1e3),
            "V_SSC_mV": round(d.v_ssc * 1e3),
            "V_WL_mV": round(d.v_wl * 1e3),
        }

    def summary(self):
        m = self.metrics
        return (
            "%s %s: EDP=%.4g Js  D=%.4g s  E=%.4g J  (%s)"
            % (capacity_label(self.capacity_bytes), self.label,
               m.edp, m.d_array, m.e_total, self.design.describe())
        )


@dataclass
class LandscapePoint:
    """Best metrics at one (n_r, v_ssc) slice of the search."""

    n_r: int
    v_ssc: float
    n_pre: int
    n_wr: int
    edp: float
    d_array: float
    e_total: float
