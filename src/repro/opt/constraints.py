"""Yield constraints on the optimization (paper Section 4).

The accurate formulation is ``min((mu - k sigma)_HSNM, (mu - k
sigma)_RSNM, (mu - k sigma)_WM) >= 0``; the paper simplifies it to
``min(HSNM, RSNM, WM) >= delta`` with ``delta = 0.35 * Vdd``.  Both
modes are provided; the fixed-delta mode is the default used everywhere
(it is what the paper optimizes with).

Because RSNM depends on (V_DDC, V_SSC) — the negative-Gnd assist mildly
changes it — the constraint precomputes RSNM over the candidate V_SSC
values once per policy instead of re-running butterflies inside the
search loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cell.bias import CellBias
from ..cell.snm import butterfly, hold_snm
from ..cell.sram6t import SRAM6TCell
from ..cell.write import flip_wordline_voltage


@dataclass
class YieldConstraint:
    """Fixed-delta yield constraint for one flavor/policy.

    ``trust_fixed_rails`` supports the "paper voltages" reproduction
    mode: V_DDC / V_WL are pinned to the levels the paper reports, whose
    yield the paper's own SPICE analysis established, so the constraint
    only screens the quantity that still varies during the search — the
    read margin across the V_SSC sweep (plus the hold margin).
    """

    library: object
    flavor: str
    delta: float
    trust_fixed_rails: bool = False
    #: Optional callable v_bl -> flip WL voltage (wired from the
    #: characterization's negative-BL LUT); used by the negative-BL
    #: write-assist policy.  Without it, v_bl != 0 falls back to a
    #: fresh (slow) flip-voltage search.
    flip_lookup: object = None
    _cell: object = field(default=None, repr=False)
    _hsnm: float = field(default=None, repr=False)
    _v_flip: float = field(default=None, repr=False)
    _rsnm_cache: dict = field(default_factory=dict, repr=False)

    @property
    def cell(self):
        if self._cell is None:
            self._cell = SRAM6TCell.from_library(self.library, self.flavor)
        return self._cell

    def hsnm(self):
        """Hold SNM at the nominal supply (independent of assists)."""
        if self._hsnm is None:
            self._hsnm = hold_snm(self.cell, self.library.vdd)
        return self._hsnm

    def rsnm(self, v_ddc, v_ssc):
        """Read SNM under the given rail assists (memoized)."""
        key = (round(v_ddc, 4), round(v_ssc, 4))
        if key not in self._rsnm_cache:
            bias = CellBias.read(vdd=self.library.vdd, v_ddc=v_ddc,
                                 v_ssc=v_ssc)
            self._rsnm_cache[key] = butterfly(
                self.cell, bias, access_on=True
            ).snm
        return self._rsnm_cache[key]

    def wm(self, v_wl, v_bl=0.0):
        """Write margin at the applied WL (and optional negative-BL)
        level: ``V_WL - V_WL,flip(v_bl)``."""
        if v_bl < 0.0:
            if self.flip_lookup is not None:
                return v_wl - self.flip_lookup(v_bl)
            return v_wl - flip_wordline_voltage(
                self.cell, vdd=self.library.vdd, v_bl_low=v_bl
            )
        if self._v_flip is None:
            self._v_flip = flip_wordline_voltage(
                self.cell, vdd=self.library.vdd
            )
        return v_wl - self._v_flip

    def margins(self, v_ddc, v_ssc, v_wl, v_bl=0.0):
        """(HSNM, RSNM, WM) at one operating point."""
        return self.hsnm(), self.rsnm(v_ddc, v_ssc), self.wm(v_wl, v_bl)

    def satisfied(self, v_ddc, v_ssc, v_wl, v_bl=0.0):
        """The paper's constraint: min(HSNM, RSNM, WM) >= delta."""
        hsnm, rsnm, wm = self.margins(v_ddc, v_ssc, v_wl, v_bl)
        if self.trust_fixed_rails:
            return min(hsnm, rsnm) >= self.delta
        return min(hsnm, rsnm, wm) >= self.delta

    # -- batch API (the vectorized search path) ----------------------------

    def margins_grid(self, v_ddc, v_ssc_values, v_wl, v_bl=0.0):
        """(HSNM, RSNM, WM) arrays across a whole V_SSC candidate axis.

        HSNM and WM do not depend on V_SSC, so they broadcast; RSNM is
        looked up per level through the same memo the scalar path uses,
        which keeps both paths numerically identical and means each
        distinct operating point runs at most one butterfly per process.
        """
        v_ssc_values = np.asarray(v_ssc_values, dtype=float)
        rsnm = np.array([
            self.rsnm(v_ddc, float(v)) for v in v_ssc_values
        ])
        hsnm = np.full(v_ssc_values.shape, self.hsnm())
        wm = np.full(v_ssc_values.shape, self.wm(v_wl, v_bl))
        return hsnm, rsnm, wm

    def satisfied_grid(self, v_ddc, v_ssc_values, v_wl, v_bl=0.0):
        """Boolean feasibility mask over a V_SSC candidate axis."""
        hsnm, rsnm, wm = self.margins_grid(v_ddc, v_ssc_values, v_wl, v_bl)
        if self.trust_fixed_rails:
            return np.minimum(hsnm, rsnm) >= self.delta
        return np.minimum(np.minimum(hsnm, rsnm), wm) >= self.delta

    # -- memo transport (sharing margins across worker processes) ----------

    def export_margin_memo(self):
        """Picklable snapshot of every memoized margin quantity."""
        return {
            "hsnm": self._hsnm,
            "v_flip": self._v_flip,
            "rsnm": dict(self._rsnm_cache),
        }

    def seed_margin_memo(self, memo):
        """Pre-load margins computed elsewhere (e.g. by the parent of a
        worker pool), so no process recomputes a butterfly the study
        already ran."""
        if memo.get("hsnm") is not None:
            self._hsnm = memo["hsnm"]
        if memo.get("v_flip") is not None:
            self._v_flip = memo["v_flip"]
        self._rsnm_cache.update(memo.get("rsnm", {}))


@dataclass
class YieldTargetConstraint:
    """Array-yield-target constraint with ECC-aware margin relaxation.

    Replaces the fixed floor ``min(margins) >= delta`` with "the array
    yields at probability >= ``y_target`` given code ``code``".  Under
    the Gaussian tail model a cell fails when its margin falls below
    zero, so a per-cell failure budget ``p_max`` translates into a
    required margin of ``z(p_max) * sigma`` over the variation sigma at
    the operating point.  The paper's delta is exactly such a z-score
    headroom for the *uncoded* budget; an error-correcting code raises
    the admissible per-cell budget, lowering the requirement by::

        requirement = delta - delta_z * sigma(v_ddc, v_ssc)
        delta_z     = z(uncoded budget) - z(coded budget)

    (:func:`repro.yields.failure.margin_relaxation_z`).  With
    ``code="none"`` the relaxation is exactly ``0.0`` and the
    constraint degenerates to :class:`YieldConstraint` bit-for-bit —
    same margins, same comparisons, no Monte Carlo at all — so the
    fixed-delta optimum is reproduced exactly for *any* ``y_target``.

    ``sigma`` is the ddof=1 standard deviation of the per-sample
    ``min(HSNM, RSNM)`` margin from the cell Monte Carlo engine,
    memoized per (V_DDC, V_SSC) rail pair (it does not depend on V_WL).
    The Vt shift matrix behind those statistics is drawn *once* and
    shared by every rail pair (and every margin-floor iteration) — the
    draw is seed-deterministic, so re-sampling it per point was pure
    waste.  Deterministic margins delegate to an internal
    :class:`YieldConstraint`, so all four search engines see one
    feasibility mask and stay bit-identical.

    ``sampler`` selects how the relaxation is measured:

    * ``"gaussian"`` (default) — the closed-form ``delta_z * sigma``
      above; bit-identical to the historical behavior.
    * a :data:`repro.cell.importance.SAMPLERS` name — the relaxation is
      read off a rare-event-sampled margin distribution instead of the
      Gaussian extrapolation::

          relaxation = Q(p_coded) - Q(p_uncoded)

      where ``Q`` inverts the sampled tail mass
      (:meth:`repro.cell.importance.TailSampleBuffer.floor_for`) — for
      Gaussian margins this reduces to ``delta_z * sigma`` exactly.
      One :class:`~repro.cell.importance.TailSampleBuffer` per rail
      pair feeds every floor query; the margin-floor bisection reuses
      its cached, consolidated samples with no re-solve and no
      per-iteration allocation.  An unconverged or unresolvable tail
      (``max_samples`` exhausted, or no samples below the budget
      quantile) falls back to the Gaussian relaxation for that rail
      pair.
    """

    library: object
    flavor: str
    delta: float
    y_target: float
    code: object          # repro.yields.ecc.ECCCode
    capacity_bits: int
    word_bits: int = 64
    trust_fixed_rails: bool = False
    flip_lookup: object = None
    n_samples: int = 120
    seed: int = 0
    #: Share of the coded per-cell failure budget granted to cell
    #: stability; the remainder funds other correctable mechanisms
    #: (the study's relaxed sensing margin).  1.0 = margins get it all.
    margin_budget_fraction: float = 1.0
    #: "gaussian" (closed form) or a rare-event sampler name.
    sampler: str = "gaussian"
    #: Relative 95% CI half-width the sampled relaxation targets.
    ci_target: float = 0.1
    #: Sample cap of the adaptive budget loop (per rail pair).
    max_samples: int = 4096
    base: YieldConstraint = field(default=None, repr=False)
    #: (v_ddc, v_ssc) -> (mu, sigma, tail_count, n_samples) of the
    #: per-sample min(HSNM, RSNM) margin.
    _stat_cache: dict = field(default_factory=dict, repr=False)
    delta_z: float = field(default=None, repr=False)
    #: The one shared Vt shift draw behind every min_margin_stats call.
    _shift_matrix: object = field(default=None, repr=False)
    _mc_cell: object = field(default=None, repr=False)
    #: (v_ddc, v_ssc) -> TailSampleBuffer (sampled relaxation mode).
    _buffer_cache: dict = field(default_factory=dict, repr=False)
    #: (v_ddc, v_ssc) -> (relaxation [V], TailEstimate | None).
    _relax_cache: dict = field(default_factory=dict, repr=False)
    #: Failure direction reused as a search hint across rail pairs.
    _direction_hint: object = field(default=None, repr=False)

    def __post_init__(self):
        from ..yields.ecc import make_code
        from ..yields.failure import margin_relaxation_z

        if isinstance(self.code, str):
            self.code = make_code(self.code, self.word_bits)
        if self.sampler != "gaussian":
            from ..cell.importance import SAMPLERS

            if self.sampler not in SAMPLERS:
                raise ValueError(
                    "unknown sampler %r (expected 'gaussian' or one of "
                    "%s)" % (self.sampler, "/".join(SAMPLERS))
                )
        if self.base is None:
            self.base = YieldConstraint(
                library=self.library, flavor=self.flavor,
                delta=self.delta, trust_fixed_rails=self.trust_fixed_rails,
                flip_lookup=self.flip_lookup,
            )
        if self.delta_z is None:
            self.delta_z = margin_relaxation_z(
                self.y_target, self.code, self.n_words,
                budget_fraction=self.margin_budget_fraction,
            )

    @property
    def n_words(self):
        return self.capacity_bits // self.word_bits

    # -- variation statistics ----------------------------------------------

    @property
    def shift_matrix(self):
        """The one seed-deterministic Vt shift draw every rail pair
        (and every margin-floor iteration) shares.  Identical to what
        each ``run_cell_montecarlo(n_samples, seed)`` call used to
        re-draw per point — hoisted so it is sampled exactly once."""
        if self._shift_matrix is None:
            from ..cell.montecarlo import sample_shift_matrix

            self._shift_matrix = sample_shift_matrix(
                self.n_samples, seed=self.seed
            )
        return self._shift_matrix

    def min_margin_stats(self, v_ddc, v_ssc):
        """(mu, sigma, tail_count, n) of per-sample min(HSNM, RSNM)."""
        key = (round(v_ddc, 4), round(v_ssc, 4))
        if key not in self._stat_cache:
            from ..cell.montecarlo import _margins_batched, batched_cell

            if self._mc_cell is None:
                self._mc_cell = batched_cell(self.base.cell,
                                             self.shift_matrix)
            vdd = self.library.vdd
            bias = CellBias.read(vdd=vdd, v_ddc=v_ddc, v_ssc=v_ssc)
            collected = _margins_batched(
                self._mc_cell, self.n_samples, vdd, bias,
                CellBias.hold(vdd), ("hsnm", "rsnm"), 0.002, 41,
            )
            # Samples are shift-aligned across metrics, so the
            # elementwise min is the per-instance worst margin.
            values = np.minimum(np.asarray(collected["hsnm"]),
                                np.asarray(collected["rsnm"]))
            self._stat_cache[key] = (
                float(np.mean(values)),
                float(np.std(values, ddof=1)),
                int(np.sum(values < 0.0)),
                int(values.size),
            )
        return self._stat_cache[key]

    def sigma(self, v_ddc, v_ssc):
        """Min-margin variation sigma at the rail pair [V]."""
        return self.min_margin_stats(v_ddc, v_ssc)[1]

    def requirement(self, v_ddc, v_ssc):
        """The relaxed margin floor ``delta - relaxation`` [V].

        Exactly ``delta`` (no Monte Carlo run) when the code buys no
        relaxation, and never below zero — a negative requirement would
        accept cells that already fail nominally.
        """
        if self.delta_z == 0.0:
            return self.delta
        return max(self.delta - self.relaxation(v_ddc, v_ssc), 0.0)

    def relaxation(self, v_ddc, v_ssc):
        """Margin-floor relaxation the code buys at one rail pair [V]:
        ``delta_z * sigma`` in Gaussian mode, the sampled quantile gap
        ``Q(p_coded) - Q(p_uncoded)`` in sampler mode (memoized)."""
        if self.sampler == "gaussian":
            return self.delta_z * self.sigma(v_ddc, v_ssc)
        key = (round(v_ddc, 4), round(v_ssc, 4))
        if key not in self._relax_cache:
            self._relax_cache[key] = self._sampled_relaxation(v_ddc,
                                                              v_ssc)
        return self._relax_cache[key][0]

    # -- sampled relaxation (rare-event mode) ------------------------------

    def _budgets(self):
        """(uncoded, coded) per-cell failure budgets at the target."""
        from ..yields.failure import (
            coded_p_fail_budget,
            uncoded_p_fail_budget,
        )

        p_uncoded = uncoded_p_fail_budget(
            self.y_target, self.n_words * self.code.data_bits
        )
        p_coded = self.margin_budget_fraction * coded_p_fail_budget(
            self.y_target, self.code, self.n_words
        )
        return p_uncoded, p_coded

    def tail_buffer(self, v_ddc, v_ssc):
        """The shared weighted-sample buffer at one rail pair.

        Built once per rail pair; every floor query — the budget
        quantiles of :meth:`relaxation`, the reported
        :meth:`tail_estimate` — rides the same cached samples.  The
        mean-shift search aims at the uncoded-budget quantile predicted
        by the Gaussian stats (the deepest floor any query needs), and
        its failure direction seeds the next rail pair's search.
        """
        from ..cell.importance import TailSampleBuffer, cell_margin_solver
        from ..yields.failure import z_score

        key = (round(v_ddc, 4), round(v_ssc, 4))
        buffer = self._buffer_cache.get(key)
        if buffer is None:
            vdd = self.library.vdd
            bias = CellBias.read(vdd=vdd, v_ddc=v_ddc, v_ssc=v_ssc)
            solver = cell_margin_solver(self.base.cell, vdd, bias,
                                        snm_points=41)
            mu, sigma, _, _ = self.min_margin_stats(v_ddc, v_ssc)
            p_uncoded, _ = self._budgets()
            floor = mu - (z_score(p_uncoded) * sigma if sigma > 0.0
                          else 0.0)
            # SNM-style margins truncate at zero (a collapsed butterfly
            # eye reads exactly 0), so a sub-zero Gaussian quantile is
            # unreachable; aim the search just above the truncation
            # instead and let the floor queries resolve the budgets on
            # the sampled distribution.
            if floor <= 0.0 < mu:
                floor = min(0.05 * mu, 0.002)
            buffer = TailSampleBuffer(
                solver, sampler=self.sampler, seed=self.seed,
                search_floor=floor, direction=self._direction_hint,
            )
            buffer.prepare()
            if self._direction_hint is None and buffer.search.crossed:
                self._direction_hint = buffer.search.direction
            self._buffer_cache[key] = buffer
        return buffer

    def _sampled_relaxation(self, v_ddc, v_ssc):
        """(relaxation [V], TailEstimate) at one rail pair, falling
        back to the Gaussian ``delta_z * sigma`` when the sampler did
        not converge or cannot resolve the budget quantiles."""
        p_uncoded, p_coded = self._budgets()
        buffer = self.tail_buffer(v_ddc, v_ssc)
        estimate = buffer.estimate_to_ci(
            buffer.search_floor, ci_target=self.ci_target,
            max_samples=self.max_samples,
        )
        floor_uncoded = buffer.floor_for(p_uncoded)
        floor_coded = buffer.floor_for(p_coded)
        resolved = (buffer.coverage(floor_uncoded) > 0
                    and buffer.coverage(floor_coded) > 0)
        if estimate.converged and resolved:
            relaxation = max(floor_coded - floor_uncoded, 0.0)
        else:
            relaxation = self.delta_z * self.sigma(v_ddc, v_ssc)
        return relaxation, estimate

    def tail_estimate(self, v_ddc, v_ssc, floor=0.0):
        """Sampled :class:`~repro.cell.importance.TailEstimate` of
        ``P(margin < floor)`` at the rail pair (functional floor by
        default), over the shared buffer — extra floors cost no solver
        calls beyond the samples already drawn."""
        if self.sampler == "gaussian":
            raise ValueError(
                "tail_estimate needs a rare-event sampler; this "
                "constraint runs with sampler='gaussian'"
            )
        buffer = self.tail_buffer(v_ddc, v_ssc)
        if buffer.n_samples < 2 * buffer.block:
            buffer.estimate_to_ci(
                buffer.search_floor, ci_target=self.ci_target,
                max_samples=self.max_samples,
            )
        return buffer.estimate(floor)

    # -- reporting ---------------------------------------------------------

    def failure_estimate(self, v_ddc, v_ssc):
        """Per-cell :class:`repro.yields.failure.FailureEstimate` at the
        rail pair (functional floor: margin < 0)."""
        from ..yields.failure import FailureEstimate, MIN_TAIL_EVENTS

        from statistics import NormalDist

        mu, sigma, tail, n = self.min_margin_stats(v_ddc, v_ssc)
        empirical = tail / n
        if sigma <= 0.0:
            gaussian = 1.0 if mu < 0.0 else 0.0
        else:
            gaussian = NormalDist().cdf(-mu / sigma)
        source = "empirical" if tail >= MIN_TAIL_EVENTS else "gaussian"
        return FailureEstimate(
            empirical=empirical, gaussian=gaussian, n_samples=n,
            tail_count=tail, source=source,
        )

    def array_yield(self, v_ddc, v_ssc):
        """(yield with code, yield without) at the rail pair."""
        from ..yields.failure import array_yield, uncoded_array_yield

        p = self.failure_estimate(v_ddc, v_ssc).p_fail
        coded = array_yield(p, self.code, self.n_words)
        uncoded = uncoded_array_yield(
            p, self.n_words * self.code.data_bits
        )
        return coded, uncoded

    # -- the optimizer-facing surface --------------------------------------

    def margins(self, v_ddc, v_ssc, v_wl, v_bl=0.0):
        """(HSNM, RSNM, WM) — the deterministic margins the fixed-delta
        constraint reports (the relaxation moves the floor, not them)."""
        return self.base.margins(v_ddc, v_ssc, v_wl, v_bl)

    def satisfied(self, v_ddc, v_ssc, v_wl, v_bl=0.0):
        hsnm, rsnm, wm = self.base.margins(v_ddc, v_ssc, v_wl, v_bl)
        req = self.requirement(v_ddc, v_ssc)
        if self.trust_fixed_rails:
            return min(hsnm, rsnm) >= req
        return min(hsnm, rsnm, wm) >= req

    def margins_grid(self, v_ddc, v_ssc_values, v_wl, v_bl=0.0):
        return self.base.margins_grid(v_ddc, v_ssc_values, v_wl, v_bl)

    def satisfied_grid(self, v_ddc, v_ssc_values, v_wl, v_bl=0.0):
        hsnm, rsnm, wm = self.base.margins_grid(
            v_ddc, v_ssc_values, v_wl, v_bl
        )
        if self.delta_z == 0.0:
            req = self.delta
        else:
            req = np.array([
                self.requirement(v_ddc, float(v))
                for v in np.asarray(v_ssc_values, dtype=float)
            ])
        if self.trust_fixed_rails:
            return np.minimum(hsnm, rsnm) >= req
        return np.minimum(np.minimum(hsnm, rsnm), wm) >= req

    # -- memo transport ----------------------------------------------------

    def export_margin_memo(self):
        memo = self.base.export_margin_memo()
        memo["sigma"] = dict(self._stat_cache)
        # Sampled relaxations travel as plain floats (the buffers hold
        # live solver closures and stay process-local).
        memo["relaxation"] = {
            key: value[0] for key, value in self._relax_cache.items()
        }
        return memo

    def seed_margin_memo(self, memo):
        self.base.seed_margin_memo(memo)
        self._stat_cache.update(memo.get("sigma", {}))
        for key, relaxation in memo.get("relaxation", {}).items():
            self._relax_cache.setdefault(key, (relaxation, None))


@dataclass
class MonteCarloYieldConstraint:
    """The accurate mu - k*sigma formulation (extension).

    This is the paper's "accurate way to analytically express the
    constraint": ``min over metrics of (mu - k sigma) >= 0`` under
    process variation, with 1 <= k <= 6 by yield target.  Far costlier
    than the fixed-delta mode — every distinct operating point runs a
    Monte Carlo over cell instances — which is exactly why the paper
    simplifies it to the fixed floor.  Used by the ablation benchmark
    comparing the two formulations.

    Drop-in compatible with :class:`ExhaustiveOptimizer` (it provides
    ``flavor``, ``satisfied``, and ``margins``; the reported "margins"
    are the mu - k*sigma values of HSNM and RSNM plus the nominal WM).
    """

    library: object
    flavor: str
    k: float = 3.0
    n_samples: int = 60
    seed: int = 1234
    #: Optional nominal flip voltage for the WM entry of margins().
    v_wl_flip: float = None
    _cache: dict = field(default_factory=dict, repr=False)

    def mu_minus_k_sigma(self, v_ddc, v_ssc, v_wl):
        """(hsnm, rsnm) mu - k*sigma at one operating point [V]."""
        from ..cell.montecarlo import run_cell_montecarlo

        key = (round(v_ddc, 4), round(v_ssc, 4), round(v_wl, 4))
        if key not in self._cache:
            cell = SRAM6TCell.from_library(self.library, self.flavor)
            read_bias = CellBias.read(vdd=self.library.vdd, v_ddc=v_ddc,
                                      v_ssc=v_ssc)
            result = run_cell_montecarlo(
                cell, n_samples=self.n_samples, seed=self.seed,
                vdd=self.library.vdd, read_bias=read_bias,
                metrics=("hsnm", "rsnm"), snm_points=41,
            )
            self._cache[key] = (
                result.metric("hsnm").mu_minus_k_sigma(self.k),
                result.metric("rsnm").mu_minus_k_sigma(self.k),
            )
        return self._cache[key]

    def margins(self, v_ddc, v_ssc, v_wl, v_bl=0.0):
        """(HSNM, RSNM, WM): the k-sigma margins plus the nominal WM."""
        hsnm_ks, rsnm_ks = self.mu_minus_k_sigma(v_ddc, v_ssc, v_wl)
        wm = (v_wl - self.v_wl_flip) if self.v_wl_flip is not None else (
            float("inf")
        )
        return hsnm_ks, rsnm_ks, wm

    def satisfied(self, v_ddc, v_ssc, v_wl, v_bl=0.0):
        hsnm_ks, rsnm_ks = self.mu_minus_k_sigma(v_ddc, v_ssc, v_wl)
        return min(hsnm_ks, rsnm_ks) >= 0.0

    def margins_grid(self, v_ddc, v_ssc_values, v_wl, v_bl=0.0):
        """Batch view of :meth:`margins` (each point still runs its own
        memoized Monte Carlo — the cost the paper's fixed-delta mode
        avoids)."""
        rows = [self.margins(v_ddc, float(v), v_wl, v_bl)
                for v in np.asarray(v_ssc_values, dtype=float)]
        hsnm, rsnm, wm = (np.array(col) for col in zip(*rows))
        return hsnm, rsnm, wm

    def satisfied_grid(self, v_ddc, v_ssc_values, v_wl, v_bl=0.0):
        return np.array([
            self.satisfied(v_ddc, float(v), v_wl, v_bl)
            for v in np.asarray(v_ssc_values, dtype=float)
        ])
