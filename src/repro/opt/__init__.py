"""Device-circuit-architecture co-optimization (the paper's framework).

Public API:

* :class:`DesignSpace` — the paper's search ranges.
* :class:`YieldLevels` / :func:`make_policy` — the M1/M2 rail policies.
* :class:`YieldConstraint` — min(HSNM, RSNM, WM) >= delta.
* :class:`ExhaustiveOptimizer` — the minimum-EDP search (four engines:
  ``loop`` / ``vectorized`` / ``fused`` / ``pruned``) and the
  :meth:`~ExhaustiveOptimizer.pareto` front sweep.
* :func:`tile_lower_bounds` — admissible per-(n_r, V_SSC) bounds behind
  the ``pruned`` engine.
* :func:`pareto_front` / :class:`ParetoFrontBuilder` — energy-delay
  trade-off analysis (extension).
"""

from .bounds import TileBounds, tile_lower_bounds
from .constraints import MonteCarloYieldConstraint, YieldConstraint, \
    YieldTargetConstraint
from .exhaustive import ExhaustiveOptimizer
from .methods import (
    CONSOLIDATION_THRESHOLD,
    VoltagePolicy,
    YieldLevels,
    make_policy,
    policy_m1,
    policy_m2,
    policy_m2_negative_bl,
)
from .pareto import (
    ParetoFrontBuilder,
    ParetoPoint,
    ParetoSearchResult,
    best_weighted,
    pareto_front,
)
from .results import LandscapePoint, OptimizationResult
from .space import DesignSpace

__all__ = [
    "CONSOLIDATION_THRESHOLD",
    "DesignSpace",
    "ExhaustiveOptimizer",
    "LandscapePoint",
    "MonteCarloYieldConstraint",
    "OptimizationResult",
    "ParetoFrontBuilder",
    "ParetoPoint",
    "ParetoSearchResult",
    "TileBounds",
    "VoltagePolicy",
    "YieldConstraint",
    "YieldTargetConstraint",
    "YieldLevels",
    "best_weighted",
    "make_policy",
    "pareto_front",
    "policy_m1",
    "policy_m2",
    "policy_m2_negative_bl",
    "tile_lower_bounds",
]
