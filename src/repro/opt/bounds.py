"""Admissible per-(n_r, V_SSC) lower bounds for bound-and-prune search.

The pruned engine partitions the design space into *tiles*: one
``(N_pre x N_wr)`` fin grid per ``(n_r, V_SSC)`` pair.  For each tile
this module derives lower bounds on ``d_array``, ``e_total``, and
``edp`` that hold for *every* fin assignment inside the tile, using the
component equations' monotonicity in the fin counts (see
``docs/MODELING.md`` §6 for the per-equation proof sketch):

* every Table-1 capacitance is nondecreasing in ``N_pre`` / ``N_wr``
  (the ``(N_pre + 1) C_dp`` precharge and ``N_wr (C_dn + C_dp)``
  write-buffer loads only ever add fins);
* the only fin-dependent Table-2 drive currents — ``i_pre`` and
  ``i_bl_wr`` — are linear *increasing* in their fin count;
* so evaluating with capacitances at the fin minima and those two
  currents at the fin maxima lower-bounds every component delay
  ``C dV / I`` and energy ``C V dV`` elementwise, and the monotone
  compositions (sums, maxes, the leakage term
  ``capacity_bits * p_leak * d_array``, and ``edp = e_total * d_array``)
  preserve the bound.

The mixed-corner evaluation reuses the production arithmetic verbatim:
:meth:`SRAMArrayModel.evaluate_bounds` computes the shared Table-2
precursors at the fin maxima and runs the ordinary core evaluation on a
fin-minima design.  One broadcast call bounds every tile of a search at
once — the bound tensor has one element per tile (a few hundred), so
its cost is negligible next to a single real tile evaluation.

A bound is *admissible* (never exceeds the true tile minimum), so
pruning tiles whose bound strictly exceeds the incumbent EDP can never
discard the optimum — the pruned engine stays bit-identical to the
exhaustive reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..array.model import DesignPoint


@dataclass(frozen=True)
class TileBounds:
    """Lower bounds for every (n_r, V_SSC) tile of one search.

    Arrays are shaped ``(R, S)`` — row counts major, feasible V_SSC
    candidates minor — matching the loop engine's r-major/s-minor visit
    order when flattened in C order.
    """

    rows: np.ndarray      #: (R,) row counts, ascending
    v_ssc: np.ndarray     #: (S,) feasible V_SSC candidates, in order
    d_array: np.ndarray   #: (R, S) lower bounds on the access delay [s]
    e_total: np.ndarray   #: (R, S) lower bounds on the access energy [J]
    edp: np.ndarray       #: (R, S) lower bounds on the EDP [Js]

    @property
    def n_tiles(self):
        return int(self.edp.size)


def tile_lower_bounds(model, space, capacity_bits, policy, feasible_v_ssc):
    """Bound every ``(n_r, V_SSC)`` tile of one policy's search.

    ``feasible_v_ssc`` is the constraint-filtered candidate array (the
    optimizer's ``_feasible_v_ssc``); it must be non-empty.  One
    broadcast :meth:`SRAMArrayModel.evaluate_bounds` call covers the
    whole ``(R, S)`` tile grid.
    """
    rows = np.asarray(space.row_counts(capacity_bits), dtype=np.int64)
    feasible = np.asarray(feasible_v_ssc, dtype=float)
    n_pre = np.asarray(space.n_pre_values)
    n_wr = np.asarray(space.n_wr_values)
    design = DesignPoint(
        n_r=rows.reshape(-1, 1),
        n_c=(capacity_bits // rows).reshape(-1, 1),
        n_pre=int(n_pre[0]), n_wr=int(n_wr[0]),
        v_ddc=policy.v_ddc, v_ssc=feasible.reshape(1, -1),
        v_wl=policy.v_wl, v_bl=policy.v_bl,
    )
    metrics = model.evaluate_bounds(
        capacity_bits, design,
        n_pre_hi=int(n_pre[-1]), n_wr_hi=int(n_wr[-1]),
    )
    shape = (rows.size, feasible.size)
    return TileBounds(
        rows=rows,
        v_ssc=feasible,
        d_array=np.ascontiguousarray(
            np.broadcast_to(metrics.d_array, shape)),
        e_total=np.ascontiguousarray(
            np.broadcast_to(metrics.e_total, shape)),
        edp=np.ascontiguousarray(np.broadcast_to(metrics.edp, shape)),
    )
