"""Dynamic noise margin (DNM) of the 6T cell (extension).

The butterfly-curve SNM is a *static* criterion: it asks whether a DC
noise source can flip the cell.  Real disturbances are transient —
coupling glitches, particle strikes — and a cell survives noise pulses
*larger* than its static margin if they are short enough for the
cross-coupled feedback to recover.  The dynamic noise margin quantifies
this: the critical amplitude of a square noise pulse of given duration
injected into a storage node, found by bisection over full transient
simulations.

DNM(infinite duration) converges to a static-margin-like level; DNM
rises steeply as pulses shrink below the cell's feedback time constant
— which is how the paper's assist-boosted margins translate into
transient robustness.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..spice.stimuli import pulse
from ..spice.transient import transient
from .bias import CellBias

#: Simulation controls.
_T_START = 1e-12
_DT = 2e-14

#: Series resistance of the injected noise source [ohm] — a stiff
#: source, so the pulse amplitude is delivered almost fully to the node.
_R_NOISE = 100.0


def cell_flips_under_pulse(cell, amplitude, duration, bias=None,
                           vdd=None, settle=30e-12):
    """Does a square noise pulse on the '0' node flip the cell?

    The pulse of ``amplitude`` volts and ``duration`` seconds drives
    node Q (holding 0) through a stiff series resistor while the cell
    sits in the hold condition.
    """
    if bias is None:
        bias = CellBias.hold(vdd) if vdd is not None else CellBias.hold()
    vdd = bias.vdd
    c_node = cell.internal_node_capacitance()
    circuit = cell.build_circuit(
        bias, node_caps={"q": c_node, "qb": c_node}
    )
    noise = pulse(0.0, amplitude, _T_START, duration, 0.05e-12)
    circuit.add_vsource("vnoise", "noise", "0", noise)
    circuit.add_resistor("rnoise", "noise", "q", _R_NOISE)
    t_stop = _T_START + duration + settle
    result = transient(
        circuit, t_stop, _DT,
        initial_guess={"q": 0.0, "qb": vdd},
        stop_condition=lambda t, v: (
            t > _T_START + duration and abs(v["q"] - v["qb"]) > 0.8 * vdd
        ),
        stop_margin=2,
    )
    final_q = result.node("q").final
    final_qb = result.node("qb").final
    return final_q > final_qb


@dataclass(frozen=True)
class DynamicNoiseMargin:
    """Critical pulse amplitude at one duration."""

    duration: float
    critical_amplitude: float
    static_snm: float

    @property
    def dynamic_gain(self):
        """How much more noise the cell tolerates transiently."""
        return self.critical_amplitude / self.static_snm


def dynamic_noise_margin(cell, duration, vdd=None, resolution=0.01,
                         v_max=1.2):
    """Critical noise amplitude [V] for a pulse of ``duration``.

    Bisection over :func:`cell_flips_under_pulse`; flipping is monotone
    in the amplitude.  Returns ``v_max`` when even that amplitude
    cannot flip the cell within the window (very short pulses).
    """
    bias = CellBias.hold(vdd) if vdd is not None else CellBias.hold()
    lo, hi = 0.0, float(v_max)
    if not cell_flips_under_pulse(cell, hi, duration, bias=bias):
        return hi
    while hi - lo > resolution:
        mid = 0.5 * (lo + hi)
        if cell_flips_under_pulse(cell, mid, duration, bias=bias):
            hi = mid
        else:
            lo = mid
    return 0.5 * (lo + hi)


def dnm_analysis(cell, duration, vdd=None):
    """:class:`DynamicNoiseMargin` for one pulse duration."""
    from .snm import hold_snm

    vdd_eff = vdd if vdd is not None else CellBias().vdd
    return DynamicNoiseMargin(
        duration=duration,
        critical_amplitude=dynamic_noise_margin(cell, duration, vdd=vdd),
        static_snm=hold_snm(cell, vdd_eff),
    )
