"""Data-retention voltage (DRV) analysis (extension).

Figure 2 of the paper shows hold margins across supply scaling and
argues LVT cells "cannot meet the yield requirements under 250 mV".
The industry figure of merit for that cliff is the *data-retention
voltage*: the minimum standby supply at which the cell still holds data
with the required margin.  Standby leakage scales with the retention
supply, so DRV determines the floor of drowsy/retention power modes —
one more axis where the HVT cell's margin behaviour matters.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CharacterizationError
from .snm import hold_snm

#: Search bounds for the retention supply [V].
_V_MIN = 0.04
_V_MAX = 0.60


@dataclass(frozen=True)
class RetentionResult:
    """DRV plus the standby leakage saved by retention mode."""

    drv: float
    hsnm_at_drv: float
    leakage_at_drv: float
    leakage_nominal: float

    @property
    def retention_saving(self):
        """Leakage reduction factor of dropping to the DRV."""
        return self.leakage_nominal / self.leakage_at_drv


def data_retention_voltage(cell, margin_fraction=0.35, resolution=0.002,
                           v_max=_V_MAX):
    """Minimum Vdd [V] with ``HSNM >= margin_fraction * Vdd``.

    The margin *fraction* requirement makes this non-trivially monotone
    (both sides scale with Vdd); empirically the normalized margin
    grows with Vdd throughout the search range for these cells, so
    bisection applies.  Raises when even ``v_max`` fails.
    """

    def ok(vdd):
        return hold_snm(cell, vdd) >= margin_fraction * vdd

    lo, hi = _V_MIN, float(v_max)
    if not ok(hi):
        raise CharacterizationError(
            "cell fails the hold-margin floor even at %.0f mV" % (hi * 1e3)
        )
    if ok(lo):
        return lo
    while hi - lo > resolution:
        mid = 0.5 * (lo + hi)
        if ok(mid):
            hi = mid
        else:
            lo = mid
    return hi


def retention_analysis(cell, vdd_nominal, margin_fraction=0.35,
                       guard_band=0.0):
    """Full retention study: DRV, margin there, and leakage saving.

    ``guard_band`` [V] is added to the DRV for the reported retention
    supply (practical designs hold margin above the exact cliff).
    """
    from .leakage import cell_leakage_power

    drv = data_retention_voltage(cell, margin_fraction) + guard_band
    return RetentionResult(
        drv=drv,
        hsnm_at_drv=hold_snm(cell, drv),
        leakage_at_drv=cell_leakage_power(cell, drv),
        leakage_nominal=cell_leakage_power(cell, vdd_nominal),
    )
