"""Read-timing yield under process variation (extension).

The paper's option (i) for cutting BL delay — "reducing DeltaV_S, which
is difficult to do especially in advanced technology nodes with
increased effect of process variations" — deserves numbers.  This
module Monte Carlo-samples the cell's read current, maps it to bitline
development through ``DeltaV(t) = I_read * t / C_BL``, and reports:

* the BL-delay distribution at a given sensing voltage,
* the sensing time needed for a target timing yield, and
* the yield of a *reduced* DeltaV_S against the sense amplifier's
  input-referred offset — i.e. exactly why DeltaV_S cannot simply be
  shrunk.

Cells that flip during the read (read-disturb failures) count as yield
losses with infinite delay.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..devices.variation import VariationModel
from .bias import CellBias
from .montecarlo import sample_cells
from .read_current import read_state

#: Representative input-referred offset sigma of a minimum latch SA [V].
SA_OFFSET_SIGMA = 0.015


@dataclass
class ReadTimingResult:
    """Monte Carlo read-current/delay distributions for one column."""

    i_read_samples: np.ndarray   # [A]; flipped cells excluded
    n_flipped: int
    c_bitline: float
    delta_v_sense: float

    @property
    def n_samples(self):
        return len(self.i_read_samples) + self.n_flipped

    @property
    def delay_samples(self):
        """BL delays [s] of the non-flipped cells."""
        return self.c_bitline * self.delta_v_sense / self.i_read_samples

    @property
    def mean_delay(self):
        return float(np.mean(self.delay_samples))

    @property
    def sigma_delay(self):
        return float(np.std(self.delay_samples, ddof=1))

    def timing_yield(self, t_sense):
        """Fraction of cells whose BL develops DeltaV_S within
        ``t_sense`` (flipped cells always fail)."""
        good = float(np.sum(self.delay_samples <= t_sense))
        return good / self.n_samples

    def required_sense_time(self, yield_target=0.999):
        """Sensing time [s] for the requested timing yield.

        Returns ``inf`` when disturb failures alone exceed the budget.
        """
        if not 0.0 < yield_target <= 1.0:
            raise ValueError("yield_target must be in (0, 1]")
        max_failures = (1.0 - yield_target) * self.n_samples
        if self.n_flipped > max_failures:
            return float("inf")
        delays = np.sort(self.delay_samples)
        # The slowest allowed cell, after spending the failure budget on
        # the flipped ones.
        budget = int(math.floor(max_failures)) - self.n_flipped
        index = len(delays) - 1 - budget
        index = min(max(index, 0), len(delays) - 1)
        return float(delays[index])

    def sensing_voltage_yield(self, t_sense, sa_offset_sigma=SA_OFFSET_SIGMA):
        """P(developed DeltaV at ``t_sense`` exceeds the SA offset).

        For each sampled cell the developed split is
        ``I_read * t / C_BL``; the SA resolves it correctly when it
        exceeds the (Gaussian) offset magnitude.  This is the paper's
        "reducing DeltaV_S is difficult" trade quantified: shrinking the
        sensing window directly eats into offset margin.
        """
        developed = self.i_read_samples * t_sense / self.c_bitline
        z = developed / (sa_offset_sigma * math.sqrt(2.0))
        per_cell = np.array([math.erf(max(v, 0.0)) for v in z])
        return float(np.sum(per_cell)) / self.n_samples


def read_timing_analysis(library, cell, n_rows=64, n_samples=200,
                         v_ddc=None, v_ssc=0.0, delta_v_sense=0.120,
                         variation=None, seed=0):
    """Monte Carlo the read current of ``cell`` into a timing-yield
    result for an ``n_rows``-deep column."""
    from ..assist.study import study_bitline_capacitance

    vdd = library.vdd
    v_ddc = vdd if v_ddc is None else v_ddc
    bias = CellBias.read(vdd=vdd, v_ddc=v_ddc, v_ssc=v_ssc)
    variation = variation or VariationModel()
    currents = []
    flipped = 0
    for instance in sample_cells(cell, n_samples, variation, seed):
        state = read_state(instance, bias=bias)
        if state.flipped or state.i_read <= 0:
            flipped += 1
        else:
            currents.append(state.i_read)
    return ReadTimingResult(
        i_read_samples=np.asarray(currents),
        n_flipped=flipped,
        c_bitline=study_bitline_capacitance(library, n_rows),
        delta_v_sense=delta_v_sense,
    )
