"""Cell-level write delay and write energy (transient analysis).

The paper defines the cell write delay as the time from the wordline
reaching 50% of Vdd until Q and QB reach the same value (the internal
flip crossover).  It notes this delay is far smaller than the WL and BL
delays — our reproduction confirms the same hierarchy — but it still
enters the write-access delay equation (Table 3), as a function of the
wordline (overdrive) level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CharacterizationError
from ..spice.batch import transient_batch
from ..spice.stimuli import step
from ..spice.transient import transient
from ..spice.waveform import Waveform
from .bias import CellBias

#: Wordline stimulus timing.
_T_START = 0.2e-12
_T_RISE = 0.05e-12

#: Base integration step and run length.  The flip is a ratioed fight
#: between the access device and the still-on pull-up, so writes near
#: the writability edge take many picoseconds; the default window covers
#: the full Fig.-5 wordline sweep range.
_DT = 1e-14
_T_STOP = 40e-12


@dataclass(frozen=True)
class WriteEvent:
    """Measured cell write transient."""

    #: Time from WL at 50% Vdd to the Q/QB crossover [s].
    delay: float
    #: Energy delivered by all sources during the event [J].
    energy: float
    #: True when Q and QB actually crossed within the run.
    completed: bool


def cell_write_event(cell, v_wl=None, vdd=None, v_bl_low=0.0,
                     t_stop=_T_STOP, dt=_DT):
    """Simulate a write of 0 into a cell holding Q = 1.

    The wordline steps from 0 to ``v_wl``; the Q-side bitline is already
    driven to ``v_bl_low`` (write data applied before WL assertion, as in
    the paper's write sequence).  Returns a :class:`WriteEvent`.
    """
    vdd = CellBias().vdd if vdd is None else vdd
    v_wl = vdd if v_wl is None else v_wl
    bias = CellBias.write(vdd=vdd, v_wl=v_wl, v_bl_low=v_bl_low)
    c_node = cell.internal_node_capacitance()
    circuit = cell.build_circuit(
        bias,
        wl_value=step(_T_START, 0.0, v_wl, _T_RISE),
        node_caps={"q": c_node, "qb": c_node},
    )
    result = transient(
        circuit, t_stop, dt,
        initial_guess={"q": vdd, "qb": 0.0},
        # End shortly after the internal crossover completes; the write
        # delay measurement only needs the Q/QB crossing.
        stop_condition=lambda _t, v: v["q"] < v["qb"] - 0.2 * vdd,
        stop_margin=5,
    )
    return _measure_write_event(result, vdd, v_bl_low)


def _measure_write_event(result, vdd, v_bl_low):
    """Extract a :class:`WriteEvent` from one write transient."""
    t_wl = result.node("wl").cross(0.5 * vdd, "rise")
    diff = Waveform(
        result.times,
        np.asarray(result.node("q").values)
        - np.asarray(result.node("qb").values),
        "q_minus_qb",
    )
    energy = sum(
        result.delivered_energy(name)
        for name in ("vddc", "vssc", "vwl", "vbl", "vblb")
    )
    if not diff.crosses(0.0, "fall"):
        return WriteEvent(delay=float("inf"), energy=energy, completed=False)
    t_flip = diff.cross(0.0, "fall")
    if t_flip <= t_wl:
        raise CharacterizationError(
            "cell flipped before the wordline asserted; the write bias "
            "alone is destabilizing (v_bl_low=%.3f)" % v_bl_low
        )
    return WriteEvent(delay=t_flip - t_wl, energy=energy, completed=True)


def cell_write_event_batch(cell, v_wl, vdd=None, v_bl_low=0.0,
                           t_stop=_T_STOP, dt=_DT):
    """Batched :func:`cell_write_event`: one transient for many lanes.

    ``v_wl`` and/or ``v_bl_low`` may be ``(lanes,)`` arrays — each lane
    is one write condition of a *scalar* cell (the characterization
    WL/negative-BL sweeps), integrated simultaneously over the shared
    time grid by :func:`repro.spice.batch.transient_batch`.  Per-lane
    waveforms, and hence delays and energies, are bitwise equal to
    per-point :func:`cell_write_event` calls.

    Returns a list of :class:`WriteEvent` in lane order.
    """
    vdd = CellBias().vdd if vdd is None else vdd
    v_wl = np.asarray(vdd if v_wl is None else v_wl, dtype=float)
    lanes = int(
        np.broadcast_shapes(np.shape(v_wl), np.shape(v_bl_low), (1,))[0]
    )
    bias = CellBias.write(vdd=vdd, v_wl=v_wl, v_bl_low=v_bl_low)
    c_node = cell.internal_node_capacitance()
    circuit = cell.build_circuit(
        bias,
        wl_value=step(_T_START, 0.0, v_wl, _T_RISE),
        node_caps={"q": c_node, "qb": c_node},
    )
    results = transient_batch(
        circuit, lanes, t_stop, dt,
        initial_guess={"q": vdd, "qb": 0.0},
        stop_condition=lambda _t, v: v["q"] < v["qb"] - 0.2 * vdd,
        stop_margin=5,
    )
    return [
        _measure_write_event(
            result, vdd,
            float(np.asarray(v_bl_low).reshape(-1)[k])
            if np.ndim(v_bl_low) else v_bl_low,
        )
        for k, result in enumerate(results)
    ]


def write_delay_vs_wordline(cell, v_wl_values, vdd=None, v_bl_low=0.0,
                            engine="batched"):
    """Write delay [s] for each WL level (paper Fig. 5 x-axis sweeps).

    Levels that fail to write map to ``inf``.  ``engine="batched"``
    integrates every level in one lane-batched transient;
    ``engine="loop"`` retains the per-level reference.  Both are
    bit-identical.
    """
    if engine == "batched":
        v_wl = np.asarray([float(v) for v in v_wl_values])
        events = cell_write_event_batch(cell, v_wl, vdd=vdd,
                                        v_bl_low=v_bl_low)
        return [event.delay for event in events]
    if engine != "loop":
        raise ValueError("unknown engine %r" % (engine,))
    delays = []
    for v_wl in v_wl_values:
        event = cell_write_event(cell, v_wl=float(v_wl), vdd=vdd,
                                 v_bl_low=v_bl_low)
        delays.append(event.delay)
    return delays
