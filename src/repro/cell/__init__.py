"""6T SRAM cell characterization (SNM, WM, read current, leakage, MC).

Public API:

* :class:`SRAM6TCell` — the cell (netlist builder + per-transistor params).
* :class:`CellBias` — operating conditions including assist levels.
* :func:`hold_snm`, :func:`read_snm`, :func:`butterfly` — noise margins.
* :func:`write_margin`, :func:`flip_wordline_voltage` — write margin.
* :func:`read_current`, :func:`read_state` — bitline discharge current.
* :func:`cell_leakage_power` — standby leakage.
* :func:`cell_write_event` — transient write delay/energy.
* :func:`run_cell_montecarlo` — variation-aware yield analysis.
* :func:`estimate_tail` / :class:`TailSampleBuffer` — rare-event
  (importance-sampled) margin tail estimation.
"""

from .bias import CellBias
from .importance import (
    SAMPLERS,
    MarginSolver,
    ShiftSearch,
    TailEstimate,
    TailSampleBuffer,
    cell_margin_solver,
    estimate_tail,
    find_failure_shift,
    naive_samples_for_ci,
)
from .leakage import cell_leakage_power, leakage_vs_vdd
from .montecarlo import (
    MonteCarloResult,
    batched_cell,
    required_margin_fraction,
    run_cell_montecarlo,
    sample_cells,
    sample_shift_matrix,
)
from .dynamic_noise import (
    DynamicNoiseMargin,
    cell_flips_under_pulse,
    dnm_analysis,
    dynamic_noise_margin,
)
from .read_current import ReadState, read_current, read_current_grid, read_state
from .retention import (
    RetentionResult,
    data_retention_voltage,
    retention_analysis,
)
from .snm import ButterflyResult, butterfly, hold_snm, read_snm, snm_samples, vtc
from .sram6t import TRANSISTOR_ROLES, SRAM6TCell
from .sram8t import AREA_RATIO_VS_6T, SRAM8TCell
from .timing_yield import (
    SA_OFFSET_SIGMA,
    ReadTimingResult,
    read_timing_analysis,
)
from .write import (
    WriteMarginResult,
    bitline_write_margin,
    cell_flips,
    flip_wordline_voltage,
    flip_wordline_voltage_batch,
    write_margin,
    write_margin_batch,
)
from .write_delay import WriteEvent, cell_write_event, write_delay_vs_wordline

__all__ = [
    "AREA_RATIO_VS_6T",
    "ButterflyResult",
    "CellBias",
    "DynamicNoiseMargin",
    "ReadTimingResult",
    "RetentionResult",
    "SA_OFFSET_SIGMA",
    "SRAM8TCell",
    "bitline_write_margin",
    "cell_flips_under_pulse",
    "data_retention_voltage",
    "dnm_analysis",
    "dynamic_noise_margin",
    "read_timing_analysis",
    "retention_analysis",
    "MarginSolver",
    "MonteCarloResult",
    "ReadState",
    "SAMPLERS",
    "SRAM6TCell",
    "ShiftSearch",
    "TailEstimate",
    "TailSampleBuffer",
    "TRANSISTOR_ROLES",
    "WriteEvent",
    "WriteMarginResult",
    "batched_cell",
    "butterfly",
    "cell_flips",
    "cell_leakage_power",
    "cell_margin_solver",
    "cell_write_event",
    "estimate_tail",
    "find_failure_shift",
    "flip_wordline_voltage",
    "flip_wordline_voltage_batch",
    "hold_snm",
    "leakage_vs_vdd",
    "naive_samples_for_ci",
    "read_current",
    "read_current_grid",
    "read_snm",
    "read_state",
    "required_margin_fraction",
    "run_cell_montecarlo",
    "sample_cells",
    "sample_shift_matrix",
    "snm_samples",
    "vtc",
    "write_delay_vs_wordline",
    "write_margin",
]
