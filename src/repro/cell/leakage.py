"""Standby (hold-state) leakage power of the 6T cell.

The leakage operating point is solved with the full Newton DC engine so
all internal node voltages (and thus all leakage paths: the OFF pull-up,
the OFF pull-down, and the OFF access devices against precharged
bitlines) are captured self-consistently.  The reported power is the sum
of power delivered by every boundary source, which by Tellegen's theorem
equals the total dissipation in the cell.
"""

from __future__ import annotations

from ..spice.dc import operating_point
from .bias import CellBias


def cell_leakage_power(cell, vdd=None, bias=None):
    """Leakage power [W] of a cell holding Q = 0 under ``bias``.

    Defaults to the hold condition (WL low, bitlines precharged to Vdd,
    nominal rails) at the nominal supply — the condition under which the
    paper quotes 1.692 nW (6T-LVT) and 0.082 nW (6T-HVT).
    """
    if bias is None:
        bias = CellBias.hold(vdd) if vdd is not None else CellBias.hold()
    circuit = cell.build_circuit(bias)
    solution = operating_point(
        circuit,
        initial_guess={"q": bias.v_ssc, "qb": bias.v_ddc},
    )
    source_levels = {
        "vddc": bias.v_ddc,
        "vssc": bias.v_ssc,
        "vwl": bias.v_wl,
        "vbl": bias.v_bl,
        "vblb": bias.v_blb,
    }
    total = 0.0
    for name, level in source_levels.items():
        total += solution.source_power(name, level)
    return total


def leakage_vs_vdd(cell, vdd_values):
    """Leakage power [W] at each supply in ``vdd_values`` (paper Fig 2(b)
    sweeps 100 mV to 450 mV)."""
    return [cell_leakage_power(cell, vdd=float(v)) for v in vdd_values]
