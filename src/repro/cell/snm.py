"""Static noise margins of the 6T cell (Seevinck butterfly method).

The butterfly plot overlays the voltage-transfer curves of the cell's
two cross-coupled half-circuits; the SNM is the side of the largest
square that fits inside the smaller of the two eyes [Seevinck 1987].

Half-circuit VTCs are computed by a robust single-node bisection: with
the input node forced, the only unknown is the output node, and the net
current leaving it is strictly increasing in its voltage (every attached
device's pull-out current grows with the node voltage), so bisection
always converges.  ``tests/test_cell_snm.py`` cross-validates this fast
path against the full Newton solver.

Eye extraction uses the 45-degree-rotation property: points that differ
by a displacement ``s * (1, 1)`` share the rotated ordinate
``v = (y - x)/sqrt(2)``, so the largest inscribed square side equals the
maximum u-distance between the two curves at equal v, divided by
``sqrt(2)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import CharacterizationError
from .bias import CellBias

_SQRT2 = math.sqrt(2.0)

#: Default VTC sample count (trade accuracy for speed in Monte Carlo).
DEFAULT_POINTS = 121

#: Bisection convergence for the half-circuit output voltage [V].
_BISECT_TOL = 1e-7


def _half_circuit_current(cell, side, v_in, v_out, bias, access_on):
    """Net current leaving the output node of one half circuit [A].

    ``side`` is "l" (output Q, input QB) or "r" (output QB, input Q).
    """
    pu = cell.device("pu_" + side)
    pd = cell.device("pd_" + side)
    ax = cell.device("ax_" + side)
    v_bl = bias.v_bl if side == "l" else bias.v_blb
    v_wl = bias.v_wl if access_on else 0.0
    # Pull-down: drain at the output node, source at CVSS.
    out = pd.current(v_in, v_out, bias.v_ssc)
    # Pull-up: drain at the output node, source at CVDD (PFET current
    # into its drain is negative while charging the node).
    out += pu.current(v_in, v_out, bias.v_ddc)
    # Access: wired (gate=WL, drain=BL, source=output); current into the
    # drain equals current *out of* the output node, hence the sign.
    out -= ax.current(v_wl, v_bl, v_out)
    return out


def _bisection_counts(spans):
    """Exact per-element bisection iteration counts for given spans.

    Each element's count must equal what the scalar path computes via
    ``math.ceil(math.log2(span / tol))``; ``np.log2`` can differ from
    ``math.log2`` in the last ulp (which would flip the ceil right at a
    power-of-two boundary), so the counts are computed with ``math.log2``
    over the unique span values.
    """
    spans = np.asarray(spans, dtype=float)
    counts = np.empty(spans.shape, dtype=int)
    for value in np.unique(spans):
        counts[spans == value] = int(
            math.ceil(math.log2(float(value) / _BISECT_TOL))
        )
    return counts


def solve_half_circuit(cell, side, v_in, bias, access_on):
    """Output voltage(s) of one half circuit for forced input(s) [V].

    ``v_in`` may be a scalar or an array; the bisection runs vectorized
    across all input points simultaneously (the net out-current is
    strictly increasing in the output voltage, so bisection is exact).

    Batched evaluation composes along two more axes, both handled by the
    same code path because every operation below is elementwise:

    * a **batched cell** (per-sample ``vt`` columns of shape ``(n, 1)``)
      turns a ``(points,)`` input sweep into an ``(n, points)`` output
      grid, or an ``(n, 1)`` per-sample input column into an ``(n, 1)``
      output column;
    * **array-valued bias fields** (e.g. per-lane rails or wordline
      levels, shape ``(k, 1)``) batch independent operating points.
      Lanes whose bracket spans differ get exactly the per-lane
      iteration count the scalar path would compute, with finished
      lanes frozen, so every element follows the scalar op sequence
      bitwise.
    """
    v_in = np.asarray(v_in, dtype=float)
    scalar = v_in.ndim == 0
    v_in = np.atleast_1d(v_in)
    # min/max of floats select an input exactly, so np.minimum/np.maximum
    # reduce to the scalar path's python min()/max() values when every
    # field is scalar; pairwise calls let array-valued fields broadcast.
    lo_bound = np.minimum(
        np.minimum(bias.v_ssc, bias.v_bl), np.minimum(bias.v_blb, 0.0)
    ) - 0.1
    hi_bound = np.maximum(
        np.maximum(bias.v_ddc, bias.v_bl), bias.v_blb
    ) + 0.1
    f_lo = _half_circuit_current(
        cell, side, v_in, lo_bound + 0.0 * v_in, bias, access_on
    )
    f_hi = _half_circuit_current(
        cell, side, v_in, hi_bound + 0.0 * v_in, bias, access_on
    )
    if np.any(f_lo > 0) or np.any(f_hi < 0):
        raise CharacterizationError(
            "half-circuit current not bracketed within [%.2f, %.2f] V"
            % (float(np.min(lo_bound)), float(np.max(hi_bound)))
        )
    shape = f_lo.shape
    lo = np.broadcast_to(np.asarray(lo_bound, dtype=float), shape)
    hi = np.broadcast_to(np.asarray(hi_bound, dtype=float), shape)
    counts = _bisection_counts(np.broadcast_to(hi_bound - lo_bound, shape))
    for step in range(int(counts.max())):
        running = step < counts
        mid = 0.5 * (lo + hi)
        high_side = _half_circuit_current(
            cell, side, v_in, mid, bias, access_on
        ) > 0
        hi = np.where(running & high_side, mid, hi)
        lo = np.where(running & ~high_side, mid, lo)
    result = 0.5 * (lo + hi)
    if scalar:
        if result.ndim == 1:
            return float(result[0])
        # Batched cell with a scalar input: one output per sample.
        return result
    return result


def half_circuit_output(cell, side, v_in, bias, access_on):
    """Scalar convenience wrapper around :func:`solve_half_circuit`."""
    return float(solve_half_circuit(cell, side, float(v_in), bias, access_on))


def vtc(cell, side, bias, access_on, points=DEFAULT_POINTS,
        v_lo=None, v_hi=None):
    """Voltage-transfer curve of one half circuit.

    Returns ``(v_in, v_out)`` arrays.  The sweep spans the cell's internal
    swing (``v_ssc`` to ``v_ddc``) unless explicit bounds are given.
    """
    v_lo = bias.v_ssc if v_lo is None else v_lo
    v_hi = bias.v_ddc if v_hi is None else v_hi
    v_in = np.linspace(v_lo, v_hi, points)
    v_out = solve_half_circuit(cell, side, v_in, bias, access_on)
    return v_in, v_out


@dataclass
class ButterflyResult:
    """Butterfly curves plus the extracted noise margin."""

    #: VTC of the left half: Q = f(QB).  Axes: x = QB, y = Q.
    qb_axis: np.ndarray
    q_of_qb: np.ndarray
    #: VTC of the right half: QB = f(Q), overlaid as x = QB_out, y = Q_in.
    q_axis: np.ndarray
    qb_of_q: np.ndarray
    #: Largest-square sides of the two eyes [V].
    lobe_low: float
    lobe_high: float

    @property
    def snm(self):
        """Static noise margin: the worse (smaller) eye [V]."""
        return min(self.lobe_low, self.lobe_high)

    @property
    def bistable(self):
        """True when both eyes are open."""
        return self.lobe_low > 0 and self.lobe_high > 0


def _largest_squares(x1, y1, x2, y2):
    """Largest inscribed squares between two overlaid curves.

    Curve 1 is sampled as (x1, y1), curve 2 as (x2, y2), in the same
    axes.  Returns ``(s_a, s_b)``: the max square sides found on each
    side of the curves (the two butterfly eyes); non-positive values mean
    that eye is closed (the cell is not bistable).
    """
    v1 = (y1 - x1) / _SQRT2
    u1 = (y1 + x1) / _SQRT2
    v2 = (y2 - x2) / _SQRT2
    u2 = (y2 + x2) / _SQRT2
    # Parametrize both curves by v (monotone along a falling VTC).
    order1 = np.argsort(v1)
    order2 = np.argsort(v2)
    v_lo = max(v1.min(), v2.min())
    v_hi = min(v1.max(), v2.max())
    if v_hi <= v_lo:
        return 0.0, 0.0
    grid = np.linspace(v_lo, v_hi, 4 * len(v1))
    u1_grid = np.interp(grid, v1[order1], u1[order1])
    u2_grid = np.interp(grid, v2[order2], u2[order2])
    separation = u1_grid - u2_grid
    s_a = float(np.max(separation)) / _SQRT2
    s_b = float(np.max(-separation)) / _SQRT2
    return s_a, s_b


def butterfly(cell, bias, access_on, points=DEFAULT_POINTS):
    """Compute the butterfly curves and noise margin under ``bias``.

    For a symmetric cell the second VTC is the mirror of the first,
    halving the work; Monte Carlo instances compute both halves.
    """
    qb_axis, q_of_qb = vtc(cell, "l", bias, access_on, points)
    if cell.is_symmetric and bias.v_bl == bias.v_blb:
        q_axis, qb_of_q = qb_axis.copy(), q_of_qb.copy()
    else:
        q_axis, qb_of_q = vtc(cell, "r", bias, access_on, points)
    # Overlay curve 2 in curve-1 axes (x = QB, y = Q): its points are
    # (x, y) = (qb_of_q, q_axis).
    lobe_a, lobe_b = _largest_squares(
        qb_axis, q_of_qb, qb_of_q, q_axis
    )
    return ButterflyResult(
        qb_axis=qb_axis,
        q_of_qb=q_of_qb,
        q_axis=q_axis,
        qb_of_q=qb_of_q,
        lobe_low=min(lobe_a, lobe_b),
        lobe_high=max(lobe_a, lobe_b),
    )


def snm_samples(cell, bias, access_on, points=DEFAULT_POINTS):
    """Noise margin of every sample of a batched cell at once [V].

    ``cell`` carries batched per-sample parameters (see
    :meth:`repro.devices.params.FinFETParams.with_vt_shifts`); both VTC
    bisections evaluate all samples simultaneously, then the largest
    inscribed square is extracted per sample.  Returns an ``(n,)`` array
    that is bitwise equal to calling ``butterfly(...).snm`` on each
    sample's scalar cell.
    """
    qb_axis, q_of_qb = vtc(cell, "l", bias, access_on, points)
    q_of_qb = np.atleast_2d(q_of_qb)
    if cell.is_symmetric and bias.v_bl == bias.v_blb:
        q_axis, qb_of_q = qb_axis.copy(), q_of_qb.copy()
    else:
        q_axis, qb_of_q = vtc(cell, "r", bias, access_on, points)
        qb_of_q = np.atleast_2d(qb_of_q)
    # Eye extraction is 1-D interpolation, so it runs per sample — cheap
    # next to the bisections (O(points log points) vs O(iters * devices)).
    snm = np.empty(q_of_qb.shape[0])
    for k in range(q_of_qb.shape[0]):
        lobe_a, lobe_b = _largest_squares(
            qb_axis, q_of_qb[k], qb_of_q[k], q_axis
        )
        snm[k] = min(lobe_a, lobe_b)
    return snm


def hold_snm(cell, vdd=None, points=DEFAULT_POINTS, bias=None):
    """Hold SNM (HSNM): wordline off, bitlines precharged [V]."""
    if bias is None:
        bias = CellBias.hold(vdd) if vdd is not None else CellBias.hold()
    return butterfly(cell, bias, access_on=False, points=points).snm


def read_snm(cell, vdd=None, v_ddc=None, v_ssc=0.0, v_wl=None,
             points=DEFAULT_POINTS, bias=None):
    """Read SNM (RSNM): wordline on, bitlines held at Vdd [V].

    ``v_ddc``/``v_ssc`` apply the Vdd-boost / negative-Gnd read assists;
    ``v_wl`` overrides the wordline level (WL underdrive studies).
    """
    if bias is None:
        base = CellBias.read(
            vdd=vdd if vdd is not None else CellBias().vdd,
            v_ddc=v_ddc,
            v_ssc=v_ssc,
        )
        bias = base if v_wl is None else base.with_wordline(v_wl)
    return butterfly(cell, bias, access_on=True, points=points).snm
