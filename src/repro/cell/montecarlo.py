"""Monte Carlo yield analysis of the 6T cell under Vt variation.

The paper's Monte Carlo analysis concludes that, for its 7nm FinFETs,
noise margins must exceed 35% of Vdd for a high-yield cell; the array
optimizer then uses ``min(HSNM, RSNM, WM) >= delta`` with
``delta = 0.35 * Vdd`` as its (simplified) yield constraint.  This
module reproduces the underlying distributional analysis: it samples
per-transistor threshold shifts, re-extracts the margins, and reports
means, sigmas, mu - k*sigma, and empirical yield at a given margin
floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..devices.variation import VariationModel
from .bias import CellBias
from .sram6t import TRANSISTOR_ROLES
from .snm import butterfly
from .write import write_margin


@dataclass
class MetricSamples:
    """Monte Carlo samples of one margin metric."""

    name: str
    values: np.ndarray

    @property
    def mean(self):
        return float(np.mean(self.values))

    @property
    def sigma(self):
        return float(np.std(self.values, ddof=1)) if len(self.values) > 1 else 0.0

    def mu_minus_k_sigma(self, k):
        """The paper's analytic yield expression ``mu - k*sigma``."""
        return self.mean - k * self.sigma

    def yield_at(self, floor):
        """Empirical fraction of samples with margin >= ``floor``."""
        return float(np.mean(self.values >= floor))


@dataclass
class MonteCarloResult:
    """All sampled metrics from one Monte Carlo run."""

    n_samples: int
    metrics: dict = field(default_factory=dict)

    def metric(self, name):
        return self.metrics[name]

    def worst_case_yield(self, floor):
        """Fraction of samples where *every* metric clears ``floor``
        (margins are evaluated on the same cell instances, so this is a
        joint, not independent, yield)."""
        stacked = np.vstack([m.values for m in self.metrics.values()])
        return float(np.mean(np.all(stacked >= floor, axis=0)))


def sample_cells(base_cell, n_samples, variation=None, seed=0):
    """Generate Monte Carlo cell instances (a generator).

    Each instance perturbs all six transistor thresholds independently
    with the Pelgrom sigma of :class:`VariationModel`.
    """
    variation = variation or VariationModel()
    rng = np.random.default_rng(seed)
    shifts = variation.sample_shifts(len(TRANSISTOR_ROLES), n_samples, rng)
    for row in shifts:
        overrides = {
            role: base_cell.params(role).with_vt_shift(float(delta))
            for role, delta in zip(TRANSISTOR_ROLES, row)
        }
        yield base_cell.with_overrides(overrides)


def run_cell_montecarlo(base_cell, n_samples=200, variation=None, seed=0,
                        vdd=None, read_bias=None, hold_bias=None,
                        metrics=("hsnm", "rsnm"), wm_resolution=0.002,
                        snm_points=61):
    """Monte Carlo over cell instances; returns :class:`MonteCarloResult`.

    ``metrics`` selects among ``"hsnm"``, ``"rsnm"`` and ``"wm"`` (write
    margin is by far the most expensive — each sample runs a bisection of
    full write-flip relaxations).
    """
    vdd = CellBias().vdd if vdd is None else vdd
    hold_bias = hold_bias or CellBias.hold(vdd)
    read_bias = read_bias or CellBias.read(vdd)
    collected = {name: [] for name in metrics}
    for cell in sample_cells(base_cell, n_samples, variation, seed):
        if "hsnm" in collected:
            collected["hsnm"].append(
                butterfly(cell, hold_bias, access_on=False,
                          points=snm_points).snm
            )
        if "rsnm" in collected:
            collected["rsnm"].append(
                butterfly(cell, read_bias, access_on=True,
                          points=snm_points).snm
            )
        if "wm" in collected:
            collected["wm"].append(
                write_margin(cell, v_wl_applied=read_bias.v_wl, vdd=vdd,
                             resolution=wm_resolution)
            )
    result = MonteCarloResult(n_samples=n_samples)
    for name, values in collected.items():
        result.metrics[name] = MetricSamples(name, np.asarray(values))
    return result


def required_margin_fraction(result, k=3.0, vdd=None):
    """Back out the paper-style yield rule from a Monte Carlo run: the
    fraction of Vdd that the *nominal* margin must exceed so that
    ``mu - k*sigma >= 0``, assuming sigma stays at the sampled value.

    For each metric: required nominal margin = k * sigma, expressed as a
    fraction of Vdd.  The paper's analysis arrives at 0.35.
    """
    vdd = CellBias().vdd if vdd is None else vdd
    return {
        name: k * samples.sigma / vdd
        for name, samples in result.metrics.items()
    }
