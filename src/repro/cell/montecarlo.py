"""Monte Carlo yield analysis of the 6T cell under Vt variation.

The paper's Monte Carlo analysis concludes that, for its 7nm FinFETs,
noise margins must exceed 35% of Vdd for a high-yield cell; the array
optimizer then uses ``min(HSNM, RSNM, WM) >= delta`` with
``delta = 0.35 * Vdd`` as its (simplified) yield constraint.  This
module reproduces the underlying distributional analysis: it samples
per-transistor threshold shifts, re-extracts the margins, and reports
means, sigmas, mu - k*sigma, and empirical yield at a given margin
floor.

Two engines extract the margins:

* ``engine="batched"`` (default) — one batched cell carries every
  sample's thresholds as per-transistor ``(n, 1)`` columns, so each
  margin is a single vectorized bisection/relaxation over all samples
  (O(iterations) numpy passes instead of O(n * iterations) scalar
  solves);
* ``engine="loop"`` — the retained scalar reference: one perturbed cell
  object per sample, solved point by point.

Both engines consume the *same* shift matrix from the same seeded
generator and follow the same per-element operation sequence, so their
sample arrays are bit-identical (``tests/test_montecarlo_parity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import perf
from ..devices.variation import VariationModel, apply_shift_matrix
from .bias import CellBias
from .sram6t import TRANSISTOR_ROLES
from .snm import butterfly, snm_samples
from .write import write_margin, write_margin_batch


@dataclass
class MetricSamples:
    """Monte Carlo samples of one margin metric."""

    name: str
    values: np.ndarray

    @property
    def mean(self):
        return float(np.mean(self.values))

    @property
    def sigma(self):
        return float(np.std(self.values, ddof=1)) if len(self.values) > 1 else 0.0

    def mu_minus_k_sigma(self, k):
        """The paper's analytic yield expression ``mu - k*sigma``."""
        return self.mean - k * self.sigma

    def yield_at(self, floor):
        """Empirical fraction of samples with margin >= ``floor``."""
        return float(np.mean(self.values >= floor))

    def percentile(self, q):
        """Empirical margin percentile(s) [V].

        ``q`` in [0, 100], scalar or sequence (linear interpolation
        between order statistics, numpy's default).
        """
        result = np.percentile(self.values, q)
        return float(result) if np.ndim(result) == 0 else result

    def tail_probability(self, floor):
        """Observed ``P(margin < floor)`` — the empirical estimator
        only; complement of :meth:`yield_at`."""
        return float(np.mean(self.values < floor))

    def tail_estimate(self, floor):
        """:class:`repro.yields.failure.FailureEstimate` of
        ``P(margin < floor)``: the observed tail fraction when enough
        failures were seen, the Gaussian-tail extrapolation in the
        deep-yield regime where the sample tail is empty."""
        from ..yields.failure import estimate_p_fail

        return estimate_p_fail(self.values, floor)


@dataclass
class MonteCarloResult:
    """All sampled metrics from one Monte Carlo run."""

    n_samples: int
    metrics: dict = field(default_factory=dict)

    def metric(self, name):
        return self.metrics[name]

    def worst_case_yield(self, floor):
        """Fraction of samples where *every* metric clears ``floor``
        (margins are evaluated on the same cell instances, so this is a
        joint, not independent, yield)."""
        stacked = np.vstack([m.values for m in self.metrics.values()])
        return float(np.mean(np.all(stacked >= floor, axis=0)))


def sample_shift_matrix(n_samples, variation=None, seed=0):
    """The seeded per-transistor Vt shift matrix both engines consume.

    Shape ``(n_samples, len(TRANSISTOR_ROLES))``, columns in
    :data:`TRANSISTOR_ROLES` order.  This is the single source of random
    draws for a Monte Carlo run: the batched engine maps the whole
    matrix onto one batched cell, the loop engine walks its rows.
    """
    variation = variation or VariationModel()
    rng = np.random.default_rng(seed)
    return variation.sample_shifts(len(TRANSISTOR_ROLES), n_samples, rng)


def batched_cell(base_cell, shift_matrix):
    """One cell carrying every Monte Carlo sample at once.

    Each transistor's column of ``shift_matrix`` becomes a batched
    per-sample ``vt`` on that transistor's parameters (see
    :func:`repro.devices.variation.apply_shift_matrix`), so every cell
    measurement downstream evaluates all samples simultaneously.
    """
    batched = apply_shift_matrix(base_cell.all_params(), shift_matrix)
    return base_cell.with_overrides(dict(zip(TRANSISTOR_ROLES, batched)))


def sample_cells(base_cell, n_samples, variation=None, seed=0):
    """Generate Monte Carlo cell instances (a generator).

    Each instance perturbs all six transistor thresholds independently
    with the Pelgrom sigma of :class:`VariationModel`.  Compatibility
    shim over :func:`sample_shift_matrix` — the batched engine consumes
    the same matrix directly via :func:`batched_cell`.
    """
    shifts = sample_shift_matrix(n_samples, variation, seed)
    for row in shifts:
        overrides = {
            role: base_cell.params(role).with_vt_shift(float(delta))
            for role, delta in zip(TRANSISTOR_ROLES, row)
        }
        yield base_cell.with_overrides(overrides)


def _collect_loop(base_cell, n_samples, variation, seed, vdd, read_bias,
                  hold_bias, metrics, wm_resolution, snm_points):
    """Scalar reference engine: one perturbed cell object per sample."""
    collected = {name: [] for name in metrics}
    for cell in sample_cells(base_cell, n_samples, variation, seed):
        if "hsnm" in collected:
            with perf.timed("montecarlo.loop.hsnm"):
                collected["hsnm"].append(
                    butterfly(cell, hold_bias, access_on=False,
                              points=snm_points).snm
                )
        if "rsnm" in collected:
            with perf.timed("montecarlo.loop.rsnm"):
                collected["rsnm"].append(
                    butterfly(cell, read_bias, access_on=True,
                              points=snm_points).snm
                )
        if "wm" in collected:
            with perf.timed("montecarlo.loop.wm"):
                collected["wm"].append(
                    write_margin(cell, v_wl_applied=read_bias.v_wl, vdd=vdd,
                                 resolution=wm_resolution)
                )
    return {name: np.asarray(values) for name, values in collected.items()}


def _collect_batched(base_cell, n_samples, variation, seed, vdd, read_bias,
                     hold_bias, metrics, wm_resolution, snm_points):
    """Batched engine: every sample solved in one vectorized pass."""
    cell = batched_cell(base_cell, sample_shift_matrix(n_samples, variation,
                                                       seed))
    return _margins_batched(cell, n_samples, vdd, read_bias, hold_bias,
                            metrics, wm_resolution, snm_points)


def _margins_batched(cell, n_samples, vdd, read_bias, hold_bias, metrics,
                     wm_resolution, snm_points):
    """Extract every requested margin from an already-batched cell."""
    collected = {name: np.asarray([]) for name in metrics}
    if "hsnm" in collected:
        with perf.timed("montecarlo.batched.hsnm"):
            collected["hsnm"] = snm_samples(cell, hold_bias,
                                            access_on=False,
                                            points=snm_points)
    if "rsnm" in collected:
        with perf.timed("montecarlo.batched.rsnm"):
            collected["rsnm"] = snm_samples(cell, read_bias, access_on=True,
                                            points=snm_points)
    if "wm" in collected:
        with perf.timed("montecarlo.batched.wm"):
            collected["wm"] = write_margin_batch(
                cell, n_samples, v_wl_applied=read_bias.v_wl, vdd=vdd,
                resolution=wm_resolution,
            )
    return collected


def run_cell_montecarlo(base_cell, n_samples=200, variation=None, seed=0,
                        vdd=None, read_bias=None, hold_bias=None,
                        metrics=("hsnm", "rsnm"), wm_resolution=0.002,
                        snm_points=61, engine="batched"):
    """Monte Carlo over cell instances; returns :class:`MonteCarloResult`.

    ``metrics`` selects among ``"hsnm"``, ``"rsnm"`` and ``"wm"`` (write
    margin is by far the most expensive — each sample runs a bisection of
    full write-flip relaxations).  ``engine`` selects the batched
    vectorized engine (default) or the scalar reference loop; both
    produce bit-identical sample arrays.
    """
    vdd = CellBias().vdd if vdd is None else vdd
    hold_bias = hold_bias or CellBias.hold(vdd)
    read_bias = read_bias or CellBias.read(vdd)
    if engine == "batched":
        collect = _collect_batched
    elif engine == "loop":
        collect = _collect_loop
    else:
        raise ValueError("unknown engine %r" % (engine,))
    perf.count("montecarlo.samples", n_samples)
    with perf.timed("montecarlo.run.%s" % engine):
        collected = collect(
            base_cell, n_samples, variation, seed, vdd, read_bias,
            hold_bias, metrics, wm_resolution, snm_points,
        )
    result = MonteCarloResult(n_samples=n_samples)
    for name, values in collected.items():
        result.metrics[name] = MetricSamples(name, np.asarray(values))
    return result


def run_cell_montecarlo_multi(base_cell, specs, variation=None, vdd=None,
                              read_bias=None, hold_bias=None,
                              metrics=("hsnm", "rsnm"), wm_resolution=0.002,
                              snm_points=61):
    """Coalesce several Monte Carlo draws into *one* batched solve.

    ``specs`` is a sequence of ``(n_samples, seed)`` pairs — e.g. the
    compatible requests a service batch collected.  Each spec's shift
    matrix comes from its own seeded generator (exactly what
    :func:`run_cell_montecarlo` would draw), the matrices are stacked,
    and every margin is extracted in a single vectorized pass over the
    combined sample axis.  Returns one :class:`MonteCarloResult` per
    spec, in order.

    Bit-identity: the batched solvers are lane-independent — converged
    lanes freeze and per-lane brackets march on their own (see
    :func:`repro.cell.write.flip_wordline_voltage_batch`), so a sample's
    trajectory does not depend on which other samples share the batch.
    Each returned result is therefore bitwise equal to a separate
    ``run_cell_montecarlo(..., engine="batched")`` call with that spec's
    ``n_samples`` and ``seed`` (and those are in turn bit-identical to
    the scalar loop engine).
    """
    vdd = CellBias().vdd if vdd is None else vdd
    hold_bias = hold_bias or CellBias.hold(vdd)
    read_bias = read_bias or CellBias.read(vdd)
    matrices = [
        sample_shift_matrix(int(n_samples), variation, seed)
        for n_samples, seed in specs
    ]
    if not matrices:
        return []
    total = sum(matrix.shape[0] for matrix in matrices)
    cell = batched_cell(base_cell, np.vstack(matrices))
    perf.count("montecarlo.samples", total)
    perf.count("montecarlo.coalesced_runs", len(matrices))
    with perf.timed("montecarlo.run.multi"):
        collected = _margins_batched(
            cell, total, vdd, read_bias, hold_bias, metrics,
            wm_resolution, snm_points,
        )
    results = []
    offset = 0
    for matrix in matrices:
        n_samples = matrix.shape[0]
        result = MonteCarloResult(n_samples=n_samples)
        for name, values in collected.items():
            result.metrics[name] = MetricSamples(
                name, np.asarray(values)[offset:offset + n_samples].copy()
            )
        results.append(result)
        offset += n_samples
    return results


def required_margin_fraction(result, k=3.0, vdd=None):
    """Back out the paper-style yield rule from a Monte Carlo run: the
    fraction of Vdd that the *nominal* margin must exceed so that
    ``mu - k*sigma >= 0``, assuming sigma stays at the sampled value.

    For each metric: required nominal margin = k * sigma, expressed as a
    fraction of Vdd.  The paper's analysis arrives at 0.35.
    """
    vdd = CellBias().vdd if vdd is None else vdd
    return {
        name: k * samples.sigma / vdd
        for name, samples in result.metrics.items()
    }
