"""Bias conditions applied to the 6T cell by the array and its assists.

A :class:`CellBias` captures the full electrical environment the array
imposes on one cell during an operation: the cell supply rails (which the
Vdd-boost and negative-Gnd assists move away from nominal), the wordline
level (WL over/underdrive), and the two bitline levels (precharge or
write data, including the negative-BL assist).

The paper's adopted scheme (its Figure 4):

* read:  ``V_DDC`` boosted, ``V_SSC`` negative, WL at nominal Vdd,
  both bitlines precharged to Vdd;
* write: WL overdriven to ``V_WL``, the '0'-side bitline at 0 (or
  negative with the negative-BL assist), rails at nominal.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..devices.library import VDD_NOMINAL


@dataclass(frozen=True)
class CellBias:
    """Voltages at the cell boundary [V]."""

    #: Nominal array supply (reference for noise-margin yield levels).
    vdd: float = VDD_NOMINAL
    #: Cell supply rail (``V_DDC`` >= vdd under the Vdd-boost assist).
    v_ddc: float = VDD_NOMINAL
    #: Cell ground rail (``V_SSC`` <= 0 under the negative-Gnd assist).
    v_ssc: float = 0.0
    #: Wordline level when asserted.
    v_wl: float = VDD_NOMINAL
    #: Bitline on the Q side.
    v_bl: float = VDD_NOMINAL
    #: Bitline on the QB side.
    v_blb: float = VDD_NOMINAL

    def __post_init__(self):
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")
        # np.any handles batched (array-valued) rails; for scalars it
        # reduces to the plain comparison.
        if np.any(np.asarray(self.v_ddc) <= np.asarray(self.v_ssc)):
            raise ValueError(
                "cell supply rail must exceed cell ground rail "
                "(v_ddc=%s, v_ssc=%s)" % (self.v_ddc, self.v_ssc)
            )

    # -- constructors for the standard operations ---------------------------

    @classmethod
    def hold(cls, vdd=VDD_NOMINAL):
        """Retention: WL off, bitlines precharged, nominal rails."""
        return cls(vdd=vdd, v_ddc=vdd, v_ssc=0.0, v_wl=0.0,
                   v_bl=vdd, v_blb=vdd)

    @classmethod
    def read(cls, vdd=VDD_NOMINAL, v_ddc=None, v_ssc=0.0):
        """Read access: WL at nominal Vdd, bitlines precharged, rails at
        the (possibly assisted) ``v_ddc`` / ``v_ssc`` levels."""
        v_ddc = vdd if v_ddc is None else v_ddc
        return cls(vdd=vdd, v_ddc=v_ddc, v_ssc=v_ssc, v_wl=vdd,
                   v_bl=vdd, v_blb=vdd)

    @classmethod
    def write(cls, vdd=VDD_NOMINAL, v_wl=None, v_bl_low=0.0):
        """Write access flipping Q from 1 to 0: the Q-side bitline is
        driven low (``v_bl_low``; negative under the negative-BL assist),
        the QB side is held at Vdd, WL at the (possibly overdriven)
        ``v_wl``."""
        v_wl = vdd if v_wl is None else v_wl
        return cls(vdd=vdd, v_ddc=vdd, v_ssc=0.0, v_wl=v_wl,
                   v_bl=v_bl_low, v_blb=vdd)

    def with_wordline(self, v_wl):
        """Copy with a different asserted-WL level."""
        return replace(self, v_wl=v_wl)

    def with_rails(self, v_ddc=None, v_ssc=None):
        """Copy with different cell rails."""
        return replace(
            self,
            v_ddc=self.v_ddc if v_ddc is None else v_ddc,
            v_ssc=self.v_ssc if v_ssc is None else v_ssc,
        )

    @property
    def cell_swing(self):
        """Internal node swing ``v_ddc - v_ssc`` [V]."""
        return self.v_ddc - self.v_ssc
