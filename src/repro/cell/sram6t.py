"""The 6T SRAM cell: structure and netlist construction.

Topology (paper Figure 1(a)) — inverter L drives node Q (input QB),
inverter R drives node QB (input Q); access transistors connect Q to BL
and QB to BLB, gated by WL::

            CVDD ----+----------+
                     |          |
                  [PU_L]     [PU_R]
         WL          |          |          WL
    BL --[AX_L]--  Q +--x-------+ QB --[AX_R]-- BLB
                     |          |
                  [PD_L]     [PD_R]
                     |          |
            CVSS ----+----------+

All six transistors are single-fin (the all-single-fin cell the paper
adopts for area efficiency); the class still stores one parameter set
per transistor so Monte Carlo variation can perturb them individually.
"""

from __future__ import annotations

from ..devices.library import DeviceLibrary
from ..devices.model import FinFET
from ..spice.netlist import Circuit

#: Transistor roles in a fixed order (used by Monte Carlo sampling).
TRANSISTOR_ROLES = ("pu_l", "pd_l", "ax_l", "pu_r", "pd_r", "ax_r")


class SRAM6TCell:
    """A 6T cell instance (six parameter sets, all single-fin)."""

    def __init__(self, nfet, pfet, overrides=None):
        """``nfet``/``pfet`` are the baseline FinFET parameter sets for
        the pull-down+access and pull-up transistors; ``overrides`` maps
        role names from :data:`TRANSISTOR_ROLES` to per-transistor
        parameter sets (used by variation sampling)."""
        defaults = {
            "pu_l": pfet, "pu_r": pfet,
            "pd_l": nfet, "pd_r": nfet,
            "ax_l": nfet, "ax_r": nfet,
        }
        overrides = overrides or {}
        unknown = set(overrides) - set(TRANSISTOR_ROLES)
        if unknown:
            raise ValueError("unknown transistor roles: %s" % sorted(unknown))
        self._params = {
            role: overrides.get(role, defaults[role])
            for role in TRANSISTOR_ROLES
        }
        for role in ("pu_l", "pu_r"):
            if self._params[role].polarity != "p":
                raise ValueError("%s must be a PFET" % role)
        for role in ("pd_l", "pd_r", "ax_l", "ax_r"):
            if self._params[role].polarity != "n":
                raise ValueError("%s must be an NFET" % role)

    @classmethod
    def from_library(cls, library=None, flavor="hvt"):
        """Cell built from a device library flavor ('lvt' or 'hvt')."""
        library = library or DeviceLibrary.default_7nm()
        return cls(
            nfet=library.nfet_params(flavor),
            pfet=library.pfet_params(flavor),
        )

    def params(self, role):
        """Parameter set of one transistor role."""
        return self._params[role]

    def device(self, role):
        """Single-fin FinFET instance for one role."""
        return FinFET(self._params[role], nfin=1)

    def all_params(self):
        """Parameter sets in :data:`TRANSISTOR_ROLES` order."""
        return [self._params[role] for role in TRANSISTOR_ROLES]

    def with_overrides(self, overrides):
        """A new cell with some transistors replaced (Monte Carlo)."""
        merged = dict(self._params)
        merged.update(overrides)
        return SRAM6TCell(
            nfet=self._params["pd_l"],
            pfet=self._params["pu_l"],
            overrides=merged,
        )

    @property
    def batch_size(self):
        """Sample count of a Monte Carlo-batched cell; None if scalar.

        All batched transistors of one cell must agree on the count.
        """
        sizes = {
            p.batch_size for p in self._params.values()
            if p.batch_size is not None
        }
        if not sizes:
            return None
        if len(sizes) > 1:
            raise ValueError(
                "inconsistent batch sizes across transistors: %s"
                % sorted(sizes)
            )
        return sizes.pop()

    @property
    def is_symmetric(self):
        """True when left and right halves share identical parameters."""
        return (
            self._params["pu_l"] == self._params["pu_r"]
            and self._params["pd_l"] == self._params["pd_r"]
            and self._params["ax_l"] == self._params["ax_r"]
        )

    # -- netlist construction ------------------------------------------------

    def build_circuit(self, bias, drive_q=None, drive_qb=None,
                      wl_value=None, node_caps=None):
        """Full-cell netlist under ``bias``.

        ``drive_q`` / ``drive_qb`` force the internal nodes with voltage
        sources (used to break the feedback loop for VTC extraction).
        ``wl_value`` overrides the WL source value (a constant or a
        callable f(t) for transient runs); it defaults to ``bias.v_wl``.
        ``node_caps`` optionally adds grounded capacitors, e.g.
        ``{"q": 0.1e-15}``, for transient realism.
        """
        circuit = Circuit("sram6t")
        circuit.add_vsource("vddc", "cvdd", "0", bias.v_ddc)
        circuit.add_vsource("vssc", "cvss", "0", bias.v_ssc)
        circuit.add_vsource("vwl", "wl", "0",
                            bias.v_wl if wl_value is None else wl_value)
        circuit.add_vsource("vbl", "bl", "0", bias.v_bl)
        circuit.add_vsource("vblb", "blb", "0", bias.v_blb)
        circuit.add_fet("pu_l", self.device("pu_l"), "qb", "q", "cvdd")
        circuit.add_fet("pd_l", self.device("pd_l"), "qb", "q", "cvss")
        circuit.add_fet("ax_l", self.device("ax_l"), "wl", "bl", "q")
        circuit.add_fet("pu_r", self.device("pu_r"), "q", "qb", "cvdd")
        circuit.add_fet("pd_r", self.device("pd_r"), "q", "qb", "cvss")
        circuit.add_fet("ax_r", self.device("ax_r"), "wl", "blb", "qb")
        if drive_q is not None:
            circuit.add_vsource("vq", "q", "0", drive_q)
        if drive_qb is not None:
            circuit.add_vsource("vqb", "qb", "0", drive_qb)
        for node, cap in (node_caps or {}).items():
            circuit.add_capacitor("c_%s" % node, node, "0", cap)
        return circuit

    def internal_node_capacitance(self):
        """Approximate capacitance [F] on each storage node: the drains
        of the three connected transistors plus the gates of the opposite
        inverter.  Used for transient write-delay realism."""
        p = self._params
        return (
            p["pu_l"].c_drain + p["pd_l"].c_drain + p["ax_l"].c_drain
            + p["pu_r"].c_gate + p["pd_r"].c_gate
        )
