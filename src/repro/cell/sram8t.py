"""The 8T SRAM cell (extension): a decoupled-read-port alternative.

The paper's introduction notes that more robust cell structures exist
(e.g. 8T/10T cells) "but such SRAM cells come at the cost of larger
layout area", and instead rescues the 6T cell with assist circuits.
This module provides the 8T comparison point: a standard 6T storage
core plus a two-transistor read buffer::

                            RWL
                             |
    RBL --[RAX]-- x --[RPD]-- (gate of RPD on QB)
                             |
                            GND

Reads sense RBL through the buffer while the write wordline stays low,
so the storage nodes are never disturbed: the read SNM *equals* the
hold SNM, eliminating the need for the Vdd-boost read assist.  The read
port can even use LVT devices on an HVT core (separate optimization of
retention vs read speed) — exactly the kind of trade the
device-circuit co-optimization framework is meant to explore.

Costs: two extra transistors (~30% area in published 8T layouts), an
extra wordline and bitline per row/column, and the read-buffer leakage.
"""

from __future__ import annotations

from ..devices.library import DeviceLibrary
from ..devices.model import FinFET
from ..errors import CharacterizationError
from ..spice.netlist import Circuit
from .bias import CellBias
from .sram6t import SRAM6TCell

#: Area of the 8T cell relative to the 6T (published 8T macros).
AREA_RATIO_VS_6T = 1.3

#: Bisection tolerance for the read-stack internal node [V].
_TOL = 1e-7


class SRAM8TCell:
    """An 8T cell: a 6T storage core plus a 2T read buffer."""

    def __init__(self, core, read_nfet, read_nfin=1):
        """``core`` is the storage :class:`SRAM6TCell`; ``read_nfet``
        parametrizes both read-buffer NFETs (often LVT even on an HVT
        core); ``read_nfin`` sizes them (no read-disturb constraint, so
        upsizing is free of stability cost)."""
        if not isinstance(core, SRAM6TCell):
            raise TypeError("core must be an SRAM6TCell")
        if read_nfet.polarity != "n":
            raise ValueError("read-buffer devices must be NFETs")
        self.core = core
        self.read_nfet = read_nfet
        self.read_nfin = int(read_nfin)
        if self.read_nfin < 1:
            raise ValueError("read_nfin must be >= 1")

    @classmethod
    def from_library(cls, library=None, storage_flavor="hvt",
                     read_flavor="lvt", read_nfin=1):
        """The natural co-optimized build: HVT storage for retention,
        LVT read port for speed."""
        library = library or DeviceLibrary.default_7nm()
        return cls(
            core=SRAM6TCell.from_library(library, storage_flavor),
            read_nfet=library.nfet_params(read_flavor),
            read_nfin=read_nfin,
        )

    def read_devices(self):
        """(RPD, RAX) FinFET instances."""
        rpd = FinFET(self.read_nfet, self.read_nfin)
        rax = FinFET(self.read_nfet, self.read_nfin)
        return rpd, rax

    # -- noise margins --------------------------------------------------------

    def hold_snm(self, vdd):
        """Hold SNM [V] — the storage core's, read port off."""
        from .snm import hold_snm

        return hold_snm(self.core, vdd)

    def read_snm(self, vdd):
        """Read SNM [V].

        The decoupled port leaves the storage nodes untouched during a
        read (write WL low), so this *is* the hold SNM — the defining
        8T property.
        """
        return self.hold_snm(vdd)

    # -- read current ------------------------------------------------------------

    def read_current(self, vdd, v_rbl=None):
        """Read-buffer current [A] discharging RBL (cell stores QB=1).

        Solved by bisection on the buffer's internal node x:
        ``I_RAX(RBL -> x) = I_RPD(x -> 0)`` with RPD's gate at the full
        stored level — no disturb trade-off caps this stack, unlike the
        6T read path.
        """
        v_rbl = vdd if v_rbl is None else v_rbl
        rpd, rax = self.read_devices()
        lo, hi = 0.0, v_rbl

        def imbalance(v_x):
            # Current into node x from RBL minus current out to ground.
            i_in = rax.current(vdd, v_rbl, v_x)
            i_out = rpd.current(vdd, v_x, 0.0)
            return i_in - i_out

        if imbalance(lo) < 0 or imbalance(hi) > 0:
            raise CharacterizationError(
                "read-buffer stack current not bracketed"
            )
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if imbalance(mid) > 0:
                lo = mid
            else:
                hi = mid
            if hi - lo < _TOL:
                break
        v_x = 0.5 * (lo + hi)
        return rpd.current(vdd, v_x, 0.0)

    # -- leakage ---------------------------------------------------------------

    def build_circuit(self, bias, read_on=False):
        """Full 8T netlist: the 6T core plus the read buffer and RBL."""
        circuit = self.core.build_circuit(bias)
        circuit.add_vsource("vrwl", "rwl", "0",
                            bias.vdd if read_on else 0.0)
        circuit.add_vsource("vrbl", "rbl", "0", bias.v_bl)
        rpd, rax = self.read_devices()
        # RPD gate on QB (reads the complement), stacked under RAX.
        circuit.add_fet("rpd", rpd, "qb", "rx", "0")
        circuit.add_fet("rax", rax, "rwl", "rbl", "rx")
        return circuit

    def leakage_power(self, vdd):
        """Standby leakage [W] including the read buffer against a
        precharged RBL."""
        from ..spice.dc import operating_point

        bias = CellBias.hold(vdd)
        circuit = self.build_circuit(bias, read_on=False)
        solution = operating_point(
            circuit, initial_guess={"q": 0.0, "qb": bias.v_ddc}
        )
        source_levels = {
            "vddc": bias.v_ddc,
            "vssc": bias.v_ssc,
            "vwl": bias.v_wl,
            "vbl": bias.v_bl,
            "vblb": bias.v_blb,
            "vrwl": 0.0,
            "vrbl": bias.v_bl,
        }
        return sum(
            solution.source_power(name, level)
            for name, level in source_levels.items()
        )

    def __repr__(self):
        return "SRAM8TCell(core vt=%.0fmV, read vt=%.0fmV x%d)" % (
            self.core.params("pd_l").vt * 1e3,
            self.read_nfet.vt * 1e3,
            self.read_nfin,
        )
