"""Write margin (WM) of the 6T cell.

Following the paper (after [Lu et al. 2010]), the WM is derived from the
minimum wordline voltage that flips the cell under write bitline
conditions.  Generalized to wordline-overdrive operation::

    WM = V_WL(applied) - V_WL(flip)

which reduces to the paper's ``Vdd - V_WL(flip)`` when the wordline is
driven at nominal Vdd, makes WLOD raise the WM (paper Fig. 5(a)), and
makes the negative-BL assist raise it too (a lower flip voltage,
Fig. 5(b)).

The flip voltage is located by bisection on a *bistability oracle*: for
a candidate WL level the cell state is relaxed from the Q=1 corner by
damped fixed-point iteration of the half-circuit maps; the cell has
flipped when it settles with Q below QB.  The relaxation map's stable
fixed points are exactly the cell's stable DC states, so the oracle is
monotone in the WL voltage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CharacterizationError
from .bias import CellBias

_DAMPING = 0.5
_TOL = 1e-7
#: The damped fixed point converges slowly right at the flip bifurcation
#: (a near-unit contraction rate); Monte Carlo samples probing WL levels
#: there can need >500 iterations, so the cap carries generous headroom.
#: Converged relaxations break (scalar) or freeze (batched) early, so
#: the cap only affects runs that would otherwise raise.
_MAX_ITER = 4000

#: Bisection resolution for the flip voltage [V].
FLIP_RESOLUTION = 0.0005


def settle_from_one(cell, bias):
    """Relax the cell from the Q=1 corner; returns ``(v_q, v_qb)``."""
    from .snm import half_circuit_output

    v_q = bias.v_ddc
    v_qb = bias.v_ssc
    for _ in range(_MAX_ITER):
        v_q_new = half_circuit_output(cell, "l", v_qb, bias, access_on=True)
        v_qb_new = half_circuit_output(cell, "r", v_q_new, bias,
                                       access_on=True)
        v_q_next = (1.0 - _DAMPING) * v_q + _DAMPING * v_q_new
        v_qb_next = (1.0 - _DAMPING) * v_qb + _DAMPING * v_qb_new
        moved = max(abs(v_q_next - v_q), abs(v_qb_next - v_qb))
        v_q, v_qb = v_q_next, v_qb_next
        if moved < _TOL:
            break
    else:
        raise CharacterizationError(
            "write settle iteration did not converge (last move %.3g V)"
            % moved
        )
    return v_q, v_qb


def cell_flips(cell, bias):
    """True when the write bias flips a cell that held Q = 1."""
    v_q, v_qb = settle_from_one(cell, bias)
    return v_q < v_qb


def settle_from_one_batch(cell, bias, lanes):
    """Batched :func:`settle_from_one`: relax every lane at once.

    A *lane* is one independent relaxation — a Monte Carlo sample of a
    batched cell, a candidate wordline level carried as an array-valued
    ``bias.v_wl``, or both.  ``lanes`` is the lane count; states are
    ``(lanes, 1)`` columns so batched device parameters broadcast
    elementwise.

    Bit-identity with the scalar loop: a lane that converges is updated
    one last time and then *frozen*, mirroring the scalar loop's
    update-then-break ordering; iterations past a lane's convergence
    cannot touch it.
    """
    from .snm import solve_half_circuit

    v_q = np.full((lanes, 1), float(np.max(bias.v_ddc)))
    v_qb = np.full((lanes, 1), float(np.max(bias.v_ssc)))
    if np.ndim(bias.v_ddc) != 0 or np.ndim(bias.v_ssc) != 0:
        # Per-lane rails: start each lane from its own corner.
        v_q = np.broadcast_to(
            np.asarray(bias.v_ddc, dtype=float), (lanes, 1)
        ).copy()
        v_qb = np.broadcast_to(
            np.asarray(bias.v_ssc, dtype=float), (lanes, 1)
        ).copy()
    active = np.ones((lanes, 1), dtype=bool)
    moved = None
    for _ in range(_MAX_ITER):
        v_q_new = solve_half_circuit(cell, "l", v_qb, bias, access_on=True)
        v_qb_new = solve_half_circuit(cell, "r", v_q_new, bias,
                                      access_on=True)
        v_q_next = (1.0 - _DAMPING) * v_q + _DAMPING * v_q_new
        v_qb_next = (1.0 - _DAMPING) * v_qb + _DAMPING * v_qb_new
        moved = np.maximum(np.abs(v_q_next - v_q), np.abs(v_qb_next - v_qb))
        v_q = np.where(active, v_q_next, v_q)
        v_qb = np.where(active, v_qb_next, v_qb)
        active &= ~(moved < _TOL)
        if not active.any():
            break
    else:
        raise CharacterizationError(
            "write settle iteration did not converge on %d of %d lanes "
            "(worst last move %.3g V)"
            % (int(active.sum()), lanes, float(np.max(moved[active])))
        )
    return v_q, v_qb


def cell_flips_batch(cell, bias, lanes):
    """Batched :func:`cell_flips`: an ``(lanes, 1)`` boolean column."""
    v_q, v_qb = settle_from_one_batch(cell, bias, lanes)
    return v_q < v_qb


def flip_wordline_voltage(cell, vdd=None, v_bl_low=0.0, v_wl_max=None,
                          resolution=FLIP_RESOLUTION):
    """Minimum WL voltage [V] that flips the cell during a write.

    ``v_bl_low`` is the level of the '0'-driven bitline (negative under
    the negative-BL assist).  Raises when even ``v_wl_max`` cannot flip
    the cell (an unwritable corner).
    """
    vdd = CellBias().vdd if vdd is None else vdd
    if v_wl_max is None:
        v_wl_max = 1.8 * vdd

    def bias_at(v_wl):
        return CellBias.write(vdd=vdd, v_wl=v_wl, v_bl_low=v_bl_low)

    lo, hi = 0.0, float(v_wl_max)
    if not cell_flips(cell, bias_at(hi)):
        raise CharacterizationError(
            "cell does not flip even at WL = %.3f V (unwritable)" % hi
        )
    if cell_flips(cell, bias_at(lo + 1e-6)):
        return lo
    while hi - lo > resolution:
        mid = 0.5 * (lo + hi)
        if cell_flips(cell, bias_at(mid)):
            hi = mid
        else:
            lo = mid
    return 0.5 * (lo + hi)


def flip_wordline_voltage_batch(cell, lanes, vdd=None, v_bl_low=0.0,
                                v_wl_max=None, resolution=FLIP_RESOLUTION):
    """Batched :func:`flip_wordline_voltage`: all lanes bisect at once.

    The candidate wordline level rides through the bistability oracle as
    an array-valued ``bias.v_wl`` column, so one
    :func:`settle_from_one_batch` call advances every lane's bisection by
    one step.  ``v_bl_low`` may itself be a per-lane column (the
    negative-BL characterization sweep batches over bitline levels with
    a scalar cell).

    Per-lane ``lo``/``hi`` brackets march independently: IEEE midpoint
    halving does not keep spans exactly equal across lanes, so each lane
    runs its own ``hi - lo > resolution`` test and freezes when done —
    every lane reproduces the scalar bisection bitwise.

    Returns an ``(lanes,)`` array of flip voltages.
    """
    vdd = CellBias().vdd if vdd is None else vdd
    if v_wl_max is None:
        v_wl_max = 1.8 * vdd

    def bias_at(v_wl):
        return CellBias.write(vdd=vdd, v_wl=v_wl, v_bl_low=v_bl_low)

    hi = np.full((lanes, 1), float(v_wl_max))
    lo = np.zeros((lanes, 1))
    flips_hi = cell_flips_batch(cell, bias_at(hi), lanes)
    if not flips_hi.all():
        raise CharacterizationError(
            "%d of %d lanes do not flip even at WL = %.3f V (unwritable)"
            % (int((~flips_hi).sum()), lanes, float(v_wl_max))
        )
    # Scalar path: a cell that already flips just above WL = 0 returns 0.
    at_floor = cell_flips_batch(cell, bias_at(np.full((lanes, 1), 1e-6)),
                                lanes)
    running = ~at_floor & (hi - lo > resolution)
    while running.any():
        mid = 0.5 * (lo + hi)
        # Finished lanes are probed at their (known-convergent) hi level
        # so the shared settle call cannot diverge on a stale midpoint;
        # their brackets are frozen by the running mask regardless.
        probe = np.where(running, mid, hi)
        flips = cell_flips_batch(cell, bias_at(probe), lanes)
        hi = np.where(running & flips, mid, hi)
        lo = np.where(running & ~flips, mid, lo)
        running = running & (hi - lo > resolution)
    result = np.where(at_floor, 0.0, 0.5 * (lo + hi))
    return result[:, 0]


def write_margin_batch(cell, lanes, v_wl_applied=None, vdd=None,
                       v_bl_low=0.0, resolution=FLIP_RESOLUTION):
    """Batched :func:`write_margin`: an ``(lanes,)`` margin array."""
    vdd = CellBias().vdd if vdd is None else vdd
    v_wl_applied = vdd if v_wl_applied is None else v_wl_applied
    v_flip = flip_wordline_voltage_batch(
        cell, lanes, vdd=vdd, v_bl_low=v_bl_low,
        v_wl_max=max(1.8 * vdd, v_wl_applied),
        resolution=resolution,
    )
    return v_wl_applied - v_flip


@dataclass(frozen=True)
class WriteMarginResult:
    """Write margin and its underlying flip voltage."""

    v_wl_applied: float
    v_wl_flip: float

    @property
    def wm(self):
        """Write margin [V]."""
        return self.v_wl_applied - self.v_wl_flip


def write_margin(cell, v_wl_applied=None, vdd=None, v_bl_low=0.0,
                 resolution=FLIP_RESOLUTION):
    """Write margin [V] at the applied WL level (default: nominal Vdd).

    A non-positive margin means the cell cannot be written at that WL
    level.
    """
    vdd = CellBias().vdd if vdd is None else vdd
    v_wl_applied = vdd if v_wl_applied is None else v_wl_applied
    v_flip = flip_wordline_voltage(
        cell, vdd=vdd, v_bl_low=v_bl_low,
        v_wl_max=max(1.8 * vdd, v_wl_applied),
        resolution=resolution,
    )
    return WriteMarginResult(v_wl_applied=v_wl_applied, v_wl_flip=v_flip).wm


def bitline_write_margin(cell, v_wl=None, vdd=None,
                         resolution=FLIP_RESOLUTION):
    """The complementary, bitline-referred write margin [V].

    Instead of asking how low the wordline may go (the paper's WL-sweep
    WM), this asks how far the write-low bitline may *rise* above 0
    before the write fails — a measure of tolerance to write-driver
    non-ideality and BL residual charge.  Found by bisection on the
    critical BL level (the write succeeds below it, fails above).

    Returns 0 when the cell cannot be written even with a perfect
    (0 V) bitline at the applied wordline.
    """
    vdd = CellBias().vdd if vdd is None else vdd
    v_wl = vdd if v_wl is None else v_wl

    def flips_at(v_bl):
        return cell_flips(
            cell, CellBias.write(vdd=vdd, v_wl=v_wl, v_bl_low=v_bl)
        )

    if not flips_at(0.0):
        return 0.0
    lo, hi = 0.0, vdd
    if flips_at(hi):
        return hi
    while hi - lo > resolution:
        mid = 0.5 * (lo + hi)
        if flips_at(mid):
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
