"""Read current of the 6T cell and the paper's power-law fit.

During a read, the bitline discharges through the access + pull-down
series stack of the '0'-storing side.  The DC read state (internal node
disturb voltage) is found by damped fixed-point iteration of the two
half-circuit maps; the read current is then the access-transistor
current at that state.

The paper models this current analytically as::

    I_read = b * (V_DDC - V_SSC - Vt)**a

with a = 1.3, b = 9.5e-5 A/V^1.3, Vt = 335 mV for its HVT devices; the
calibration benchmark re-fits this law to our measured currents.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CharacterizationError
from .bias import CellBias
from .snm import half_circuit_output

#: Fixed-point damping and convergence controls.
_DAMPING = 0.5
_TOL = 1e-7
_MAX_ITER = 300


@dataclass(frozen=True)
class ReadState:
    """DC state of the cell during a read access."""

    v_q: float
    v_qb: float
    flipped: bool
    i_read: float


def read_state(cell, bias=None, vdd=None, v_ddc=None, v_ssc=0.0):
    """Solve the DC read state of a cell storing Q = 0.

    Returns a :class:`ReadState`; ``flipped`` is True when the read
    disturb destroyed the stored value (the '0' node rose past the '1'
    node), in which case ``i_read`` is not meaningful.
    """
    if bias is None:
        bias = CellBias.read(
            vdd=vdd if vdd is not None else CellBias().vdd,
            v_ddc=v_ddc,
            v_ssc=v_ssc,
        )
    # Damped fixed-point iteration from the Q=0 corner.
    v_q = bias.v_ssc
    v_qb = bias.v_ddc
    for _ in range(_MAX_ITER):
        v_q_new = half_circuit_output(cell, "l", v_qb, bias, access_on=True)
        v_qb_new = half_circuit_output(cell, "r", v_q_new, bias,
                                       access_on=True)
        v_q_next = (1.0 - _DAMPING) * v_q + _DAMPING * v_q_new
        v_qb_next = (1.0 - _DAMPING) * v_qb + _DAMPING * v_qb_new
        moved = max(abs(v_q_next - v_q), abs(v_qb_next - v_qb))
        v_q, v_qb = v_q_next, v_qb_next
        if moved < _TOL:
            break
    else:
        raise CharacterizationError(
            "read-state fixed point did not converge (last move %.3g V)"
            % moved
        )
    flipped = v_q >= v_qb
    ax = cell.device("ax_l")
    # Access device wired (gate=WL, drain=BL, source=Q); its drain
    # current is the bitline discharge current.
    i_read = ax.current(bias.v_wl, bias.v_bl, v_q)
    return ReadState(v_q=v_q, v_qb=v_qb, flipped=flipped, i_read=i_read)


def read_current(cell, bias=None, vdd=None, v_ddc=None, v_ssc=0.0):
    """Read current [A] under the given (possibly assisted) bias.

    Raises :class:`CharacterizationError` when the cell flips in DC —
    callers sweeping into unstable regions should catch it or check
    :func:`read_state` instead.
    """
    state = read_state(cell, bias=bias, vdd=vdd, v_ddc=v_ddc, v_ssc=v_ssc)
    if state.flipped:
        raise CharacterizationError(
            "cell flipped during read (v_q=%.3f >= v_qb=%.3f); "
            "read current undefined" % (state.v_q, state.v_qb)
        )
    return state.i_read


def read_state_batch(cell, bias, lanes):
    """Batched :func:`read_state`: every lane's DC read state at once.

    Lanes are Monte Carlo samples (batched cell parameters), independent
    bias points (array-valued ``bias`` rails, shape ``(lanes, 1)``), or
    both.  The damped fixed point freezes each lane the iteration it
    converges, mirroring the scalar loop's update-then-break ordering,
    so states match the per-lane scalar path bitwise.

    Returns ``(v_q, v_qb, flipped, i_read)`` as ``(lanes,)`` arrays.
    """
    from .snm import solve_half_circuit

    v_q = np.broadcast_to(
        np.asarray(bias.v_ssc, dtype=float), (lanes, 1)
    ).copy()
    v_qb = np.broadcast_to(
        np.asarray(bias.v_ddc, dtype=float), (lanes, 1)
    ).copy()
    active = np.ones((lanes, 1), dtype=bool)
    moved = None
    for _ in range(_MAX_ITER):
        v_q_new = solve_half_circuit(cell, "l", v_qb, bias, access_on=True)
        v_qb_new = solve_half_circuit(cell, "r", v_q_new, bias,
                                      access_on=True)
        v_q_next = (1.0 - _DAMPING) * v_q + _DAMPING * v_q_new
        v_qb_next = (1.0 - _DAMPING) * v_qb + _DAMPING * v_qb_new
        moved = np.maximum(np.abs(v_q_next - v_q), np.abs(v_qb_next - v_qb))
        v_q = np.where(active, v_q_next, v_q)
        v_qb = np.where(active, v_qb_next, v_qb)
        active &= ~(moved < _TOL)
        if not active.any():
            break
    else:
        raise CharacterizationError(
            "read-state fixed point did not converge on %d of %d lanes "
            "(worst last move %.3g V)"
            % (int(active.sum()), lanes, float(np.max(moved[active])))
        )
    flipped = v_q >= v_qb
    ax = cell.device("ax_l")
    i_read = ax.current(bias.v_wl, bias.v_bl, v_q)
    i_read = np.broadcast_to(np.asarray(i_read, dtype=float), (lanes, 1))
    return v_q[:, 0], v_qb[:, 0], flipped[:, 0], i_read[:, 0]


def read_current_grid(cell, v_ddc_values, v_ssc_values, vdd=None,
                      engine="batched"):
    """I_read over a (V_DDC, V_SSC) grid — the 2-D LUT the array model
    interpolates (paper Table 2, ``I_read(V_DDC, V_SSC)``).

    Returns an array of shape ``(len(v_ddc_values), len(v_ssc_values))``.
    ``engine="batched"`` flattens the grid into rail lanes and solves
    every point in one batched fixed point; ``engine="loop"`` retains the
    scalar point-by-point reference.  Both are bit-identical.
    """
    if engine == "batched":
        mesh_ddc, mesh_ssc = np.meshgrid(
            np.asarray(v_ddc_values, dtype=float),
            np.asarray(v_ssc_values, dtype=float),
            indexing="ij",
        )
        lanes = mesh_ddc.size
        bias = CellBias.read(
            vdd=vdd if vdd is not None else CellBias().vdd,
            v_ddc=mesh_ddc.reshape(lanes, 1),
            v_ssc=mesh_ssc.reshape(lanes, 1),
        )
        v_q, v_qb, flipped, i_read = read_state_batch(cell, bias, lanes)
        if flipped.any():
            raise CharacterizationError(
                "cell flipped during read on %d of %d grid points; "
                "read current undefined" % (int(flipped.sum()), lanes)
            )
        return i_read.reshape(mesh_ddc.shape)
    if engine != "loop":
        raise ValueError("unknown engine %r" % (engine,))
    grid = np.zeros((len(v_ddc_values), len(v_ssc_values)))
    for i, v_ddc in enumerate(v_ddc_values):
        for j, v_ssc in enumerate(v_ssc_values):
            grid[i, j] = read_current(
                cell, vdd=vdd, v_ddc=float(v_ddc), v_ssc=float(v_ssc)
            )
    return grid
