"""Physical constants and engineering-unit helpers.

Everything in the library works in base SI units (volts, amperes, farads,
seconds, joules, watts).  The paper quotes most quantities in engineering
units (mV, fF, ps, nW); these helpers keep the conversion explicit and the
call sites readable, e.g. ``mV(450)`` instead of ``0.45``.
"""

from __future__ import annotations

import math

# Boltzmann constant times unit charge ratio: thermal voltage at 300 K.
BOLTZMANN_J_PER_K = 1.380649e-23
ELECTRON_CHARGE_C = 1.602176634e-19
ROOM_TEMPERATURE_K = 300.0

#: Thermal voltage kT/q at 300 K, in volts (~25.85 mV).
PHI_T = BOLTZMANN_J_PER_K * ROOM_TEMPERATURE_K / ELECTRON_CHARGE_C

LN10 = math.log(10.0)


# ---------------------------------------------------------------------------
# to-SI constructors
# ---------------------------------------------------------------------------

def mV(value):
    """Millivolts to volts."""
    return value * 1e-3


def uA(value):
    """Microamperes to amperes."""
    return value * 1e-6


def nA(value):
    """Nanoamperes to amperes."""
    return value * 1e-9


def pA(value):
    """Picoamperes to amperes."""
    return value * 1e-12


def fF(value):
    """Femtofarads to farads."""
    return value * 1e-15


def aF(value):
    """Attofarads to farads."""
    return value * 1e-18


def ps(value):
    """Picoseconds to seconds."""
    return value * 1e-12


def ns(value):
    """Nanoseconds to seconds."""
    return value * 1e-9


def fJ(value):
    """Femtojoules to joules."""
    return value * 1e-15


def aJ(value):
    """Attojoules to joules."""
    return value * 1e-18


def nW(value):
    """Nanowatts to watts."""
    return value * 1e-9


def nm(value):
    """Nanometers to meters."""
    return value * 1e-9


def um(value):
    """Micrometers to meters."""
    return value * 1e-6


# ---------------------------------------------------------------------------
# from-SI accessors (for reporting)
# ---------------------------------------------------------------------------

def as_mV(volts):
    """Volts to millivolts."""
    return volts * 1e3


def as_uA(amps):
    """Amperes to microamperes."""
    return amps * 1e6


def as_nA(amps):
    """Amperes to nanoamperes."""
    return amps * 1e9


def as_fF(farads):
    """Farads to femtofarads."""
    return farads * 1e15


def as_ps(seconds):
    """Seconds to picoseconds."""
    return seconds * 1e12


def as_fJ(joules):
    """Joules to femtojoules."""
    return joules * 1e15


def as_aJ(joules):
    """Joules to attojoules."""
    return joules * 1e18


def as_nW(watts):
    """Watts to nanowatts."""
    return watts * 1e9


_SI_PREFIXES = [
    (1e-18, "a"),
    (1e-15, "f"),
    (1e-12, "p"),
    (1e-9, "n"),
    (1e-6, "u"),
    (1e-3, "m"),
    (1.0, ""),
    (1e3, "k"),
    (1e6, "M"),
    (1e9, "G"),
]


def eng(value, unit="", digits=4):
    """Format ``value`` with an engineering SI prefix.

    >>> eng(1.692e-9, 'W')
    '1.692nW'
    >>> eng(0.0, 'V')
    '0V'
    """
    if value == 0:
        return "0%s" % unit
    magnitude = abs(value)
    scale, prefix = _SI_PREFIXES[0]
    for cand_scale, cand_prefix in _SI_PREFIXES:
        if magnitude >= cand_scale:
            scale, prefix = cand_scale, cand_prefix
    scaled = value / scale
    text = ("%%.%dg" % digits) % scaled
    return "%s%s%s" % (text, prefix, unit)


def bytes_to_bits(capacity_bytes):
    """Memory capacity in bytes to bits."""
    return capacity_bytes * 8


def capacity_label(capacity_bytes):
    """Human label for a capacity in bytes, e.g. 1024 -> '1KB'."""
    if capacity_bytes >= 1024 and capacity_bytes % 1024 == 0:
        return "%dKB" % (capacity_bytes // 1024)
    return "%dB" % capacity_bytes


def is_power_of_two(value):
    """True when ``value`` is a positive integral power of two."""
    if value < 1:
        return False
    intval = int(value)
    if intval != value:
        return False
    return intval & (intval - 1) == 0


def log2_int(value):
    """Exact integer log2; raises ``ValueError`` for non powers of two."""
    if not is_power_of_two(value):
        raise ValueError("%r is not a power of two" % (value,))
    return int(value).bit_length() - 1
