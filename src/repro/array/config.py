"""Array evaluation configuration (the paper's Section-5 constants)."""

from __future__ import annotations

from dataclasses import dataclass

from .organization import DEFAULT_WORD_BITS


@dataclass(frozen=True)
class ArrayConfig:
    """Workload and modeling constants for array evaluation.

    Defaults reproduce the paper's Section-5 settings: beta = alpha = 0.5,
    delta = 0.35 * Vdd, W = 64 bits, DeltaV_S = 120 mV.
    """

    #: Fraction of accesses that are reads (Eq. 3).
    beta: float = 0.5
    #: Array activity factor: probability of an access per cycle (Eq. 5).
    alpha: float = 0.5
    #: Minimum acceptable noise margin, as a fraction of Vdd.
    delta_fraction: float = 0.35
    #: Bits read/written per access.
    word_bits: int = DEFAULT_WORD_BITS
    #: Sensing voltage DeltaV_S [V].
    delta_v_sense: float = 0.120
    #: DC-DC converter efficiency applied to assist-rail energies
    #: (the paper multiplies assist energies by an inefficiency factor).
    dcdc_efficiency: float = 0.90
    #: Extension (off = paper-faithful Table 3): account for every
    #: column's bitline discharge/precharge and all W sensed/written
    #: columns per access instead of the single worst-case column.
    count_all_columns: bool = False
    #: Extension (``"none"`` = paper-faithful): error-correcting code
    #: stored as check-bit columns per word.  Any name accepted by
    #: :func:`repro.yields.ecc.make_code` ("none", "secded",
    #: "secded-x2", ...).  The code widens every row physically (larger
    #: C_CVDD/C_CVSS/C_WL/C_COL, more leaking cells) and adds
    #: encode/correct latency and energy to the write/read paths.
    ecc: str = "none"
    #: ECC timing organization.  ``False`` (inline): encode extends the
    #: write path and correct the read path serially.  ``True``
    #: (staged): correction runs in its own pipeline stage, so the
    #: array cycle is ``max(d_rd, d_wr, encode, correct)`` — the usual
    #: organization for near-threshold macros, where an inline
    #: syndrome+correct chain would rival the array access itself.
    ecc_pipelined: bool = False

    def __post_init__(self):
        if not 0.0 <= self.beta <= 1.0:
            raise ValueError("beta must be in [0, 1]")
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if not 0.0 < self.dcdc_efficiency <= 1.0:
            raise ValueError("dcdc_efficiency must be in (0, 1]")
        self.ecc_code()    # unknown code names fail at construction

    def delta(self, vdd):
        """Absolute noise-margin floor [V]."""
        return self.delta_fraction * vdd

    def ecc_code(self):
        """The resolved :class:`repro.yields.ecc.ECCCode` for this word."""
        from ..yields.ecc import make_code

        return make_code(self.ecc, self.word_bits)

    @property
    def assist_energy_factor(self):
        """Multiplier on assist-rail energies (1 / converter efficiency)."""
        return 1.0 / self.dcdc_efficiency
