"""Array evaluation configuration (the paper's Section-5 constants)."""

from __future__ import annotations

from dataclasses import dataclass

from .organization import DEFAULT_WORD_BITS


@dataclass(frozen=True)
class ArrayConfig:
    """Workload and modeling constants for array evaluation.

    Defaults reproduce the paper's Section-5 settings: beta = alpha = 0.5,
    delta = 0.35 * Vdd, W = 64 bits, DeltaV_S = 120 mV.
    """

    #: Fraction of accesses that are reads (Eq. 3).
    beta: float = 0.5
    #: Array activity factor: probability of an access per cycle (Eq. 5).
    alpha: float = 0.5
    #: Minimum acceptable noise margin, as a fraction of Vdd.
    delta_fraction: float = 0.35
    #: Bits read/written per access.
    word_bits: int = DEFAULT_WORD_BITS
    #: Sensing voltage DeltaV_S [V].
    delta_v_sense: float = 0.120
    #: DC-DC converter efficiency applied to assist-rail energies
    #: (the paper multiplies assist energies by an inefficiency factor).
    dcdc_efficiency: float = 0.90
    #: Extension (off = paper-faithful Table 3): account for every
    #: column's bitline discharge/precharge and all W sensed/written
    #: columns per access instead of the single worst-case column.
    count_all_columns: bool = False

    def __post_init__(self):
        if not 0.0 <= self.beta <= 1.0:
            raise ValueError("beta must be in [0, 1]")
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if not 0.0 < self.dcdc_efficiency <= 1.0:
            raise ValueError("dcdc_efficiency must be in (0, 1]")

    def delta(self, vdd):
        """Absolute noise-margin floor [V]."""
        return self.delta_fraction * vdd

    @property
    def assist_energy_factor(self):
        """Multiplier on assist-rail energies (1 / converter efficiency)."""
        return 1.0 / self.dcdc_efficiency
