"""The analytical SRAM array model: one evaluation per design point.

Ties Table 1 (capacitances), Table 2 (component delays/energies),
Table 3 (access delays/energies), and Eqs. (2)-(5) (array delay, energy,
and their product) together over one :class:`ArrayCharacterization`.

``n_pre`` / ``n_wr`` may be numpy arrays: a single call then evaluates a
whole fin-count grid.  ``v_ssc`` may also be an array (conventionally
shaped ``(S, 1, 1)`` so it broadcasts as a leading axis over the
``(N_pre, N_wr)`` grid): the vectorized exhaustive optimizer evaluates
an entire policy's feasible ``V_SSC x N_pre x N_wr`` space for one row
count in a single call, which is how it sweeps its 250k-point design
space in well under the paper's two minutes.

The axes compose right-aligned, numpy-broadcast style, so outer axes
stack freely on the left: the fused engine adds a row-count axis
(``n_r`` / ``n_c`` shaped ``(R, 1, 1, 1)``), and the policy-batched
search adds a leading *policy* axis ``B`` by shaping the rail voltages
``(B, 1, 1, 1, 1)`` and ``v_ssc`` ``(B, 1, S, 1, 1)`` — one call then
scores a ``(B, n_r, V_SSC, N_pre, N_wr)`` tensor.  Whatever the rank,
every elementwise case split is evaluated with the scalar path's exact
arithmetic and selected per element, so results stay bit-identical to
the slice-by-slice reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .components import ComponentSet, _shared_precursors, compute_components
from .config import ArrayConfig
from .energy import read_energy, total_energy, write_energy
from .organization import ArrayOrganization, BroadcastOrganization
from .timing import read_delay, write_delay
from ..yields.ecc import ecc_overhead


@dataclass(frozen=True)
class DesignPoint:
    """One candidate array design (the optimizer's decision vector)."""

    n_r: int
    n_c: int
    n_pre: object  # int or numpy array
    n_wr: object   # int or numpy array
    v_ddc: float
    v_ssc: object  # float or numpy array (broadcast V_SSC axis)
    v_wl: float
    #: Write-low bitline level (0 = paper's adopted WLOD-only scheme;
    #: negative under the negative-BL write-assist extension).
    v_bl: float = 0.0

    def describe(self):
        if any(np.ndim(v) > 0 for v in
               (self.n_r, self.n_c, self.v_ddc, self.v_wl, self.v_bl)):
            return "<broadcast design over %d organizations>" \
                % max(np.size(self.n_r), 1)
        if np.ndim(self.v_ssc) == 0:
            v_ssc_text = "%.0fmV" % (self.v_ssc * 1e3)
        else:
            v_ssc_text = "<%d-level axis>" % np.size(self.v_ssc)
        text = (
            "%dx%d N_pre=%s N_wr=%s V_DDC=%.0fmV V_SSC=%s V_WL=%.0fmV"
            % (self.n_r, self.n_c, self.n_pre, self.n_wr,
               self.v_ddc * 1e3, v_ssc_text, self.v_wl * 1e3)
        )
        if self.v_bl < 0:
            text += " V_BL=%.0fmV" % (self.v_bl * 1e3)
        return text


class MetricsView:
    """Derived quantities shared by :class:`ArrayMetrics` and the
    blocked executor's :class:`BlockedBroadcastMetrics` facade."""

    @property
    def rails_timely(self):
        """True when the rail-arrival requirement holds."""
        return self.rail_arrival_slack >= 0

    @property
    def area(self):
        """Cell-matrix area [m^2] (periphery excluded)."""
        return self.footprint[0] * self.footprint[1]

    @property
    def bl_read_delay(self):
        """The BL discharge share of the read path (Fig. 7(d))."""
        return self.read_parts.get("bl")

    def breakdown(self):
        """Per-component delay/energy rows for reporting."""
        rows = []
        for name in sorted(self.components.delays):
            rows.append({
                "component": name,
                "delay_ps": float(np.mean(self.components.delays[name]))
                * 1e12,
                "energy_fJ": float(np.mean(self.components.energies[name]))
                * 1e15,
            })
        return rows

    @property
    def leakage_fraction(self):
        """Leakage share of the total energy."""
        return self.e_leak / self.e_total


@dataclass
class ArrayMetrics(MetricsView):
    """Evaluated delay/energy/EDP of one design point (or fin grid)."""

    design: DesignPoint
    d_rd: object
    d_wr: object
    d_array: object
    e_sw_rd: object
    e_sw_wr: object
    e_sw: object
    e_leak: object
    e_total: object
    edp: object
    components: object = None
    read_parts: dict = field(default_factory=dict)
    write_parts: dict = field(default_factory=dict)
    #: Slack [s] of the paper's rail-arrival requirement: the assisted
    #: CVDD/CVSS rails must settle before the WL reaches 50% of Vdd
    #: (Section 4; the 20-fin rail drivers are sized for n_c = 1024 to
    #: guarantee this).  Positive = requirement met.
    rail_arrival_slack: object = None

    #: Cell-matrix footprint (width, height) [m] and its aspect ratio.
    footprint: tuple = None
    aspect_ratio: float = None


#: ArrayMetrics fields the blocked executor stacks lazily on access.
_LAZY_STACK_FIELDS = frozenset((
    "d_rd", "d_wr", "d_array", "e_sw_rd", "e_sw_wr", "e_sw", "e_leak",
    "e_total", "edp", "rail_arrival_slack", "aspect_ratio",
))


class BlockedBroadcastMetrics(MetricsView):
    """Full-broadcast metrics assembled from per-row-count slices.

    The blocked executor evaluates one cache-resident row slice at a
    time and keeps the slices as-is: every :class:`ArrayMetrics` field
    (including ``edp`` / ``d_array`` / ``e_total``) is stacked into the
    full ``(R, S, P, W)`` array only when actually accessed.  The fused
    search engine never triggers the stack — it reduces the per-row
    slices directly through :attr:`row_blocks` while they are still
    cache-resident — so a search materializes no full-rank temporaries
    at all.  Stacked fields are lifted to at least the 4-D broadcast
    rank (missing axes become length-1) with the row axis re-inserted
    at its right-aligned position (axis ``-4``), matching the shapes of
    the unblocked broadcast path — including the 5-D
    ``(B, R, S, P, W)`` shapes of a policy-batched evaluation, whose
    per-row slices are 4-D ``(B, S, P, W)`` arrays.
    """

    #: Consumers that care (the fused reduction) can branch on this
    #: instead of isinstance checks.
    is_blocked = True

    def __init__(self, design, row_metrics):
        self.design = design
        self.row_blocks = tuple(row_metrics)
        self._rows = self.row_blocks

    @staticmethod
    def _stack(values):
        arrays = [np.asarray(v, dtype=float) for v in values]
        # Pad every slice to at least the (S, P, W) rank, then stack the
        # row axis back in right-aligned at axis -4: legacy 4-D searches
        # get (R, S, P, W) exactly as before, policy-batched slices of
        # shape (B, S, P, W) become (B, R, S, P, W).
        ndim = max(3, max(a.ndim for a in arrays))
        arrays = [a.reshape((1,) * (ndim - a.ndim) + a.shape)
                  for a in arrays]
        return np.stack(arrays, axis=-4)

    def __getattr__(self, name):
        if name.startswith("_") or name == "row_blocks":
            raise AttributeError(name)
        if name in _LAZY_STACK_FIELDS:
            value = self._stack([getattr(m, name) for m in self._rows])
            setattr(self, name, value)
            return value
        raise AttributeError(name)

    @property
    def components(self):
        cached = self.__dict__.get("_components")
        if cached is None:
            rows = self._rows
            cached = ComponentSet(
                delays={
                    k: self._stack([m.components.delays[k] for m in rows])
                    for k in rows[0].components.delays
                },
                energies={
                    k: self._stack([m.components.energies[k] for m in rows])
                    for k in rows[0].components.energies
                },
                capacitances={
                    k: self._stack(
                        [m.components.capacitances[k] for m in rows]
                    )
                    for k in rows[0].components.capacitances
                },
            )
            self.__dict__["_components"] = cached
        return cached

    def _stacked_parts(self, attr):
        rows = self._rows
        return {
            k: self._stack([getattr(m, attr)[k] for m in rows])
            for k in getattr(rows[0], attr)
        }

    @property
    def read_parts(self):
        return self._stacked_parts("read_parts")

    @property
    def write_parts(self):
        return self._stacked_parts("write_parts")

    @property
    def footprint(self):
        widths = self._stack([m.footprint[0] for m in self._rows])
        heights = self._stack([m.footprint[1] for m in self._rows])
        return (widths, heights)


class SRAMArrayModel:
    """Evaluate array metrics for one characterized cell flavor."""

    #: Full-broadcast element count above which a stacked-row-axis
    #: evaluation switches to the blocked executor.  32768 float64
    #: elements = 256 KiB per temporary — past that, the ~15 full-rank
    #: passes of an Eq.(2)-(5) evaluation stream every operand through
    #: a cache level too small to hold it, and evaluating one
    #: cache-resident row slice at a time is measurably faster.  Purely
    #: a performance knob: both executors produce bit-identical values.
    broadcast_block_elements = 32768

    def __init__(self, characterization, config=None):
        self.char = characterization
        self.config = config or ArrayConfig()
        # ECC is fixed per model: resolve the code once and characterize
        # its organization-independent encode/correct terms from the
        # decoder's unit gates.  ``check_bits == 0`` keeps every
        # evaluation bit-identical to the no-ECC model.
        self._ecc_code = self.config.ecc_code()
        self._ecc = ecc_overhead(self._ecc_code, characterization.decoder)

    @property
    def ecc_code(self):
        """The resolved :class:`~repro.yields.ecc.ECCCode`."""
        return self._ecc_code

    @property
    def ecc_terms(self):
        """The :class:`~repro.yields.ecc.ECCOverhead` added per access."""
        return self._ecc

    def organization(self, capacity_bits, n_r):
        """Validated organization for a capacity/row-count pair."""
        org = ArrayOrganization.from_capacity(
            capacity_bits, n_r, self.config.word_bits
        )
        if self._ecc_code.check_bits:
            org = ArrayOrganization(
                n_r=org.n_r, n_c=org.n_c, word_bits=org.word_bits,
                check_bits=self._ecc_code.check_bits,
            )
        return org

    def evaluate(self, capacity_bits, design):
        """Full Table-1..3 + Eq.(2)-(5) evaluation of ``design``.

        ``design.n_pre`` / ``design.n_wr`` / ``design.v_ssc`` may be
        numpy arrays; every metric field then carries the broadcast
        shape (``(S, P, W)`` when a V_SSC axis rides along a fin grid).
        ``design.n_r`` / ``design.n_c`` may *also* be integer arrays
        (conventionally ``(R, 1, 1, 1)``): the fused search engine then
        evaluates every row count of a capacity in this one call, with
        every Table-1/2/3 case split applied elementwise.  The rail
        voltages (``v_ddc`` / ``v_wl`` / ``v_bl``) may carry a leading
        policy axis on top (``(B, 1, 1, 1, 1)``, with ``v_ssc`` shaped
        ``(B, 1, S, 1, 1)``): one call then scores a whole
        ``(B, n_r, V_SSC, N_pre, N_wr)`` policy batch.  Large
        stacked-row-axis evaluations run through the blocked executor
        (see :attr:`broadcast_block_elements`) — one call, identical
        values, bounded working set.
        """
        if np.ndim(design.n_r) > 0 or np.ndim(design.n_c) > 0:
            org = BroadcastOrganization(
                n_r=design.n_r, n_c=design.n_c,
                word_bits=self.config.word_bits,
                check_bits=self._ecc_code.check_bits,
            )
            if np.any(org.capacity_bits != capacity_bits):
                raise ValueError(
                    "broadcast design does not match capacity %d bits"
                    % (capacity_bits,)
                )
            if self._should_block(design, org):
                return self._evaluate_blocked(capacity_bits, design, org)
        else:
            org = ArrayOrganization(
                n_r=design.n_r, n_c=design.n_c,
                word_bits=self.config.word_bits,
                check_bits=self._ecc_code.check_bits,
            )
            if org.capacity_bits != capacity_bits:
                raise ValueError(
                    "design %dx%d does not match capacity %d bits"
                    % (design.n_r, design.n_c, capacity_bits)
                )
        return self._evaluate_core(capacity_bits, design, org)

    def evaluate_bounds(self, capacity_bits, design, n_pre_hi, n_wr_hi):
        """Admissible per-organization *lower bounds* over a fin range.

        Evaluates ``design`` — whose ``n_pre`` / ``n_wr`` must be the
        fin-range *minima* — with the fin-dependent drive currents
        (``i_pre``, ``i_bl_wr``; the only fin-dependent Table-2
        precursors) taken at the range *maxima* ``n_pre_hi`` /
        ``n_wr_hi``.  Every capacitance is nondecreasing and both
        currents increasing in the fin counts, so each component delay
        ``C dV / I`` and energy ``C V dV`` — and hence the max/sum
        compositions ``d_array``, ``e_total``, and their product
        ``edp`` — is a lower bound on its value at *any*
        ``(N_pre, N_wr)`` in the range (see ``docs/MODELING.md`` §6).

        The mixed-corner metrics are not a physical design point; only
        the ``d_array`` / ``e_total`` / ``edp`` fields are meaningful as
        bounds.  Bound tensors carry one element per organization (a few
        hundred at most), so this always takes the cache-resident path —
        the blocked executor is never involved.
        """
        if np.ndim(design.n_r) > 0 or np.ndim(design.n_c) > 0:
            org = BroadcastOrganization(
                n_r=design.n_r, n_c=design.n_c,
                word_bits=self.config.word_bits,
                check_bits=self._ecc_code.check_bits,
            )
            if np.any(org.capacity_bits != capacity_bits):
                raise ValueError(
                    "broadcast design does not match capacity %d bits"
                    % (capacity_bits,)
                )
        else:
            org = ArrayOrganization(
                n_r=design.n_r, n_c=design.n_c,
                word_bits=self.config.word_bits,
                check_bits=self._ecc_code.check_bits,
            )
            if org.capacity_bits != capacity_bits:
                raise ValueError(
                    "design %dx%d does not match capacity %d bits"
                    % (design.n_r, design.n_c, capacity_bits)
                )
        shared = _shared_precursors(
            self.char, self.config, n_pre_hi, n_wr_hi,
            design.v_ddc, design.v_ssc, design.v_wl, design.v_bl,
        )
        return self._evaluate_core(capacity_bits, design, org,
                                   shared=shared)

    def _should_block(self, design, org):
        """Use the blocked executor when the organizations vary only
        along one stacked axis and the full broadcast is too big for
        the cache-resident fast path.

        The row axis is *right-aligned*: for ``n_r`` shaped
        ``(R, 1, ..., 1)`` it lands ``len(shape_r)`` axes from the right
        of the full broadcast, wherever outer axes (the policy batch)
        stack on the left.  Every other design field — including the
        rail voltages, which carry the batch axis — must be length-1
        along that axis so a per-row slice stays a plain indexed view.
        """
        shape_r = np.shape(org.n_r)
        if len(shape_r) < 2 or shape_r[0] < 2:
            return False
        if any(extent != 1 for extent in shape_r[1:]):
            return False
        if np.shape(org.n_c) != shape_r:
            return False
        row_axis = len(shape_r)   # distance of the row axis from the right
        others = (design.v_ssc, design.n_pre, design.n_wr,
                  design.v_ddc, design.v_wl, design.v_bl)
        for value in others:
            shape = np.shape(value)
            if len(shape) >= row_axis and shape[len(shape) - row_axis] != 1:
                return False
        try:
            full_shape = np.broadcast_shapes(
                shape_r, *[np.shape(value) for value in others]
            )
        except ValueError:
            return False
        return int(np.prod(full_shape)) > self.broadcast_block_elements

    def _evaluate_blocked(self, capacity_bits, design, org):
        """One evaluation, executed one row-count slice at a time.

        Each slice re-enters the scalar-organization path — the exact
        arithmetic of a per-``n_r`` call — with the organization-
        independent Table-2 precursors computed once and shared, so the
        result is bit-identical to the unblocked 4-D broadcast while
        every temporary stays cache-sized."""
        n_r_flat = np.asarray(org.n_r).reshape(-1)
        n_c_flat = np.asarray(org.n_c).reshape(-1)
        row_axis = len(np.shape(org.n_r))

        def drop_row_axis(value):
            # Remove the length-1 row axis, right-aligned: (1, S, 1, 1)
            # -> (S, 1, 1) and (B, 1, S, 1, 1) -> (B, S, 1, 1), so the
            # per-row design re-broadcasts exactly one rank lower.
            shape = np.shape(value)
            if len(shape) < row_axis:
                return value
            axis = len(shape) - row_axis
            return np.asarray(value).reshape(
                shape[:axis] + shape[axis + 1:]
            )

        row_v_ssc = drop_row_axis(design.v_ssc)
        row_v_ddc = drop_row_axis(design.v_ddc)
        row_v_wl = drop_row_axis(design.v_wl)
        row_v_bl = drop_row_axis(design.v_bl)
        shared = {}
        row_metrics = []
        for index in range(n_r_flat.size):
            row_design = replace(
                design,
                n_r=int(n_r_flat[index]), n_c=int(n_c_flat[index]),
                v_ssc=row_v_ssc, v_ddc=row_v_ddc, v_wl=row_v_wl,
                v_bl=row_v_bl,
            )
            row_org = ArrayOrganization(
                n_r=row_design.n_r, n_c=row_design.n_c,
                word_bits=self.config.word_bits,
                check_bits=self._ecc_code.check_bits,
            )
            row_metrics.append(self._evaluate_core(
                capacity_bits, row_design, row_org, shared
            ))
        return BlockedBroadcastMetrics(design=design,
                                       row_metrics=row_metrics)

    def _evaluate_core(self, capacity_bits, design, org, shared=None):
        components = compute_components(
            self.char, org, self.config,
            design.n_pre, design.n_wr,
            design.v_ddc, design.v_ssc, design.v_wl, design.v_bl,
            shared=shared,
        )
        read_parts, write_parts = {}, {}
        d_rd = read_delay(self.char, org, components, read_parts)
        d_wr = write_delay(self.char, org, components, design.v_wl,
                           write_parts, design.v_bl)
        leak_bits = capacity_bits
        if self._ecc_code.check_bits:
            # ECC: syndrome/correct logic joins the read path, the
            # encoder the write path, and the check columns leak like
            # any other cell.  The terms are organization-independent
            # constants composed through ``+``/``max`` — they apply
            # identically in the production evaluation and in
            # ``evaluate_bounds``, which is what keeps the pruned
            # engine's lower bounds admissible.  Inline: strictly
            # serial.  Pipelined: correction is its own stage, so the
            # cycle is the max over all stages.
            read_parts["ecc"] = self._ecc.correct_delay
            write_parts["ecc"] = self._ecc.encode_delay
            if not self.config.ecc_pipelined:
                d_rd = d_rd + self._ecc.correct_delay
                d_wr = d_wr + self._ecc.encode_delay
            leak_bits = org.n_r * org.n_c_phys
        d_array = np.maximum(d_rd, d_wr)
        if self._ecc_code.check_bits and self.config.ecc_pipelined:
            d_array = np.maximum(
                d_array,
                max(self._ecc.correct_delay, self._ecc.encode_delay),
            )
        e_sw_rd = read_energy(self.char, org, self.config, components)
        e_sw_wr = write_energy(self.char, org, self.config, components,
                               design.v_wl, design.v_bl)
        if self._ecc_code.check_bits:
            e_sw_rd = e_sw_rd + self._ecc.correct_energy
            e_sw_wr = e_sw_wr + self._ecc.encode_energy
        e_sw, e_leak, e_total = total_energy(
            self.config, e_sw_rd, e_sw_wr, leak_bits,
            self.char.p_leak_sram, d_array,
        )
        # Rail-arrival requirement (Section 4): the assist rails switch
        # at access start and must settle before WL reaches 50% of Vdd
        # at the worst-case row.
        wl_half_time = (
            self.char.decoder.delay(org.row_address_bits)
            + self.char.driver.first_three_delay
            + 0.5 * components.delay("WL_rd")
        )
        rail_settle = np.maximum(
            components.delay("CVDD"), components.delay("CVSS")
        )
        return ArrayMetrics(
            design=design,
            d_rd=d_rd,
            d_wr=d_wr,
            d_array=d_array,
            e_sw_rd=e_sw_rd,
            e_sw_wr=e_sw_wr,
            e_sw=e_sw,
            e_leak=e_leak,
            e_total=e_total,
            edp=e_total * d_array,
            components=components,
            read_parts=read_parts,
            write_parts=write_parts,
            rail_arrival_slack=wl_half_time - rail_settle,
            footprint=self.char.geometry.footprint(org.n_r, org.n_c_phys),
            aspect_ratio=self.char.geometry.aspect_ratio(
                org.n_r, org.n_c_phys),
        )
