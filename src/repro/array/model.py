"""The analytical SRAM array model: one evaluation per design point.

Ties Table 1 (capacitances), Table 2 (component delays/energies),
Table 3 (access delays/energies), and Eqs. (2)-(5) (array delay, energy,
and their product) together over one :class:`ArrayCharacterization`.

``n_pre`` / ``n_wr`` may be numpy arrays: a single call then evaluates a
whole fin-count grid.  ``v_ssc`` may also be an array (conventionally
shaped ``(S, 1, 1)`` so it broadcasts as a leading axis over the
``(N_pre, N_wr)`` grid): the vectorized exhaustive optimizer evaluates
an entire policy's feasible ``V_SSC x N_pre x N_wr`` space for one row
count in a single call, which is how it sweeps its 250k-point design
space in well under the paper's two minutes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .components import compute_components
from .config import ArrayConfig
from .energy import read_energy, total_energy, write_energy
from .organization import ArrayOrganization
from .timing import read_delay, write_delay


@dataclass(frozen=True)
class DesignPoint:
    """One candidate array design (the optimizer's decision vector)."""

    n_r: int
    n_c: int
    n_pre: object  # int or numpy array
    n_wr: object   # int or numpy array
    v_ddc: float
    v_ssc: object  # float or numpy array (broadcast V_SSC axis)
    v_wl: float
    #: Write-low bitline level (0 = paper's adopted WLOD-only scheme;
    #: negative under the negative-BL write-assist extension).
    v_bl: float = 0.0

    def describe(self):
        if np.ndim(self.v_ssc) == 0:
            v_ssc_text = "%.0fmV" % (self.v_ssc * 1e3)
        else:
            v_ssc_text = "<%d-level axis>" % np.size(self.v_ssc)
        text = (
            "%dx%d N_pre=%s N_wr=%s V_DDC=%.0fmV V_SSC=%s V_WL=%.0fmV"
            % (self.n_r, self.n_c, self.n_pre, self.n_wr,
               self.v_ddc * 1e3, v_ssc_text, self.v_wl * 1e3)
        )
        if self.v_bl < 0:
            text += " V_BL=%.0fmV" % (self.v_bl * 1e3)
        return text


@dataclass
class ArrayMetrics:
    """Evaluated delay/energy/EDP of one design point (or fin grid)."""

    design: DesignPoint
    d_rd: object
    d_wr: object
    d_array: object
    e_sw_rd: object
    e_sw_wr: object
    e_sw: object
    e_leak: object
    e_total: object
    edp: object
    components: object = None
    read_parts: dict = field(default_factory=dict)
    write_parts: dict = field(default_factory=dict)
    #: Slack [s] of the paper's rail-arrival requirement: the assisted
    #: CVDD/CVSS rails must settle before the WL reaches 50% of Vdd
    #: (Section 4; the 20-fin rail drivers are sized for n_c = 1024 to
    #: guarantee this).  Positive = requirement met.
    rail_arrival_slack: object = None

    #: Cell-matrix footprint (width, height) [m] and its aspect ratio.
    footprint: tuple = None
    aspect_ratio: float = None

    @property
    def rails_timely(self):
        """True when the rail-arrival requirement holds."""
        return self.rail_arrival_slack >= 0

    @property
    def area(self):
        """Cell-matrix area [m^2] (periphery excluded)."""
        return self.footprint[0] * self.footprint[1]

    @property
    def bl_read_delay(self):
        """The BL discharge share of the read path (Fig. 7(d))."""
        return self.read_parts.get("bl")

    def breakdown(self):
        """Per-component delay/energy rows for reporting."""
        rows = []
        for name in sorted(self.components.delays):
            rows.append({
                "component": name,
                "delay_ps": float(np.mean(self.components.delays[name]))
                * 1e12,
                "energy_fJ": float(np.mean(self.components.energies[name]))
                * 1e15,
            })
        return rows

    @property
    def leakage_fraction(self):
        """Leakage share of the total energy."""
        return self.e_leak / self.e_total


class SRAMArrayModel:
    """Evaluate array metrics for one characterized cell flavor."""

    def __init__(self, characterization, config=None):
        self.char = characterization
        self.config = config or ArrayConfig()

    def organization(self, capacity_bits, n_r):
        """Validated organization for a capacity/row-count pair."""
        return ArrayOrganization.from_capacity(
            capacity_bits, n_r, self.config.word_bits
        )

    def evaluate(self, capacity_bits, design):
        """Full Table-1..3 + Eq.(2)-(5) evaluation of ``design``.

        ``design.n_pre`` / ``design.n_wr`` / ``design.v_ssc`` may be
        numpy arrays; every metric field then carries the broadcast
        shape (``(S, P, W)`` when a V_SSC axis rides along a fin grid).
        """
        org = ArrayOrganization(
            n_r=design.n_r, n_c=design.n_c,
            word_bits=self.config.word_bits,
        )
        if org.capacity_bits != capacity_bits:
            raise ValueError(
                "design %dx%d does not match capacity %d bits"
                % (design.n_r, design.n_c, capacity_bits)
            )
        components = compute_components(
            self.char, org, self.config,
            design.n_pre, design.n_wr,
            design.v_ddc, design.v_ssc, design.v_wl, design.v_bl,
        )
        read_parts, write_parts = {}, {}
        d_rd = read_delay(self.char, org, components, read_parts)
        d_wr = write_delay(self.char, org, components, design.v_wl,
                           write_parts, design.v_bl)
        d_array = np.maximum(d_rd, d_wr)
        e_sw_rd = read_energy(self.char, org, self.config, components)
        e_sw_wr = write_energy(self.char, org, self.config, components,
                               design.v_wl, design.v_bl)
        e_sw, e_leak, e_total = total_energy(
            self.config, e_sw_rd, e_sw_wr, capacity_bits,
            self.char.p_leak_sram, d_array,
        )
        # Rail-arrival requirement (Section 4): the assist rails switch
        # at access start and must settle before WL reaches 50% of Vdd
        # at the worst-case row.
        wl_half_time = (
            self.char.decoder.delay(org.row_address_bits)
            + self.char.driver.first_three_delay
            + 0.5 * components.delay("WL_rd")
        )
        rail_settle = np.maximum(
            components.delay("CVDD"), components.delay("CVSS")
        )
        return ArrayMetrics(
            design=design,
            d_rd=d_rd,
            d_wr=d_wr,
            d_array=d_array,
            e_sw_rd=e_sw_rd,
            e_sw_wr=e_sw_wr,
            e_sw=e_sw,
            e_leak=e_leak,
            e_total=e_total,
            edp=e_total * d_array,
            components=components,
            read_parts=read_parts,
            write_parts=write_parts,
            rail_arrival_slack=wl_half_time - rail_settle,
            footprint=self.char.geometry.footprint(org.n_r, org.n_c),
            aspect_ratio=self.char.geometry.aspect_ratio(org.n_r, org.n_c),
        )
