"""Physical geometry of the SRAM array (paper Figure 1(b) + Section 5).

Wire capacitance follows the paper's layout-derived rule: the wire
running across one cell *width* has capacitance
``C_width = 5 * P_Metal * C_w`` and across one cell *height*
``C_height = 0.4 * C_width``, with the 7nm metal pitch
``P_Metal = 43 nm`` (scaled from Intel 14nm [10]) and the ITRS-2012 wire
capacitance ``C_w = 0.17 fF/um``.

The 6T cell is therefore 5 metal pitches wide and 2 pitches tall —
width 2.5x the height, which is why the optimizer tends to prefer
fewer columns (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass

#: 7nm metal pitch [m] (paper Section 5).
P_METAL = 43e-9

#: Wire capacitance per meter [F/m] (0.17 fF/um, ITRS 2012 for 7nm).
C_W_PER_M = 0.17e-15 / 1e-6

#: Cell width in metal pitches (Figure 1(b) layout).
CELL_WIDTH_PITCHES = 5

#: Height-to-width capacitance ratio (paper: C_height = 0.4 * C_width).
HEIGHT_WIDTH_RATIO = 0.4


@dataclass(frozen=True)
class ArrayGeometry:
    """Wire-capacitance geometry of the array."""

    p_metal: float = P_METAL
    c_w_per_m: float = C_W_PER_M

    @property
    def cell_width(self):
        """Cell width [m]."""
        return CELL_WIDTH_PITCHES * self.p_metal

    @property
    def cell_height(self):
        """Cell height [m]."""
        return HEIGHT_WIDTH_RATIO * self.cell_width

    @property
    def c_width(self):
        """Wire capacitance across one cell width [F]."""
        return self.cell_width * self.c_w_per_m

    @property
    def c_height(self):
        """Wire capacitance across one cell height [F]."""
        return HEIGHT_WIDTH_RATIO * self.c_width

    def row_wire_capacitance(self, n_c):
        """Wire capacitance of a full horizontal wire over n_c cells [F]."""
        return n_c * self.c_width

    def column_wire_capacitance(self, n_r):
        """Wire capacitance of a full vertical wire over n_r cells [F]."""
        return n_r * self.c_height

    def footprint(self, n_r, n_c):
        """(width, height) of the cell matrix [m]."""
        return n_c * self.cell_width, n_r * self.cell_height

    def aspect_ratio(self, n_r, n_c):
        """Width / height of the cell matrix."""
        width, height = self.footprint(n_r, n_c)
        return width / height
