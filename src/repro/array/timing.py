"""Read / write access delays (paper Table 3, delay rows).

The equations target the worst-case cell (top-right corner): the read
critical path races the row path (decode, drive, WL, BL discharge)
against the column path (column decode, drive, COL select), then adds
the sense and precharge times; the write path races WL assertion against
data arrival on the BL, then adds the cell flip and precharge times.

Without a column mux (n_c <= W) every column term is zero.
"""

from __future__ import annotations

import numpy as np


def read_delay(char, org, components, parts=None):
    """``D_rd`` of Table 3 [s].  ``parts``, when a dict is supplied, is
    filled with the named sub-terms for reporting (Fig. 7(d) needs the
    BL-delay share of the total)."""
    row_path = (
        char.decoder.delay(org.row_address_bits)
        + char.driver.first_three_delay
        + components.delay("WL_rd")
        + components.delay("BL_rd")
    )
    if org.is_broadcast:
        # Both case expressions with the scalar arithmetic, selected by
        # the mux mask: the no-mux column path must be *exactly* 0.0
        # (the mux expression at zero address bits still carries the
        # driver's first-three-stage delay).
        col_path = np.where(
            org.has_column_mux,
            char.decoder.delay(org.column_address_bits)
            + char.driver.first_three_delay
            + components.delay("COL"),
            0.0,
        )
    elif org.has_column_mux:
        col_path = (
            char.decoder.delay(org.column_address_bits)
            + char.driver.first_three_delay
            + components.delay("COL")
        )
    else:
        col_path = 0.0
    tail = char.sense.delay + components.delay("PRE_rd")
    total = np.maximum(row_path, col_path) + tail
    if parts is not None:
        parts.update({
            "row_path": row_path,
            "col_path": col_path,
            "bl": components.delay("BL_rd"),
            "sense": char.sense.delay,
            "precharge": components.delay("PRE_rd"),
        })
    return total


def write_delay(char, org, components, v_wl, parts=None, v_bl=0.0):
    """``D_wr`` of Table 3 [s].

    With the negative-BL assist active (``v_bl < 0``) the cell-flip
    delay comes from the negative-BL characterization (wordline at
    nominal Vdd) instead of the WLOD LUT.
    """
    row_path = (
        char.decoder.delay(org.row_address_bits)
        + char.driver.first_three_delay
        + components.delay("WL_wr")
    )
    if org.is_broadcast:
        col_path = np.where(
            org.has_column_mux,
            char.decoder.delay(org.column_address_bits)
            + char.driver.first_three_delay
            + components.delay("COL")
            + components.delay("BL_wr"),
            components.delay("BL_wr"),
        )
    elif org.has_column_mux:
        col_path = (
            char.decoder.delay(org.column_address_bits)
            + char.driver.first_three_delay
            + components.delay("COL")
            + components.delay("BL_wr")
        )
    else:
        # The write buffer still has to drive the bitline; only the
        # column-decode terms vanish.
        col_path = components.delay("BL_wr")
    # Scalar rails keep the reference Python branch; a broadcast rail
    # axis (policy batch) evaluates both characterizations elementwise
    # (both LUT domains cover every policy's levels) and selects per
    # element — bit-identical to the matching scalar branch.
    if np.ndim(v_bl) == 0:
        if v_bl < 0.0:
            cell_write = char.d_write_negbl(v_bl)
        else:
            cell_write = char.d_write_sram(v_wl)
    else:
        cell_write = np.where(
            v_bl < 0.0, char.d_write_negbl(v_bl), char.d_write_sram(v_wl)
        )
    tail = cell_write + components.delay("PRE_wr")
    total = np.maximum(row_path, col_path) + tail
    if parts is not None:
        parts.update({
            "row_path": row_path,
            "col_path": col_path,
            "cell_write": cell_write,
            "precharge": components.delay("PRE_wr"),
        })
    return total
