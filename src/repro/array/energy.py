"""Access energies and total array energy (paper Table 3 energy rows and
Eqs. (3)-(5)).

Assist-rail energies (CVDD, CVSS, and the overdriven WL during writes)
are multiplied by the DC-DC inefficiency factor, as in the paper's
Section 5 ("energy consumptions of assist circuits are multiplied by a
scaling factor to account for inefficiency of DC-DC converters").

The optional ``count_all_columns`` extension books the bitline and
precharge energy for every column touched by a WL assertion (all n_c of
them) and the sense/write energy for all W accessed columns — the
paper's Table 3 counts one worst-case column, which this reproduces by
default.
"""

from __future__ import annotations

import numpy as np


def _col_driver_energy(char, org):
    """The column-driver share: the first-three-stage energy where a
    column mux exists, exactly 0.0 where it does not (Table 3's case
    split, elementwise for broadcast organizations)."""
    if org.is_broadcast:
        return np.where(org.has_column_mux,
                        char.driver.first_three_energy, 0.0)
    return char.driver.first_three_energy if org.has_column_mux else 0.0


def read_energy(char, org, config, components):
    """``E_sw,rd`` of Table 3 [J].

    The Table-3 terms are summed grouped by broadcast rank — the
    organization-only terms, the fin-grid terms, and the V_SSC-rank
    assist-rail term each combine at their own (small) shape before the
    full-rank bitline term joins, so a broadcast search pays only two
    additions at the full ``(R, S, P, W)`` shape instead of eight.  All
    three search engines share this summation, so they stay
    bit-identical to each other.
    """
    assist = config.assist_energy_factor
    if config.count_all_columns:
        # Physical counts: ECC check columns discharge/sense like any
        # other column (== the logical counts without a code).
        bl_mult, sense_mult = org.n_c_phys, org.word_bits_phys
    else:
        bl_mult, sense_mult = 1.0, 1.0
    org_terms = (
        char.decoder.energy(org.row_address_bits)
        + char.driver.first_three_energy
        + components.energy("WL_rd")
        + char.decoder.energy(org.column_address_bits)
        + _col_driver_energy(char, org)
        + sense_mult * char.sense.energy
        + assist * components.energy("CVDD")
    )
    grid_terms = (
        components.energy("COL")
        + bl_mult * components.energy("PRE_rd")
    )
    rail_terms = assist * components.energy("CVSS")
    return (
        org_terms + grid_terms + rail_terms
        + bl_mult * components.energy("BL_rd")
    )


def write_energy(char, org, config, components, v_wl, v_bl=0.0):
    """``E_sw,wr`` of Table 3 [J].

    Under the negative-BL assist (``v_bl < 0``, extension) the bitline
    write energy is drawn partly from the negative rail, so the DC-DC
    inefficiency factor applies to it, and the cell write energy comes
    from the negative-BL characterization.
    """
    assist = config.assist_energy_factor
    vdd = char.vdd
    if config.count_all_columns:
        word_mult = org.word_bits_phys
        # Half-selected columns (WL on, no write) see a read-like
        # disturb discharge and need the full-swing precharge after.
        pre_mult = org.n_c_phys
    else:
        word_mult, pre_mult = 1.0, 1.0
    # Per-policy case splits.  On the scalar path these stay Python
    # branches (the reference arithmetic); with a broadcast rail axis
    # both case expressions are evaluated elementwise (both LUT domains
    # cover every policy's rail values) and selected per element, which
    # yields the same IEEE-754 values as the matching scalar branch.
    if np.ndim(v_wl) == 0:
        wl_assist = assist if v_wl > vdd else 1.0
    else:
        wl_assist = np.where(v_wl > vdd, assist, 1.0)
    if np.ndim(v_bl) == 0:
        bl_assist = assist if v_bl < 0.0 else 1.0
        if v_bl < 0.0:
            e_cell_write = char.e_write_negbl(v_bl)
        else:
            e_cell_write = char.e_write_sram(v_wl)
    else:
        bl_assist = np.where(v_bl < 0.0, assist, 1.0)
        e_cell_write = np.where(
            v_bl < 0.0, char.e_write_negbl(v_bl), char.e_write_sram(v_wl)
        )
    total = (
        char.decoder.energy(org.row_address_bits)
        + char.driver.first_three_energy
        + wl_assist * components.energy("WL_wr")
        + char.decoder.energy(org.column_address_bits)
        + _col_driver_energy(char, org)
        + components.energy("COL")
        + word_mult * bl_assist * components.energy("BL_wr")
        + word_mult * e_cell_write
        + pre_mult * components.energy("PRE_wr")
    )
    return total


def total_energy(config, e_sw_rd, e_sw_wr, capacity_bits, p_leak_sram,
                 d_array):
    """Eqs. (3)-(5): blend switching energy, add leakage over the access.

    Returns ``(e_sw, e_leak, e_total)``.
    """
    e_sw = config.beta * e_sw_rd + (1.0 - config.beta) * e_sw_wr
    e_leak = capacity_bits * p_leak_sram * d_array
    e_total = config.alpha * e_sw + e_leak
    return e_sw, e_leak, e_total
