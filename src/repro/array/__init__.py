"""Architecture-level analytical SRAM array model (paper Tables 1-3).

Public API:

* :class:`ArrayGeometry` — layout-derived wire capacitance rules.
* :class:`ArrayOrganization` — validated (n_r, n_c, W) organizations.
* :class:`ArrayConfig` — workload constants (beta, alpha, delta, ...).
* :class:`DeviceCaps` + the Table-1 capacitance functions.
* :func:`compute_components` — Table-2 component delays/energies.
* :class:`SRAMArrayModel` / :class:`DesignPoint` / :class:`ArrayMetrics`
  — full design-point evaluation (Eqs. (2)-(5)).
"""

from .capacitance import (
    RAIL_DRIVER_FINS,
    WL_DRIVER_FINS,
    DeviceCaps,
    all_capacitances,
    c_bl,
    c_col,
    c_cvdd,
    c_cvss,
    c_wl,
)
from .components import ComponentSet, compute_components
from .config import ArrayConfig
from .energy import read_energy, total_energy, write_energy
from .geometry import ArrayGeometry
from .model import ArrayMetrics, DesignPoint, SRAMArrayModel
from .organization import DEFAULT_WORD_BITS, ArrayOrganization
from .timing import read_delay, write_delay

__all__ = [
    "DEFAULT_WORD_BITS",
    "RAIL_DRIVER_FINS",
    "WL_DRIVER_FINS",
    "ArrayConfig",
    "ArrayGeometry",
    "ArrayMetrics",
    "ArrayOrganization",
    "ComponentSet",
    "DesignPoint",
    "DeviceCaps",
    "SRAMArrayModel",
    "all_capacitances",
    "c_bl",
    "c_col",
    "c_cvdd",
    "c_cvss",
    "c_wl",
    "compute_components",
    "read_delay",
    "read_energy",
    "total_energy",
    "write_delay",
    "write_energy",
]
