"""Per-component delays and switching energies (paper Table 2).

Every interconnect-driven component follows Eq. (1)::

    D = C * DeltaV / I          E_sw = C * V * DeltaV

with the (C, V, DeltaV, I) assignments of Table 2, including the paper's
fitted average-current coefficients (0.30, 0.15, 0.25, 0.18, 0.33, 0.50)
and the fixed driver fin counts (20 for the CVDD/CVSS rail muxes, 27 for
the WL/COL driver last stage).

``n_pre`` / ``n_wr`` may be numpy arrays; everything broadcasts.  So may
``v_ssc``: the vectorized exhaustive search passes the whole feasible
V_SSC candidate axis with shape ``(S, 1, 1)`` alongside an
``(N_pre, N_wr)`` fin grid, and every V_SSC-dependent component (CVSS
rail, BL read discharge) comes back with the full ``(S, P, W)``
broadcast shape.  The rail voltages ``v_ddc`` / ``v_wl`` / ``v_bl``
broadcast the same way — the policy-batched search passes them with a
leading batch axis — with every voltage-swing case split evaluated
through the scalar path's exact arithmetic, elementwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .capacitance import RAIL_DRIVER_FINS, WL_DRIVER_FINS, all_capacitances

#: Table-2 fitted average-current coefficients.
COEFF_CVDD = 0.30
COEFF_CVSS = 0.15
COEFF_WL_RD = 0.25
COEFF_WL_WR = 0.18
COEFF_COL = 0.33
COEFF_BL_WR = 0.50
COEFF_PRE = 0.50


@dataclass
class ComponentSet:
    """Delays [s] and switching energies [J] of every Table-2 component."""

    delays: dict = field(default_factory=dict)
    energies: dict = field(default_factory=dict)
    capacitances: dict = field(default_factory=dict)

    def delay(self, name):
        return self.delays[name]

    def energy(self, name):
        return self.energies[name]


def _neg_part(v):
    """``|min(v, 0)|`` for scalars or arrays, preserving the scalar
    arithmetic (and hence bit-exact results) on the scalar path."""
    if np.ndim(v) == 0:
        return abs(min(float(v), 0.0))
    return np.abs(np.minimum(v, 0.0))


def _pos_part(v):
    """``max(v, 0)`` for scalars or arrays (the CVDD boost swing when a
    policy batch carries a V_DDC axis); elementwise identical to the
    scalar ``max``."""
    if np.ndim(v) == 0:
        return max(float(v), 0.0)
    return np.maximum(v, 0.0)


def _min_zero(v):
    """``min(v, 0)`` for scalars or arrays (the negative-BL swing when a
    policy batch carries a V_BL axis)."""
    if np.ndim(v) == 0:
        return min(float(v), 0.0)
    return np.minimum(v, 0.0)


def _safe_div(numerator, current):
    """C*dV / I with a guard: zero numerator yields zero delay even when
    the drive current is also zero (e.g. V_SSC = 0 disables the CVSS
    swing entirely).  The guard only costs the two ``np.where`` passes
    when a zero numerator is actually present; the plain quotient is
    elementwise identical otherwise."""
    numerator = np.asarray(numerator, dtype=float)
    current = np.asarray(current, dtype=float)
    zero = numerator == 0.0
    if not zero.any():
        out = numerator / current
    else:
        out = np.where(zero, 0.0, numerator / np.where(zero, 1.0, current))
    if out.ndim == 0:
        return float(out)
    return out


def _shared_precursors(char, config, n_pre, n_wr, v_ddc, v_ssc, v_wl,
                       v_bl):
    """The Table-2 inputs that do *not* depend on the organization:
    voltage swings, LUT-interpolated drive currents, and the fin-count
    current scalings.  The blocked broadcast executor evaluates many
    organizations of one design point; hoisting these out of the
    per-organization pass changes no value (they are recomputed from
    identical inputs otherwise) but skips the repeated LUT
    interpolation and scalar derivation work."""
    vdd = char.vdd
    return {
        "dv_cvdd": _pos_part(v_ddc - vdd),
        "i_cvdd": COEFF_CVDD * RAIL_DRIVER_FINS * char.i_cvdd(v_ddc),
        "dv_cvss": _neg_part(v_ssc),
        "i_cvss": COEFF_CVSS * RAIL_DRIVER_FINS * char.i_cvss(v_ssc),
        "i_wl_rd": COEFF_WL_RD * WL_DRIVER_FINS * char.i_on_pfet,
        "i_wl_wr": COEFF_WL_WR * WL_DRIVER_FINS * char.i_wl(v_wl),
        "i_col": COEFF_COL * WL_DRIVER_FINS * char.i_on_pfet,
        "i_read": char.i_read(v_ddc, v_ssc),
        "write_swing": vdd - _min_zero(v_bl),
        "i_bl_wr": COEFF_BL_WR * n_wr * char.i_on_tg,
        "i_pre": COEFF_PRE * n_pre * char.i_on_pfet,
    }


def compute_components(char, org, config, n_pre, n_wr,
                       v_ddc, v_ssc, v_wl, v_bl=0.0, shared=None):
    """Evaluate Table 2 for one design point (``n_pre`` / ``n_wr`` /
    ``v_ssc`` may be broadcastable arrays).

    ``v_bl`` is the write-low bitline level: 0 in the paper's adopted
    scheme, negative under the negative-BL write assist (extension),
    which widens the write/precharge bitline swings to ``Vdd - v_bl``.

    ``shared`` is an optional mutable dict threaded through repeated
    calls that differ only in ``org``: the organization-independent
    precursors (:func:`_shared_precursors`) are computed on the first
    call and reused afterwards, bit-identically.
    """
    vdd = char.vdd
    dvs = config.delta_v_sense
    if shared is None or not shared:
        pre = _shared_precursors(
            char, config, n_pre, n_wr, v_ddc, v_ssc, v_wl, v_bl
        )
        if shared is not None:
            shared.update(pre)
    else:
        pre = shared
    caps = all_capacitances(char.geometry, char.caps, org, n_pre, n_wr)
    out = ComponentSet(capacitances=caps)
    d, e = out.delays, out.energies

    # Cell Vdd rail: swings Vdd -> V_DDC through the 20-fin PFET mux.
    dv_cvdd = pre["dv_cvdd"]
    d["CVDD"] = _safe_div(caps["CVDD"] * dv_cvdd, pre["i_cvdd"])
    e["CVDD"] = caps["CVDD"] * vdd * dv_cvdd

    # Cell Vss rail: swings 0 -> V_SSC through the 20-fin NFET mux.
    dv_cvss = pre["dv_cvss"]
    d["CVSS"] = _safe_div(caps["CVSS"] * dv_cvss, pre["i_cvss"])
    e["CVSS"] = caps["CVSS"] * vdd * dv_cvss

    # Wordline during read: full-Vdd swing from the 27-fin last stage.
    d["WL_rd"] = _safe_div(caps["WL"] * vdd, pre["i_wl_rd"])
    e["WL_rd"] = caps["WL"] * vdd * vdd

    # Wordline during write: overdriven to V_WL from the V_WL rail.
    d["WL_wr"] = _safe_div(caps["WL"] * v_wl, pre["i_wl_wr"])
    e["WL_wr"] = caps["WL"] * vdd * v_wl

    # Column-select line (zero without a column mux).
    d["COL"] = _safe_div(caps["COL"] * vdd, pre["i_col"])
    e["COL"] = caps["COL"] * vdd * vdd

    # Bitline during read: discharged by DeltaV_S at the cell's read
    # current; Table 2 books its energy against the boosted cell rails.
    # The C*DeltaV_S product is shared between the discharge delay, its
    # energy, and the read-precharge delay, and it carries only the
    # organization/fin axes — computing it once keeps the V_SSC axis
    # out of all but the final quotient/product.
    bl_sense_charge = caps["BL"] * dvs
    d["BL_rd"] = _safe_div(bl_sense_charge, pre["i_read"])
    e["BL_rd"] = bl_sense_charge * (v_ddc - v_ssc)

    # Bitline during write: the write buffer swings the BL from its
    # precharged Vdd down to v_bl (0, or negative under the assist).
    write_swing = pre["write_swing"]
    d["BL_wr"] = _safe_div(caps["BL"] * write_swing, pre["i_bl_wr"])
    e["BL_wr"] = caps["BL"] * vdd * write_swing

    # Precharge: restore DeltaV_S after a read, the full write swing
    # after a write.
    i_pre = pre["i_pre"]
    d["PRE_rd"] = _safe_div(bl_sense_charge, i_pre)
    e["PRE_rd"] = caps["BL"] * vdd * dvs
    d["PRE_wr"] = _safe_div(caps["BL"] * write_swing, i_pre)
    e["PRE_wr"] = caps["BL"] * vdd * write_swing

    return out
