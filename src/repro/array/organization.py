"""Array organization: rows, columns, word width, capacity.

The paper assumes ``n_r`` and ``n_c`` are powers of two with
``M = n_r * n_c`` bits total and ``W`` bits accessed per cycle.  When
``n_c > W`` a column multiplexer (with its own decoder and drivers) is
needed; when ``n_c <= W`` all column-mux terms vanish (Table 1/Table 3
case splits).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DesignSpaceError
from ..units import is_power_of_two, log2_int

#: Word width used throughout the paper's evaluation [bits].
DEFAULT_WORD_BITS = 64


@dataclass(frozen=True)
class ArrayOrganization:
    """A validated (n_r, n_c, W) organization."""

    n_r: int
    n_c: int
    word_bits: int = DEFAULT_WORD_BITS

    def __post_init__(self):
        for name, value in (("n_r", self.n_r), ("n_c", self.n_c)):
            if not is_power_of_two(value):
                raise DesignSpaceError(
                    "%s must be a power of two, got %r" % (name, value)
                )
        if not is_power_of_two(self.word_bits):
            raise DesignSpaceError(
                "word_bits must be a power of two, got %r" % (self.word_bits,)
            )

    @classmethod
    def from_capacity(cls, capacity_bits, n_r, word_bits=DEFAULT_WORD_BITS):
        """Organization of a ``capacity_bits`` array with ``n_r`` rows."""
        if not is_power_of_two(capacity_bits):
            raise DesignSpaceError(
                "capacity must be a power of two bits, got %r"
                % (capacity_bits,)
            )
        if capacity_bits % n_r:
            raise DesignSpaceError(
                "n_r=%d does not divide capacity %d bits" % (n_r, capacity_bits)
            )
        return cls(n_r=n_r, n_c=capacity_bits // n_r, word_bits=word_bits)

    @property
    def capacity_bits(self):
        """Total bits M = n_r * n_c."""
        return self.n_r * self.n_c

    @property
    def capacity_bytes(self):
        return self.capacity_bits // 8

    @property
    def has_column_mux(self):
        """True when n_c > W (column multiplexer present)."""
        return self.n_c > self.word_bits

    @property
    def row_address_bits(self):
        """log2(n_r) — the row-decoder input width."""
        return log2_int(self.n_r)

    @property
    def column_address_bits(self):
        """log2(n_c / W) — the column-decoder input width (0 without mux)."""
        if not self.has_column_mux:
            return 0
        return log2_int(self.n_c // self.word_bits)

    @property
    def words_per_row(self):
        return max(self.n_c // self.word_bits, 1)

    def __str__(self):
        return "%dx%d (W=%d)" % (self.n_r, self.n_c, self.word_bits)
