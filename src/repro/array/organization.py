"""Array organization: rows, columns, word width, capacity.

The paper assumes ``n_r`` and ``n_c`` are powers of two with
``M = n_r * n_c`` bits total and ``W`` bits accessed per cycle.  When
``n_c > W`` a column multiplexer (with its own decoder and drivers) is
needed; when ``n_c <= W`` all column-mux terms vanish (Table 1/Table 3
case splits).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DesignSpaceError
from ..units import is_power_of_two, log2_int

#: Word width used throughout the paper's evaluation [bits].
DEFAULT_WORD_BITS = 64


def _log2_int_array(values, name):
    """Elementwise :func:`log2_int` with power-of-two validation."""
    values = np.asarray(values)
    bits = np.round(np.log2(np.maximum(values, 1))).astype(np.int64)
    if np.any(values <= 0) or np.any(np.int64(2) ** bits != values):
        raise DesignSpaceError(
            "%s must be powers of two, got %r" % (name, values)
        )
    return bits


@dataclass(frozen=True)
class ArrayOrganization:
    """A validated (n_r, n_c, W) organization."""

    n_r: int
    n_c: int
    word_bits: int = DEFAULT_WORD_BITS
    #: ECC check bits stored per word (extra physical columns beside the
    #: ``n_c`` logical data columns; 0 = no code).  Check columns widen
    #: the rows — every row-spanning wire/device count scales with
    #: :attr:`n_c_phys` — but do not change addressing: the decoders see
    #: only the logical geometry, and ``n_c_phys`` need not be a power
    #: of two.
    check_bits: int = 0

    #: Scalar organization: one (n_r, n_c) pair per instance.
    is_broadcast = False

    def __post_init__(self):
        for name, value in (("n_r", self.n_r), ("n_c", self.n_c)):
            if not is_power_of_two(value):
                raise DesignSpaceError(
                    "%s must be a power of two, got %r" % (name, value)
                )
        if not is_power_of_two(self.word_bits):
            raise DesignSpaceError(
                "word_bits must be a power of two, got %r" % (self.word_bits,)
            )
        if self.check_bits < 0:
            raise DesignSpaceError(
                "check_bits must be >= 0, got %r" % (self.check_bits,)
            )

    @classmethod
    def from_capacity(cls, capacity_bits, n_r, word_bits=DEFAULT_WORD_BITS):
        """Organization of a ``capacity_bits`` array with ``n_r`` rows."""
        if not is_power_of_two(capacity_bits):
            raise DesignSpaceError(
                "capacity must be a power of two bits, got %r"
                % (capacity_bits,)
            )
        if capacity_bits % n_r:
            raise DesignSpaceError(
                "n_r=%d does not divide capacity %d bits" % (n_r, capacity_bits)
            )
        return cls(n_r=n_r, n_c=capacity_bits // n_r, word_bits=word_bits)

    @property
    def capacity_bits(self):
        """Total bits M = n_r * n_c."""
        return self.n_r * self.n_c

    @property
    def capacity_bytes(self):
        return self.capacity_bits // 8

    @property
    def has_column_mux(self):
        """True when n_c > W (column multiplexer present)."""
        return self.n_c > self.word_bits

    @property
    def row_address_bits(self):
        """log2(n_r) — the row-decoder input width."""
        return log2_int(self.n_r)

    @property
    def column_address_bits(self):
        """log2(n_c / W) — the column-decoder input width (0 without mux)."""
        if not self.has_column_mux:
            return 0
        return log2_int(self.n_c // self.word_bits)

    @property
    def words_per_row(self):
        return max(self.n_c // self.word_bits, 1)

    @property
    def n_c_phys(self):
        """Physical columns per row: data plus per-word check columns."""
        if not self.check_bits:
            return self.n_c
        return self.n_c + self.check_bits * self.words_per_row

    @property
    def word_bits_phys(self):
        """Physical bits accessed per word (data + check bits)."""
        return self.word_bits + self.check_bits

    def __str__(self):
        return "%dx%d (W=%d)" % (self.n_r, self.n_c, self.word_bits)


class BroadcastOrganization:
    """A stacked axis of organizations sharing one word width.

    ``n_r`` / ``n_c`` are integer arrays (conventionally shaped
    ``(R, 1, 1, 1)``, so the row axis sits right-aligned at axis ``-4``
    over a ``(S, P, W)`` search grid — and under a leading policy batch
    axis the same shape broadcasts into ``(B, R, S, P, W)`` unchanged);
    every property mirrors :class:`ArrayOrganization` but returns arrays
    of the same shape.  The fused search engine uses this to evaluate
    one policy's *entire* row-count axis — or a whole policy batch's —
    in a single :meth:`SRAMArrayModel.evaluate` call.

    Consumers branch on ``is_broadcast`` where the scalar class uses a
    Python ``if`` over ``has_column_mux`` — the array path computes
    both case expressions with the scalar path's exact arithmetic and
    selects with :func:`numpy.where`, which keeps fused results
    bit-identical to the per-organization loop.
    """

    is_broadcast = True

    def __init__(self, n_r, n_c, word_bits=DEFAULT_WORD_BITS,
                 check_bits=0):
        self.n_r = np.asarray(n_r)
        self.n_c = np.asarray(n_c)
        self.word_bits = word_bits
        self.check_bits = check_bits
        if not is_power_of_two(word_bits):
            raise DesignSpaceError(
                "word_bits must be a power of two, got %r" % (word_bits,)
            )
        if check_bits < 0:
            raise DesignSpaceError(
                "check_bits must be >= 0, got %r" % (check_bits,)
            )
        self._row_bits = _log2_int_array(self.n_r, "n_r")
        self._col_bits = _log2_int_array(self.n_c, "n_c")
        # The derived arrays are tiny but consumed by every Table-1/2/3
        # case split; precomputing them keeps repeated property reads
        # out of the broadcast hot path.
        self._mux_mask = self.n_c > self.word_bits
        self._col_address_bits = np.where(
            self._mux_mask,
            self._col_bits - log2_int(self.word_bits),
            0,
        )

    @property
    def capacity_bits(self):
        """Total bits M = n_r * n_c (elementwise)."""
        return self.n_r * self.n_c

    @property
    def has_column_mux(self):
        """Boolean mask: True where n_c > W."""
        return self._mux_mask

    @property
    def row_address_bits(self):
        """log2(n_r) — the row-decoder input width (integer array)."""
        return self._row_bits

    @property
    def column_address_bits(self):
        """log2(n_c / W) where a mux exists, 0 elsewhere."""
        return self._col_address_bits

    @property
    def words_per_row(self):
        return np.maximum(self.n_c // self.word_bits, 1)

    @property
    def n_c_phys(self):
        """Physical columns per row (elementwise; == n_c without ECC)."""
        if not self.check_bits:
            return self.n_c
        return self.n_c + self.check_bits * self.words_per_row

    @property
    def word_bits_phys(self):
        """Physical bits accessed per word (data + check bits)."""
        return self.word_bits + self.check_bits

    def __str__(self):
        return "<%d organizations (W=%d)>" % (self.n_r.size, self.word_bits)
