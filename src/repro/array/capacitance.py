"""Interconnect capacitances of the SRAM array (paper Table 1).

Each function implements one row of Table 1 verbatim.  ``N_pre`` and
``N_wr`` may be numpy arrays (the exhaustive optimizer evaluates whole
fin-count grids at once); all expressions are plain arithmetic and
broadcast transparently.

Fixed fin counts from the paper's peripheral design:

* the CVDD / CVSS rail-mux drivers use 20-fin devices (sized for the
  worst case n_c = 1024, Section 4), giving the ``2 * 20 * C_d`` terms;
* the WL / COL driver last stage uses 27-fin devices, giving the
  ``27 * (C_dn + C_dp)`` terms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Fin count of the CVDD/CVSS rail multiplexer drivers.
RAIL_DRIVER_FINS = 20

#: Fin count of the WL (and COL) superbuffer last-stage inverter.
WL_DRIVER_FINS = 27


@dataclass(frozen=True)
class DeviceCaps:
    """Per-fin gate/drain capacitances of the periphery devices [F]."""

    c_gn: float
    c_gp: float
    c_dn: float
    c_dp: float

    @classmethod
    def from_library(cls, library):
        """Caps taken from the library's LVT devices (periphery flavor)."""
        return cls(
            c_gn=library.nfet_lvt.c_gate,
            c_gp=library.pfet_lvt.c_gate,
            c_dn=library.nfet_lvt.c_drain,
            c_dp=library.pfet_lvt.c_drain,
        )


def c_cvdd(geometry, caps, org):
    """Cell-Vdd rail capacitance: ``n_c (C_width + 2 C_dp) + 2*20*C_dp``.

    Row-spanning wires load every *physical* column, so ECC check-bit
    columns (``org.n_c_phys``; == ``n_c`` without a code) count here.
    """
    return (
        org.n_c_phys * (geometry.c_width + 2.0 * caps.c_dp)
        + 2.0 * RAIL_DRIVER_FINS * caps.c_dp
    )


def c_cvss(geometry, caps, org):
    """Cell-Vss rail capacitance: ``n_c (C_width + 2 C_dn) + 2*20*C_dn``."""
    return (
        org.n_c_phys * (geometry.c_width + 2.0 * caps.c_dn)
        + 2.0 * RAIL_DRIVER_FINS * caps.c_dn
    )


def c_wl(geometry, caps, org):
    """Wordline capacitance: ``n_c (C_width + 2 C_gn) + 27 (C_dn + C_dp)``.

    Each cell loads the WL with its two access-transistor gates; check
    columns are real cells, so the physical column count applies.
    """
    return (
        org.n_c_phys * (geometry.c_width + 2.0 * caps.c_gn)
        + WL_DRIVER_FINS * (caps.c_dn + caps.c_dp)
    )


def c_col(geometry, caps, org, n_wr):
    """Column-select line capacitance (0 without a column mux):
    ``n_c C_width + 27 (C_dn + C_dp) + 2 W N_wr (C_gn + C_gp)``.

    The ``2 W N_wr`` term is the transmission gates of the W selected
    write paths (two gates each).
    """
    if org.is_broadcast:
        mux = (
            org.n_c_phys * geometry.c_width
            + WL_DRIVER_FINS * (caps.c_dn + caps.c_dp)
            + 2.0 * org.word_bits_phys * n_wr * (caps.c_gn + caps.c_gp)
        )
        return np.where(org.has_column_mux, mux, 0.0)
    if not org.has_column_mux:
        return 0.0 * n_wr if hasattr(n_wr, "shape") else 0.0
    return (
        org.n_c_phys * geometry.c_width
        + WL_DRIVER_FINS * (caps.c_dn + caps.c_dp)
        + 2.0 * org.word_bits_phys * n_wr * (caps.c_gn + caps.c_gp)
    )


def c_bl(geometry, caps, org, n_pre, n_wr):
    """Bitline capacitance (Table 1, two cases).

    Common terms: one access-drain plus one cell-height of wire per row,
    and ``(N_pre + 1) C_dp`` for the precharge devices (N_pre fins on the
    pull-up plus the equalizer share).  Without a column mux the write
    buffer (``N_wr (C_dn + C_dp)``) and the sense-amp input (``C_dp``)
    hang directly on the BL; with a mux the BL sees the two transmission
    gates (``2 N_wr (C_dn + C_dp)``) instead.
    """
    common = (
        org.n_r * (geometry.c_height + caps.c_dn)
        + (n_pre + 1.0) * caps.c_dp
    )
    if org.is_broadcast:
        return np.where(
            org.has_column_mux,
            common + 2.0 * n_wr * (caps.c_dn + caps.c_dp),
            common + n_wr * (caps.c_dn + caps.c_dp) + caps.c_dp,
        )
    if org.has_column_mux:
        return common + 2.0 * n_wr * (caps.c_dn + caps.c_dp)
    return common + n_wr * (caps.c_dn + caps.c_dp) + caps.c_dp


def all_capacitances(geometry, caps, org, n_pre, n_wr):
    """Dict with every Table-1 capacitance for one organization."""
    return {
        "CVDD": c_cvdd(geometry, caps, org),
        "CVSS": c_cvss(geometry, caps, org),
        "WL": c_wl(geometry, caps, org),
        "COL": c_col(geometry, caps, org, n_wr),
        "BL": c_bl(geometry, caps, org, n_pre, n_wr),
    }
