"""Trace replay over a functional SRAM, with a workload report.

The replay inserts idle time after every access so the observed
activity factor matches the requested ``alpha`` (the paper's workload
knob), then compares the measured energy-per-access against the
analytical Eq. (3)-(5) blend.
"""

from __future__ import annotations

from dataclasses import dataclass

from .memory import FunctionalSRAM
from .trace import READ, WRITE


@dataclass
class WorkloadReport:
    """Result of replaying one trace on one memory."""

    n_reads: int
    n_writes: int
    busy_time: float
    idle_time: float
    e_read: float
    e_write: float
    e_leakage: float
    measured_beta: float
    measured_alpha: float
    energy_per_access: float
    analytical_energy_per_access: float

    @property
    def n_accesses(self):
        return self.n_reads + self.n_writes

    @property
    def total_energy(self):
        return self.e_read + self.e_write + self.e_leakage

    @property
    def elapsed_time(self):
        return self.busy_time + self.idle_time

    @property
    def average_power(self):
        if self.elapsed_time == 0:
            return 0.0
        return self.total_energy / self.elapsed_time

    @property
    def leakage_fraction(self):
        if self.total_energy == 0:
            return 0.0
        return self.e_leakage / self.total_energy

    @property
    def model_agreement(self):
        """measured / analytical energy-per-access (1.0 = exact)."""
        if self.analytical_energy_per_access == 0:
            return float("nan")
        return self.energy_per_access / self.analytical_energy_per_access

    def summary(self):
        return (
            "%d accesses (beta=%.2f, alpha=%.2f): %.3g J total "
            "(%.1f%% leakage), %.3g J/access, avg power %.3g W"
            % (self.n_accesses, self.measured_beta, self.measured_alpha,
               self.total_energy, self.leakage_fraction * 100.0,
               self.energy_per_access, self.average_power)
        )


def replay(memory, trace, alpha=0.5):
    """Replay ``trace`` on ``memory`` at activity factor ``alpha``.

    After each access of duration ``d`` the memory idles for
    ``d * (1 - alpha) / alpha``, so over the run the busy fraction is
    exactly ``alpha``.  Returns a :class:`WorkloadReport`.
    """
    if not isinstance(memory, FunctionalSRAM):
        raise TypeError("memory must be a FunctionalSRAM")
    if not 0.0 < alpha <= 1.0:
        raise ValueError("alpha must be in (0, 1]")
    if not trace:
        raise ValueError("empty trace")
    memory.reset_stats()
    idle_ratio = (1.0 - alpha) / alpha
    for access in trace:
        if access.op == READ:
            memory.read(access.address)
            duration = float(memory.metrics.d_rd)
        elif access.op == WRITE:
            memory.write(access.address, access.value)
            duration = float(memory.metrics.d_wr)
        else:  # pragma: no cover - Access validates op
            raise ValueError("bad op %r" % (access.op,))
        if idle_ratio:
            memory.idle(duration * idle_ratio)
    stats = memory.stats
    return WorkloadReport(
        n_reads=stats.n_reads,
        n_writes=stats.n_writes,
        busy_time=stats.busy_time,
        idle_time=stats.idle_time,
        e_read=stats.e_read,
        e_write=stats.e_write,
        e_leakage=memory.leakage_energy,
        measured_beta=stats.measured_beta,
        measured_alpha=stats.measured_alpha,
        energy_per_access=memory.energy_per_access(),
        analytical_energy_per_access=memory.analytical_energy_per_access(),
    )
