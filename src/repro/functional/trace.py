"""Synthetic address-trace generators.

The paper evaluates arrays under a fixed read fraction (beta = 0.5) and
activity factor (alpha = 0.5); real workloads are messier.  These
generators produce the standard synthetic patterns (sequential sweeps,
uniform random, Zipfian hot spots, strided walks) so the functional
memory can replay something resembling cache/scratchpad traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

READ = "r"
WRITE = "w"


@dataclass(frozen=True)
class Access:
    """One memory transaction."""

    op: str
    address: int
    value: int = 0

    def __post_init__(self):
        if self.op not in (READ, WRITE):
            raise ValueError("op must be 'r' or 'w', got %r" % (self.op,))
        if self.address < 0:
            raise ValueError("address must be non-negative")


def _ops(n_accesses, read_fraction, rng):
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError("read_fraction must be within [0, 1]")
    return np.where(rng.random(n_accesses) < read_fraction, READ, WRITE)


def _values(n_accesses, word_bits, rng):
    # Draw word-sized payloads; 64-bit words need two 32-bit halves to
    # stay within the generator's integer range portably.
    high = rng.integers(0, 1 << min(word_bits, 32), n_accesses,
                        dtype=np.uint64)
    if word_bits > 32:
        low = rng.integers(0, 1 << 32, n_accesses, dtype=np.uint64)
        return (high << np.uint64(word_bits - 32)) | low
    return high


def sequential_trace(n_accesses, n_words, read_fraction=0.5, seed=0,
                     word_bits=64):
    """A wrap-around sequential sweep (streaming access pattern)."""
    rng = np.random.default_rng(seed)
    ops = _ops(n_accesses, read_fraction, rng)
    values = _values(n_accesses, word_bits, rng)
    return [
        Access(op=str(ops[k]), address=k % n_words, value=int(values[k]))
        for k in range(n_accesses)
    ]


def uniform_trace(n_accesses, n_words, read_fraction=0.5, seed=0,
                  word_bits=64):
    """Uniformly random addresses (worst-case locality)."""
    rng = np.random.default_rng(seed)
    ops = _ops(n_accesses, read_fraction, rng)
    addresses = rng.integers(0, n_words, n_accesses)
    values = _values(n_accesses, word_bits, rng)
    return [
        Access(op=str(ops[k]), address=int(addresses[k]),
               value=int(values[k]))
        for k in range(n_accesses)
    ]


def zipfian_trace(n_accesses, n_words, skew=1.2, read_fraction=0.5,
                  seed=0, word_bits=64):
    """Zipf-distributed hot-spot addresses (cache-like locality).

    ``skew`` > 1 is the Zipf exponent; larger means hotter hot set.
    Ranks are mapped onto a seeded permutation of the address space so
    the hot words are scattered physically.
    """
    if skew <= 1.0:
        raise ValueError("zipf skew must exceed 1.0")
    rng = np.random.default_rng(seed)
    ranks = rng.zipf(skew, n_accesses)
    permutation = rng.permutation(n_words)
    addresses = permutation[(ranks - 1) % n_words]
    ops = _ops(n_accesses, read_fraction, rng)
    values = _values(n_accesses, word_bits, rng)
    return [
        Access(op=str(ops[k]), address=int(addresses[k]),
               value=int(values[k]))
        for k in range(n_accesses)
    ]


def strided_trace(n_accesses, n_words, stride, read_fraction=0.5, seed=0,
                  word_bits=64):
    """A strided walk (matrix-column / row-buffer-hostile pattern)."""
    if stride < 1:
        raise ValueError("stride must be >= 1")
    rng = np.random.default_rng(seed)
    ops = _ops(n_accesses, read_fraction, rng)
    values = _values(n_accesses, word_bits, rng)
    return [
        Access(op=str(ops[k]), address=(k * stride) % n_words,
               value=int(values[k]))
        for k in range(n_accesses)
    ]


def trace_statistics(trace):
    """(read_fraction, unique_address_count, footprint_fraction_of_max)."""
    if not trace:
        return 0.0, 0, 0.0
    reads = sum(1 for a in trace if a.op == READ)
    unique = len({a.address for a in trace})
    max_addr = max(a.address for a in trace)
    return reads / len(trace), unique, unique / (max_addr + 1)
