"""Transaction-level SRAM on top of optimized designs (extension).

Public API:

* :class:`FunctionalSRAM` — a word-addressable memory whose reads and
  writes account delay and energy from the analytical array model.
* trace generators — :func:`sequential_trace`, :func:`uniform_trace`,
  :func:`zipfian_trace`, :func:`strided_trace`.
* :func:`replay` — run a trace at a chosen activity factor and get a
  :class:`WorkloadReport` comparing measured energy to the paper's
  Eq. (3)-(5) blend.
"""

from .memory import AccessStats, FunctionalSRAM
from .replay import WorkloadReport, replay
from .trace import (
    READ,
    WRITE,
    Access,
    sequential_trace,
    strided_trace,
    trace_statistics,
    uniform_trace,
    zipfian_trace,
)

__all__ = [
    "READ",
    "WRITE",
    "Access",
    "AccessStats",
    "FunctionalSRAM",
    "WorkloadReport",
    "replay",
    "sequential_trace",
    "strided_trace",
    "trace_statistics",
    "uniform_trace",
    "zipfian_trace",
]
