"""A transaction-level SRAM built on an optimized array design.

This is the downstream-user view of the co-optimization framework: take
the :class:`~repro.opt.results.OptimizationResult` (or any evaluated
design), and get a word-addressable memory that actually stores data
and accounts delay/energy per access using the analytical model's
numbers — read energy per read, write energy per write, leakage power
integrated over busy *and* idle time.

The accounting deliberately mirrors Eqs. (3)-(5) of the paper so a
replayed workload with read fraction ``beta`` and activity factor
``alpha`` converges to the analytical blend (tested in
``tests/test_functional_replay.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..array.organization import ArrayOrganization
from ..errors import DesignSpaceError


@dataclass
class AccessStats:
    """Accumulated counts, time, and energy."""

    n_reads: int = 0
    n_writes: int = 0
    busy_time: float = 0.0
    idle_time: float = 0.0
    e_read: float = 0.0
    e_write: float = 0.0

    @property
    def n_accesses(self):
        return self.n_reads + self.n_writes

    @property
    def elapsed_time(self):
        return self.busy_time + self.idle_time

    @property
    def e_dynamic(self):
        return self.e_read + self.e_write

    @property
    def measured_beta(self):
        """Observed read fraction."""
        if self.n_accesses == 0:
            return 0.0
        return self.n_reads / self.n_accesses

    @property
    def measured_alpha(self):
        """Observed activity factor (busy share of elapsed time)."""
        if self.elapsed_time == 0:
            return 0.0
        return self.busy_time / self.elapsed_time


class FunctionalSRAM:
    """Word-addressable SRAM with per-access energy/time accounting.

    Parameters
    ----------
    metrics:
        Scalar :class:`~repro.array.model.ArrayMetrics` of the chosen
        design (from the optimizer or a direct model evaluation).
    p_leak_sram:
        Per-cell leakage power [W] (``ArrayCharacterization.p_leak_sram``).
    word_bits:
        Access width; must match the organization used for ``metrics``.
    """

    def __init__(self, metrics, p_leak_sram, word_bits=64):
        design = metrics.design
        self.org = ArrayOrganization(n_r=design.n_r, n_c=design.n_c,
                                     word_bits=word_bits)
        if np.ndim(metrics.edp) != 0:
            raise DesignSpaceError(
                "FunctionalSRAM needs a scalar-evaluated design, not a "
                "fin grid; re-evaluate the chosen point first"
            )
        self.metrics = metrics
        self.word_bits = word_bits
        self.n_words = self.org.capacity_bits // word_bits
        self._mask = (1 << word_bits) - 1
        self._data = np.zeros(self.n_words, dtype=np.uint64)
        self._written = np.zeros(self.n_words, dtype=bool)
        self.leakage_power = self.org.capacity_bits * p_leak_sram
        self.stats = AccessStats()

    # -- address helpers ------------------------------------------------------

    def _check_address(self, address):
        if not 0 <= address < self.n_words:
            raise IndexError(
                "address %d out of range (0..%d)"
                % (address, self.n_words - 1)
            )

    def decode(self, address):
        """(row, word-within-row) the address maps to."""
        self._check_address(address)
        return address // self.org.words_per_row, (
            address % self.org.words_per_row
        )

    # -- transactions -------------------------------------------------------------

    def read(self, address):
        """Read one word; advances time by the read delay."""
        self._check_address(address)
        self.stats.n_reads += 1
        self.stats.busy_time += float(self.metrics.d_rd)
        self.stats.e_read += float(self.metrics.e_sw_rd)
        return int(self._data[address])

    def write(self, address, value):
        """Write one word (masked to the word width)."""
        self._check_address(address)
        self.stats.n_writes += 1
        self.stats.busy_time += float(self.metrics.d_wr)
        self.stats.e_write += float(self.metrics.e_sw_wr)
        self._data[address] = np.uint64(int(value) & self._mask)
        self._written[address] = True

    def idle(self, duration):
        """Advance time without an access (leakage only)."""
        if duration < 0:
            raise ValueError("idle duration must be non-negative")
        self.stats.idle_time += duration

    def is_written(self, address):
        """True when the word has been written since construction."""
        self._check_address(address)
        return bool(self._written[address])

    # -- energy accounting ------------------------------------------------------

    @property
    def leakage_energy(self):
        """Leakage energy over all elapsed (busy + idle) time [J]."""
        return self.leakage_power * self.stats.elapsed_time

    @property
    def total_energy(self):
        """Dynamic plus leakage energy so far [J]."""
        return self.stats.e_dynamic + self.leakage_energy

    def energy_per_access(self):
        """Average total energy per access [J]."""
        if self.stats.n_accesses == 0:
            return 0.0
        return self.total_energy / self.stats.n_accesses

    def analytical_energy_per_access(self, beta=None, alpha=None):
        """The paper's Eq. (3)-(5) prediction for this design.

        Defaults to the *observed* beta/alpha so a replayed trace can be
        compared against the closed form directly.
        """
        beta = self.stats.measured_beta if beta is None else beta
        alpha = self.stats.measured_alpha if alpha is None else alpha
        e_sw = (beta * float(self.metrics.e_sw_rd)
                + (1.0 - beta) * float(self.metrics.e_sw_wr))
        d_access = (beta * float(self.metrics.d_rd)
                    + (1.0 - beta) * float(self.metrics.d_wr))
        if alpha <= 0:
            return float("inf")
        # Per access the array is busy d_access and idle
        # d_access * (1 - alpha) / alpha, so leakage integrates over
        # d_access / alpha.
        return e_sw + self.leakage_power * d_access / alpha

    def reset_stats(self):
        """Clear counters and energy accumulators (data is kept)."""
        self.stats = AccessStats()

    def __len__(self):
        return self.n_words

    def __repr__(self):
        return "FunctionalSRAM(%s, %d words x %d bits)" % (
            self.org, self.n_words, self.word_bits
        )
