"""Catalog of read/write assist techniques (paper Section 3).

Each technique is a declarative descriptor: which bias knob it moves,
in which direction, and what it is for.  The study functions in
:mod:`repro.assist.study` sweep these knobs and measure their effect on
the cell's reliability (RSNM / WM) and performance (BL delay / cell
write delay), reproducing Figures 3 and 5.

The paper's adopted combination (its Figure 4): Vdd boost + negative
Gnd for reads, wordline overdrive for writes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..cell.bias import CellBias


@dataclass(frozen=True)
class AssistTechnique:
    """One assist technique descriptor."""

    name: str
    #: "read" or "write".
    operation: str
    #: The CellBias field this technique moves.
    knob: str
    #: +1 when the assist raises the knob above nominal, -1 when it
    #: lowers it below nominal.
    direction: int
    #: What the technique primarily improves.
    improves: str
    #: Known side effect (the trade-off the paper discusses).
    side_effect: str

    def apply(self, bias, level):
        """A copy of ``bias`` with this technique's knob at ``level``."""
        if self.knob not in ("v_wl", "v_ddc", "v_ssc", "v_bl"):
            raise ValueError("unknown bias knob %r" % (self.knob,))
        return replace(bias, **{self.knob: level})

    def nominal_level(self, bias):
        """The knob's no-assist level."""
        if self.knob == "v_ddc":
            return bias.vdd
        if self.knob == "v_wl":
            return bias.vdd
        return 0.0


#: Read assists (Section 3.1).
WL_UNDERDRIVE = AssistTechnique(
    name="WL underdrive (WLUD)", operation="read", knob="v_wl",
    direction=-1, improves="RSNM",
    side_effect="reduces read current, increasing BL delay",
)
VDD_BOOST = AssistTechnique(
    name="Vdd boost", operation="read", knob="v_ddc",
    direction=+1, improves="RSNM",
    side_effect="raises read energy (no read-delay impact)",
)
NEGATIVE_GND = AssistTechnique(
    name="Negative Gnd", operation="read", knob="v_ssc",
    direction=-1, improves="read current (BL delay)",
    side_effect="raises energy; weak RSNM benefit; degrades below -240mV",
)

#: Write assists (Section 3.2).
WL_OVERDRIVE = AssistTechnique(
    name="WL overdrive (WLOD)", operation="write", knob="v_wl",
    direction=+1, improves="WM",
    side_effect="raises WL delay and write energy",
)
NEGATIVE_BL = AssistTechnique(
    name="Negative BL", operation="write", knob="v_bl",
    direction=-1, improves="cell write delay and WM",
    side_effect="needs a negative BL rail per column",
)

READ_ASSISTS = (WL_UNDERDRIVE, VDD_BOOST, NEGATIVE_GND)
WRITE_ASSISTS = (WL_OVERDRIVE, NEGATIVE_BL)

#: The combination the paper adopts.
ADOPTED = (VDD_BOOST, NEGATIVE_GND, WL_OVERDRIVE)


def read_bias_with_assists(vdd, v_ddc=None, v_ssc=0.0, v_wl=None):
    """Read bias under the adopted read assists."""
    bias = CellBias.read(vdd=vdd, v_ddc=v_ddc, v_ssc=v_ssc)
    if v_wl is not None:
        bias = bias.with_wordline(v_wl)
    return bias


def write_bias_with_assists(vdd, v_wl=None, v_bl_low=0.0):
    """Write bias under the adopted write assist (plus negative BL)."""
    return CellBias.write(vdd=vdd, v_wl=v_wl, v_bl_low=v_bl_low)
