"""Assist-technique studies: the Figure-3 / Figure-5 sweeps and the
minimum assist levels the optimizer's voltage policies use.

Bitline delays in the read studies follow the paper's Figure-3 setup:
a 64-cell column, ``D_BL = C_BL * DeltaV_S / I_read`` with the Table-1
bitline capacitance at unit precharger/write-buffer sizing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..array.capacitance import DeviceCaps, c_bl
from ..array.geometry import ArrayGeometry
from ..array.organization import ArrayOrganization
from ..cell.bias import CellBias
from ..cell.read_current import read_state
from ..cell.snm import butterfly
from ..cell.write import flip_wordline_voltage
from ..cell.write_delay import cell_write_event
from ..errors import CharacterizationError

#: Figure-3 column depth.
STUDY_ROWS = 64

#: Grid resolution for minimum assist levels [V] (the paper reports
#: multiples of 10 mV).
LEVEL_RESOLUTION = 0.010


def study_bitline_capacitance(library, n_rows=STUDY_ROWS):
    """Bitline capacitance of the Figure-3 study column [F]."""
    geometry = ArrayGeometry()
    caps = DeviceCaps.from_library(library)
    org = ArrayOrganization(n_r=n_rows, n_c=64)
    return c_bl(geometry, caps, org, n_pre=1, n_wr=1)


def bitline_delay(library, cell, v_ddc, v_ssc, v_wl=None,
                  delta_v_sense=0.120, n_rows=STUDY_ROWS):
    """Read BL delay [s] for the study column under the given assists.

    Returns ``inf`` when the cell flips in DC (no valid read).
    """
    bias = CellBias.read(vdd=library.vdd, v_ddc=v_ddc, v_ssc=v_ssc)
    if v_wl is not None:
        bias = bias.with_wordline(v_wl)
    state = read_state(cell, bias=bias)
    if state.flipped or state.i_read <= 0:
        return float("inf")
    c_bitline = study_bitline_capacitance(library, n_rows)
    return c_bitline * delta_v_sense / state.i_read


@dataclass
class ReadAssistRow:
    """One sweep point of a read-assist study."""

    level: float
    rsnm: float
    bl_delay: float


@dataclass
class WriteAssistRow:
    """One sweep point of a write-assist study."""

    level: float
    wm: float
    write_delay: float


def sweep_vdd_boost(library, cell, levels, v_ssc=0.0):
    """Figure 3(b): RSNM and BL delay vs V_DDC."""
    rows = []
    for v_ddc in levels:
        bias = CellBias.read(vdd=library.vdd, v_ddc=float(v_ddc),
                             v_ssc=v_ssc)
        rsnm = butterfly(cell, bias, access_on=True).snm
        delay = bitline_delay(library, cell, float(v_ddc), v_ssc)
        rows.append(ReadAssistRow(float(v_ddc), rsnm, delay))
    return rows


def sweep_negative_gnd(library, cell, levels, v_ddc=None):
    """Figure 3(c): RSNM and BL delay vs V_SSC."""
    v_ddc = library.vdd if v_ddc is None else v_ddc
    rows = []
    for v_ssc in levels:
        bias = CellBias.read(vdd=library.vdd, v_ddc=v_ddc,
                             v_ssc=float(v_ssc))
        rsnm = butterfly(cell, bias, access_on=True).snm
        delay = bitline_delay(library, cell, v_ddc, float(v_ssc))
        rows.append(ReadAssistRow(float(v_ssc), rsnm, delay))
    return rows


def sweep_wl_underdrive(library, cell, levels):
    """Figure 3(d): RSNM and BL delay vs V_WL (read)."""
    rows = []
    for v_wl in levels:
        bias = CellBias.read(vdd=library.vdd).with_wordline(float(v_wl))
        rsnm = butterfly(cell, bias, access_on=True).snm
        delay = bitline_delay(library, cell, library.vdd, 0.0,
                              v_wl=float(v_wl))
        rows.append(ReadAssistRow(float(v_wl), rsnm, delay))
    return rows


def sweep_wl_overdrive(library, cell, levels, write_delay_scale=1.0):
    """Figure 5(a): WM and cell write delay vs V_WL (write)."""
    vdd = library.vdd
    v_flip = flip_wordline_voltage(cell, vdd=vdd)
    rows = []
    for v_wl in levels:
        wm = float(v_wl) - v_flip
        if wm <= 0.005:
            delay = float("inf")
        else:
            event = cell_write_event(cell, v_wl=float(v_wl), vdd=vdd)
            delay = event.delay * write_delay_scale
        rows.append(WriteAssistRow(float(v_wl), wm, delay))
    return rows


def sweep_negative_bl(library, cell, levels, write_delay_scale=1.0):
    """Figure 5(b): WM and cell write delay vs V_BL (write, WL at Vdd)."""
    vdd = library.vdd
    rows = []
    for v_bl in levels:
        v_flip = flip_wordline_voltage(cell, vdd=vdd, v_bl_low=float(v_bl))
        wm = vdd - v_flip
        if wm <= 0.005:
            delay = float("inf")
        else:
            event = cell_write_event(cell, v_wl=vdd, vdd=vdd,
                                     v_bl_low=float(v_bl))
            delay = event.delay * write_delay_scale
        rows.append(WriteAssistRow(float(v_bl), wm, delay))
    return rows


# ---------------------------------------------------------------------------
# Minimum assist levels (the optimizer's V_DDC / V_WL presets)
# ---------------------------------------------------------------------------

def minimum_vdd_boost(library, cell, delta, v_max=0.72,
                      resolution=LEVEL_RESOLUTION):
    """Smallest V_DDC (on the 10 mV grid) with RSNM >= delta.

    RSNM is monotonically increasing in V_DDC (the boost strengthens the
    pull-down), so a linear grid scan from the nominal supply up is
    exact at the grid resolution.
    """
    vdd = library.vdd
    levels = np.arange(vdd, v_max + 1e-9, resolution)
    for v_ddc in levels:
        bias = CellBias.read(vdd=vdd, v_ddc=float(v_ddc))
        if butterfly(cell, bias, access_on=True).snm >= delta:
            return float(round(v_ddc / resolution) * resolution)
    raise CharacterizationError(
        "RSNM does not reach %.0f mV below V_DDC = %.0f mV"
        % (delta * 1e3, v_max * 1e3)
    )


def minimum_wl_overdrive(library, cell, delta,
                         resolution=LEVEL_RESOLUTION):
    """Smallest V_WL (on the 10 mV grid) with WM >= delta.

    Since WM = V_WL - V_flip, this is V_flip + delta rounded up.
    """
    v_flip = flip_wordline_voltage(cell, vdd=library.vdd)
    return math.ceil((v_flip + delta) / resolution) * resolution


def maximum_wl_underdrive(library, cell, delta,
                          resolution=LEVEL_RESOLUTION):
    """Largest read V_WL (on the 10 mV grid) with RSNM >= delta.

    RSNM falls as the read wordline rises, so scan downward from Vdd.
    """
    vdd = library.vdd
    levels = np.arange(vdd, 0.1, -resolution)
    for v_wl in levels:
        bias = CellBias.read(vdd=vdd).with_wordline(float(v_wl))
        if butterfly(cell, bias, access_on=True).snm >= delta:
            return float(round(v_wl / resolution) * resolution)
    raise CharacterizationError(
        "RSNM does not reach %.0f mV even at V_WL = 100 mV" % (delta * 1e3,)
    )


def minimum_negative_bl(library, cell, delta,
                        resolution=LEVEL_RESOLUTION):
    """Least-negative V_BL (10 mV grid) with WM >= delta at V_WL = Vdd."""
    vdd = library.vdd
    levels = np.arange(0.0, -0.30 - 1e-9, -resolution)
    for v_bl in levels:
        v_flip = flip_wordline_voltage(cell, vdd=vdd, v_bl_low=float(v_bl))
        if vdd - v_flip >= delta:
            return float(round(v_bl / resolution) * resolution)
    raise CharacterizationError(
        "WM does not reach %.0f mV even at V_BL = -300 mV" % (delta * 1e3,)
    )


def matching_negative_gnd(library, hvt_cell, lvt_cell, v_ddc=None,
                          resolution=LEVEL_RESOLUTION):
    """V_SSC at which the assisted HVT BL delay matches the no-assist
    LVT BL delay (the paper's Fig. 3(c) cross point, -100 mV)."""
    vdd = library.vdd
    v_ddc = vdd if v_ddc is None else v_ddc
    target = bitline_delay(library, lvt_cell, vdd, 0.0)
    levels = np.arange(0.0, -0.30 - 1e-9, -resolution)
    for v_ssc in levels:
        if bitline_delay(library, hvt_cell, v_ddc, float(v_ssc)) <= target:
            return float(round(v_ssc / resolution) * resolution)
    raise CharacterizationError(
        "HVT BL delay never reaches the LVT target %.3g s" % target
    )
