"""repro.store: content-addressed experiment/result store with provenance.

Every finished optimization (one study-matrix cell, one service
``/v1/optimize`` answer, one CLI sweep) can be committed to an
:class:`ExperimentStore` — a single-file SQLite database keyed by a
canonical hash of everything that determines the result: the design
space, the resolved voltage policy, the yield-constraint configuration,
and the engine version.  Identical work is therefore *deduplicated*
across the study runner, the durable job queue (:mod:`repro.jobs`), the
optimization service, and the CLI: whoever computes a cell first
persists it, and everyone else loads it.

Alongside each payload the store records provenance — the inputs, the
git revision, host/pid/worker, wall time — so any stored number can be
traced back to the code and configuration that produced it.

* :func:`canonical_key` — deterministic hash of a plain-data identity
* :func:`study_cell_key` / :func:`sweep_key` — the co-optimization keys
* :func:`result_to_payload` / :func:`payload_to_result` — exact
  (bit-identical) round trip of an
  :class:`~repro.opt.results.OptimizationResult`
* :class:`ExperimentStore` — the SQLite-backed store itself
* :class:`ReplicatedStore` — the same surface fronted by read-through /
  write-back replication across fleet peers (:mod:`repro.fleet`)
"""

from .replicated import ReplicatedStore, StoreReplica
from .store import (
    ENGINE_VERSION,
    STORE_SCHEMA,
    ExperimentStore,
    canonical_key,
    cell_key,
    make_provenance,
    pareto_cell_key,
    payload_json_safe,
    payload_to_result,
    result_to_payload,
    study_cell_key,
    sweep_key,
    yield_cell_key,
)

__all__ = [
    "ENGINE_VERSION",
    "STORE_SCHEMA",
    "ExperimentStore",
    "ReplicatedStore",
    "StoreReplica",
    "canonical_key",
    "cell_key",
    "make_provenance",
    "pareto_cell_key",
    "payload_json_safe",
    "payload_to_result",
    "result_to_payload",
    "study_cell_key",
    "sweep_key",
    "yield_cell_key",
]
