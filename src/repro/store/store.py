"""Content-addressed experiment store (stdlib SQLite + JSON).

Identity
--------

A stored result is addressed by :func:`canonical_key`: a SHA-256 over
the canonical JSON serialization of every input that determines the
result.  For one study-matrix cell that is the design space, the
resolved :class:`~repro.opt.methods.VoltagePolicy` (which already bakes
in the flavor's yield levels and rail consolidation), the
yield-constraint configuration, the capacity, and the engine name +
:data:`ENGINE_VERSION`.  Two callers asking for the same physics get
the same key — the study runner, a durable job, the optimization
service, and the CLI all deduplicate against one table.

Exactness
---------

Payloads are stored as JSON text.  Python's ``json`` serializes floats
via ``repr`` (shortest round trip), so every float read back compares
*bitwise equal* to the float written — the property the resumable job
runner leans on when it promises a resumed sweep is indistinguishable
from an uninterrupted one.

Concurrency
-----------

Every public operation opens a short-lived connection in WAL mode, so
any number of worker processes and service threads can read and write
one store file; ``put`` is idempotent (``INSERT OR REPLACE`` of an
identical payload).
"""

from __future__ import annotations

import getpass
import hashlib
import json
import math
import os
import socket
import sqlite3
import subprocess
import time
from contextlib import contextmanager
from dataclasses import asdict

from .. import __version__, perf
from ..array.model import ArrayMetrics, DesignPoint
from ..opt.results import LandscapePoint, OptimizationResult

#: Bump when the stored payload layout or the engine semantics change;
#: part of every key, so stale results can never shadow fresh ones.
STORE_SCHEMA = 1

#: The engine identity baked into every key.
ENGINE_VERSION = "repro-%s" % __version__

#: Scalar ArrayMetrics fields serialized into a cell payload.
METRIC_FIELDS = ("d_rd", "d_wr", "d_array", "e_sw_rd", "e_sw_wr",
                 "e_sw", "e_leak", "e_total", "edp",
                 "rail_arrival_slack", "aspect_ratio")


# ---------------------------------------------------------------------------
# Canonical keys
# ---------------------------------------------------------------------------

def _canonical_json(value):
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def canonical_key(kind, fields):
    """``kind-<sha256>`` over the canonical JSON of ``fields``.

    ``fields`` must be plain data (dicts/lists/str/int/float/bool/None);
    key order and float spelling cannot change the digest because the
    serialization is canonical (sorted keys, shortest-repr floats).
    """
    digest = hashlib.sha256(
        _canonical_json({"kind": kind, "schema": STORE_SCHEMA,
                         "fields": fields}).encode("utf-8")
    ).hexdigest()
    return "%s-%s" % (kind, digest[:40])


def _space_fields(space):
    return {
        "v_ssc_values": [float(v) for v in space.v_ssc_values],
        "n_r_min": int(space.n_r_min),
        "n_r_max": int(space.n_r_max),
        "n_c_max": int(space.n_c_max),
        "n_pre_max": int(space.n_pre_max),
        "n_wr_max": int(space.n_wr_max),
    }


def _policy_fields(policy):
    return {
        "method": policy.method,
        "v_ddc": float(policy.v_ddc),
        "v_ssc_free": bool(policy.v_ssc_free),
        "v_wl": float(policy.v_wl),
        "extra_rails": int(policy.extra_rails),
        "v_bl": float(policy.v_bl),
    }


def cell_key(capacity_bits, flavor, policy, space, constraint_info,
             engine):
    """Key of one (capacity, flavor, policy) optimization result.

    ``constraint_info`` is a plain dict describing the yield constraint
    (delta, voltage mode, rail minima) — everything that changes which
    designs are feasible.
    """
    return canonical_key("cell", {
        "engine_version": ENGINE_VERSION,
        "engine": engine,
        "capacity_bits": int(capacity_bits),
        "flavor": flavor,
        "policy": _policy_fields(policy),
        "space": _space_fields(space),
        "constraint": constraint_info,
    })


def _constraint_info(session, flavor):
    levels = session.yield_levels(flavor)
    return {
        "voltage_mode": session.voltage_mode,
        "delta": float(session.delta),
        "v_ddc_min": float(levels.v_ddc_min),
        "v_wl_min": float(levels.v_wl_min),
    }


def study_cell_key(session, space, capacity_bytes, flavor, method,
                   engine="vectorized"):
    """The :func:`cell_key` of one study-matrix cell under a session.

    Resolves the method name into the session's concrete
    :class:`~repro.opt.methods.VoltagePolicy` first, so the key captures
    the actual rails searched rather than the method label.
    """
    from ..opt.methods import make_policy

    policy = make_policy(method, session.yield_levels(flavor))
    return cell_key(
        capacity_bytes * 8, flavor, policy, space,
        _constraint_info(session, flavor), engine,
    )


def pareto_cell_key(session, space, capacity_bytes, flavor, method,
                    engine="pruned"):
    """Key of one Pareto-front sweep (the ``/v1/pareto`` identity).

    Same identity fields as :func:`study_cell_key` under its own kind:
    a front and an EDP argmin over the same cell are different results.
    The ``best_weighted`` exponents are deliberately excluded — they
    parameterize a query *over* the stored front, not the sweep itself.
    """
    from ..opt.methods import make_policy

    policy = make_policy(method, session.yield_levels(flavor))
    return canonical_key("pareto", {
        "engine_version": ENGINE_VERSION,
        "engine": engine,
        "capacity_bits": int(capacity_bytes) * 8,
        "flavor": flavor,
        "policy": _policy_fields(policy),
        "space": _space_fields(space),
        "constraint": _constraint_info(session, flavor),
    })


def yield_cell_key(session, space, capacity_bytes, flavor, method,
                   code, y_target, engine="pruned", n_samples=120,
                   seed=0, sampler="gaussian", ci_target=0.1,
                   max_samples=4096):
    """Key of one ECC-relaxed yield study cell (``/v1/yield``).

    Beyond the study-cell identity this captures the code, the array
    yield target, the Monte Carlo draw (``n_samples``/``seed``) the
    margin sigma is estimated from, and the relaxation estimator
    (``sampler``/``ci_target``/``max_samples``) — all of which move
    the relaxed floor and therefore the optimum.
    """
    from ..opt.methods import make_policy
    from ..yields.ecc import make_code

    policy = make_policy(method, session.yield_levels(flavor))
    return canonical_key("yield", {
        "engine_version": ENGINE_VERSION,
        "engine": engine,
        "capacity_bits": int(capacity_bytes) * 8,
        "flavor": flavor,
        "policy": _policy_fields(policy),
        "space": _space_fields(space),
        "constraint": _constraint_info(session, flavor),
        "code": make_code(code, session.config.word_bits).name,
        "y_target": float(y_target),
        "n_samples": int(n_samples),
        "seed": int(seed),
        "sampler": sampler,
        "ci_target": float(ci_target),
        "max_samples": int(max_samples),
    })


def sweep_key(spec):
    """Key of a whole study sweep from its normalized job spec.

    The characterization-cache *location* is deliberately excluded: it
    names where LUTs live, not what they contain.
    """
    fields = {k: v for k, v in spec.items() if k != "cache_path"}
    fields["engine_version"] = ENGINE_VERSION
    return canonical_key("sweep", fields)


# ---------------------------------------------------------------------------
# OptimizationResult <-> payload
# ---------------------------------------------------------------------------

def result_to_payload(result):
    """Serialize an :class:`OptimizationResult` to plain JSON data.

    Floats pass through ``float()`` only, so
    :func:`payload_to_result` (and a JSON round trip through the store)
    reproduces every value bit-for-bit.
    """
    design = result.design
    metrics = result.metrics
    payload = {
        "capacity_bits": int(result.capacity_bits),
        "capacity_bytes": int(result.capacity_bytes),
        "flavor": result.flavor,
        "method": result.method,
        "design": {
            "n_r": int(design.n_r),
            "n_c": int(design.n_c),
            "n_pre": int(design.n_pre),
            "n_wr": int(design.n_wr),
            "v_ddc": float(design.v_ddc),
            "v_ssc": float(design.v_ssc),
            "v_wl": float(design.v_wl),
            "v_bl": float(design.v_bl),
        },
        "metrics": {name: float(getattr(metrics, name))
                    for name in METRIC_FIELDS},
        "read_parts": {k: float(v) for k, v in metrics.read_parts.items()},
        "write_parts": {k: float(v)
                        for k, v in metrics.write_parts.items()},
        "footprint": [float(v) for v in metrics.footprint]
        if metrics.footprint is not None else None,
        "margins": {
            "hsnm": float(result.margins[0]),
            "rsnm": float(result.margins[1]),
            "wm": float(result.margins[2]),
        },
        "n_evaluated": int(result.n_evaluated),
        "landscape": [
            {k: (float(v) if isinstance(v, float) else int(v))
             for k, v in asdict(point).items()}
            for point in result.landscape
        ],
    }
    return payload


def payload_to_result(payload):
    """Rebuild an :class:`OptimizationResult` from a stored payload.

    The metrics object is a real :class:`ArrayMetrics` (with the
    component breakdown left ``None``), so every report path — Table 4
    rows, Figure 7 series, headline statistics — works on restored
    results exactly as on freshly computed ones.
    """
    design = DesignPoint(**payload["design"])
    fields = dict(payload["metrics"])
    aspect_ratio = fields.pop("aspect_ratio", None)
    footprint = payload.get("footprint")
    metrics = ArrayMetrics(
        design=design,
        read_parts=dict(payload.get("read_parts", {})),
        write_parts=dict(payload.get("write_parts", {})),
        footprint=tuple(footprint) if footprint is not None else None,
        aspect_ratio=aspect_ratio,
        **fields,
    )
    margins = payload["margins"]
    return OptimizationResult(
        capacity_bits=payload["capacity_bits"],
        flavor=payload["flavor"],
        method=payload["method"],
        design=design,
        metrics=metrics,
        margins=(margins["hsnm"], margins["rsnm"], margins["wm"]),
        n_evaluated=payload["n_evaluated"],
        landscape=[LandscapePoint(**point)
                   for point in payload.get("landscape", [])],
    )


def payload_json_safe(value):
    """Deep copy with non-finite floats replaced by ``None``.

    The store keeps raw floats (bit-exact); HTTP responses go through
    this first because strict JSON has no ``Infinity``/``NaN``.  Finite
    floats pass unchanged, so for real results the safe copy is
    value-identical to the stored one.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {k: payload_json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [payload_json_safe(v) for v in value]
    return value


# ---------------------------------------------------------------------------
# Provenance
# ---------------------------------------------------------------------------

_GIT_REV = None


def _git_rev():
    """Best-effort repository revision (cached; None outside a repo)."""
    global _GIT_REV
    if _GIT_REV is None:
        rev = ""
        try:
            rev = subprocess.run(
                ["git", "rev-parse", "--short=12", "HEAD"],
                cwd=os.path.dirname(os.path.abspath(__file__)),
                capture_output=True, text=True, timeout=5,
            ).stdout.strip()
        except (OSError, subprocess.SubprocessError):
            pass
        _GIT_REV = rev or "unknown"
    return _GIT_REV


def make_provenance(inputs, elapsed_seconds=None, worker=None):
    """The provenance record stored beside every payload."""
    try:
        user = getpass.getuser()
    except (KeyError, OSError):
        user = "unknown"
    return {
        "engine_version": ENGINE_VERSION,
        "schema": STORE_SCHEMA,
        "inputs": inputs,
        "git_rev": _git_rev(),
        "host": socket.gethostname(),
        "user": user,
        "pid": os.getpid(),
        "worker": worker,
        "elapsed_seconds": elapsed_seconds,
        "created_at": time.time(),
    }


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS results (
    key          TEXT PRIMARY KEY,
    kind         TEXT NOT NULL,
    payload      TEXT NOT NULL,
    provenance   TEXT NOT NULL,
    created_at   REAL NOT NULL,
    last_used_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_kind ON results (kind);
"""


class ExperimentStore:
    """Content-addressed result store backed by one SQLite file.

    Safe for concurrent use from multiple threads and processes; every
    call opens its own short-lived WAL-mode connection.
    """

    def __init__(self, path):
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with self._conn() as conn:
            conn.executescript(_SCHEMA_SQL)

    def _connect(self):
        conn = sqlite3.connect(self.path, timeout=30.0)
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        return conn

    @contextmanager
    def _conn(self):
        """One short-lived connection: commit on success, always close."""
        conn = self._connect()
        try:
            with conn:
                yield conn
        finally:
            conn.close()

    # -- write -------------------------------------------------------------

    def put(self, key, payload, provenance=None, kind=None):
        """Store (or idempotently re-store) one payload under ``key``.

        ``kind`` defaults to the key's prefix (``cell-...`` -> ``cell``).
        """
        if kind is None:
            kind = key.split("-", 1)[0]
        now = time.time()
        with self._conn() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO results "
                "(key, kind, payload, provenance, created_at, last_used_at)"
                " VALUES (?, ?, ?, ?, ?, ?)",
                (key, kind, json.dumps(payload),
                 json.dumps(provenance or {}), now, now),
            )
        perf.count("store.puts")
        return key

    # -- read --------------------------------------------------------------

    def get(self, key, touch=True):
        """The stored payload, or ``None`` when absent."""
        with self._conn() as conn:
            row = conn.execute(
                "SELECT payload FROM results WHERE key = ?", (key,)
            ).fetchone()
            if row is None:
                perf.count("store.misses")
                return None
            if touch:
                conn.execute(
                    "UPDATE results SET last_used_at = ? WHERE key = ?",
                    (time.time(), key),
                )
        perf.count("store.hits")
        return json.loads(row["payload"])

    def provenance(self, key):
        with self._conn() as conn:
            row = conn.execute(
                "SELECT provenance FROM results WHERE key = ?", (key,)
            ).fetchone()
        return json.loads(row["provenance"]) if row is not None else None

    def has(self, key):
        with self._conn() as conn:
            row = conn.execute(
                "SELECT 1 FROM results WHERE key = ?", (key,)
            ).fetchone()
        return row is not None

    def __contains__(self, key):
        return self.has(key)

    def ls(self, kind=None, limit=None):
        """Metadata rows (no payloads), newest first."""
        query = ("SELECT key, kind, created_at, last_used_at, "
                 "length(payload) AS payload_bytes FROM results")
        args = []
        if kind is not None:
            query += " WHERE kind = ?"
            args.append(kind)
        query += " ORDER BY created_at DESC, key"
        if limit is not None:
            query += " LIMIT ?"
            args.append(int(limit))
        with self._conn() as conn:
            rows = conn.execute(query, args).fetchall()
        return [dict(row) for row in rows]

    def count(self, kind=None):
        with self._conn() as conn:
            if kind is None:
                row = conn.execute(
                    "SELECT COUNT(*) AS n FROM results").fetchone()
            else:
                row = conn.execute(
                    "SELECT COUNT(*) AS n FROM results WHERE kind = ?",
                    (kind,)).fetchone()
        return row["n"]

    def stats(self):
        with self._conn() as conn:
            rows = conn.execute(
                "SELECT kind, COUNT(*) AS n, "
                "SUM(length(payload)) AS payload_bytes "
                "FROM results GROUP BY kind ORDER BY kind"
            ).fetchall()
        by_kind = {row["kind"]: {"count": row["n"],
                                 "payload_bytes": row["payload_bytes"]}
                   for row in rows}
        return {
            "path": self.path,
            "total": sum(entry["count"] for entry in by_kind.values()),
            "by_kind": by_kind,
        }

    # -- maintenance -------------------------------------------------------

    def delete(self, key):
        with self._conn() as conn:
            cursor = conn.execute(
                "DELETE FROM results WHERE key = ?", (key,))
        return cursor.rowcount > 0

    def gc(self, older_than_seconds=None, kind=None, dry_run=False):
        """Delete (or list, with ``dry_run``) stale entries.

        ``older_than_seconds`` filters on ``last_used_at``, so results
        that are still being read survive any age cutoff.
        """
        query = "FROM results WHERE 1=1"
        args = []
        if older_than_seconds is not None:
            query += " AND last_used_at < ?"
            args.append(time.time() - float(older_than_seconds))
        if kind is not None:
            query += " AND kind = ?"
            args.append(kind)
        with self._conn() as conn:
            victims = [row["key"] for row in conn.execute(
                "SELECT key " + query, args)]
            if not dry_run and victims:
                conn.execute("DELETE " + query, args)
        if not dry_run and victims:
            with self._conn() as conn:
                conn.execute("VACUUM")
        return victims
