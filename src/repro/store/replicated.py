"""Read-through / write-back replication over the experiment store.

:class:`ReplicatedStore` wraps a local :class:`ExperimentStore` plus
any number of remote replicas (other ``repro serve`` instances exposing
``GET/PUT /v1/store/<key>``).  Because every blob is addressed by the
content hash of the inputs that produced it (:func:`~repro.store.store.
canonical_key`), replication is trivially coherent: a key's payload is
immutable, so copying it anywhere is idempotent and deduplication is
global by construction — whoever computes a cell first seeds the whole
fleet.

* **read-through** — a local miss consults each replica in health
  order; a hit is written back into the local store (so the next read
  is local) and returned.  The JSON wire round trip preserves floats
  via ``repr`` exactly as the SQLite store does, so a cell fetched from
  a replica compares **bitwise equal** to the original — resumed
  sweeps stay bit-identical across hosts.
* **write-back** — a ``put`` lands locally first (durability), then is
  pushed to every reachable replica.  Pushes to a down replica are
  queued in a per-replica backlog and flushed when it answers again
  (each later ``put``/``flush`` retries after ``retry_seconds``), so a
  replica that was SIGKILLed mid-sweep converges once restarted.

The wrapper exposes the same surface the job worker and the service
use (``has``/``get``/``put``/``provenance``/``stats``...), so it drops
into :func:`repro.jobs.worker.execute_study_job` and
:class:`repro.service.server.OptimizationServer` unchanged.
"""

from __future__ import annotations

import threading
import time

from .. import perf
from ..errors import ServiceError
from .store import ExperimentStore


class StoreReplica:
    """One remote store endpoint with lazy health state."""

    def __init__(self, url, timeout=30.0, connect_timeout=2.0):
        from ..fleet.topology import PeerClientPool

        self.url = url
        self.pool = PeerClientPool(url, timeout=timeout,
                                   connect_timeout=connect_timeout)
        self.healthy = True
        self.down_since = None
        self.last_error = None

    def usable(self, retry_seconds):
        """Healthy, or down long enough that a retry is due (the retry
        itself is the probe)."""
        if self.healthy:
            return True
        return (time.monotonic() - self.down_since) >= retry_seconds

    def mark_down(self, error):
        if self.healthy:
            perf.count("store.replica_marked_down")
        self.healthy = False
        self.down_since = time.monotonic()
        self.last_error = str(error)[:500]

    def mark_up(self):
        if not self.healthy:
            perf.count("store.replica_marked_up")
        self.healthy = True
        self.down_since = None
        self.last_error = None

    def to_payload(self):
        return {"url": self.url, "healthy": self.healthy,
                "last_error": self.last_error}


class ReplicatedStore:
    """A local store fronted by read-through/write-back replication."""

    def __init__(self, local, replicas=(), retry_seconds=5.0,
                 timeout=30.0, connect_timeout=2.0):
        from ..fleet.topology import normalize_peer_url

        if isinstance(local, str):
            local = ExperimentStore(local)
        self.local = local
        self.retry_seconds = float(retry_seconds)
        self.replicas = []
        seen = set()
        for url in replicas or ():
            url = normalize_peer_url(url)
            if url in seen:
                continue
            seen.add(url)
            self.replicas.append(StoreReplica(
                url, timeout=timeout, connect_timeout=connect_timeout))
        self._lock = threading.Lock()
        #: replica url -> keys still owed to it (failed write-backs).
        self._backlog = {replica.url: set() for replica in self.replicas}
        #: Correlation id attached to sync traffic (one sweep's id
        #: survives host hops); set per job by the fleet worker.
        self.request_id = None

    @property
    def path(self):
        return self.local.path

    def set_request_id(self, request_id):
        self.request_id = request_id

    def close(self):
        for replica in self.replicas:
            replica.pool.close()

    # -- replica plumbing --------------------------------------------------

    def _pull(self, replica, key):
        """Fetch ``key`` from one replica; ``None`` on miss/unreachable."""
        try:
            status, payload, _ = replica.pool.request(
                "GET", "/v1/store/%s" % key,
                request_id=self.request_id)
        except (ServiceError, OSError) as exc:
            replica.mark_down(exc)
            return None
        replica.mark_up()
        if status != 200:
            return None
        return payload

    def _push(self, replica, key, payload, provenance):
        """Write one blob to one replica; False queues it for later."""
        try:
            status, _, _ = replica.pool.request(
                "PUT", "/v1/store/%s" % key,
                {"payload": payload, "provenance": provenance or {}},
                request_id=self.request_id)
        except (ServiceError, OSError) as exc:
            replica.mark_down(exc)
            return False
        replica.mark_up()
        return 200 <= status < 300

    def _flush_backlog(self, replica):
        """Retry this replica's owed keys (payloads re-read locally)."""
        with self._lock:
            owed = list(self._backlog[replica.url])
        for key in owed:
            payload = self.local.get(key, touch=False)
            if payload is None:    # GC'd locally; nothing left to owe
                with self._lock:
                    self._backlog[replica.url].discard(key)
                continue
            if not self._push(replica, key, payload,
                              self.local.provenance(key)):
                return    # still down; keep the rest owed
            perf.count("store.sync_backlog_flushed")
            with self._lock:
                self._backlog[replica.url].discard(key)

    # -- the store surface -------------------------------------------------

    def put(self, key, payload, provenance=None, kind=None):
        """Local durability first, then best-effort fan-out."""
        self.local.put(key, payload, provenance, kind=kind)
        for replica in self.replicas:
            if replica.usable(self.retry_seconds):
                if self._push(replica, key, payload, provenance):
                    perf.count("store.sync_pushes")
                    if self._backlog[replica.url]:
                        self._flush_backlog(replica)
                    continue
            perf.count("store.sync_push_deferred")
            with self._lock:
                self._backlog[replica.url].add(key)
        return key

    def get(self, key, touch=True):
        payload = self.local.get(key, touch=touch)
        if payload is not None:
            return payload
        for replica in self.replicas:
            if not replica.usable(self.retry_seconds):
                continue
            blob = self._pull(replica, key)
            if blob is None:
                continue
            # Write-through into the local store so the next read (and
            # the resumed sweep's skip check) is a local hit.
            self.local.put(key, blob["payload"],
                           blob.get("provenance") or {})
            perf.count("store.sync_pulls")
            # Read repair: owe the blob to the *other* replicas too.  A
            # replica that was down while this cell was computed (and
            # so missed the original write-back) converges through the
            # reads of whoever resumes the sweep; pushing to a replica
            # that already holds the key is an idempotent no-op.
            with self._lock:
                for other in self.replicas:
                    if other is not replica:
                        self._backlog[other.url].add(key)
            return blob["payload"]
        return None

    def has(self, key):
        """Local hit, or a successful read-through pull from a replica.

        Pulling on ``has`` is deliberate: the job worker's skip check
        is ``has``, and materializing the cell locally right there is
        what makes a resumed sweep skip cells *another host* computed.
        """
        if self.local.has(key):
            return True
        return self.get(key, touch=False) is not None

    def __contains__(self, key):
        return self.has(key)

    def provenance(self, key):
        return self.local.provenance(key)

    def ls(self, kind=None, limit=None):
        return self.local.ls(kind=kind, limit=limit)

    def count(self, kind=None):
        return self.local.count(kind=kind)

    def delete(self, key):
        return self.local.delete(key)

    def gc(self, older_than_seconds=None, kind=None, dry_run=False):
        return self.local.gc(older_than_seconds=older_than_seconds,
                             kind=kind, dry_run=dry_run)

    def flush(self):
        """Push every owed blob to every reachable replica; returns the
        number of keys still owed afterwards (0 == fully converged).

        Unlike the hot-path ``put``, an explicit flush ignores the
        down-replica retry window: this is the pre-``complete`` settle,
        and the push attempt itself is the health probe."""
        for replica in self.replicas:
            if self._backlog[replica.url]:
                self._flush_backlog(replica)
        with self._lock:
            return sum(len(owed) for owed in self._backlog.values())

    def pending(self):
        """``replica url -> owed key count`` (replication lag view)."""
        with self._lock:
            return {url: len(owed)
                    for url, owed in self._backlog.items()}

    def stats(self):
        stats = self.local.stats()
        stats["replication"] = {
            "replicas": [replica.to_payload()
                         for replica in self.replicas],
            "pending": self.pending(),
        }
        return stats
