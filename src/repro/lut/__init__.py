"""Look-up-table infrastructure for characterization results."""

from .cache import CharacterizationCache
from .table import LUT1D, LUT2D, tabulate_1d, tabulate_2d

__all__ = [
    "LUT1D",
    "LUT2D",
    "CharacterizationCache",
    "tabulate_1d",
    "tabulate_2d",
]
