"""Interpolating look-up tables.

The paper's flow stores every SPICE-characterized quantity that depends
on an optimization variable in a look-up table ("...those with
dependencies on a variable are stored in look-up tables", Section 5).
These classes are those tables: linear interpolation on rectilinear
grids, with strict-by-default bounds handling so a sweep that escapes
the characterized region fails loudly instead of extrapolating silently.
"""

from __future__ import annotations

import numpy as np

from ..errors import LookupError_


class LUT1D:
    """Piecewise-linear y(x) over a strictly increasing grid."""

    def __init__(self, xs, ys, name="lut1d", clamp=False):
        self.xs = np.asarray(xs, dtype=float)
        self.ys = np.asarray(ys, dtype=float)
        self.name = name
        self.clamp = clamp
        if self.xs.ndim != 1 or self.xs.shape != self.ys.shape:
            raise ValueError("xs and ys must be 1-D arrays of equal length")
        if len(self.xs) < 2:
            raise ValueError("need at least two samples")
        if np.any(np.diff(self.xs) <= 0):
            raise ValueError("xs must be strictly increasing")

    def _check(self, x):
        x = np.asarray(x, dtype=float)
        if not self.clamp and (
            np.any(x < self.xs[0] - 1e-12) or np.any(x > self.xs[-1] + 1e-12)
        ):
            raise LookupError_(
                "%s: query %s outside characterized range [%g, %g]"
                % (self.name, x, self.xs[0], self.xs[-1])
            )
        return x

    def __call__(self, x):
        x = self._check(x)
        result = np.interp(x, self.xs, self.ys)
        if np.ndim(x) == 0:
            return float(result)
        return result

    @property
    def x_range(self):
        return float(self.xs[0]), float(self.xs[-1])

    def map(self, func, name=None):
        """A new LUT with ``func`` applied to the sampled values."""
        return LUT1D(self.xs, [func(y) for y in self.ys],
                     name or self.name, self.clamp)


class LUT2D:
    """Bilinear z(x, y) over a rectilinear grid."""

    def __init__(self, xs, ys, zs, name="lut2d", clamp=False):
        self.xs = np.asarray(xs, dtype=float)
        self.ys = np.asarray(ys, dtype=float)
        self.zs = np.asarray(zs, dtype=float)
        self.name = name
        self.clamp = clamp
        if self.zs.shape != (len(self.xs), len(self.ys)):
            raise ValueError(
                "zs must have shape (len(xs), len(ys)) = (%d, %d); got %r"
                % (len(self.xs), len(self.ys), self.zs.shape)
            )
        if len(self.xs) < 2 or len(self.ys) < 2:
            raise ValueError("need at least a 2x2 grid")
        if np.any(np.diff(self.xs) <= 0) or np.any(np.diff(self.ys) <= 0):
            raise ValueError("grid axes must be strictly increasing")

    def _locate(self, grid, value, axis_name):
        if value < grid[0] - 1e-12 or value > grid[-1] + 1e-12:
            if not self.clamp:
                raise LookupError_(
                    "%s: %s query %g outside characterized range [%g, %g]"
                    % (self.name, axis_name, value, grid[0], grid[-1])
                )
            value = min(max(value, grid[0]), grid[-1])
        k = int(np.searchsorted(grid, value, side="right") - 1)
        k = min(max(k, 0), len(grid) - 2)
        frac = (value - grid[k]) / (grid[k + 1] - grid[k])
        return k, min(max(frac, 0.0), 1.0)

    def __call__(self, x, y):
        if np.ndim(x) == 0 and np.ndim(y) == 0:
            i, fx = self._locate(self.xs, float(x), "x")
            j, fy = self._locate(self.ys, float(y), "y")
            z00 = self.zs[i, j]
            z10 = self.zs[i + 1, j]
            z01 = self.zs[i, j + 1]
            z11 = self.zs[i + 1, j + 1]
            return float(
                z00 * (1 - fx) * (1 - fy)
                + z10 * fx * (1 - fy)
                + z01 * (1 - fx) * fy
                + z11 * fx * fy
            )
        return self.batch(x, y)

    def _locate_batch(self, grid, values, axis_name):
        values = np.asarray(values, dtype=float)
        if np.any(values < grid[0] - 1e-12) or np.any(
            values > grid[-1] + 1e-12
        ):
            if not self.clamp:
                raise LookupError_(
                    "%s: %s query %s outside characterized range [%g, %g]"
                    % (self.name, axis_name, values, grid[0], grid[-1])
                )
            values = np.minimum(np.maximum(values, grid[0]), grid[-1])
        k = np.searchsorted(grid, values, side="right") - 1
        k = np.clip(k, 0, len(grid) - 2)
        frac = (values - grid[k]) / (grid[k + 1] - grid[k])
        return k, np.clip(frac, 0.0, 1.0)

    def batch(self, x, y):
        """Bilinear interpolation with broadcasting ``x`` / ``y`` arrays.

        Elementwise identical to the scalar path (same locate and blend
        arithmetic), so vectorized sweeps reproduce scalar loops bit for
        bit.
        """
        i, fx = self._locate_batch(self.xs, x, "x")
        j, fy = self._locate_batch(self.ys, y, "y")
        z00 = self.zs[i, j]
        z10 = self.zs[i + 1, j]
        z01 = self.zs[i, j + 1]
        z11 = self.zs[i + 1, j + 1]
        return (
            z00 * (1 - fx) * (1 - fy)
            + z10 * fx * (1 - fy)
            + z01 * (1 - fx) * fy
            + z11 * fx * fy
        )

    @property
    def x_range(self):
        return float(self.xs[0]), float(self.xs[-1])

    @property
    def y_range(self):
        return float(self.ys[0]), float(self.ys[-1])


def tabulate_1d(func, xs, name="lut1d", clamp=False):
    """Build a :class:`LUT1D` by sampling ``func`` over ``xs``."""
    return LUT1D(xs, [func(float(x)) for x in xs], name=name, clamp=clamp)


def tabulate_2d(func, xs, ys, name="lut2d", clamp=False):
    """Build a :class:`LUT2D` by sampling ``func(x, y)`` over the grid."""
    zs = np.array([[func(float(x), float(y)) for y in ys] for x in xs])
    return LUT2D(xs, ys, zs, name=name, clamp=clamp)
