"""Disk cache for characterization results.

Full-array studies re-use the same cell/periphery characterizations over
and over (every capacity and method shares the same LUTs), and some of
them — transient write-delay sweeps in particular — take seconds each.
This cache stores plain JSON next to a user-chosen path so repeated
benchmark runs skip recharacterization.

Keys must be strings; values are anything JSON-serializable (the
characterization code stores grids and sampled arrays as lists).

Writes are batched: :meth:`put` marks the store dirty and rewrites the
file immediately *unless* the cache is inside a ``with cache.deferred():``
block (or used as a context manager itself), in which case all inserts
of the block land in a single atomic rewrite on exit.  As a final
safety net, every file-backed cache is also flushed at interpreter
exit (``atexit``), so a process that dies without unwinding its
``deferred()`` block still persists what it computed.  Cold-start
characterization runs many ``get_or_compute`` calls, so without
deferral the JSON file would be serialized once per insert — O(n^2)
bytes written.  Deferral is crash-safe: the exit flush runs from a
``finally`` even when a compute raises, so everything computed before
the failure is persisted, and the rewrite itself stays atomic
(write-to-temp then ``os.replace``).

Thread safety: every public operation holds one re-entrant lock, so a
cache shared across a thread pool (the optimization service's thread
executor shares one warm :class:`~repro.analysis.experiments.Session`)
never interleaves a ``put`` with a ``flush`` or double-computes a key.
:meth:`get_or_compute` holds the lock *across* the compute — the first
caller characterizes, every concurrent caller for any key waits and
then reads the stored value.  Characterization computes are idempotent
and read-mostly after warm-up, so serializing cold computes is the
right trade against running the same multi-second simulation twice.
"""

from __future__ import annotations

import atexit
import json
import os
import tempfile
import threading
import weakref
from contextlib import contextmanager

from .. import perf

#: Every live file-backed cache, flushed once more at interpreter exit
#: so dirty entries survive a process that never leaves its
#: ``deferred()`` block the orderly way (sys.exit, an unhandled
#: exception in a worker's main, ...).  A weak set: caches die with
#: their owners; registration never extends a lifetime.
_LIVE_CACHES = weakref.WeakSet()


@atexit.register
def _flush_all_at_exit():
    for cache in list(_LIVE_CACHES):
        try:
            cache.flush()
        except Exception:
            # Exit-time best effort: a read-only filesystem or a
            # half-torn-down interpreter must not mask the real exit.
            pass


class CharacterizationCache:
    """A tiny persistent key-value store (JSON file) with batched writes."""

    def __init__(self, path=None):
        self.path = path
        self._data = {}
        self._dirty = False
        self._defer_depth = 0
        self._lock = threading.RLock()
        if path is not None and os.path.exists(path):
            with open(path) as handle:
                self._data = json.load(handle)
        if path is not None:
            _LIVE_CACHES.add(self)

    def get(self, key):
        with self._lock:
            return self._data.get(key)

    def __contains__(self, key):
        with self._lock:
            return key in self._data

    def put(self, key, value):
        with self._lock:
            self._data[key] = value
            self._dirty = True
            if self._defer_depth == 0:
                self.flush()

    def get_or_compute(self, key, compute):
        """Return the cached value for ``key`` or compute-and-store it.

        The lock is held across the compute, so concurrent callers of
        the same key run ``compute`` exactly once.
        """
        with self._lock:
            if key in self._data:
                return self._data[key]
            value = compute()
            self.put(key, value)
            return value

    @contextmanager
    def deferred(self):
        """Batch every ``put`` of the block into one flush on exit.

        Nestable; only the outermost exit writes.  The flush runs even
        when the block raises, so partial progress survives a crash.
        """
        with self._lock:
            self._defer_depth += 1
        try:
            yield self
        finally:
            with self._lock:
                self._defer_depth -= 1
                if self._defer_depth == 0:
                    self.flush()

    def __enter__(self):
        with self._lock:
            self._defer_depth += 1
        return self

    def __exit__(self, exc_type, exc, tb):
        with self._lock:
            self._defer_depth -= 1
            if self._defer_depth == 0:
                self.flush()
        return False

    def flush(self):
        """Write the store to disk now (no-op when clean or memory-only)."""
        with self._lock:
            if self.path is None or not self._dirty:
                return
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            # Atomic replace so a crash mid-write cannot corrupt the cache.
            fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(self._data, handle)
                os.replace(tmp_path, self.path)
            except BaseException:
                if os.path.exists(tmp_path):
                    os.unlink(tmp_path)
                raise
            self._dirty = False
        perf.count("cache.flushes")

    def clear(self):
        with self._lock:
            self._data = {}
            self._dirty = True
            if self._defer_depth == 0:
                self.flush()

    def __len__(self):
        with self._lock:
            return len(self._data)
