"""Disk cache for characterization results.

Full-array studies re-use the same cell/periphery characterizations over
and over (every capacity and method shares the same LUTs), and some of
them — transient write-delay sweeps in particular — take seconds each.
This cache stores plain JSON next to a user-chosen path so repeated
benchmark runs skip recharacterization.

Keys must be strings; values are anything JSON-serializable (the
characterization code stores grids and sampled arrays as lists).
"""

from __future__ import annotations

import json
import os
import tempfile


class CharacterizationCache:
    """A tiny persistent key-value store (JSON file)."""

    def __init__(self, path=None):
        self.path = path
        self._data = {}
        if path is not None and os.path.exists(path):
            with open(path) as handle:
                self._data = json.load(handle)

    def get(self, key):
        return self._data.get(key)

    def __contains__(self, key):
        return key in self._data

    def put(self, key, value):
        self._data[key] = value
        self._flush()

    def get_or_compute(self, key, compute):
        """Return the cached value for ``key`` or compute-and-store it."""
        if key in self._data:
            return self._data[key]
        value = compute()
        self.put(key, value)
        return value

    def _flush(self):
        if self.path is None:
            return
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        # Atomic replace so a crash mid-write cannot corrupt the cache.
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(self._data, handle)
            os.replace(tmp_path, self.path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise

    def clear(self):
        self._data = {}
        self._flush()

    def __len__(self):
        return len(self._data)
