"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConvergenceError(ReproError):
    """A nonlinear or transient solve failed to converge.

    Carries enough context (iteration count, worst residual, node name)
    to diagnose the failure without re-running the solve.
    """

    def __init__(self, message, iterations=None, residual=None):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class NetlistError(ReproError):
    """The circuit under construction is malformed.

    Examples: an element references an undeclared node, a voltage source
    loop, or a floating node with no DC path to ground.
    """


class CharacterizationError(ReproError):
    """A device/circuit characterization produced an unusable result.

    Raised e.g. when a butterfly curve has no embedded square (cell is
    monostable) in a context where bistability is required.
    """


class DesignSpaceError(ReproError):
    """An optimization design point or range is invalid.

    Examples: a capacity that is not a power of two, a row count that
    does not divide the capacity, or an empty feasible set.
    """


class CalibrationError(ReproError):
    """A calibration target could not be met within tolerance."""


class StudyTaskError(ReproError):
    """One task of a parallel study matrix failed.

    Carries the task's human-readable label (e.g. ``16KB/HVT/M2``) so a
    failure deep inside a worker process still names the matrix cell
    that caused it; the original exception rides along as ``__cause__``.
    """

    def __init__(self, message, task_label=None):
        super().__init__(message)
        self.task_label = task_label


class ServiceError(ReproError):
    """The optimization service rejected or failed a request.

    ``status`` is the HTTP status code the server responded with (or
    would respond with); ``retry_after`` carries the server's
    backpressure hint in seconds when the status is 429.
    """

    def __init__(self, message, status=500, retry_after=None):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


class JobError(ReproError):
    """A durable-queue job could not be submitted, found, or executed.

    Raised for unknown job ids, invalid job specs, and malformed or
    missing store records.  ``job_id`` names the offending job when one
    is known.
    """

    def __init__(self, message, job_id=None):
        super().__init__(message)
        self.job_id = job_id


class ArenaError(ReproError):
    """A shared-memory session arena could not be mapped or decoded.

    Raised when the named segment does not exist, is not an arena
    (bad magic), or was published by an incompatible arena/format
    version.  Callers treat any :class:`ArenaError` as "fall back to a
    cold session build" — the arena is a fast path, never a
    correctness dependency.
    """


class LookupError_(ReproError):
    """A look-up table query fell outside the characterized grid.

    Named with a trailing underscore to avoid shadowing the builtin
    ``LookupError``.
    """
