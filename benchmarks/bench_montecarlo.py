"""Monte Carlo engine benchmark: batched vs scalar-loop throughput.

Standalone script (not a pytest benchmark) so CI can run it directly::

    PYTHONPATH=src python benchmarks/bench_montecarlo.py --quick

Writes the machine-readable ``BENCH_montecarlo.json`` baseline (repo
root) tracking the batched cell engine's Monte Carlo throughput.  The
scalar loop is far too slow to run at the full sample count (it is the
point of this benchmark), so each engine is timed at its own sample
count and compared on **per-sample throughput**, recorded as such.  A
small equal-count parity run asserts the engines stay bit-identical, so
the speedup is a pure-performance number.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import numpy as np

from repro import perf
from repro.cell.montecarlo import run_cell_montecarlo
from repro.cell.sram6t import SRAM6TCell
from repro.devices.library import DeviceLibrary

_HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE_PATH = os.path.join(_HERE, "..", "BENCH_montecarlo.json")

METRICS = ("hsnm", "rsnm", "wm")

#: Sample counts: the batched engine runs the acceptance-gate count; the
#: loop engine runs a small slice and is normalized per sample.
FULL = {"batched": 2000, "loop": 40, "parity": 6, "min_speedup": 20.0}
QUICK = {"batched": 200, "loop": 8, "parity": 4, "min_speedup": 5.0}


def _run(cell, engine, n_samples, seed):
    start = time.perf_counter()
    result = run_cell_montecarlo(
        cell, n_samples=n_samples, seed=seed, metrics=METRICS, engine=engine,
    )
    return result, time.perf_counter() - start


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke sizing (smaller sample counts, "
                             "relaxed speedup gate)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--flavor", choices=("lvt", "hvt"), default="hvt")
    parser.add_argument("--output", default=BASELINE_PATH,
                        help="where to write BENCH_montecarlo.json")
    args = parser.parse_args(argv)
    sizing = QUICK if args.quick else FULL

    library = DeviceLibrary.default_7nm()
    cell = SRAM6TCell.from_library(library, args.flavor)

    # Equal-count parity leg: the speedup below compares identical work.
    par_batched, _ = _run(cell, "batched", sizing["parity"], args.seed)
    par_loop, _ = _run(cell, "loop", sizing["parity"], args.seed)
    bit_identical = all(
        np.array_equal(par_batched.metric(m).values,
                       par_loop.metric(m).values)
        for m in METRICS
    )
    assert bit_identical, "engines diverged; speedup would be meaningless"

    _, loop_seconds = _run(cell, "loop", sizing["loop"], args.seed)
    _, batched_seconds = _run(cell, "batched", sizing["batched"], args.seed)
    loop_per_sample = loop_seconds / sizing["loop"]
    batched_per_sample = batched_seconds / sizing["batched"]
    speedup = loop_per_sample / batched_per_sample

    baseline = {
        "schema": "BENCH_montecarlo/v1",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": {
            "cpus": os.cpu_count() or 1,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "mode": "quick" if args.quick else "full",
        "config": {
            "flavor": args.flavor,
            "metrics": list(METRICS),
            "seed": args.seed,
        },
        "loop": {
            "n_samples": sizing["loop"],
            "seconds": loop_seconds,
            "per_sample_ms": loop_per_sample * 1e3,
        },
        "batched": {
            "n_samples": sizing["batched"],
            "seconds": batched_seconds,
            "per_sample_ms": batched_per_sample * 1e3,
        },
        "per_sample_speedup": speedup,
        "parity": {
            "n_samples": sizing["parity"],
            "bit_identical": bit_identical,
        },
    }
    with open(args.output, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print("Monte Carlo engine baseline (written to %s)" % args.output)
    print("loop:    n=%-5d %.2f s  (%.1f ms/sample)"
          % (sizing["loop"], loop_seconds, loop_per_sample * 1e3))
    print("batched: n=%-5d %.2f s  (%.1f ms/sample)"
          % (sizing["batched"], batched_seconds, batched_per_sample * 1e3))
    print("per-sample speedup: %.1fx (gate: >= %.0fx)"
          % (speedup, sizing["min_speedup"]))
    print()
    print(perf.get_registry().report())

    assert speedup >= sizing["min_speedup"], (
        "batched engine below the %.0fx throughput gate: %.1fx"
        % (sizing["min_speedup"], speedup)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
