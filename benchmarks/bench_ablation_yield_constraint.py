"""Ablation: fixed-delta vs mu - k*sigma yield constraints.

The paper states the accurate constraint is
``min((mu - k sigma)_HSNM, (mu - k sigma)_RSNM, (mu - k sigma)_WM) >= 0``
but optimizes with the simplified ``min(HSNM, RSNM, WM) >= 0.35*Vdd``
"for simplicity".  This ablation runs the 4KB 6T-HVT-M2 optimization
under both formulations (the Monte Carlo constraint at k = 3 with a
reduced sample count) and checks that the simplification is benign:
both constraints admit deep negative Gnd and land on (nearly) the same
minimum-EDP design.
"""

import pytest

from repro.analysis.tables import render_dict_table
from repro.opt import (
    DesignSpace,
    ExhaustiveOptimizer,
    MonteCarloYieldConstraint,
    make_policy,
)

CAPACITY_BITS = 4096 * 8


def bench_yield_constraint_ablation(benchmark, paper_session,
                                    report_writer):
    session = paper_session
    model = session.model("hvt")
    space = DesignSpace()
    policy = make_policy("M2", session.yield_levels("hvt"))

    def run():
        fixed = ExhaustiveOptimizer(
            model, space, session.constraint("hvt")
        ).optimize(CAPACITY_BITS, policy)
        mc_constraint = MonteCarloYieldConstraint(
            session.library, "hvt", k=3.0, n_samples=40,
            v_wl_flip=session.chars["hvt"].v_wl_flip,
        )
        mc = ExhaustiveOptimizer(
            model, space, mc_constraint
        ).optimize(CAPACITY_BITS, policy)
        return fixed, mc

    fixed, mc = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, result in (("fixed delta=0.35*Vdd", fixed),
                          ("mu - 3 sigma >= 0", mc)):
        d = result.design
        rows.append({
            "constraint": label,
            "n_r": d.n_r,
            "V_SSC_mV": round(d.v_ssc * 1e3),
            "N_pre": int(d.n_pre),
            "N_wr": int(d.n_wr),
            "EDP_1e-24": result.metrics.edp * 1e24,
        })
    report_writer(
        "ablation_yield_constraint",
        render_dict_table(rows, title="Yield-constraint ablation "
                                      "(4KB 6T-HVT-M2)"),
    )

    # Both formulations find a deep-negative-Gnd design...
    assert fixed.design.v_ssc <= -0.15
    assert mc.design.v_ssc <= -0.15
    # ... with closely matching EDP: the paper's simplification is safe.
    assert mc.metrics.edp == pytest.approx(fixed.metrics.edp, rel=0.10)
