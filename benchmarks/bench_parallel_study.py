"""Serial vs parallel full-matrix study benchmark.

Times the complete capacity x flavor x method optimization matrix (the
paper's whole Table-4/Figure-7 workload) through the serial path and the
parallel study runner, then writes both a human-readable report and the
machine-readable ``BENCH_search.json`` baseline (repo root) so future
PRs can track the search-performance trajectory:

* ``single.*`` — one 16KB/HVT/M2 exhaustive search per engine, the
  configuration the acceptance gate tracks;
* ``matrix.*`` — the full 20-cell study, serial and parallel.
"""

from __future__ import annotations

import json
import os
import platform
import time

from repro.analysis.runner import run_study
from repro.opt import DesignSpace, ExhaustiveOptimizer, make_policy

_HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE_PATH = os.path.join(_HERE, "..", "BENCH_search.json")

#: Workers to request for the parallel leg (bounded by the host).
REQUESTED_WORKERS = 4


def _time_engine(paper_session, engine, repeats=3):
    """Best-of-N wall time of one 16KB/HVT/M2 exhaustive search [s]."""
    optimizer = ExhaustiveOptimizer(
        paper_session.model("hvt"), DesignSpace(),
        paper_session.constraint("hvt"),
    )
    policy = make_policy("M2", paper_session.yield_levels("hvt"))
    optimizer.optimize(16384 * 8, policy, engine=engine)  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        optimizer.optimize(16384 * 8, policy, engine=engine)
        best = min(best, time.perf_counter() - start)
    return best


def bench_parallel_study_matrix(paper_session, report_writer):
    cpus = os.cpu_count() or 1
    workers = min(REQUESTED_WORKERS, max(cpus, 1))

    single_loop = _time_engine(paper_session, "loop")
    single_vec = _time_engine(paper_session, "vectorized")

    serial = run_study(session=paper_session, workers=1)
    parallel = run_study(session=paper_session, workers=workers,
                         executor="process")
    speedup = serial.total_seconds / parallel.total_seconds

    baseline = {
        "schema": "BENCH_search/v1",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": {
            "cpus": cpus,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "single": {
            "config": "16KB/hvt/M2",
            "loop_seconds": single_loop,
            "vectorized_seconds": single_vec,
            "vectorization_speedup": single_loop / single_vec,
        },
        "matrix": {
            "tasks": len(serial.timings),
            "serial_seconds": serial.total_seconds,
            "parallel_seconds": parallel.total_seconds,
            "parallel_workers": parallel.workers,
            "parallel_executor": parallel.executor,
            "parallel_speedup": speedup,
            "per_task_ms": {
                t.task.label: round(t.seconds * 1e3, 3)
                for t in serial.timings
            },
        },
    }
    with open(BASELINE_PATH, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")

    lines = [
        "Search-performance baseline (written to BENCH_search.json)",
        "single 16KB/HVT/M2: loop %.1f ms, vectorized %.1f ms (%.1fx)"
        % (single_loop * 1e3, single_vec * 1e3, single_loop / single_vec),
        "full matrix (%d tasks): serial %.2f s, parallel %.2f s "
        "(%d workers, %.2fx)"
        % (len(serial.timings), serial.total_seconds,
           parallel.total_seconds, parallel.workers, speedup),
        "",
        parallel.report(),
    ]
    report_writer("bench_parallel_study", "\n".join(lines))

    # Correctness regardless of speed: both paths must agree exactly.
    for key, result in parallel.sweep.results.items():
        assert result.metrics.edp == serial.sweep.results[key].metrics.edp
        assert result.design == serial.sweep.results[key].design
    # The vectorized engine carries the acceptance gate everywhere; the
    # parallel-speedup gate only exists where parallel hardware does.
    assert single_loop / single_vec >= 3.0
    if cpus >= 2 and parallel.workers >= 2:
        assert speedup > 1.5
