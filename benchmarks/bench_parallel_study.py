"""Serial vs parallel full-matrix study benchmark.

Times the complete capacity x flavor x method optimization matrix (the
paper's whole Table-4/Figure-7 workload) through the serial path and the
parallel study runner, then writes both a human-readable report and the
machine-readable ``BENCH_search.json`` baseline (repo root) so future
PRs can track the search-performance trajectory:

* ``single.*`` — one 16KB/HVT/M2 exhaustive search per engine, the
  configuration the acceptance gate tracks;
* ``pruning.*`` — the bound-and-prune engine against the fused engine
  on every study cell: wall time plus the fraction of the space it
  actually evaluated;
* ``matrix.*`` — the full 20-cell study, serial and parallel;
* ``arena.*`` — shared-memory session transport: publish once, attach
  zero-copy, versus the warm-cache ``Session.create`` a process worker
  would otherwise pay.
"""

from __future__ import annotations

import json
import os
import platform
import time

from repro.analysis.experiments import (
    CAPACITIES_BYTES,
    FLAVORS,
    METHODS,
    Session,
)
from repro.analysis.runner import run_study
from repro.opt import DesignSpace, ExhaustiveOptimizer, make_policy
from repro.shm import SessionArena
from repro.units import capacity_label

_HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE_PATH = os.path.join(_HERE, "..", "BENCH_search.json")

#: Workers to request for the parallel leg (bounded by the host).
REQUESTED_WORKERS = 4


def _time_engine(paper_session, engine, repeats=9):
    """Best-of-N wall time of one 16KB/HVT/M2 exhaustive search [s]."""
    optimizer = ExhaustiveOptimizer(
        paper_session.model("hvt"), DesignSpace(),
        paper_session.constraint("hvt"),
    )
    policy = make_policy("M2", paper_session.yield_levels("hvt"))
    optimizer.optimize(16384 * 8, policy, engine=engine)  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        optimizer.optimize(16384 * 8, policy, engine=engine)
        best = min(best, time.perf_counter() - start)
    return best


def _time_many(paper_session, repeats=9):
    """Best-of-N wall time of the policy-batched 16KB/HVT search [s]:
    every method's whole space in one ``optimize_many`` dispatch.
    Returns ``(seconds, n_policies, results)``."""
    from repro.analysis.experiments import METHODS

    optimizer = ExhaustiveOptimizer(
        paper_session.model("hvt"), DesignSpace(),
        paper_session.constraint("hvt"),
    )
    levels = paper_session.yield_levels("hvt")
    policies = [make_policy(method, levels) for method in METHODS]
    results = optimizer.optimize_many(16384 * 8, policies)  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        optimizer.optimize_many(16384 * 8, policies)
        best = min(best, time.perf_counter() - start)
    return best, len(policies), results


def _time_yield_constraint(paper_session, repeats=9):
    """Best-of-N wall time of the 16KB/HVT/M2 search under the
    ECC-relaxed yield-target constraint (SECDED at Y >= 0.9) [s].

    The warm-up call pays the Monte Carlo margin statistics once, so
    the timed repeats measure the constraint's steady-state search
    cost (memoized sigma lookups) against the plain pruned engine."""
    from repro.opt.constraints import YieldTargetConstraint

    base = paper_session.constraint("hvt")
    constraint = YieldTargetConstraint(
        library=paper_session.library, flavor="hvt",
        delta=paper_session.delta, y_target=0.9, code="secded",
        capacity_bits=16384 * 8,
        word_bits=paper_session.config.word_bits,
        trust_fixed_rails=base.trust_fixed_rails,
        flip_lookup=base.flip_lookup,
    )
    constraint.seed_margin_memo(base.export_margin_memo())
    optimizer = ExhaustiveOptimizer(
        paper_session.model("hvt"), DesignSpace(), constraint,
    )
    policy = make_policy("M2", paper_session.yield_levels("hvt"))
    optimizer.optimize(16384 * 8, policy, engine="pruned")  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        optimizer.optimize(16384 * 8, policy, engine="pruned")
        best = min(best, time.perf_counter() - start)
    return best


def _time_cell(paper_session, flavor, method, capacity_bytes, engine,
               repeats=3):
    """Best-of-N wall time of one study cell's search [s] + its result."""
    optimizer = ExhaustiveOptimizer(
        paper_session.model(flavor), DesignSpace(),
        paper_session.constraint(flavor),
    )
    policy = make_policy(method, paper_session.yield_levels(flavor))
    result = optimizer.optimize(capacity_bytes * 8, policy,
                                engine=engine)  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        optimizer.optimize(capacity_bytes * 8, policy, engine=engine)
        best = min(best, time.perf_counter() - start)
    return best, result


def _bench_pruning(paper_session):
    """Pruned vs fused over every study cell: time, rate, correctness."""
    cells = {}
    for flavor in FLAVORS:
        for method in METHODS:
            for capacity in CAPACITIES_BYTES:
                fused_s, fused = _time_cell(paper_session, flavor,
                                            method, capacity, "fused")
                pruned_s, pruned = _time_cell(paper_session, flavor,
                                              method, capacity, "pruned")
                # The prune must never change the answer.
                assert pruned.design == fused.design
                assert pruned.metrics.edp == fused.metrics.edp
                label = "%s/%s/%s" % (
                    capacity_label(capacity), flavor.upper(), method)
                cells[label] = {
                    "capacity_bytes": capacity,
                    "fused_ms": round(fused_s * 1e3, 3),
                    "pruned_ms": round(pruned_s * 1e3, 3),
                    "evaluated_fraction": round(
                        pruned.n_evaluated / fused.n_evaluated, 4),
                }
    return cells


def _time_arena(paper_session, repeats=5):
    """Publish/attach/rebuild wall times for the session arena [s]."""
    publish = attach = float("inf")
    nbytes = 0
    for _ in range(repeats):
        start = time.perf_counter()
        arena = SessionArena.publish(paper_session)
        publish = min(publish, time.perf_counter() - start)
        nbytes = arena.nbytes
        try:
            start = time.perf_counter()
            attached = SessionArena.attach(arena.name)
            attached.to_session()
            attach = min(attach, time.perf_counter() - start)
            attached.close()
        finally:
            arena.dispose()
    # The alternative a process worker pays without the arena: rebuild
    # the session from the (warm) on-disk characterization cache.
    create = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        Session.create(cache_path=paper_session.cache.path,
                       voltage_mode=paper_session.voltage_mode)
        create = min(create, time.perf_counter() - start)
    return publish, attach, create, nbytes


def bench_parallel_study_matrix(paper_session, report_writer):
    cpus = os.cpu_count() or 1
    workers = min(REQUESTED_WORKERS, max(cpus, 1))

    single_loop = _time_engine(paper_session, "loop")
    single_vec = _time_engine(paper_session, "vectorized")
    single_fused = _time_engine(paper_session, "fused")
    single_pruned = _time_engine(paper_session, "pruned")
    single_yield = _time_yield_constraint(paper_session)
    fused_many, many_policies, many_results = _time_many(paper_session)
    pruning_cells = _bench_pruning(paper_session)
    arena_publish, arena_attach, warm_create, arena_nbytes = (
        _time_arena(paper_session))

    serial = run_study(session=paper_session, workers=1)
    parallel = run_study(session=paper_session, workers=workers,
                         executor="process")
    speedup = serial.total_seconds / parallel.total_seconds

    baseline = {
        "schema": "BENCH_search/v1",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": {
            "cpus": cpus,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "single": {
            "config": "16KB/hvt/M2",
            "loop_seconds": single_loop,
            "vectorized_seconds": single_vec,
            "fused_seconds": single_fused,
            "vectorization_speedup": single_loop / single_vec,
            # Both engines are compute-bound on identical arithmetic, so
            # this hovers near 1.0 on one core; the fused engine's win
            # is the single-dispatch call shape, not raw arithmetic.
            "fused_vs_vectorized": single_vec / single_fused,
            # All policies of the cell in ONE dispatch, recorded next
            # to the per-policy fused baseline it amortizes.
            "fused_many_seconds": fused_many,
            "fused_many_policies": many_policies,
            "fused_many_vs_per_policy_fused":
                (many_policies * single_fused) / fused_many,
            # Bound-and-prune on the gate cell: the answer is identical,
            # only a fraction of the space gets scored.
            "pruned_seconds": single_pruned,
            "pruned_vs_fused": single_fused / single_pruned,
            # The same pruned search under the ECC-relaxed yield-target
            # constraint, Monte Carlo statistics warm: the steady-state
            # price of yield-aware feasibility.
            "yield_constraint_seconds": single_yield,
            "yield_constraint_vs_pruned": single_yield / single_pruned,
        },
        "pruning": {
            "cells": pruning_cells,
            "total_fused_seconds": sum(
                c["fused_ms"] for c in pruning_cells.values()) / 1e3,
            "total_pruned_seconds": sum(
                c["pruned_ms"] for c in pruning_cells.values()) / 1e3,
            "min_evaluated_fraction_16kb": min(
                c["evaluated_fraction"] for c in pruning_cells.values()
                if c["capacity_bytes"] == 16384),
        },
        "arena": {
            "nbytes": arena_nbytes,
            "publish_seconds": arena_publish,
            "attach_seconds": arena_attach,
            "warm_create_seconds": warm_create,
            "attach_speedup_vs_create": warm_create / arena_attach,
        },
        "matrix": {
            "tasks": len(serial.timings),
            "serial_seconds": serial.total_seconds,
            "parallel_seconds": parallel.total_seconds,
            "parallel_workers": parallel.workers,
            "parallel_executor": parallel.executor,
            "parallel_speedup": speedup,
            "per_task_ms": {
                t.task.label: round(t.seconds * 1e3, 3)
                for t in serial.timings
            },
        },
    }
    with open(BASELINE_PATH, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")

    lines = [
        "Search-performance baseline (written to BENCH_search.json)",
        "single 16KB/HVT/M2: loop %.1f ms, vectorized %.1f ms (%.1fx), "
        "fused %.1f ms (%.2fx vs vectorized)"
        % (single_loop * 1e3, single_vec * 1e3, single_loop / single_vec,
           single_fused * 1e3, single_vec / single_fused),
        "policy-batched 16KB/HVT (%d policies, one dispatch): %.1f ms "
        "(%.2fx vs %d per-policy fused searches)"
        % (many_policies, fused_many * 1e3,
           (many_policies * single_fused) / fused_many, many_policies),
        "bound-and-prune 16KB/HVT/M2: %.1f ms (%.2fx vs fused); "
        "matrix totals: fused %.1f ms, pruned %.1f ms, min 16KB "
        "evaluated fraction %.2f"
        % (single_pruned * 1e3, single_fused / single_pruned,
           baseline["pruning"]["total_fused_seconds"] * 1e3,
           baseline["pruning"]["total_pruned_seconds"] * 1e3,
           baseline["pruning"]["min_evaluated_fraction_16kb"]),
        "yield-target constraint 16KB/HVT/M2 (SECDED, warm MC): "
        "%.1f ms (%.2fx vs plain pruned)"
        % (single_yield * 1e3, single_yield / single_pruned),
        "session arena (%.1f KB): publish %.2f ms, attach+rebuild "
        "%.2f ms vs warm Session.create %.1f ms (%.0fx)"
        % (arena_nbytes / 1024.0, arena_publish * 1e3, arena_attach * 1e3,
           warm_create * 1e3, warm_create / arena_attach),
        "full matrix (%d tasks): serial %.2f s, parallel %.2f s "
        "(%d workers, %.2fx)"
        % (len(serial.timings), serial.total_seconds,
           parallel.total_seconds, parallel.workers, speedup),
        "",
        parallel.report(),
    ]
    report_writer("bench_parallel_study", "\n".join(lines))

    # Correctness regardless of speed: both paths must agree exactly.
    for key, result in parallel.sweep.results.items():
        assert result.metrics.edp == serial.sweep.results[key].metrics.edp
        assert result.design == serial.sweep.results[key].design
    # The vectorized engine carries the acceptance gate everywhere; the
    # parallel-speedup gate only exists where parallel hardware does.
    assert single_loop / single_vec >= 3.0
    # The fused engine must never cost meaningfully more than the
    # vectorized one it subsumes (both are bound by the same arithmetic).
    assert single_fused <= single_vec * 1.5
    # One policy-batched dispatch must stay cheaper than paying the
    # per-policy fused search once per policy, and its per-policy
    # results must match the study's per-task answers exactly.
    assert fused_many <= many_policies * single_fused * 1.25
    for result in many_results:
        key = (16384, "hvt", result.method)
        assert result.design == serial.sweep.results[key].design
        assert result.metrics.edp == serial.sweep.results[key].metrics.edp
    # Pruning gates: on at least one 16KB cell the pruned engine must
    # skip >= half the space, and it must win wall-clock over the whole
    # matrix.  Per cell a loose 2x bound catches pathological slowdowns
    # while tolerating the few high-survivor cells where the chunked
    # tile dispatch pays more call overhead than one fused shot.
    assert baseline["pruning"]["min_evaluated_fraction_16kb"] <= 0.5
    for label, cell in pruning_cells.items():
        assert cell["pruned_ms"] <= cell["fused_ms"] * 2.0, label
    assert (baseline["pruning"]["total_pruned_seconds"]
            <= baseline["pruning"]["total_fused_seconds"])
    # Attaching the arena must at least keep pace with rebuilding from
    # the on-disk cache (its real win is deduplicating the LUT memory
    # across workers, so a small timing margin is enough here).
    assert arena_attach < warm_create * 1.25
    if cpus >= 2 and parallel.workers >= 2:
        assert speedup > 1.5
