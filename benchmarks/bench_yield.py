"""ECC-relaxed yield study benchmark: fixed-delta vs yield-target EDP.

Standalone script (not a pytest benchmark) so CI can run it directly::

    PYTHONPATH=src python benchmarks/bench_yield.py --quick

Sweeps the capacity x flavor matrix with ``objective="yield"``: each
cell runs the paper's fixed-floor search and the SECDED-relaxed
yield-target search (:func:`repro.yields.study.compute_yield_cell`),
charging the code's full cost — check-bit columns on every row, the
encode/correct logic, and the search constrained to the relaxed margin
floor and sensing window the code's failure budget supports.

Writes the machine-readable ``BENCH_yield.json`` baseline (repo root):
per-cell EDP for both arms, the relaxation parameters, the composed
array yield at the relaxed optimum, and the headline — the cells where
the ECC-relaxed design achieves *strictly lower* EDP than the
fixed-delta baseline with all overhead included (the code pays for
itself once its amortized column overhead drops below what the relaxed
rails and sensing window recover; expect this at the larger
capacities).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

from repro.analysis import run_study
from repro.analysis.tables import render_dict_table

_HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE_PATH = os.path.join(_HERE, "..", "BENCH_yield.json")
CACHE_PATH = os.path.join(_HERE, "..", ".repro_cache.json")
OUTPUT_PATH = os.path.join(_HERE, "output", "yield.txt")

FULL = {"capacities": (1024, 4096, 16384), "flavors": ("lvt", "hvt")}
QUICK = {"capacities": (16384,), "flavors": ("hvt",)}


def run_sweep(sizing, code, y_target, engine, workers):
    start = time.perf_counter()
    run = run_study(
        capacities=sizing["capacities"], flavors=sizing["flavors"],
        methods=("M2",), workers=workers,
        executor="serial" if workers == 1 else "auto",
        engine=engine, cache_path=CACHE_PATH, voltage_mode="paper",
        objective="yield", code=code, y_target=y_target,
    )
    return run, time.perf_counter() - start


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="single-cell sweep (the strict-win cell)")
    parser.add_argument("--code", default="secded")
    parser.add_argument("--y-target", type=float, default=0.9)
    parser.add_argument("--engine", default="pruned",
                        choices=("pruned", "fused", "vectorized", "loop"))
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--output", default=BASELINE_PATH,
                        help="where to write BENCH_yield.json")
    args = parser.parse_args(argv)

    sizing = QUICK if args.quick else FULL
    run, seconds = run_sweep(sizing, args.code, args.y_target,
                             args.engine, args.workers)
    sweep = run.sweep
    cells = sweep.summaries()
    wins = [cell for cell in cells if cell["edp_gain"] > 0.0]

    baseline = {
        "benchmark": "yield",
        "mode": "quick" if args.quick else "full",
        "code": sweep.code,
        "y_target": sweep.y_target,
        "engine": args.engine,
        "voltage_mode": sweep.voltage_mode,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "wall_seconds": round(seconds, 3),
        "cells": cells,
        "strict_wins": [
            {"capacity_bytes": cell["capacity_bytes"],
             "flavor": cell["flavor"],
             "method": cell["method"],
             "edp_gain": cell["edp_gain"]}
            for cell in wins
        ],
    }
    with open(args.output, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")

    report = sweep.report()
    report += ("\nstrict ECC wins: %d/%d cells  (best gain %+.2f%%)"
               % (len(wins), len(cells),
                  100.0 * max((c["edp_gain"] for c in cells),
                              default=0.0)))
    os.makedirs(os.path.dirname(OUTPUT_PATH), exist_ok=True)
    with open(OUTPUT_PATH, "w") as handle:
        handle.write(report + "\n")
    print(report)
    print("baseline written to %s" % args.output)

    if not wins:
        print("FAIL: no cell where the ECC-relaxed design strictly "
              "beats the fixed-delta baseline", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
