"""ECC-relaxed yield study benchmark: fixed-delta vs yield-target EDP.

Standalone script (not a pytest benchmark) so CI can run it directly::

    PYTHONPATH=src python benchmarks/bench_yield.py --quick

Sweeps the capacity x flavor matrix with ``objective="yield"``: each
cell runs the paper's fixed-floor search and the SECDED-relaxed
yield-target search (:func:`repro.yields.study.compute_yield_cell`),
charging the code's full cost — check-bit columns on every row, the
encode/correct logic, and the search constrained to the relaxed margin
floor and sensing window the code's failure budget supports.

Writes the machine-readable ``BENCH_yield.json`` baseline (repo root):
per-cell EDP for both arms, the relaxation parameters, the composed
array yield at the relaxed optimum, and the headline — the cells where
the ECC-relaxed design achieves *strictly lower* EDP than the
fixed-delta baseline with all overhead included (the code pays for
itself once its amortized column overhead drops below what the relaxed
rails and sensing window recover; expect this at the larger
capacities).

The baseline also carries a ``samplers`` section: samples-to-CI of the
rare-event tail estimators (:mod:`repro.cell.importance`) on the
production cell margin solver — every baseline reducer at a 1e-4-scale
calibration floor, plus the mean-shift importance sampler at a <=1e-6
deep-tail floor, quoted against the brute-force sample count
(:func:`~repro.cell.importance.naive_samples_for_ci`) the same CI
would cost.  The deep-tail leg gates on a >=20x eval advantage.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

from repro.analysis import run_study
from repro.analysis.tables import render_dict_table

_HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE_PATH = os.path.join(_HERE, "..", "BENCH_yield.json")
CACHE_PATH = os.path.join(_HERE, "..", ".repro_cache.json")
OUTPUT_PATH = os.path.join(_HERE, "output", "yield.txt")

FULL = {"capacities": (1024, 4096, 16384), "flavors": ("lvt", "hvt")}
QUICK = {"capacities": (16384,), "flavors": ("hvt",)}


def run_sweep(sizing, code, y_target, engine, workers, sampler,
              ci_target, max_samples):
    start = time.perf_counter()
    run = run_study(
        capacities=sizing["capacities"], flavors=sizing["flavors"],
        methods=("M2",), workers=workers,
        executor="serial" if workers == 1 else "auto",
        engine=engine, cache_path=CACHE_PATH, voltage_mode="paper",
        objective="yield", code=code, y_target=y_target,
        sampler=sampler, ci_target=ci_target, max_samples=max_samples,
    )
    return run, time.perf_counter() - start


MIN_EVAL_ADVANTAGE = 20.0


def sampler_section(quick, seed=3):
    """Samples-to-CI of the tail estimators on the real cell solver.

    One fresh solver per leg keeps the eval accounting honest: each
    reported ``n_solver_evals`` includes everything that leg spent —
    the mean-shift search included.
    """
    from statistics import NormalDist

    import numpy as np

    from repro.cell.bias import CellBias
    from repro.cell.importance import (
        SAMPLERS,
        MarginSolver,
        TailSampleBuffer,
        cell_margin_solver,
        estimate_tail,
        naive_samples_for_ci,
    )
    from repro.cell.sram6t import SRAM6TCell
    from repro.devices import DeviceLibrary
    from repro.devices.variation import VariationModel

    library = DeviceLibrary.default_7nm()
    cell = SRAM6TCell.from_library(library, "hvt")
    vdd = library.vdd
    read_bias = CellBias.read(vdd=vdd)

    def solver():
        return cell_margin_solver(cell, vdd, read_bias)

    # A cheap naive pilot anchors the floors on the *sampled* margin
    # distribution (real SNM margins truncate at zero, so Gaussian
    # quantile extrapolation would aim below the reachable support);
    # the reported p_fail values are the samplers' own measurements.
    pilot_buffer = TailSampleBuffer(solver(), sampler="naive",
                                    seed=seed)
    pilot_buffer.ensure(192)
    pilot = pilot_buffer.estimate(pilot_buffer.floor_for(0.02))
    mu = float(np.mean(pilot_buffer._margins))
    sigma = float(np.std(pilot_buffer._margins, ddof=1))
    floor_cal = pilot_buffer.floor_for(0.02)

    cal_cap = 1024 if quick else 2048
    calibration = {}
    for sampler in SAMPLERS:
        leg = solver()
        result = estimate_tail(
            leg, floor_cal, sampler=sampler, ci_target=0.15,
            max_samples=cal_cap, seed=seed,
        )
        calibration[sampler] = dict(result.summary(),
                                    n_solver_evals=leg.n_evals)

    # The gated p<=1e-6 leg runs on a linear margin model calibrated
    # from the real cell (FD gradient at the origin, pilot mu): the
    # real min-margin distribution is *truncated* at zero — a collapsed
    # butterfly eye reads exactly 0, so no floor has a true tail mass
    # below the atom (~1e-5 over the four single-device corners) and a
    # genuine 1e-6 Gaussian tail only exists on the extrapolated model.
    sigma_vt = VariationModel().sigma_vt
    h = 0.1 * sigma_vt
    probe = solver()
    eye = np.eye(6) * h
    probes = probe(np.vstack([eye, -eye]))
    gain = -(probes[:6] - probes[6:]) / (2.0 * h)
    gain_norm = float(np.linalg.norm(gain))
    model = MarginSolver(lambda shifts: mu - shifts @ gain)
    deep_ci = 0.15 if quick else 0.1
    floor_syn = mu - (-NormalDist().inv_cdf(1e-6)) * sigma_vt * gain_norm
    syn = estimate_tail(
        model, floor_syn, sampler="shifted", sigma_vt=sigma_vt,
        ci_target=deep_ci, max_samples=32768, seed=seed,
    )
    if syn.converged and syn.p_fail > 0.0:
        syn_required = naive_samples_for_ci(syn.p_fail, syn.rel_ci)
        syn_advantage = syn_required / model.n_evals
    else:
        syn_required, syn_advantage = None, None

    # Real-cell deep tail (informational): converge near the
    # truncation, then read the deepest resolvable quantile off the
    # weighted distribution.  The measured p_fail is the atom mass the
    # shift's corner carries.
    near_zero = min(0.05 * mu, 0.002)
    leg = solver()
    buffer = TailSampleBuffer(leg, sampler="shifted", seed=seed,
                              search_floor=near_zero)
    anchor = buffer.estimate_to_ci(
        near_zero, ci_target=deep_ci,
        max_samples=8192 if quick else 32768,
    )
    floor_deep = buffer.floor_for(1e-6)
    deep = buffer.estimate(floor_deep)
    if deep.p_fail > 0.0 and buffer.coverage(floor_deep) > 0:
        required = naive_samples_for_ci(deep.p_fail, deep.rel_ci)
        advantage = required / leg.n_evals
    else:
        required, advantage = None, None
    return {
        "operating_point": {
            "flavor": "hvt", "vdd": vdd,
            "margin_mu": mu, "margin_sigma": sigma,
            "margin_gain_norm": gain_norm,
            "pilot_p_fail": pilot.p_fail,
        },
        "floors": {"calibration": floor_cal, "anchor": near_zero,
                   "deep": floor_deep, "synthetic_deep": floor_syn},
        "calibration": calibration,
        "synthetic_deep": dict(
            syn.summary(),
            n_solver_evals=model.n_evals,
            ci_target=deep_ci,
            p_true=1e-6,
            naive_samples_required=syn_required,
            eval_advantage=None if syn_advantage is None
            else round(syn_advantage, 1),
            min_eval_advantage=MIN_EVAL_ADVANTAGE,
        ),
        "deep_tail": dict(
            deep.summary(),
            n_solver_evals=leg.n_evals,
            ci_target=deep_ci,
            anchor_converged=anchor.converged,
            naive_samples_required=required,
            eval_advantage=None if advantage is None
            else round(advantage, 1),
        ),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="single-cell sweep (the strict-win cell)")
    parser.add_argument("--code", default="secded")
    parser.add_argument("--y-target", type=float, default=0.9)
    parser.add_argument("--engine", default="pruned",
                        choices=("pruned", "fused", "vectorized", "loop"))
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--sampler", default="gaussian",
                        choices=("gaussian", "naive", "antithetic",
                                 "stratified", "shifted"),
                        help="margin-relaxation estimator of the study "
                             "arm (gaussian = closed form)")
    parser.add_argument("--ci-target", type=float, default=0.1)
    parser.add_argument("--max-samples", type=int, default=4096)
    parser.add_argument("--skip-samplers", action="store_true",
                        help="omit the tail-sampler benchmark section")
    parser.add_argument("--output", default=BASELINE_PATH,
                        help="where to write BENCH_yield.json")
    args = parser.parse_args(argv)

    sizing = QUICK if args.quick else FULL
    run, seconds = run_sweep(sizing, args.code, args.y_target,
                             args.engine, args.workers, args.sampler,
                             args.ci_target, args.max_samples)
    sweep = run.sweep
    cells = sweep.summaries()
    wins = [cell for cell in cells if cell["edp_gain"] > 0.0]

    samplers = None if args.skip_samplers else sampler_section(args.quick)

    baseline = {
        "benchmark": "yield",
        "mode": "quick" if args.quick else "full",
        "code": sweep.code,
        "y_target": sweep.y_target,
        "sampler": sweep.sampler,
        "samplers": samplers,
        "engine": args.engine,
        "voltage_mode": sweep.voltage_mode,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "wall_seconds": round(seconds, 3),
        "cells": cells,
        "strict_wins": [
            {"capacity_bytes": cell["capacity_bytes"],
             "flavor": cell["flavor"],
             "method": cell["method"],
             "edp_gain": cell["edp_gain"]}
            for cell in wins
        ],
    }
    with open(args.output, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")

    report = sweep.report()
    report += ("\nstrict ECC wins: %d/%d cells  (best gain %+.2f%%)"
               % (len(wins), len(cells),
                  100.0 * max((c["edp_gain"] for c in cells),
                              default=0.0)))
    if samplers is not None:
        syn = samplers["synthetic_deep"]
        deep = samplers["deep_tail"]
        if syn["eval_advantage"] is not None:
            report += (
                "\ntail samplers: shifted @ p=1e-6 (linear model) "
                "p=%.3g, rel CI %.3f, %d evals = %.0fx fewer than "
                "naive (%d needed)"
                % (syn["p_fail"], syn["rel_ci"], syn["n_solver_evals"],
                   syn["eval_advantage"],
                   syn["naive_samples_required"])
            )
        report += (
            "\nreal-cell deep tail: p=%.3g (rel CI %s, %d evals)"
            % (deep["p_fail"],
               "inf" if deep["rel_ci"] is None
               else "%.3f" % deep["rel_ci"],
               deep["n_solver_evals"])
        )
    os.makedirs(os.path.dirname(OUTPUT_PATH), exist_ok=True)
    with open(OUTPUT_PATH, "w") as handle:
        handle.write(report + "\n")
    print(report)
    print("baseline written to %s" % args.output)

    if not wins:
        print("FAIL: no cell where the ECC-relaxed design strictly "
              "beats the fixed-delta baseline", file=sys.stderr)
        return 1
    if samplers is not None:
        syn = samplers["synthetic_deep"]
        if syn["eval_advantage"] is None:
            print("FAIL: p<=1e-6 shifted estimate did not converge",
                  file=sys.stderr)
            return 1
        if syn["eval_advantage"] < MIN_EVAL_ADVANTAGE:
            print("FAIL: p<=1e-6 eval advantage %.1fx below the "
                  "%.0fx gate"
                  % (syn["eval_advantage"], MIN_EVAL_ADVANTAGE),
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
