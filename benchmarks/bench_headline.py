"""Headline benchmark: the abstract's claims.

"For SRAM array capacities ranging from 1KB to 16KB, on average 59%
lower energy-delay product with maximum 12% (and on average 9%)
performance penalty is achieved" — plus the 78%-at-8% 16KB data point
and the 14%-EDP / 4%-penalty small-array regime.
"""

from repro.analysis import compute_headline, optimize_all


def bench_headline(benchmark, paper_session, report_writer):
    sweep = optimize_all(paper_session)
    stats = benchmark.pedantic(
        compute_headline, args=(sweep,), rounds=1, iterations=1,
    )
    report_writer("headline", stats.report())

    # Large arrays: a big EDP win at a modest delay penalty.
    assert 0.40 <= stats.avg_edp_gain_large <= 0.70    # paper: 0.59
    assert 0.00 <= stats.avg_delay_penalty_large <= 0.15  # paper: 0.09
    assert stats.max_delay_penalty_large <= 0.18       # paper: 0.12
    # The 16KB flagship point.
    assert 0.65 <= stats.gain_16kb <= 0.85             # paper: 0.78
    assert stats.penalty_16kb <= 0.15                  # paper: 0.08
    # Small arrays gain much less (leakage matters less, BLs are short).
    assert stats.avg_edp_gain_small < stats.avg_edp_gain_large
    # EDP gain grows with capacity (leakage dominance).
    gains = [row["edp_gain_pct"] for row in stats.per_capacity]
    assert all(a < b for a, b in zip(gains, gains[1:]))
