"""Performance microbenchmarks of the optimization machinery itself.

The paper reports its exhaustive search completes "in less than two
minutes" on a 2011-era Xeon server; these benchmarks time our
vectorized equivalents with real repetition statistics (these are the
only benchmarks where pytest-benchmark's multi-round timing is the
point, rather than a harness around a one-shot experiment).
"""

import numpy as np

from repro.array import ArrayConfig, DesignPoint, SRAMArrayModel
from repro.opt import DesignSpace, ExhaustiveOptimizer, make_policy


def bench_single_evaluation(benchmark, paper_session):
    """One scalar design-point evaluation of the analytical model."""
    model = SRAMArrayModel(paper_session.chars["hvt"], ArrayConfig())
    design = DesignPoint(n_r=512, n_c=64, n_pre=25, n_wr=3,
                         v_ddc=0.550, v_ssc=-0.240, v_wl=0.550)
    metrics = benchmark(model.evaluate, 4096 * 8, design)
    assert metrics.edp > 0


def bench_grid_evaluation(benchmark, paper_session):
    """A full 50x20 fin grid in one broadcast call (1000 designs)."""
    model = SRAMArrayModel(paper_session.chars["hvt"], ArrayConfig())
    space = DesignSpace()
    n_pre, n_wr = np.meshgrid(space.n_pre_values, space.n_wr_values,
                              indexing="ij")
    design = DesignPoint(n_r=512, n_c=64, n_pre=n_pre, n_wr=n_wr,
                         v_ddc=0.550, v_ssc=-0.240, v_wl=0.550)
    metrics = benchmark(model.evaluate, 4096 * 8, design)
    assert metrics.edp.shape == n_pre.shape


def bench_full_optimization(benchmark, paper_session):
    """The complete exhaustive search for one 16KB configuration
    (the paper's
    Section-5 search: n_r x V_SSC x N_pre x N_wr)."""
    model = paper_session.model("hvt")
    constraint = paper_session.constraint("hvt")
    # Warm the constraint memoization so the benchmark times the search.
    policy = make_policy("M2", paper_session.yield_levels("hvt"))
    optimizer = ExhaustiveOptimizer(model, DesignSpace(), constraint)
    optimizer.optimize(16384 * 8, policy)

    result = benchmark(optimizer.optimize, 16384 * 8, policy)
    assert result.metrics.edp > 0
    assert result.n_evaluated >= 50_000


def bench_full_optimization_loop_engine(benchmark, paper_session):
    """The same 16KB search through the reference slice-loop engine —
    the denominator of the vectorization speedup tracked in
    ``BENCH_search.json``."""
    model = paper_session.model("hvt")
    constraint = paper_session.constraint("hvt")
    policy = make_policy("M2", paper_session.yield_levels("hvt"))
    optimizer = ExhaustiveOptimizer(model, DesignSpace(), constraint)
    optimizer.optimize(16384 * 8, policy, engine="loop")

    result = benchmark(optimizer.optimize, 16384 * 8, policy,
                       engine="loop")
    assert result.metrics.edp > 0
    assert result.n_evaluated >= 50_000
