"""Validation benchmark: analytic BL delay vs transistor-level column.

The paper's periphery models are "derived analytically and verified by
SPICE simulations"; this benchmark performs the same verification for
our stack.  A full transient testbench — the accessed 6T cell at
transistor level, the lumped Table-1 bitline load, the precharger
releasing as the WL fires — is run across assist conditions and column
depths, and the analytic ``C_BL * DeltaV_S / I_read`` prediction is
compared against the simulated sensing time.
"""

from repro.analysis.tables import render_dict_table
from repro.periphery.column import measure_read_column

CONDITIONS = (
    # (n_rows, v_ddc, v_ssc)
    (64, 0.45, 0.0),
    (64, 0.55, 0.0),
    (64, 0.55, -0.10),
    (64, 0.55, -0.24),
    (256, 0.55, 0.0),
    (256, 0.55, -0.24),
    (512, 0.55, -0.24),
)


def bench_column_validation(benchmark, paper_session, report_writer):
    library = paper_session.library
    cell = paper_session.cells["hvt"]

    def run():
        return [
            measure_read_column(library, cell, n_rows=n_rows,
                                v_ddc=v_ddc, v_ssc=v_ssc)
            for n_rows, v_ddc, v_ssc in CONDITIONS
        ]

    measurements = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [{
        "n_rows": m.n_rows,
        "V_DDC_mV": round(m.v_ddc * 1e3),
        "V_SSC_mV": round(m.v_ssc * 1e3),
        "analytic_ps": m.analytic_delay * 1e12,
        "simulated_ps": m.simulated_delay * 1e12,
        "sim/analytic": m.agreement,
    } for m in measurements]
    report_writer(
        "column_validation",
        render_dict_table(rows, title="BL delay: analytic model vs "
                                      "transistor-level column"),
    )

    for m in measurements:
        assert abs(m.agreement - 1.0) < 0.15
