"""Figure 5 benchmark: write-assist trade-offs on the 6T-HVT cell.

Regenerates the WL-overdrive and negative-BL sweeps (write margin and
cell write delay) and the cross points: WM reaches delta at
V_WL ~ 540 mV (HVT) / ~490 mV (LVT) for WLOD and at V_BL ~ -100 mV for
negative BL; both assists speed up the cell write; negative BL is the
stronger delay lever at equal WL drive.
"""

from repro.analysis import fig5_write_assists


def bench_fig5(benchmark, paper_session, report_writer):
    result = benchmark.pedantic(
        fig5_write_assists, args=(paper_session,), rounds=1, iterations=1,
    )
    report_writer("fig5_write_assists", result.report())

    # WLOD: WM rises linearly with V_WL, write delay falls.
    wms = [r.wm for r in result.wlod_rows]
    assert all(a < b for a, b in zip(wms, wms[1:]))
    finite = [r.write_delay for r in result.wlod_rows
              if r.write_delay != float("inf")]
    assert all(a > b for a, b in zip(finite, finite[1:]))

    # Negative BL: WM rises as the bitline goes negative, delay falls.
    wms = [r.wm for r in result.negbl_rows]
    assert all(a < b for a, b in zip(wms, wms[1:]))

    # Cross points near the paper's (540 / 490 / -100 mV).
    assert abs(result.v_wl_cross["hvt"] - 0.540) <= 0.025
    assert abs(result.v_wl_cross["lvt"] - 0.490) <= 0.030
    assert -0.16 <= result.v_bl_cross <= -0.04

    # The anchored no-assist cell write delay is the paper's 1.5 ps.
    assert abs(result.write_delay_no_assist - 1.5e-12) < 0.15e-12
