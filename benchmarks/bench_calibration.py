"""Calibration benchmark: every device-level number the paper states.

Regenerates the Section-2/Section-5 calibration points: the 2x/20x/10x
LVT-vs-HVT current ratios, the absolute 6T cell leakage powers, the
read-current power-law fit (a, b, Vt), and the 4.3x read-current boost
the negative-Gnd assist delivers at V_SSC = -240 mV.
"""

from repro.analysis import calibration_checkpoints


def bench_calibration_checkpoints(benchmark, paper_session, report_writer):
    result = benchmark.pedantic(
        calibration_checkpoints, args=(paper_session,),
        rounds=1, iterations=1,
    )
    report_writer("calibration", result.report())
    # Hard reproduction gates: the shape-defining ratios must hold.
    assert 1.8 <= result.ion_ratio <= 2.2
    assert 17.0 <= result.ioff_ratio <= 23.0
    assert 8.0 <= result.onoff_gain <= 13.0
    assert abs(result.leakage["lvt"] * 1e9 - 1.692) / 1.692 < 0.05
    assert abs(result.leakage["hvt"] * 1e9 - 0.082) / 0.082 < 0.05
    a, b, vt = result.read_fit
    assert 1.0 < a < 1.7
    assert 3e-5 < b < 3e-4
    assert 0.25 < vt < 0.48
    assert 3.0 < result.iread_boost_ratio < 5.5
