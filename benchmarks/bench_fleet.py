"""Fleet benchmark: what does going multi-host cost?

Standalone script (not a pytest benchmark) so CI can run it directly::

    PYTHONPATH=src python benchmarks/bench_fleet.py --quick

Three measurements against real localhost servers:

1. **Remote claim overhead** — the queue protocol verbs (submit /
   claim / heartbeat / complete) sampled through a direct SQLite
   :class:`JobQueue` and again through :class:`RemoteJobQueue` over
   HTTP against a live ``repro serve --jobs`` replica.  The difference
   is the per-verb price of remote claiming — what a worker pays per
   job (and per heartbeat) to live on another host.
2. **Store sync latency** — content-addressed blob put/get through a
   plain local :class:`ExperimentStore` versus a
   :class:`ReplicatedStore` pushing every put to a live replica, plus
   the read-through pull (local miss -> replica hit -> local
   materialize) that powers cross-host resume.
3. **Cache-shard hit rate** — two peered replicas; the optimize matrix
   is driven round-robin against both.  First pass: every key is
   computed exactly once fleet-wide and non-owners proxy to owners.
   Second pass: every request is a cache hit on whichever replica
   answers (owners hit their own cache; former proxies answer from
   the warmed local copy without a second hop).

Writes the machine-readable ``BENCH_fleet.json`` baseline (repo root).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import socket
import sys
import tempfile
import time

from repro.analysis.experiments import Session
from repro.jobs import JobQueue, RemoteJobQueue
from repro.service import ServerThread, ServiceClient, ServiceConfig
from repro.store import ExperimentStore, ReplicatedStore

_HERE = os.path.dirname(os.path.abspath(__file__))
BASELINE_PATH = os.path.join(_HERE, "..", "BENCH_fleet.json")
CACHE_PATH = os.path.join(_HERE, "..", ".repro_cache.json")

FULL = {"rounds": 200, "shard_passes": 2,
        "capacities": (128, 256, 512, 1024),
        "flavors": ("lvt", "hvt"), "methods": ("M1", "M2")}
QUICK = {"rounds": 50, "shard_passes": 2,
         "capacities": (128, 256), "flavors": ("lvt",),
         "methods": ("M1",)}

PAYLOAD = {"metrics": {"edp": 3.14e-25, "delay": 1.0 / 3.0},
           "design": {"n_r": 64, "v_ddc": 0.65}}


def _free_ports(n):
    sockets = [socket.socket() for _ in range(n)]
    try:
        for sock in sockets:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind(("127.0.0.1", 0))
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


def _sample(rounds, op):
    """Mean per-call latency of ``op(i)`` over ``rounds`` calls, ms."""
    start = time.perf_counter()
    for index in range(rounds):
        op(index)
    return (time.perf_counter() - start) / rounds * 1e3


def bench_claim_overhead(session, rounds, tmp):
    """Queue verbs: direct SQLite vs RemoteJobQueue over HTTP."""
    spec = {"capacities": [128], "flavors": ["lvt"], "methods": ["M1"]}

    local = {}
    queue = JobQueue(os.path.join(tmp, "local-jobs.db"))
    ids, claimed = [], []
    local["submit_ms"] = _sample(rounds, lambda i: ids.append(
        queue.submit("study", spec)))
    local["claim_ms"] = _sample(rounds, lambda i: claimed.append(
        queue.claim("bench-local")))
    local["heartbeat_ms"] = _sample(rounds, lambda i: queue.heartbeat(
        claimed[i].id, "bench-local", 30.0,
        progress={"completed": i}))
    local["complete_ms"] = _sample(rounds, lambda i: queue.complete(
        claimed[i].id, "bench-local"))

    remote = {}
    config = ServiceConfig(port=0, executor="thread", workers=2,
                           cache_path=CACHE_PATH,
                           jobs_path=os.path.join(tmp, "remote-jobs.db"),
                           job_workers=0)
    with ServerThread(config, session=session) as server:
        with RemoteJobQueue("http://127.0.0.1:%d" % server.port) as rq:
            ids, claimed = [], []
            remote["submit_ms"] = _sample(rounds, lambda i: ids.append(
                rq.submit("study", spec)))
            remote["claim_ms"] = _sample(rounds, lambda i: claimed.append(
                rq.claim("bench-remote")))
            remote["heartbeat_ms"] = _sample(
                rounds, lambda i: rq.heartbeat(
                    claimed[i].id, "bench-remote", 30.0,
                    progress={"completed": i}))
            remote["complete_ms"] = _sample(
                rounds, lambda i: rq.complete(claimed[i].id,
                                              "bench-remote"))

    overhead = {verb: remote[verb] - local[verb] for verb in local}
    return {"local_ms": local, "remote_ms": remote,
            "overhead_ms": overhead,
            # A worker pays claim + N heartbeats + complete per job;
            # the single-heartbeat figure is the steady-state price.
            "per_job_overhead_ms": (overhead["claim_ms"]
                                    + overhead["heartbeat_ms"]
                                    + overhead["complete_ms"])}


def bench_store_sync(session, rounds, tmp):
    """Blob put/get: plain local store vs replicated push/pull."""
    plain = ExperimentStore(os.path.join(tmp, "plain.db"))
    local = {
        "put_ms": _sample(rounds, lambda i: plain.put(
            "cell-%08x" % i, PAYLOAD)),
        "get_ms": _sample(rounds, lambda i: plain.get("cell-%08x" % i)),
    }

    config = ServiceConfig(port=0, executor="thread", workers=2,
                           cache_path=CACHE_PATH,
                           store_path=os.path.join(tmp, "replica.db"))
    with ServerThread(config, session=session) as server:
        url = "http://127.0.0.1:%d" % server.port
        pusher = ReplicatedStore(os.path.join(tmp, "pusher.db"),
                                 replicas=[url])
        replicated = {
            # put = local durability + synchronous push to the replica
            "put_ms": _sample(rounds, lambda i: pusher.put(
                "cell-a%07x" % i, PAYLOAD)),
            # warm get: local hit, replication adds nothing
            "get_local_hit_ms": _sample(rounds, lambda i: pusher.get(
                "cell-a%07x" % i)),
        }
        assert sum(pusher.pending().values()) == 0, \
            "replica fell behind during the benchmark"
        # Read-through pull: a fresh store that owns nothing locally
        # and materializes every cell from the replica (the resume
        # path after a host loss).
        puller = ReplicatedStore(os.path.join(tmp, "puller.db"),
                                 replicas=[url])
        replicated["get_read_through_ms"] = _sample(
            rounds, lambda i: puller.get("cell-a%07x" % i))
        pusher.close()
        puller.close()

    return {"local_ms": local, "replicated_ms": replicated,
            "push_overhead_ms": (replicated["put_ms"]
                                 - local["put_ms"])}


def bench_shard_hit_rate(session, sizing, tmp):
    """Two peered replicas, optimize matrix round-robin, two passes."""
    port_a, port_b = _free_ports(2)

    def config(port, peer):
        return ServiceConfig(
            port=port, executor="thread", workers=2,
            cache_path=CACHE_PATH, probe_interval_s=0.2,
            peers=("http://127.0.0.1:%d" % peer,))

    combos = [(capacity, flavor, method)
              for capacity in sizing["capacities"]
              for flavor in sizing["flavors"]
              for method in sizing["methods"]]

    with ServerThread(config(port_a, port_b), session=session) as a, \
            ServerThread(config(port_b, port_a), session=session) as b:
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if (a.server.fleet.healthy_peers()
                    and b.server.fleet.healthy_peers()):
                break
            time.sleep(0.05)

        passes = []
        with ServiceClient(port=port_a) as ca, \
                ServiceClient(port=port_b) as cb:
            for _ in range(sizing["shard_passes"]):
                stats = {"requests": 0, "cached": 0, "proxied": 0,
                         "seconds": 0.0}
                for index, (capacity, flavor, method) in \
                        enumerate(combos):
                    client = (ca, cb)[index % 2]
                    start = time.perf_counter()
                    payload = client.optimize(capacity, flavor=flavor,
                                              method=method)
                    stats["seconds"] += time.perf_counter() - start
                    stats["requests"] += 1
                    stats["cached"] += bool(payload["meta"].get("cached"))
                    stats["proxied"] += bool(
                        payload["meta"].get("proxied"))
                stats["hit_rate"] = stats["cached"] / stats["requests"]
                passes.append(stats)
            shards = {"a": ca.fleet()["shards"], "b": cb.fleet()["shards"]}

    return {"combos": len(combos), "passes": passes,
            "cold_hit_rate": passes[0]["hit_rate"],
            "warm_hit_rate": passes[-1]["hit_rate"],
            "shards": shards}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke sizing")
    parser.add_argument("--output", default=BASELINE_PATH,
                        help="where to write BENCH_fleet.json")
    args = parser.parse_args(argv)
    sizing = QUICK if args.quick else FULL

    print("building session (warm characterization cache)...")
    session = Session.create(cache_path=CACHE_PATH,
                             voltage_mode="paper")

    with tempfile.TemporaryDirectory(prefix="repro-bench-fleet-") as d:
        print("queue verbs: local SQLite vs remote HTTP "
              "(%d rounds each)..." % sizing["rounds"])
        claims = bench_claim_overhead(session, sizing["rounds"], d)
        print("store sync: plain vs replicated (%d rounds each)..."
              % sizing["rounds"])
        store = bench_store_sync(session, sizing["rounds"], d)
        print("shard hit rate: 2 replicas x %d passes..."
              % sizing["shard_passes"])
        shards = bench_shard_hit_rate(session, sizing, d)

    baseline = {
        "schema": "BENCH_fleet/v1",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": {
            "cpus": os.cpu_count() or 1,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "mode": "quick" if args.quick else "full",
        "remote_claim": claims,
        "store_sync": store,
        "shard_cache": shards,
    }
    with open(args.output, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print("remote claim  +%.2f ms/job over local (claim %.2f -> %.2f, "
          "heartbeat %.2f -> %.2f ms)"
          % (claims["per_job_overhead_ms"],
             claims["local_ms"]["claim_ms"],
             claims["remote_ms"]["claim_ms"],
             claims["local_ms"]["heartbeat_ms"],
             claims["remote_ms"]["heartbeat_ms"]))
    print("store sync    put %.2f -> %.2f ms (+%.2f push), "
          "read-through pull %.2f ms"
          % (store["local_ms"]["put_ms"],
             store["replicated_ms"]["put_ms"],
             store["push_overhead_ms"],
             store["replicated_ms"]["get_read_through_ms"]))
    print("shard cache   cold hit rate %.2f, warm hit rate %.2f "
          "(%d combos round-robin over 2 replicas)"
          % (shards["cold_hit_rate"], shards["warm_hit_rate"],
             shards["combos"]))
    print("fleet baseline written to %s" % args.output)

    # Sanity gates: the warmed fleet must serve everything from cache,
    # and remote claiming must stay in interactive territory.
    assert shards["warm_hit_rate"] == 1.0, \
        "warm pass was not fully cached"
    assert claims["remote_ms"]["claim_ms"] < 250.0, \
        "remote claim latency out of interactive range"
    return 0


if __name__ == "__main__":
    sys.exit(main())
